"""Serving-layer benchmark (perf trajectory: ``BENCH_serve.json``).

Measures what ``repro serve`` buys over per-query cold starts for the
service query pattern — repeated allocation queries against one
``(dataset, probability family)``:

* **cold** — the first query through the daemon: the pool opens a
  session, samples RR sets, prices singletons (what every query would
  pay without the pool);
* **warm** — repeated queries riding the pooled session: p50/p95
  client-observed latency and sequential throughput (queries/sec);
* **concurrent** — a 4-client burst of identical queries, measuring
  end-to-end throughput through admission + the single solver loop.

The report embeds the daemon's ``/stats`` counters (warm-hit rate,
evictions, per-session sampler deltas), so the mechanism is visible
next to the wall-clock numbers: the warm burst should show
``sets_sampled == 0`` after the cold query filled the stores.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_serve.py``,
or via ``pytest benchmarks/bench_serve.py`` (structure checks only —
wall-clock numbers from one machine would fail spuriously elsewhere).
Like the other ``BENCH_*.json`` files, the committed numbers extend the
trajectory (append, never overwrite); re-run on your own host to
compare.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.serve import ReproServer, ServeConfig
from repro.serve import client as serve_client

try:  # package import (pytest from the repo root)
    from benchmarks.trajectory import append_entry
except ImportError:  # standalone: python benchmarks/<script>.py
    from trajectory import append_entry

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

WORKLOAD = dict(
    dataset="epinions_syn",
    n=1_200,
    h=6,
    singleton_rr_samples=2_000,
    eps=0.4,
    theta_cap=8_000,
    seed=11,
    warm_queries=8,
    concurrent_clients=4,
    concurrent_queries=8,
)


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def run_benchmark() -> dict:
    config = ExperimentConfig(
        eps=WORKLOAD["eps"],
        theta_cap=WORKLOAD["theta_cap"],
        singleton_rr_samples=WORKLOAD["singleton_rr_samples"],
        seed=WORKLOAD["seed"],
    )
    entry = {
        "name": WORKLOAD["dataset"],
        "n": WORKLOAD["n"],
        "h": WORKLOAD["h"],
        "singleton_rr_samples": WORKLOAD["singleton_rr_samples"],
    }
    axes = dict(dataset=entry, algorithm="TI-CSRM", seed=WORKLOAD["seed"])

    server = ReproServer(ServeConfig(config=config))
    server.start()
    solver = threading.Thread(target=server.run, daemon=True)
    solver.start()
    addr = server.address
    try:
        t0 = time.perf_counter()
        cold = serve_client.query(addr, **axes)
        cold_s = time.perf_counter() - t0

        warm_times: list[float] = []
        for _ in range(WORKLOAD["warm_queries"]):
            t0 = time.perf_counter()
            warm = serve_client.query(addr, **axes)
            warm_times.append(time.perf_counter() - t0)
        assert warm["serve"]["warm_session"] is True

        burst_times: list[float] = []
        lock = threading.Lock()

        def burst_client(count: int) -> None:
            for _ in range(count):
                t0 = time.perf_counter()
                serve_client.query(addr, **axes)
                elapsed = time.perf_counter() - t0
                with lock:
                    burst_times.append(elapsed)

        per_client = WORKLOAD["concurrent_queries"] // WORKLOAD["concurrent_clients"]
        t0 = time.perf_counter()
        clients = [
            threading.Thread(target=burst_client, args=(per_client,))
            for _ in range(WORKLOAD["concurrent_clients"])
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        burst_wall_s = time.perf_counter() - t0

        stats = serve_client.stats(addr)
    finally:
        server.begin_drain()
        solver.join(timeout=120)
        server.shutdown()

    warm_total = sum(warm_times)
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": dict(WORKLOAD),
        "cold": {"first_query_s": round(cold_s, 4)},
        "warm": {
            "times_s": [round(t, 4) for t in warm_times],
            "p50_s": round(_percentile(warm_times, 50), 4),
            "p95_s": round(_percentile(warm_times, 95), 4),
            "queries_per_s": round(len(warm_times) / max(warm_total, 1e-9), 2),
            "speedup_vs_cold": round(
                cold_s / max(warm_total / len(warm_times), 1e-9), 2
            ),
        },
        "concurrent": {
            "clients": WORKLOAD["concurrent_clients"],
            "queries": len(burst_times),
            "wall_s": round(burst_wall_s, 4),
            "queries_per_s": round(len(burst_times) / max(burst_wall_s, 1e-9), 2),
            "p95_s": round(_percentile(burst_times, 95), 4),
        },
        "serve_stats": stats["serve"],
        "pool_counters": {
            k: v for k, v in stats["pool"].items() if k != "sessions"
        },
        # Cumulative sampler draws across the session's whole lifetime:
        # equal to the cold query's sampling iff the warm burst reused
        # the stores entirely.
        "session_sets_sampled_total": (
            stats["pool"]["sessions"][0]["session"]["sets_sampled"]
            if stats["pool"]["sessions"]
            else None
        ),
        "note": (
            "cold.first_query_s includes dataset build + session open + RR "
            "sampling; warm queries ride the pooled session (the embedded "
            "warm_hit_rate and per-session sampler counters show the reuse). "
            "concurrent measures the single-solver-loop throughput under a "
            "4-client burst of identical queries."
        ),
    }
    return report


def main() -> None:
    report = run_benchmark()
    append_entry(RESULT_PATH, report)  # append-only: history is kept
    print(json.dumps(report, indent=2))
    print(f"# written to {RESULT_PATH}")


# -- pytest wrappers (structure only; see module docstring) -------------
def test_report_structure():
    report = run_benchmark()
    total = 1 + WORKLOAD["warm_queries"] + WORKLOAD["concurrent_queries"]
    assert report["serve_stats"]["queries_served"] == total
    # Everything after the cold query is a warm hit on one session.
    assert report["pool_counters"]["warm_hits"] == total - 1
    assert report["pool_counters"]["cold_misses"] == 1
    assert report["serve_stats"]["warm_hit_rate"] > 0.8
    assert len(report["warm"]["times_s"]) == WORKLOAD["warm_queries"]


if __name__ == "__main__":
    main()
