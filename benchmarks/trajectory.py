"""Append-only trajectory persistence for the ``BENCH_*.json`` reports.

The root-level benchmark reports (``BENCH_hotpaths.json``,
``BENCH_parallel.json``, ...) are the repo's perf *trajectory*: every
PR that re-measures appends an entry, and history is never silently
dropped.  Before this helper the benchmark scripts wrote a single
report dict with ``Path.write_text`` — one re-run overwrote the
previous measurement.  All writers now go through :func:`append_entry`:

* a legacy single-report file is wrapped into
  ``{"trajectory": [legacy]}`` on first append (nothing is lost);
* every append re-reads the file and refuses to write unless the new
  trajectory is strictly the old one plus the new entry — shrinking or
  rewriting history raises :class:`TrajectoryError`;
* entries are stamped with ``recorded_utc`` so curves stay ordered and
  attributable even when git history is rewritten.

Read side: :func:`load_trajectory` returns the entry list for either
layout (legacy single dict or wrapped), so downstream tooling does not
care when a file was last migrated.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


class TrajectoryError(RuntimeError):
    """An append would have dropped or rewritten recorded history."""


def _read(path: Path) -> dict | None:
    if not path.exists():
        return None
    text = path.read_text()
    if not text.strip():
        return None
    data = json.loads(text)
    if not isinstance(data, dict):
        raise TrajectoryError(
            f"{path}: expected a JSON object, found {type(data).__name__}"
        )
    return data


def load_trajectory(path: str | Path) -> list[dict]:
    """All recorded entries of *path*, oldest first (legacy files: one)."""
    data = _read(Path(path))
    if data is None:
        return []
    if "trajectory" in data:
        entries = data["trajectory"]
        if not isinstance(entries, list):
            raise TrajectoryError(f"{path}: 'trajectory' must be a list")
        return entries
    return [data]  # legacy single-report layout

def append_entry(path: str | Path, entry: dict) -> list[dict]:
    """Append *entry* to the trajectory file at *path*; returns the list.

    Never drops history: the existing file (legacy or wrapped) is read,
    the entry is appended, and the result is verified to be exactly
    ``old + [entry]`` before the file is replaced.  The entry is
    stamped with ``recorded_utc`` (ISO 8601) unless it already carries
    one.
    """
    path = Path(path)
    if not isinstance(entry, dict):
        raise TrajectoryError(
            f"trajectory entries must be dicts, got {type(entry).__name__}"
        )
    old = load_trajectory(path)
    entry = dict(entry)
    entry.setdefault(
        "recorded_utc", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    new = old + [entry]
    if len(new) != len(old) + 1 or new[: len(old)] != old:
        raise TrajectoryError(  # pragma: no cover - structural invariant
            f"{path}: append would rewrite recorded history"
        )
    path.write_text(json.dumps({"trajectory": new}, indent=2) + "\n")
    return new
