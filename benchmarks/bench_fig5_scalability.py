"""Figure 5: running time vs number of advertisers and vs budget.

Paper shape on DBLP/LIVEJOURNAL (WC probabilities, cpe = 1, α = 0.2,
fully competitive marketplace):

* (a, b) runtime grows roughly linearly in h, with TI-CSRM slightly
  slower than TI-CARM;
* (c, d) runtime grows with the per-ad budget, TI-CARM's curve flatter.

All runs go through the sampler-backend seam (``bench_config``'s
``sampler_backend`` / ``workers``, settable via ``REPRO_BENCH_WORKERS``)
so the scalability figures exercise the same code path ``--workers``
users get — never a privately constructed sampler.
"""

import numpy as np
import pytest

from repro.experiments.figures import run_figure5_advertisers, run_figure5_budgets
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import FULL, run_once

H_VALUES = (1, 5, 10, 15, 20) if FULL else (1, 5, 10)


@pytest.mark.parametrize("dataset_name", ["dblp", "livejournal"])
def test_fig5_runtime_vs_advertisers(benchmark, dataset_name, request, bench_config):
    dataset = request.getfixturevalue(dataset_name)
    rows = run_once(
        benchmark,
        run_figure5_advertisers,
        dataset,
        bench_config,
        h_values=H_VALUES,
    )
    text = format_table(rows)
    header = (
        f"\n== Figure 5(a,b): runtime vs h ({dataset.name}, "
        f"backend={bench_config.sampler_backend}"
        f"{f', workers={bench_config.workers}' if bench_config.workers else ''}) ==\n"
    )
    print(header + text)
    save_report(f"fig5_advertisers_{dataset.name}", text)

    for algo in ("TI-CSRM", "TI-CARM"):
        series = [r for r in rows if r["algorithm"] == algo]
        times = [r["runtime_s"] for r in series]
        # Runtime grows with h.
        assert times[-1] >= times[0]
        # Roughly linear: the largest h costs no more than ~3x a linear
        # extrapolation from the smallest h (generous, noise-tolerant).
        per_h = times[0] / max(series[0]["h"], 1)
        assert times[-1] <= 4.0 * per_h * series[-1]["h"] + 1.0


@pytest.mark.parametrize("dataset_name", ["dblp", "livejournal"])
def test_fig5_runtime_vs_budget(benchmark, dataset_name, request, bench_config):
    dataset = request.getfixturevalue(dataset_name)
    median_budget = float(np.median(dataset.budgets))
    budgets = tuple(round(median_budget * f, 1) for f in (0.5, 1.0, 2.0, 3.0))
    rows = run_once(
        benchmark,
        run_figure5_budgets,
        dataset,
        bench_config,
        budgets=budgets,
        h=5,
    )
    text = format_table(rows)
    header = (
        f"\n== Figure 5(c,d): runtime vs budget ({dataset.name}, "
        f"backend={bench_config.sampler_backend}"
        f"{f', workers={bench_config.workers}' if bench_config.workers else ''}) ==\n"
    )
    print(header + text)
    save_report(f"fig5_budgets_{dataset.name}", text)

    for algo in ("TI-CSRM", "TI-CARM"):
        series = sorted(
            (r for r in rows if r["algorithm"] == algo), key=lambda r: r["budget"]
        )
        # More budget means at least as many seeds and no less work.
        assert series[-1]["seeds"] >= series[0]["seeds"]
