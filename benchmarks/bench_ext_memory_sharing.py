"""Extension bench: shared RR stores (future work i).

The paper asks whether TI-CSRM "can be made more memory efficient hence
more scalable".  In its own experiments every ad shares one probability
vector (Weighted Cascade) or one per competition pair, so the RR sets of
sharing ads are i.i.d. from the same distribution — the sets and the
inverted index can be stored once.  This bench measures the saving and
confirms the allocation quality is unaffected (the estimator semantics
are identical; only the random draws differ).
"""

import pytest

from repro.core.ticsrm import ti_csrm
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once


def _compare(dataset, config, h_label):
    instance = dataset.build_instance("linear", 1.0)
    common = dict(
        eps=config.eps,
        theta_cap=config.theta_cap,
        opt_lower=dataset.opt_lower_bounds(),
        seed=config.seed,
    )
    rows = []
    results = {}
    for share in (False, True):
        result = ti_csrm(instance, share_samples=share, **common)
        results[share] = result
        rows.append(
            {
                "dataset": dataset.name,
                "h": instance.h,
                "mode": "shared" if share else "private",
                "memory_mb": result.extras["memory_bytes"] / 1e6,
                "revenue": result.total_revenue,
                "seeds": result.total_seeds,
                "runtime_s": result.runtime_seconds,
            }
        )
    return rows, results


def test_memory_sharing(benchmark, epinions, bench_config):
    rows, results = run_once(benchmark, _compare, epinions, bench_config, "h10")
    text = format_table(rows)
    print("\n== Extension: shared RR stores (memory) ==\n" + text)
    save_report("ext_memory_sharing", text)

    private = next(r for r in rows if r["mode"] == "private")
    shared = next(r for r in rows if r["mode"] == "shared")
    # All 10 epinions-analog ads share one probability vector: the saving
    # should approach h-fold on the set storage.
    assert shared["memory_mb"] < 0.5 * private["memory_mb"]
    # Allocation quality is statistically unchanged.
    assert shared["revenue"] == pytest.approx(private["revenue"], rel=0.25)
    # Constraints hold in shared mode.
    instance = epinions.build_instance("linear", 1.0)
    for i in range(instance.h):
        assert results[True].payment_per_ad[i] <= instance.budget(i) + 1e-6
