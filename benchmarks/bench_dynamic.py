"""Incremental vs cold maintenance benchmark (``BENCH_dynamic.json``).

Measures what :meth:`repro.AllocationSession.apply_edge_updates` buys
over a cold restart when the graph mutates mid-campaign
(docs/ARCHITECTURE.md §14).  For each target invalidation rate the
harness crafts a probability-decrease batch whose changed heads touch
approximately that fraction of the warm store's RR sets, then compares:

* **incremental** — ``apply_edge_updates`` (edge-precise invalidation +
  root-pinned resampling of only the invalidated slots) followed by a
  warm re-solve on the mutated graph;
* **cold** — a fresh ``repro.solve`` on the mutated graph (full KPT
  re-estimation and a 100% resample, what a session-less caller pays).

The crossover is the point of the design: at low invalidation rates the
incremental path resamples a small fraction of θ sets and re-solves
from the maintained store, so it should beat cold comfortably at 1% and
10% and approach (or lose to) cold near 50%, where it pays both a large
resample *and* the maintenance bookkeeping.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_dynamic.py``,
or via ``pytest benchmarks/bench_dynamic.py`` (structure checks only —
wall-clock ratios from one machine would fail spuriously elsewhere).
Like the other ``BENCH_*.json`` files, the committed numbers extend the
trajectory (append-only via :mod:`benchmarks.trajectory`); re-run on
your own host to compare.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.api import AllocationSession, EngineSpec, solve
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.experiments.datasets import build_dataset
from repro.graph.updates import compile_updates

try:  # package import (pytest from the repo root)
    from benchmarks.trajectory import append_entry
except ImportError:  # standalone: python benchmarks/<script>.py
    from trajectory import append_entry

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_dynamic.json"

WORKLOAD = dict(
    dataset="epinions_syn",
    n=1_500,
    h=4,
    singleton_rr_samples=1_500,
    eps=0.4,
    theta_cap=10_000,
    seed=11,
    target_rates=(0.01, 0.10, 0.50),
)


def _build():
    ds = build_dataset(
        WORKLOAD["dataset"],
        n=WORKLOAD["n"],
        h=WORKLOAD["h"],
        singleton_rr_samples=WORKLOAD["singleton_rr_samples"],
    )
    instance = ds.build_instance(incentive_model="linear", alpha=1.0)
    spec = EngineSpec(
        eps=WORKLOAD["eps"],
        theta_cap=WORKLOAD["theta_cap"],
        opt_lower="kpt",
        seed=WORKLOAD["seed"],
    )
    return instance, spec


def _batch_for_rate(graph, probs, store, target: float, rng) -> list:
    """A probability-decrease batch invalidating ≈ *target* of *store*.

    Greedily accumulates changed heads (random order, seeded) until the
    union of their containing sets reaches the target fraction; each
    chosen head contributes one ``set_prob`` halving the probability of
    its first in-arc.  Decreases only, so the batch also exercises the
    survivors-bit-identical regime the parity suite pins.
    """
    size = store.size
    mask = np.zeros(size, dtype=bool)
    updates = []
    for node in rng.permutation(graph.n):
        if mask.mean() >= target:
            break
        node = int(node)
        lo, hi = int(graph.in_indptr[node]), int(graph.in_indptr[node + 1])
        if lo == hi:
            continue
        sids = store.sets_containing(node)
        if sids.size == 0:
            continue
        edge_id = int(graph.in_edge_ids[lo])
        tail = int(graph.in_tails[lo])
        updates.append(("set_prob", tail, node, float(probs[edge_id]) * 0.5))
        mask[sids] = True
    return updates


def _rebuild(instance: RMInstance, graph, plan) -> RMInstance:
    advertisers = [
        Advertiser(index=i, cpe=instance.cpe(i), budget=instance.budget(i))
        for i in range(instance.h)
    ]
    probs = [plan.apply_probs(p) for p in instance.ad_probs]
    return RMInstance(graph, advertisers, probs, instance.incentives)


def run_benchmark() -> dict:
    instance, spec = _build()
    rates = []
    for target in WORKLOAD["target_rates"]:
        with AllocationSession(instance.graph, spec=spec) as session:
            session.solve(instance, "TI-CSRM")
            (group,) = session._warm.stores.values()
            store = group.store
            probs = np.asarray(instance.ad_probs[0], dtype=np.float64)
            batch = _batch_for_rate(
                instance.graph, probs, store, target,
                np.random.default_rng(WORKLOAD["seed"] + 1),
            )
            plan = compile_updates(instance.graph, batch)

            t0 = time.perf_counter()
            report = session.apply_edge_updates(batch)
            maintain_s = time.perf_counter() - t0

            mutated = _rebuild(instance, session.graph, plan)
            t0 = time.perf_counter()
            warm = session.solve(mutated, "TI-CSRM")
            warm_solve_s = time.perf_counter() - t0

        cold_instance = _rebuild(instance, plan.new_graph, plan)
        t0 = time.perf_counter()
        cold = solve(cold_instance, "TI-CSRM", spec)
        cold_s = time.perf_counter() - t0

        incremental_s = maintain_s + warm_solve_s
        rates.append(
            {
                "target_rate": target,
                "achieved_rate": round(report["invalidation_rate"], 4),
                "updates": report["updates"],
                "invalidated_sets": report["invalidated_sets"],
                "checked_sets": report["checked_sets"],
                "maintain_s": round(maintain_s, 4),
                "warm_solve_s": round(warm_solve_s, 4),
                "incremental_total_s": round(incremental_s, 4),
                "cold_solve_s": round(cold_s, 4),
                "speedup_vs_cold": round(cold_s / max(incremental_s, 1e-9), 2),
                "revenue_incremental": round(warm.total_revenue, 1),
                "revenue_cold": round(cold.total_revenue, 1),
            }
        )
    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": dict(WORKLOAD, target_rates=list(WORKLOAD["target_rates"])),
        "rates": rates,
        "note": (
            "incremental_total_s = apply_edge_updates (invalidation + "
            "root-pinned resample of only the invalidated sets) + one warm "
            "re-solve from the maintained store; cold_solve_s = fresh solve "
            "on the mutated graph (full KPT + 100% resample).  The design "
            "target is speedup_vs_cold > 1 at <= 10% invalidation."
        ),
    }


def main() -> None:
    report = run_benchmark()
    append_entry(RESULT_PATH, report)  # append-only: history is kept
    print(json.dumps(report, indent=2))
    print(f"# written to {RESULT_PATH}")


# -- pytest wrappers (structure only; see module docstring) -------------
def test_report_structure():
    small = dict(WORKLOAD)
    try:
        WORKLOAD.update(n=200, theta_cap=600, eps=1.0,
                        singleton_rr_samples=400, target_rates=(0.10,))
        report = run_benchmark()
    finally:
        WORKLOAD.clear()
        WORKLOAD.update(small)
    (rate,) = report["rates"]
    assert rate["invalidated_sets"] <= rate["checked_sets"]
    assert rate["achieved_rate"] >= 0.05  # the batch crafter hit its target
    assert rate["incremental_total_s"] > 0 and rate["cold_solve_s"] > 0


if __name__ == "__main__":
    main()
