"""Session warm-start benchmark (perf trajectory: ``BENCH_session.json``).

Measures the value of :class:`repro.AllocationSession` for the
production query pattern — re-solving one graph + probability family
under varying budgets:

* **cold** — a fresh ``repro.solve`` per budget (what a session-less
  caller pays: RR sampling, KPT estimation and pagerank orders restart
  from zero every call);
* **warm** — one session solving the same budget sequence; solves after
  the first adopt the already-drawn RR stores and sample only if they
  need more sets than any earlier solve did.

The report embeds the session's sampler counters, so the mechanism is
visible next to the wall-clock numbers: the warm pass should show ~one
cold solve's worth of ``sets_sampled`` for the *whole* budget sweep.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_session_reuse.py``,
or via ``pytest benchmarks/bench_session_reuse.py`` (structure checks
only — wall-clock ratios from one machine would fail spuriously
elsewhere).  Like the other ``BENCH_*.json`` files, the committed
numbers extend the trajectory; re-run on your own host to compare.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.api import AllocationSession, EngineSpec, solve
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.experiments.datasets import build_dataset

try:  # package import (pytest from the repo root)
    from benchmarks.trajectory import append_entry
except ImportError:  # standalone: python benchmarks/<script>.py
    from trajectory import append_entry

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_session.json"

WORKLOAD = dict(
    dataset="epinions_syn",
    n=2_000,
    h=8,
    singleton_rr_samples=2_000,
    eps=0.3,
    theta_cap=20_000,
    seed=11,
    budget_factors=(1.0, 0.75, 0.5, 1.25, 0.9),
)


def _build():
    ds = build_dataset(
        WORKLOAD["dataset"],
        n=WORKLOAD["n"],
        h=WORKLOAD["h"],
        singleton_rr_samples=WORKLOAD["singleton_rr_samples"],
    )
    instance = ds.build_instance(incentive_model="linear", alpha=1.0)
    spec = EngineSpec(
        eps=WORKLOAD["eps"],
        theta_cap=WORKLOAD["theta_cap"],
        opt_lower=ds.opt_lower_bounds(instance.h),
        seed=WORKLOAD["seed"],
    )
    return ds, instance, spec


def _with_budgets(instance: RMInstance, factor: float) -> RMInstance:
    advertisers = [
        Advertiser(index=i, cpe=instance.cpe(i), budget=instance.budget(i) * factor)
        for i in range(instance.h)
    ]
    return RMInstance(
        instance.graph, advertisers, instance.ad_probs, instance.incentives
    )


def run_benchmark() -> dict:
    ds, instance, spec = _build()
    factors = WORKLOAD["budget_factors"]
    queries = [_with_budgets(instance, f) for f in factors]

    cold_times = []
    cold_revenue = []
    for query in queries:
        t0 = time.perf_counter()
        result = solve(query, "TI-CSRM", spec)
        cold_times.append(time.perf_counter() - t0)
        cold_revenue.append(result.total_revenue)

    warm_times = []
    warm_revenue = []
    with AllocationSession(instance.graph, spec=spec) as session:
        for query in queries:
            t0 = time.perf_counter()
            result = session.solve(query, "TI-CSRM")
            warm_times.append(time.perf_counter() - t0)
            warm_revenue.append(result.total_revenue)
        stats = session.stats

    first, rest = warm_times[0], warm_times[1:]
    cold_rest = cold_times[1:]
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": dict(WORKLOAD, budget_factors=list(factors)),
        "cold": {
            "times_s": [round(t, 4) for t in cold_times],
            "total_s": round(sum(cold_times), 4),
            "revenue": [round(r, 1) for r in cold_revenue],
        },
        "warm_session": {
            "times_s": [round(t, 4) for t in warm_times],
            "total_s": round(sum(warm_times), 4),
            "first_solve_s": round(first, 4),
            "revenue": [round(r, 1) for r in warm_revenue],
            "session_stats": {
                k: v for k, v in stats.items() if k != "pool_active"
            },
        },
        "speedup": {
            "warm_resolve_vs_cold": round(
                (sum(cold_rest) / len(cold_rest)) / max(sum(rest) / len(rest), 1e-9), 2
            )
            if rest
            else None,
            "sweep_total": round(sum(cold_times) / max(sum(warm_times), 1e-9), 2),
        },
        "note": (
            "warm_resolve_vs_cold compares the mean per-solve time after the "
            "session's first (store-filling) solve against the mean cold solve; "
            "session_stats.sets_sampled shows the sampling the whole sweep "
            "actually performed"
        ),
    }
    return report


def main() -> None:
    report = run_benchmark()
    append_entry(RESULT_PATH, report)  # append-only: history is kept
    print(json.dumps(report, indent=2))
    print(f"# written to {RESULT_PATH}")


# -- pytest wrappers (structure only; see module docstring) -------------
def test_report_structure():
    report = run_benchmark()
    assert report["warm_session"]["session_stats"]["solves"] == len(
        WORKLOAD["budget_factors"]
    )
    assert len(report["cold"]["times_s"]) == len(WORKLOAD["budget_factors"])
    # The warm sweep must not sample more sets than one cold solve per
    # distinct theta requirement — i.e. far fewer than solves × theta.
    stats = report["warm_session"]["session_stats"]
    assert stats["stored_sets"] <= WORKLOAD["theta_cap"] * WORKLOAD["h"]


if __name__ == "__main__":
    main()
