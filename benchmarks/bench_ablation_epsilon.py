"""Ablation: estimator accuracy ε vs revenue, θ, time and memory.

Design-choice ablation called out in DESIGN.md: Theorem 4 predicts an
additive revenue loss linear in ε while Eq. 8 makes the RR sample size
(hence memory and time) shrink as 1/ε².  The sweep runs on the EPINIONS
analog (whose larger OPT lower bounds keep the honest ``L(s, ε)`` below
the raised cap, so ε — not the cap — controls θ).  The paper itself sits
at ε = 0.1 (quality) and ε = 0.3 (scalability) on this trade-off.
"""

from repro.experiments.figures import run_ablation_epsilon
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once


def test_ablation_epsilon(benchmark, epinions, bench_config):
    rows = run_once(
        benchmark,
        run_ablation_epsilon,
        epinions,
        bench_config,
        eps_values=(0.5, 1.0, 2.0, 4.0),
        theta_cap=30_000,
    )
    text = format_table(rows)
    print("\n== Ablation: epsilon vs revenue/theta/time (epinions_syn) ==\n" + text)
    save_report("ablation_epsilon", text)

    thetas = [r["theta_total"] for r in rows]
    # Sample sizes shrink monotonically in eps...
    assert thetas == sorted(thetas, reverse=True)
    # ...and strictly overall once the cap stops binding.
    assert thetas[-1] < thetas[0]
    # Memory follows theta.
    memories = [r["memory_mb"] for r in rows]
    assert memories == sorted(memories, reverse=True)
