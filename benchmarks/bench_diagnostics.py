"""In-text diagnostics of Section 5 (FLIXSTER, linear incentives).

The paper explains the occasional PageRank-over-CARM inversion with
per-seed averages: on FLIXSTER with linear incentives PageRank-GR's
seeds averaged (marginal revenue 2.67, cost 0.44, rate 7.48) vs
TI-CARM's (13.47, 2.7, 4.89) and TI-CSRM's (1.28, 0.12, 9.95) — i.e.
TI-CSRM picks many cheap efficient seeds, TI-CARM few expensive ones.
The reproduced claim is the *ordering* of the per-seed rate:
TI-CSRM > PageRank-* > TI-CARM, and of per-seed cost: TI-CSRM lowest,
TI-CARM highest.
"""

from repro.experiments.figures import run_diagnostics
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once


def test_diagnostics_per_seed_averages(benchmark, flixster, bench_config):
    rows = run_once(benchmark, run_diagnostics, flixster, bench_config)
    text = format_table(rows)
    print("\n== Section 5 diagnostics: per-seed averages (flixster_syn) ==\n" + text)
    save_report("diagnostics_flixster", text)

    by_algo = {r["algorithm"]: r for r in rows}
    csrm = by_algo["TI-CSRM"]
    carm = by_algo["TI-CARM"]
    # TI-CSRM: cheapest seeds and the best revenue-per-cost rate.
    assert csrm["avg_seed_cost"] <= carm["avg_seed_cost"]
    assert csrm["avg_rate"] >= carm["avg_rate"]
    # TI-CARM: the most expensive seeds on average (it chases raw spread).
    for name, row in by_algo.items():
        if name != "TI-CARM":
            assert row["avg_seed_cost"] <= carm["avg_seed_cost"] * 1.05
