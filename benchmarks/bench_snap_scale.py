"""Epinions-scale SNAP crawl under a declared memory budget (ISSUE 7).

End-to-end evidence that the memory-bounded RR pipeline holds at real
crawl scale: a ~75k-node power-law edge list in SNAP's plain-text
format (the same shape as ``soc-Epinions1.txt``: comment header, one
``src\\tdst`` arc per line) is

1. **generated** deterministically (no network in the benchmark box),
2. **ingested** through ``repro ingest --cache`` (parse, dedupe,
   self-loop strip, ``.npz`` cache),
3. **solved** through ``repro grid`` with a declared per-store
   ``rr_bytes_budget``, so shared RR stores spill to memmap instead of
   growing without bound, and every manifest row records measured
   ``bytes_per_rr_set`` / peak-store accounting.

The summary — node/arc counts, declared budget, spill status, measured
bytes-per-RR-set, kernel, wall times — is appended (never overwritten)
to ``BENCH_snap_scale.json`` at the repo root.

Run: ``PYTHONPATH=src python benchmarks/bench_snap_scale.py [workdir]``
(default workdir: a fresh temp directory).  The pytest wrapper runs a
scaled-down graph so the structural contract stays cheap to check; the
committed report is the full-scale run.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_snap_scale.json"

try:  # package import (pytest from the repo root)
    from benchmarks.trajectory import append_entry
except ImportError:  # standalone: python benchmarks/bench_snap_scale.py
    from trajectory import append_entry

#: Full-scale workload: ≥ 50k nodes (Epinions is 75,879 / 508,837).
FULL = dict(
    n_nodes=75_000,
    n_arcs=500_000,
    graph_seed=42,
    #: Declared per-store RAM budget for RR members: 8 MiB.  Past it
    #: the shared store spills to a temp-file memmap.
    rr_bytes_budget=8 * 1024 * 1024,
    h=2,
    alphas=(0.5, 1.0),
    eps=1.0,
    theta_cap=400,
    singleton_rr_samples=4_000,
    seed=11,
)


def write_snap_edge_list(path: Path, *, n_nodes: int, n_arcs: int, seed: int) -> int:
    """A power-law SNAP-format crawl: heavy-tailed out-degree, uniform heads.

    Mirrors the messiness of a real crawl on purpose: duplicate arcs and
    self loops are left in (ingestion strips them), and the header uses
    SNAP's comment style.  Returns the number of raw lines written.
    """
    rng = np.random.default_rng(seed)
    # Zipf-ish tail capped so one hub cannot own the whole arc budget.
    weights = (np.arange(1, n_nodes + 1, dtype=np.float64)) ** -0.9
    rng.shuffle(weights)
    tails = rng.choice(n_nodes, size=n_arcs, p=weights / weights.sum())
    heads = rng.integers(0, n_nodes, size=n_arcs)
    lines = np.char.add(
        np.char.add(tails.astype(np.str_), "\t"), heads.astype(np.str_)
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# Synthetic power-law crawl (SNAP format)\n")
        fh.write(f"# Nodes: {n_nodes} Edges: {n_arcs}\n")
        fh.write("\n".join(lines.tolist()))
        fh.write("\n")
    return n_arcs


def run_benchmark(workdir: str | Path, workload: dict = FULL) -> dict:
    """Generate → ``repro ingest`` → ``repro grid`` under the budget."""
    from repro.cli import main as repro_main
    from repro.experiments.grid import clear_grid_caches, load_manifest

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    edge_path = workdir / "snap_crawl.txt"

    t0 = time.perf_counter()
    write_snap_edge_list(
        edge_path,
        n_nodes=workload["n_nodes"],
        n_arcs=workload["n_arcs"],
        seed=workload["graph_seed"],
    )
    gen_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    code = repro_main(["ingest", str(edge_path), "--cache"])
    assert code == 0, "repro ingest failed"
    ingest_s = time.perf_counter() - t0

    spec = {
        "name": "snap_scale",
        "datasets": [
            {
                "path": str(edge_path),
                "h": workload["h"],
                "singleton_rr_samples": workload["singleton_rr_samples"],
                "cache": True,
            }
        ],
        "algorithms": ["TI-CSRM"],
        "alphas": list(workload["alphas"]),
        "seed": workload["seed"],
        "config": {
            "eps": workload["eps"],
            "theta_cap": workload["theta_cap"],
            "share_samples": True,
            "rr_bytes_budget": workload["rr_bytes_budget"],
        },
    }
    spec_path = workdir / "snap_scale.json"
    spec_path.write_text(json.dumps(spec, indent=2))
    manifest = workdir / "snap_scale.jsonl"

    clear_grid_caches()
    t0 = time.perf_counter()
    code = repro_main(
        ["grid", "--spec", str(spec_path), "--manifest", str(manifest), "--quiet"]
    )
    grid_s = time.perf_counter() - t0
    clear_grid_caches()
    assert code == 0, "repro grid left quarantined cells"

    _, rows = load_manifest(str(manifest))
    cells = [row for row in rows if row.get("kind") == "cell"]
    assert cells, "grid produced no cells"
    memory_rows = [row["memory"] for row in cells]
    for memory in memory_rows:
        assert memory["rr_bytes_budget"] == workload["rr_bytes_budget"]
        assert memory["bytes_per_rr_set"] > 0

    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "workload": dict(workload),
        "edge_list": {
            "raw_arcs": workload["n_arcs"],
            "generate_s": round(gen_s, 2),
            "ingest_s": round(ingest_s, 2),
        },
        "grid": {
            "cells": len(cells),
            "total_s": round(grid_s, 2),
            "revenues": [round(row["revenue"], 2) for row in cells],
            "kernel": cells[0]["engine_spec"]["kernel"],
        },
        "memory": {
            "declared_rr_bytes_budget": workload["rr_bytes_budget"],
            "bytes_per_rr_set": [
                round(m["bytes_per_rr_set"], 2) for m in memory_rows
            ],
            "peak_store_bytes": [m["peak_store_bytes"] for m in memory_rows],
            "spilled_stores": [m["spilled_stores"] for m in memory_rows],
        },
    }


# -- pytest wrapper (scaled down; structure only) -----------------------
def test_snap_scale_pipeline(tmp_path):
    workload = dict(
        FULL,
        n_nodes=2_000,
        n_arcs=10_000,
        rr_bytes_budget=64,
        theta_cap=100,
        singleton_rr_samples=400,
    )
    report = run_benchmark(tmp_path, workload)
    assert report["grid"]["cells"] == len(workload["alphas"])
    assert all(b > 0 for b in report["memory"]["bytes_per_rr_set"])
    assert all(s >= 1 for s in report["memory"]["spilled_stores"])


if __name__ == "__main__":
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro_snap_"
    )
    report = run_benchmark(workdir)
    append_entry(RESULT_PATH, report)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {RESULT_PATH} (workdir: {workdir})")
