"""Shared fixtures for the benchmark suite.

Benchmarks run the real experiment pipelines on bench-scale analogs
(larger than the unit-test fixtures, smaller than the paper's crawls;
see DESIGN.md §4).  Set ``REPRO_BENCH_FULL=1`` to run the full paper α
grids and h sweeps instead of the quick subsets.

Every bench prints the paper-style rows/series it regenerates and also
persists them under ``benchmarks/results/`` via
:func:`repro.experiments.reporting.save_report`.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import build_dataset

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

# Sampler-backend seam for all benches: REPRO_BENCH_WORKERS > 1 routes
# every engine run through the shared-memory parallel backend, so the
# figures measure exactly the code path a --workers user gets.  Default
# (0) is the serial backend — bit-identical to pre-seam benches.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Estimator settings for benches (documented in EXPERIMENTS.md)."""
    return ExperimentConfig(
        eps=0.5,
        ell=0.5,
        theta_cap=2_000,
        opt_lower_mode="singleton",
        singleton_rr_samples=6_000,
        scalability_window=200,
        grid_mode="paper" if FULL else "quick",
        seed=7,
        sampler_backend="parallel" if BENCH_WORKERS > 1 else "serial",
        workers=BENCH_WORKERS,
    )


@pytest.fixture(scope="session")
def flixster(bench_config):
    """FLIXSTER analog at bench scale (directed, TIC L=10, h=10)."""
    return build_dataset(
        "flixster_syn",
        n=1_200,
        h=10,
        singleton_rr_samples=bench_config.singleton_rr_samples,
    )


@pytest.fixture(scope="session")
def epinions(bench_config):
    """EPINIONS analog at bench scale (directed, capped WC, h=10)."""
    return build_dataset(
        "epinions_syn",
        n=1_500,
        h=10,
        singleton_rr_samples=bench_config.singleton_rr_samples,
    )


@pytest.fixture(scope="session")
def dblp(bench_config):
    """DBLP analog at bench scale (undirected, WC, degree-proxy costs)."""
    return build_dataset("dblp_syn", n=2_000, h=20)


@pytest.fixture(scope="session")
def livejournal(bench_config):
    """LIVEJOURNAL analog at bench scale (R-MAT, WC, degree-proxy costs)."""
    return build_dataset("livejournal_syn", scale=11, h=20)


@pytest.fixture(scope="session")
def dblp_small():
    """Smaller DBLP analog for Table 3: sized so the honest Eq.-8 sample
    sizes fit *under* the θ cap — the memory gap between TI-CSRM and
    TI-CARM is driven by L(s, ε) growing with the certified seed-set
    size, which a binding cap would flatten."""
    return build_dataset("dblp_syn", n=800, h=10, seed=303)


@pytest.fixture(scope="session")
def livejournal_small():
    """Smaller LIVEJOURNAL analog for Table 3 (see dblp_small)."""
    return build_dataset("livejournal_syn", scale=9, h=10, seed=404)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


_SWEEP_CACHE: dict = {}


def cached_alpha_sweep(dataset, config):
    """Figures 2 and 3 report different columns of the *same* runs; cache
    the sweep so the second bench reuses the first one's allocations."""
    from repro.experiments.figures import run_alpha_sweep

    key = (dataset.name, config)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_alpha_sweep(dataset, config)
    return _SWEEP_CACHE[key]
