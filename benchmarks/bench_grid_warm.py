"""Grid execution-mode benchmark (perf trajectory: ``BENCH_grid.json``).

Measures what ``execution: warm_per_dataset`` buys on the paper's
evaluation shape — a Figure-5-style scenario grid (one dataset, an
``h`` sweep, two algorithms, a TI-CSRM window) where every cell
re-solves the *same* graph + probability family:

* **cold** — today's default: every cell samples its RR sets from
  scratch (results independent of execution order);
* **warm_per_dataset** — one :class:`repro.AllocationSession` per
  dataset group; cells after the group's first adopt the already-drawn
  stores and sample only past their end.

The report embeds the per-cell ``session`` provenance blocks from the
warm manifest, so the mechanism is visible next to the wall-clock
numbers: one store-filling cell, then near-zero ``sets_sampled``
deltas.  Statistical parity between the modes is asserted by
``tests/test_grid_warm.py``; this file measures the speed.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_grid_warm.py``,
or via ``pytest benchmarks/bench_grid_warm.py`` (structure checks only —
wall-clock ratios from one machine would fail spuriously elsewhere).
Like the other ``BENCH_*.json`` files, the committed numbers extend the
trajectory; re-run on your own host to compare.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.grid import GridSpec, clear_grid_caches, run_grid

try:  # package import (pytest from the repo root)
    from benchmarks.trajectory import append_entry
except ImportError:  # standalone: python benchmarks/<script>.py
    from trajectory import append_entry

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_grid.json"

#: A scaled-down specs/fig5.json: same dataset family, axes and window
#: shape, sized for a laptop-class container (the committed spec's
#: n=2000/h<=20 grid takes minutes cold).
WORKLOAD = {
    "name": "fig5_bench",
    "datasets": [{"name": "dblp_syn", "n": 800, "h": 8}],
    "algorithms": ["TI-CSRM", "TI-CARM"],
    "h": [1, 4, 8],
    # Scaled with the smaller graph's spreads so every cell seats seeds
    # (at 60.0, TI-CARM's max-coverage candidate is never affordable on
    # the h=1 cell and the cell reports zero revenue).
    "budgets": [150.0],
    "incentive_models": ["linear"],
    "alphas": [0.5],
    "windows": [200],
    "seed": 7,
    "config": {"eps": 0.5, "theta_cap": 2000},
}


def _run_mode(mode: str, directory: str) -> tuple[float, list[dict]]:
    clear_grid_caches()
    spec = GridSpec.from_dict(
        {**WORKLOAD, "execution": {"mode": mode}}
        if mode != "cold"
        else WORKLOAD
    )
    manifest = str(Path(directory) / f"{mode}.jsonl")
    start = time.perf_counter()
    rows = run_grid(spec, manifest)
    return time.perf_counter() - start, rows


def run_benchmark() -> dict:
    with tempfile.TemporaryDirectory() as directory:
        cold_s, cold_rows = _run_mode("cold", directory)
        warm_s, warm_rows = _run_mode("warm_per_dataset", directory)

    def cells(rows):
        return [
            {
                "algorithm": row["algorithm"],
                "h": row["h"],
                "revenue": round(row["revenue"], 1),
                "runtime_s": round(row["runtime_s"], 4),
            }
            for row in rows
        ]

    sessions = [row["session"] for row in warm_rows]
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": WORKLOAD,
        "cold": {"total_s": round(cold_s, 4), "cells": cells(cold_rows)},
        "warm_per_dataset": {
            "total_s": round(warm_s, 4),
            "cells": cells(warm_rows),
            "session_blocks": sessions,
            "sets_sampled_total": sum(s["sets_sampled"] for s in sessions),
            "store_misses_total": sum(s["store_misses"] for s in sessions),
        },
        "speedup": {"grid_total": round(cold_s / max(warm_s, 1e-9), 2)},
        "note": (
            "same spec both modes (a scaled specs/fig5.json); warm groups "
            "all cells into one AllocationSession per dataset entry, so "
            "session_blocks should show one store-filling cell and "
            "near-zero sets_sampled everywhere after it; revenues differ "
            "statistically, not systematically (tests/test_grid_warm.py)"
        ),
    }
    return report


def main() -> None:
    report = run_benchmark()
    append_entry(RESULT_PATH, report)  # append-only: history is kept
    print(json.dumps(report, indent=2))
    print(f"# written to {RESULT_PATH}")


# -- pytest wrappers (structure only; see module docstring) -------------
def test_report_structure():
    report = run_benchmark()
    cold, warm = report["cold"], report["warm_per_dataset"]
    n_cells = len(WORKLOAD["h"]) * len(WORKLOAD["algorithms"])
    assert len(cold["cells"]) == len(warm["cells"]) == n_cells
    assert [c["h"] for c in cold["cells"]] == [c["h"] for c in warm["cells"]]
    # One dataset entry, one probability vector: exactly one store fill.
    assert warm["store_misses_total"] == 1
    blocks = warm["session_blocks"]
    assert blocks[0]["solve_index"] == 0 and not blocks[0]["warm_resolve"]
    assert all(b["warm_resolve"] for b in blocks[1:])
    # The whole warm grid samples at most ~one cold cell's worth of sets
    # beyond the first fill (growth past the largest-h store prefix).
    assert warm["sets_sampled_total"] <= 2 * blocks[0]["sets_sampled"]


if __name__ == "__main__":
    main()
