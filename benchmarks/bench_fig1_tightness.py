"""Figure 1: the tightness instance of Theorem 2, regenerated.

Paper claim: on this instance CA-GREEDY can return revenue 3 while the
optimum is 6, matching the Theorem-2 bound of exactly 1/2 (κ_π = 1,
r = 1, R = 2); CS-GREEDY finds the optimum (footnote 9).  This bench
re-derives every ingredient from scratch (exact oracle, brute-force
optimum, rank enumeration, curvature) and prints the comparison,
together with this reproduction's Theorem-2 counterexample finding.
"""

from repro.core.bounds import (
    theorem2_bound,
    theorem2_counterexample,
    tightness_instance,
)
from repro.core.curvature import total_revenue_curvature
from repro.core.greedy import ca_greedy, cs_greedy, exhaustive_optimum
from repro.core.independence import lower_upper_rank
from repro.core.oracles import ExactOracle
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once


def _analyze(instance):
    oracle = ExactOracle(instance)
    _, opt = exhaustive_optimum(instance, oracle)
    kappa = total_revenue_curvature(instance, oracle)

    def is_indep(subset):
        return oracle.payment(0, subset) <= instance.budget(0) + 1e-9

    r, big_r = lower_upper_rank(range(instance.n), is_indep)
    return {
        "opt": opt,
        "kappa": kappa,
        "r": r,
        "R": big_r,
        "bound": theorem2_bound(kappa, r, big_r),
        "ca_adversarial": ca_greedy(instance, oracle, tie_break="cost").total_revenue,
        "ca_friendly": ca_greedy(instance, oracle, tie_break="index").total_revenue,
        "cs": cs_greedy(instance, oracle).total_revenue,
    }


def test_fig1_tightness(benchmark):
    instance, expected = tightness_instance()
    row = run_once(benchmark, _analyze, instance)
    rows = [{"instance": "Figure 1", **row}]

    counter_inst, counter_expected = theorem2_counterexample()
    rows.append({"instance": "repro counterexample", **_analyze(counter_inst)})

    text = format_table(rows)
    print("\n== Figure 1: Theorem 2 tightness (and repro counterexample) ==\n" + text)
    save_report("fig1_tightness", text)

    # Paper claims, reproduced exactly.
    assert row["opt"] == expected["optimal_revenue"]
    assert row["ca_adversarial"] == expected["adversarial_greedy_revenue"]
    assert row["ca_adversarial"] / row["opt"] == expected["theorem2_bound"]
    assert row["bound"] == expected["theorem2_bound"]
    assert row["cs"] == expected["optimal_revenue"]
    # Reproduction finding: the literal formula exceeded on the 3-node
    # matroid instance.
    counter = rows[1]
    assert counter["ca_friendly"] / counter["opt"] < counter["bound"]
