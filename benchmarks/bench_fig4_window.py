"""Figure 4: revenue vs running time for TI-CSRM window sizes.

Paper shape: revenue rises with the window size ``w`` (maximum at the
full window ``w = n``), while the running time grows with ``w`` — the
knee of that curve motivates the paper's choice of ``w = 5000`` for the
scalability runs.  Both quality analogs are swept at the analog-grid
counterparts of the paper's α ∈ {0.2, 0.5}.
"""

import pytest

from repro.experiments.figures import run_figure4
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once


@pytest.mark.parametrize("dataset_name", ["flixster", "epinions"])
def test_fig4_window_tradeoff(benchmark, dataset_name, request, bench_config):
    dataset = request.getfixturevalue(dataset_name)
    rows = run_once(benchmark, run_figure4, dataset, bench_config)
    text = format_table(rows)
    print(f"\n== Figure 4: revenue vs time by window ({dataset.name}) ==\n" + text)
    save_report(f"fig4_window_{dataset.name}", text)

    for alpha in sorted({r["alpha"] for r in rows}):
        series = [r for r in rows if r["alpha"] == alpha]
        by_window = {r["window"]: r for r in series}
        full = by_window["n"]
        w1 = by_window[1]
        # The full window achieves at least the w=1 revenue (it strictly
        # dominates the candidate pool).
        assert full["revenue"] >= 0.97 * w1["revenue"]
        # Maximum revenue across the sweep occurs at a window > 1 or at n.
        best_window = max(series, key=lambda r: r["revenue"])["window"]
        assert best_window != 1 or full["revenue"] == pytest.approx(
            w1["revenue"], rel=0.03
        )
