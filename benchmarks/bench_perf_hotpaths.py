"""Hot-path micro/macro benchmarks for the RR data plane (perf trajectory).

Measures, on a mid-size synthetic instance (EPINIONS analog, n = 3000,
h = 8, θ capped at 20k):

* sampler throughput — RR sets/second via ``sample_batch_flat``;
* ``mark_covered_by`` latency — 200 covers of the highest-coverage nodes
  over a 20k-set collection;
* full ``TIEngine.run`` wall time for TI-CSRM and TI-CARM.

Results are written machine-readable to ``BENCH_hotpaths.json`` at the
repo root so future PRs can track the perf trajectory; the JSON also
embeds the frozen pre-flat-backend baseline (measured on the same
workload/machine at the time of the flat-CSR refactor) and the implied
speedups.

This file also measures the **serial-vs-parallel sampler scaling
curve** over the backend seam (``repro.rrset.backend``) and writes it
to a separate ``BENCH_parallel.json`` — the hotpath trajectory file is
extended, never overwritten.  Parallel numbers are only meaningful on
multi-core hosts; the report embeds ``os.cpu_count()`` so a single-core
CI box's sub-1× ratios are legible as host artifacts, not regressions.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py``,
or explicitly via ``pytest benchmarks/bench_perf_hotpaths.py`` (the file
does not match the default ``test_*.py`` collection pattern, so the
tier-1 run never executes it).  The ≥3× acceptance evidence for the
flat-backend PR is the committed ``BENCH_hotpaths.json`` (15.3× on the
reference machine); the pytest wrappers check the reports' structure,
not wall-clock ratios, because absolute numbers from one machine would
fail spuriously on a slower or narrower host.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.ti_engine import TIEngine
from repro.experiments.datasets import build_dataset
from repro.rrset.backend import ParallelBackend, SerialBackend, make_backend
from repro.rrset.collection import RRCollection
from repro.rrset.kernels import NUMBA_AVAILABLE

try:  # package import (pytest from the repo root)
    from benchmarks.trajectory import append_entry
except ImportError:  # standalone: python benchmarks/bench_perf_hotpaths.py
    from trajectory import append_entry

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_hotpaths.json"
PARALLEL_RESULT_PATH = REPO_ROOT / "BENCH_parallel.json"

WORKER_CURVE = (1, 2, 4)

WORKLOAD = dict(
    dataset="epinions_syn",
    n=3_000,
    h=8,
    singleton_rr_samples=2_000,
    sampler_sets=20_000,
    cover_ops=200,
    eps=0.3,
    theta_cap=20_000,
    seed=11,
)

# Frozen reference: the pure-Python list-of-lists backend (per-set
# sampling loop, per-member index appends, full per-round candidate
# rescans) measured on exactly this workload immediately before the
# flat-CSR + lazy-candidate refactor.
SEED_BASELINE = {
    "sampler_sets_per_s": 82_499.0,
    "mark_covered_s_per_200": 0.011,
    "ticsrm_run_s": 3.266,
}


def _build():
    ds = build_dataset(
        WORKLOAD["dataset"],
        n=WORKLOAD["n"],
        h=WORKLOAD["h"],
        singleton_rr_samples=WORKLOAD["singleton_rr_samples"],
    )
    return ds, ds.build_instance("linear", 1.0)


def bench_sampler(inst) -> tuple[float, RRCollection]:
    # Measured through the backend seam ("serial" is bit-identical to
    # the bare sampler) so the benchmark exercises the same code path
    # every engine/oracle consumer now takes.
    backend = make_backend(inst.graph, inst.ad_probs[0], "serial")
    rng = np.random.default_rng(123)
    t0 = time.perf_counter()
    members, indptr = backend.sample_batch_flat(WORKLOAD["sampler_sets"], rng)
    elapsed = time.perf_counter() - t0
    coll = RRCollection(inst.graph.n)
    coll.add_sets_flat(members, indptr)
    return WORKLOAD["sampler_sets"] / elapsed, coll


def bench_mark_covered(coll: RRCollection) -> float:
    order = np.argsort(-coll.counts)[: WORKLOAD["cover_ops"]]
    t0 = time.perf_counter()
    for v in order:
        coll.mark_covered_by(int(v))
    return time.perf_counter() - t0


def bench_engine(ds, inst, rule: str, selector: str, name: str) -> float:
    engine = TIEngine(
        inst,
        candidate_rule=rule,
        selector=selector,
        eps=WORKLOAD["eps"],
        theta_cap=WORKLOAD["theta_cap"],
        opt_lower=ds.opt_lower_bounds(),
        seed=WORKLOAD["seed"],
        algorithm_name=name,
    )
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def bench_kernels(inst) -> dict:
    """numpy-vs-numba sampler throughput through the kernel seam.

    Both kernels are bit-identical per seed, so this measures pure
    implementation cost.  Without numba installed the "numba" spelling
    runs the same loops *interpreted* (the parity fallback) — orders of
    magnitude slower — so the set count is shrunk and the entry is
    flagged ``numba_available: false`` rather than pretending the JIT
    number was measured.
    """
    sets = WORKLOAD["sampler_sets"] if NUMBA_AVAILABLE else 2_000
    out = {"numba_available": NUMBA_AVAILABLE, "sets": sets}
    for kernel in ("numpy", "numba"):
        backend = make_backend(inst.graph, inst.ad_probs[0], "serial", kernel=kernel)
        backend.sample_batch_flat(200, np.random.default_rng(0))  # warm/JIT
        t0 = time.perf_counter()
        backend.sample_batch_flat(sets, np.random.default_rng(123))
        rate = sets / (time.perf_counter() - t0)
        out[kernel] = {"sampler_sets_per_s": round(rate, 1)}
    out["numba"]["interpreted_fallback"] = not NUMBA_AVAILABLE
    return out


def run_benchmarks() -> dict:
    ds, inst = _build()
    sets_per_s, coll = bench_sampler(inst)
    cover_s = bench_mark_covered(coll)
    kernels = bench_kernels(inst)
    csrm_s = bench_engine(ds, inst, "cs", "rate", "TI-CSRM")
    carm_s = bench_engine(ds, inst, "ca", "revenue", "TI-CARM")
    current = {
        "sampler_sets_per_s": round(sets_per_s, 1),
        "mark_covered_s_per_200": round(cover_s, 5),
        "ticsrm_run_s": round(csrm_s, 4),
        "ticarm_run_s": round(carm_s, 4),
    }
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": WORKLOAD,
        "seed_baseline": SEED_BASELINE,
        "current": current,
        "kernels": kernels,
        "speedup_vs_seed": {
            "sampler": round(
                current["sampler_sets_per_s"] / SEED_BASELINE["sampler_sets_per_s"], 2
            ),
            "mark_covered_by": round(
                SEED_BASELINE["mark_covered_s_per_200"]
                / max(current["mark_covered_s_per_200"], 1e-9),
                2,
            ),
            "ticsrm_end_to_end": round(
                SEED_BASELINE["ticsrm_run_s"] / max(current["ticsrm_run_s"], 1e-9), 2
            ),
        },
    }
    return report


def bench_parallel_scaling(inst) -> dict:
    """Serial-vs-parallel sampler throughput over the backend seam.

    Warms each backend before timing (pool spin-up and allocator noise
    are not sampler throughput).  Records one curve point per entry of
    ``WORKER_CURVE`` plus the serial reference, with the host core
    count, so the scaling claim is always read against the hardware it
    ran on.
    """
    graph, probs = inst.graph, inst.ad_probs[0]
    count = WORKLOAD["sampler_sets"]

    serial = SerialBackend(graph, probs)
    serial.sample_batch_flat(2_000, np.random.default_rng(0))  # warm
    t0 = time.perf_counter()
    serial.sample_batch_flat(count, np.random.default_rng(123))
    serial_rate = count / (time.perf_counter() - t0)

    curve = []
    for workers in WORKER_CURVE:
        with ParallelBackend(graph, probs, workers=workers) as backend:
            backend.sample_batch_flat(2_000, np.random.default_rng(0))  # warm
            t0 = time.perf_counter()
            backend.sample_batch_flat(count, np.random.default_rng(123))
            rate = count / (time.perf_counter() - t0)
        curve.append(
            {
                "workers": workers,
                "sampler_sets_per_s": round(rate, 1),
                "speedup_vs_serial": round(rate / serial_rate, 2),
            }
        )
    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "workload": WORKLOAD,
        "serial_sets_per_s": round(serial_rate, 1),
        "curve": curve,
        "note": (
            "speedup_vs_serial scales with physical cores; on a "
            "single-core host workers >= 2 time-slice one CPU and land "
            "below 1.0 by construction"
        ),
    }


def save_report(report: dict) -> None:
    # Appends to the trajectory — never overwrites recorded history
    # (legacy single-report files are wrapped in place).
    append_entry(RESULT_PATH, report)


def save_parallel_report(report: dict) -> None:
    append_entry(PARALLEL_RESULT_PATH, report)


def test_perf_hotpaths():
    """The benchmark completes and produces a well-formed trajectory report."""
    report = run_benchmarks()
    save_report(report)
    print(json.dumps(report, indent=2))
    assert report["current"]["sampler_sets_per_s"] > 0
    assert report["current"]["ticsrm_run_s"] > 0
    assert set(report["speedup_vs_seed"]) == {
        "sampler",
        "mark_covered_by",
        "ticsrm_end_to_end",
    }
    kernels = report["kernels"]
    assert kernels["numpy"]["sampler_sets_per_s"] > 0
    assert kernels["numba"]["sampler_sets_per_s"] > 0
    assert kernels["numba"]["interpreted_fallback"] == (
        not kernels["numba_available"]
    )


def test_parallel_scaling():
    """The scaling curve completes and is well-formed (structure only —
    the speedup ratio is a property of the host's core count)."""
    _, inst = _build()
    report = bench_parallel_scaling(inst)
    save_parallel_report(report)
    print(json.dumps(report, indent=2))
    assert report["serial_sets_per_s"] > 0
    assert [p["workers"] for p in report["curve"]] == list(WORKER_CURVE)
    assert all(p["sampler_sets_per_s"] > 0 for p in report["curve"])
    assert report["meta"]["cpu_count"] >= 1


if __name__ == "__main__":
    report = run_benchmarks()
    save_report(report)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {RESULT_PATH}")
    parallel_report = bench_parallel_scaling(_build()[1])
    save_parallel_report(parallel_report)
    print(json.dumps(parallel_report, indent=2))
    print(f"\nwrote {PARALLEL_RESULT_PATH}")
