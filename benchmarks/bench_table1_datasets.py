"""Table 1: dataset statistics of the four synthetic analogs.

Paper values (crawled graphs): FLIXSTER 30K/425K directed, EPINIONS
76K/509K directed, DBLP 317K/1.05M undirected, LIVEJOURNAL 4.8M/69M
directed.  The analogs reproduce the *type* column exactly and the
size ratios at reduced scale.
"""

from repro.experiments.reporting import format_table, save_report
from repro.experiments.tables import table1_rows

from benchmarks.conftest import run_once


def test_table1(benchmark, flixster, epinions, dblp, livejournal):
    rows = run_once(
        benchmark, table1_rows, [flixster, epinions, dblp, livejournal]
    )
    text = format_table(rows)
    print("\n== Table 1: dataset statistics ==\n" + text)
    save_report("table1_datasets", text)
    assert len(rows) == 4
    by_name = {r["dataset"]: r for r in rows}
    assert by_name["dblp_syn"]["type"] == "undirected"
    assert by_name["flixster_syn"]["type"] == "directed"
    assert by_name["livejournal_syn"]["type"] == "directed"
    # Size ordering mirrors the paper: flixster < epinions < dblp < lj.
    sizes = [r["#nodes"] for r in rows]
    assert sizes == sorted(sizes)
