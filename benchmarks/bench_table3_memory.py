"""Table 3: memory usage of TI-CARM / TI-CSRM as h grows.

Paper shape (GB of process memory at full scale): memory grows linearly
in h, and TI-CSRM needs more than TI-CARM — typically 20–40% more on
LIVEJOURNAL — because its cost-sensitive seeding certifies larger seed
set sizes, hence larger ``L(s, ε)`` RR samples.  The reproduced quantity
is the analytically tracked RR storage in MB (DESIGN.md §4), measured on
analogs small enough that the honest Eq.-8 sample sizes stay below the
θ cap (a binding cap would equalize the two algorithms by construction).
"""

from dataclasses import replace

import pytest

from repro.experiments.reporting import format_table, save_report
from repro.experiments.tables import table3_rows

from benchmarks.conftest import FULL, run_once

H_VALUES = (1, 5, 10, 15, 20) if FULL else (1, 3, 6)


def test_table3_memory(benchmark, dblp_small, livejournal_small, bench_config):
    config = replace(bench_config, theta_cap=40_000)
    rows = run_once(
        benchmark,
        table3_rows,
        [dblp_small, livejournal_small],
        config=config,
        h_values=H_VALUES,
    )
    text = format_table(rows)
    print("\n== Table 3: RR-collection memory (MB) vs h ==\n" + text)
    save_report("table3_memory", text)

    columns = [f"h={h} (MB)" for h in H_VALUES]
    for row in rows:
        values = [row[c] for c in columns]
        # Memory grows with h...
        assert values == sorted(values)
        # ...with a stabilizing per-ad slope (the paper's linear regime):
        # compare the per-ad memory between the middle and last h.
        mid_slope = values[1] / H_VALUES[1]
        last_slope = values[-1] / H_VALUES[-1]
        assert last_slope <= 3.0 * mid_slope
    # TI-CSRM uses at least as much memory as TI-CARM per dataset.
    by_ds: dict = {}
    for row in rows:
        by_ds.setdefault(row["dataset"], {})[row["algorithm"]] = row[columns[-1]]
    for dataset, values in by_ds.items():
        assert values["TI-CSRM"] >= 0.95 * values["TI-CARM"], dataset
