"""Extension bench: hard competition in propagation (future work iii).

Re-prices TI-CSRM allocations under the competitive multi-ad cascade
model (each user engages with at most one ad) and compares against the
independent-cascade revenue the RM objective optimizes.  Expected shape:
competitive revenue is below the independent Monte-Carlo revenue in a
fully competitive marketplace (every engagement an ad loses was captured
by a rival), and the loss shrinks when ads live in disjoint topical
markets.
"""

import numpy as np

from repro.diffusion.competitive import estimate_competitive_revenue
from repro.diffusion.montecarlo import estimate_spread
from repro.experiments.harness import run_algorithm
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once


def _revenues(dataset, config, alpha):
    instance = dataset.build_instance("linear", alpha)
    result = run_algorithm("TI-CSRM", dataset, instance, config)
    seed_sets = result.allocation.seed_sets()
    rng = np.random.default_rng(0)
    independent = sum(
        instance.cpe(i)
        * estimate_spread(instance.graph, instance.ad_probs[i], seeds, n_runs=120, rng=rng)
        for i, seeds in enumerate(seed_sets)
        if seeds
    )
    competitive = sum(
        estimate_competitive_revenue(instance, seed_sets, n_runs=120, rng=rng)
    )
    return {
        "dataset": dataset.name,
        "alpha": alpha,
        "independent_mc": independent,
        "competitive_mc": competitive,
        "retained_pct": 100.0 * competitive / max(independent, 1e-9),
        "seeds": result.total_seeds,
    }


def test_competitive_repricing(benchmark, epinions, flixster, bench_config):
    rows = run_once(
        benchmark,
        lambda: [
            _revenues(epinions, bench_config, 1.0),
            _revenues(flixster, bench_config, 1.0),
        ],
    )
    text = format_table(rows)
    print("\n== Extension: revenue under hard competition ==\n" + text)
    save_report("ext_competition", text)

    by_ds = {r["dataset"]: r for r in rows}
    # Fully competitive marketplace (epinions analog: all ads share
    # probabilities): hard competition must cost revenue.
    assert by_ds["epinions_syn"]["competitive_mc"] <= by_ds["epinions_syn"][
        "independent_mc"
    ] * 1.02
    # Segmented pairs (flixster analog) retain at least as much of their
    # independent revenue as the fully competitive marketplace.
    assert (
        by_ds["flixster_syn"]["retained_pct"]
        >= by_ds["epinions_syn"]["retained_pct"] - 5.0
    )
