"""Figure 2: total revenue vs α — 4 incentive models × 2 quality analogs.

Paper shape being reproduced:

* TI-CSRM achieves the highest revenue in every panel once incentives
  are a real share of the budget, with the margin growing in α
  (EPINIONS linear α=0.5: +15.3% over TI-CARM, +24.3% over PageRank-RR,
  +27.6% over PageRank-GR; superlinear: +25.2/25.8/18.1%);
* under constant incentives TI-CARM and TI-CSRM coincide exactly;
* revenue decreases as α grows (incentives eat the budget).

Absolute revenues differ (scaled-down analogs, capped θ — DESIGN.md §4);
the orderings and trends are the claim under test.
"""

import pytest

from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import cached_alpha_sweep, run_once


def _pivot(rows, value_key):
    """(model, alpha) x algorithm pivot for printing."""
    table = {}
    for row in rows:
        key = (row["incentives"], row["alpha"])
        table.setdefault(key, {})[row["algorithm"]] = row[value_key]
    out = []
    for (model, alpha), values in table.items():
        out.append({"incentives": model, "alpha": alpha, **values})
    return out


@pytest.mark.parametrize("dataset_name", ["flixster", "epinions"])
def test_fig2_revenue_vs_alpha(benchmark, dataset_name, request, bench_config):
    dataset = request.getfixturevalue(dataset_name)
    rows = run_once(benchmark, cached_alpha_sweep, dataset, bench_config)
    pivot = _pivot(rows, "revenue")
    text = format_table(pivot)
    print(f"\n== Figure 2: total revenue vs alpha ({dataset.name}) ==\n" + text)
    save_report(f"fig2_revenue_{dataset.name}", text)

    # Shape assertions.
    by_cell = {(r["incentives"], r["alpha"], r["algorithm"]): r for r in rows}
    models = sorted({r["incentives"] for r in rows})
    for model in models:
        alphas = sorted({r["alpha"] for r in rows if r["incentives"] == model})
        # (1) constant model nullifies cost-sensitivity: CARM ~ CSRM.
        # (Exact equality holds per ad; across h=10 ads the two selectors
        # break cross-ad ties differently, so allow a 2% tolerance.)
        if model == "constant":
            for alpha in alphas:
                a = by_cell[(model, alpha, "TI-CARM")]["revenue"]
                b = by_cell[(model, alpha, "TI-CSRM")]["revenue"]
                assert a == pytest.approx(b, rel=0.02)
        # (2) at the largest alpha, TI-CSRM leads or ties every baseline.
        top_alpha = alphas[-1]
        csrm = by_cell[(model, top_alpha, "TI-CSRM")]["revenue"]
        for other in ("TI-CARM", "PageRank-GR", "PageRank-RR"):
            assert csrm >= 0.95 * by_cell[(model, top_alpha, other)]["revenue"], (
                f"{dataset.name}/{model}: TI-CSRM not leading at alpha={top_alpha}"
            )
        # (3) revenue decreases (weakly) from the smallest to largest alpha.
        lo = by_cell[(model, alphas[0], "TI-CSRM")]["revenue"]
        hi = by_cell[(model, alphas[-1], "TI-CSRM")]["revenue"]
        assert hi <= lo * 1.05
