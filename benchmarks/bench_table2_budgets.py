"""Table 2: advertiser budgets and cost-per-engagement values.

Paper regime: budgets span ~2–3× across advertisers (FLIXSTER mean
10.1K in [6K, 20K]; EPINIONS mean 8.5K in [6K, 12K]) with CPEs in
[1, 2] (mean 1.5).  The analogs reproduce the CPE support exactly and
the relative budget spread at the analogs' scale.
"""

from repro.experiments.reporting import format_table, save_report
from repro.experiments.tables import table2_rows

from benchmarks.conftest import run_once


def test_table2(benchmark, flixster, epinions):
    rows = run_once(benchmark, table2_rows, [flixster, epinions])
    text = format_table(rows)
    print("\n== Table 2: budgets and CPEs ==\n" + text)
    save_report("table2_budgets", text)
    for row in rows:
        assert 1.0 <= row["cpe min"] <= row["cpe mean"] <= row["cpe max"] <= 2.0
        # Budget spread: max within ~4x of min (paper: 2-3.3x).
        assert row["budget max"] <= 4.5 * row["budget min"]
