"""Figure 3: total seeding cost vs α — same grid as Figure 2.

Paper shape: TI-CSRM consistently pays the lowest total seed incentives
across every α and incentive model; in the superlinear model the gap
reaches orders of magnitude (the paper plots it on a log axis).
"""

import pytest

from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import cached_alpha_sweep, run_once


@pytest.mark.parametrize("dataset_name", ["flixster", "epinions"])
def test_fig3_seeding_cost_vs_alpha(benchmark, dataset_name, request, bench_config):
    dataset = request.getfixturevalue(dataset_name)
    rows = run_once(benchmark, cached_alpha_sweep, dataset, bench_config)
    pivot = {}
    for row in rows:
        key = (row["incentives"], row["alpha"])
        pivot.setdefault(key, {})[row["algorithm"]] = row["seed_cost"]
    out = [
        {"incentives": model, "alpha": alpha, **values}
        for (model, alpha), values in pivot.items()
    ]
    text = format_table(out)
    print(f"\n== Figure 3: total seeding cost vs alpha ({dataset.name}) ==\n" + text)
    save_report(f"fig3_seedcost_{dataset.name}", text)

    # Shape: TI-CSRM's seeding cost is the lowest in every cell.
    for (model, alpha), values in pivot.items():
        csrm = values["TI-CSRM"]
        for other in ("TI-CARM", "PageRank-GR", "PageRank-RR"):
            assert csrm <= values[other] + 1e-6, (
                f"{dataset.name}/{model}/alpha={alpha}: "
                f"TI-CSRM cost {csrm} above {other} {values[other]}"
            )

    # Shape: superlinear model shows the largest CARM/CSRM cost ratio.
    ratios = {}
    for (model, alpha), values in pivot.items():
        if values["TI-CSRM"] > 0:
            ratios.setdefault(model, []).append(
                values["TI-CARM"] / values["TI-CSRM"]
            )
    if "superlinear" in ratios and "linear" in ratios:
        assert max(ratios["superlinear"]) >= max(ratios["linear"])
