"""Extension bench: the online adaptive setting (future work iv).

Runs the same campaign budget through 1-window (one-shot) and 4-window
adaptive plans, realizing cascades between windows, and compares total
*realized* revenue.  The adaptive host observes each window's outcome:
engaged users are frozen (they cannot re-engage or be re-seeded) and the
remaining budget rolls forward, letting later windows correct for
over- or under-performance of the earlier cascades.
"""

from repro.core.adaptive import run_adaptive_campaign
from repro.experiments.reporting import format_table, save_report

from benchmarks.conftest import run_once

PLANNER = dict(eps=0.5, theta_cap=1_500)


def _campaigns(dataset):
    instance = dataset.build_instance("linear", 1.0)
    planner = dict(PLANNER, opt_lower=dataset.opt_lower_bounds())
    rows = []
    for n_windows, split in ((1, "all"), (2, "even"), (4, "even")):
        result = run_adaptive_campaign(
            instance,
            n_windows=n_windows,
            planner_kwargs=planner,
            budget_split=split,
            seed=17,
        )
        total_seeds = sum(
            len(s) for w in result.windows for s in w.seeds_per_ad
        )
        rows.append(
            {
                "dataset": dataset.name,
                "windows": n_windows,
                "realized_revenue": result.total_revenue,
                "windows_used": len(result.windows),
                "seeds": total_seeds,
            }
        )
    return rows


def test_adaptive_campaign(benchmark, epinions):
    rows = run_once(benchmark, _campaigns, epinions)
    text = format_table(rows)
    print("\n== Extension: adaptive multi-window campaigns ==\n" + text)
    save_report("ext_adaptive", text)

    assert all(r["realized_revenue"] > 0 for r in rows)
    # More windows never plan more seeds than users (sanity) and the
    # realized revenue stays within the campaign's value range.
    for r in rows:
        assert r["seeds"] <= epinions.graph.n
        assert r["windows_used"] <= r["windows"]
    # Observing outcomes between windows should not hurt: the best
    # adaptive plan earns at least ~the one-shot plan.
    one_shot = rows[0]["realized_revenue"]
    assert max(r["realized_revenue"] for r in rows[1:]) >= 0.85 * one_shot
