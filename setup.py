"""Packaging metadata for the ``repro`` reproduction package.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail; keeping all
metadata in classic ``setup.py`` form lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
the ``setup.py develop`` path.

Extras:

* ``test``  — the test toolchain (pytest + hypothesis property suites);
* ``numba`` — the optional JIT batch kernel (``kernel="numba"`` /
  ``"auto"``).  The package imports and runs without it; the kernel
  seam falls back to the bit-identical numpy reference
  (``repro.rrset.kernels``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-rm-incentivized",
    version="1.2.0",
    description=(
        "Reproduction of 'Revenue Maximization in Incentivized Social "
        "Advertising' (Aslay, Bonchi, Lakshmanan & Lu, VLDB 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6"],
        "numba": ["numba>=0.59"],
    },
)
