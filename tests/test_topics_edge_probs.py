"""Tests for topic-aware edge probability models (Eq. 1)."""

import numpy as np
import pytest

from repro.errors import TopicModelError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, star
from repro.topics.distribution import TopicDistribution, single_topic, uniform_distribution
from repro.topics.edge_probs import (
    TICModel,
    random_tic_model,
    trivalency,
    uniform_probabilities,
    weighted_cascade,
    weighted_cascade_capped,
)


class TestTICModel:
    def test_eq1_mixture(self):
        g = DiGraph.from_edge_list([(0, 1), (1, 2)], n=3)
        tensor = np.array([[0.2, 0.4], [0.6, 0.0]])
        model = TICModel(g, tensor)
        gamma = TopicDistribution([0.5, 0.5])
        assert np.allclose(model.ad_probabilities(gamma), [0.4, 0.2])

    def test_point_mass_selects_topic_row(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        model = TICModel(g, np.array([[0.3], [0.9]]))
        assert model.ad_probabilities(single_topic(2, 1))[0] == pytest.approx(0.9)

    def test_shape_validation(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        with pytest.raises(TopicModelError):
            TICModel(g, np.zeros((2, 5)))

    def test_range_validation(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        with pytest.raises(TopicModelError):
            TICModel(g, np.array([[1.5]]))

    def test_topic_count_mismatch(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        model = TICModel(g, np.zeros((2, 1)))
        with pytest.raises(TopicModelError):
            model.ad_probabilities(uniform_distribution(3))

    def test_topic_probabilities_accessor(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        model = TICModel(g, np.array([[0.3], [0.9]]))
        assert model.topic_probabilities(0)[0] == pytest.approx(0.3)
        with pytest.raises(TopicModelError):
            model.topic_probabilities(2)


class TestWeightedCascade:
    def test_probability_is_inverse_indegree(self):
        g = DiGraph.from_edge_list([(0, 2), (1, 2), (0, 1)], n=3)
        probs = weighted_cascade(g)
        tails, heads = g.edge_array()
        for p, h in zip(probs, heads):
            assert p == pytest.approx(1.0 / g.in_degrees()[h])

    def test_capped_variant(self):
        g = star(3)  # leaves have indegree 1 -> pure WC gives p = 1
        assert weighted_cascade(g).max() == pytest.approx(1.0)
        assert weighted_cascade_capped(g, cap=0.2).max() == pytest.approx(0.2)

    def test_cap_validation(self):
        g = star(3)
        with pytest.raises(TopicModelError):
            weighted_cascade_capped(g, cap=0.0)


class TestOtherModels:
    def test_uniform(self):
        g = star(4)
        assert np.allclose(uniform_probabilities(g, 0.15), 0.15)

    def test_uniform_range_check(self):
        with pytest.raises(TopicModelError):
            uniform_probabilities(star(2), 1.4)

    def test_trivalency_levels_only(self):
        g = erdos_renyi(40, 0.2, seed=1)
        probs = trivalency(g, seed=2)
        assert set(np.round(probs, 6)) <= {0.1, 0.01, 0.001}

    def test_trivalency_level_validation(self):
        with pytest.raises(TopicModelError):
            trivalency(star(2), levels=(2.0,))


class TestRandomTICModel:
    def test_shape_and_range(self):
        g = erdos_renyi(50, 0.15, seed=3)
        model = random_tic_model(g, n_topics=5, seed=4)
        assert model.tensor.shape == (5, g.m)
        assert model.tensor.min() >= 0.0
        assert model.tensor.max() <= 1.0

    def test_topic_heterogeneity(self):
        g = erdos_renyi(80, 0.15, seed=5)
        model = random_tic_model(g, n_topics=8, seed=6)
        # Different topics should induce genuinely different ad vectors.
        p0 = model.ad_probabilities(single_topic(8, 0))
        p1 = model.ad_probabilities(single_topic(8, 1))
        assert not np.allclose(p0, p1)

    def test_rejects_zero_topics(self):
        with pytest.raises(TopicModelError):
            random_tic_model(star(3), 0)
