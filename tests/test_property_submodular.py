"""Property-based tests (hypothesis) for the submodular toolkit.

These pin down the invariants the paper's theory leans on: coverage
functions are monotone submodular, modular functions have zero curvature,
and the curvature chain of Iyer et al. holds for arbitrary instances.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.submodular.checks import (
    average_curvature,
    is_monotone,
    is_submodular,
    set_curvature,
    total_curvature,
)
from repro.submodular.functions import (
    CoverageFunction,
    ModularFunction,
    ScaledFunction,
    SumFunction,
)

# Strategy: a random cover map over <= 6 elements and <= 8 items.
covers = st.dictionaries(
    keys=st.integers(0, 5),
    values=st.frozensets(st.integers(0, 7), max_size=5),
    min_size=1,
    max_size=6,
)

weightings = st.dictionaries(
    keys=st.integers(0, 5),
    values=st.floats(0.0, 10.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(covers)
def test_coverage_monotone_and_submodular(cover):
    f = CoverageFunction(cover)
    assert is_monotone(f)
    assert is_submodular(f)


@settings(max_examples=40, deadline=None)
@given(weightings)
def test_modular_zero_curvature(weights):
    f = ModularFunction(weights)
    assert total_curvature(f) <= 1e-7
    assert is_monotone(f)
    assert is_submodular(f)


@settings(max_examples=40, deadline=None)
@given(covers, st.floats(0.1, 5.0))
def test_scaling_preserves_curvature(cover, scale):
    f = CoverageFunction(cover)
    g = ScaledFunction(f, scale)
    assert abs(total_curvature(g) - total_curvature(f)) <= 1e-9


@settings(max_examples=40, deadline=None)
@given(covers, st.integers(0, 2**6 - 1))
def test_curvature_chain(cover, mask):
    """0 <= avg-curvature(S) <= curvature(S) <= total curvature <= 1."""
    f = CoverageFunction(cover)
    elements = sorted(f.ground_set)
    subset = {e for k, e in enumerate(elements) if mask >> k & 1}
    k_hat = average_curvature(f, subset)
    k_s = set_curvature(f, subset)
    k_total = total_curvature(f)
    assert -1e-9 <= k_hat <= k_s + 1e-9
    assert k_s <= k_total + 1e-9
    assert k_total <= 1.0


@settings(max_examples=40, deadline=None)
@given(covers, weightings)
def test_sum_of_monotone_submodular_is_monotone_submodular(cover, weights):
    """pi + c stays monotone submodular (the payment-function argument)."""
    ground = set(cover) | set(weights)
    full_cover = {x: cover.get(x, frozenset()) for x in ground}
    full_weights = {x: weights.get(x, 0.0) for x in ground}
    rho = SumFunction([CoverageFunction(full_cover), ModularFunction(full_weights)])
    assert is_monotone(rho)
    assert is_submodular(rho)


@settings(max_examples=40, deadline=None)
@given(covers)
def test_marginals_consistent_with_values(cover):
    f = CoverageFunction(cover)
    elements = sorted(f.ground_set)
    subset = frozenset(elements[: len(elements) // 2])
    for x in elements:
        if x in subset:
            assert f.marginal(x, subset) == 0.0
        else:
            assert f.marginal(x, subset) == f(subset | {x}) - f(subset)
