"""Tests for the declarative scenario-grid runner."""

import json

import pytest

from repro.errors import SpecError
from repro.experiments.grid import (
    GridCell,
    GridSpec,
    clear_grid_caches,
    grid_table_rows,
    load_manifest,
    run_grid,
)

SMOKE = {
    "name": "smoke",
    "datasets": [
        {"name": "epinions_syn", "n": 120, "h": 2, "singleton_rr_samples": 400}
    ],
    "algorithms": ["TI-CSRM", "TI-CARM"],
    "alphas": [0.5, 1.0],
    "seed": 11,
    "config": {"eps": 1.0, "theta_cap": 120},
}


def _strip(row: dict) -> dict:
    return {k: v for k, v in row.items() if k != "runtime_s"}


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_grid_caches()
    yield
    clear_grid_caches()


class TestGridSpec:
    def test_from_dict_round_trips(self):
        spec = GridSpec.from_dict(SMOKE)
        assert GridSpec.from_dict(spec.to_dict()) == spec

    def test_from_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMOKE))
        assert GridSpec.from_json(str(path)).name == "smoke"

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(SpecError, match="unknown spec keys"):
            GridSpec.from_dict({**SMOKE, "frobnicate": 1})

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SpecError, match="unknown algorithm"):
            GridSpec.from_dict({**SMOKE, "algorithms": ["MAGIC"]})

    def test_unknown_incentive_model_rejected(self):
        with pytest.raises(SpecError, match="incentive"):
            GridSpec.from_dict({**SMOKE, "incentive_models": ["quadratic"]})

    def test_unknown_config_key_rejected(self):
        with pytest.raises(SpecError, match="config"):
            GridSpec.from_dict({**SMOKE, "config": {"nope": 1}})

    def test_dataset_entry_needs_name_or_path(self):
        with pytest.raises(SpecError):
            GridSpec.from_dict({**SMOKE, "datasets": [{"n": 10}]})

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="invalid JSON"):
            GridSpec.from_json(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            GridSpec.from_json(str(tmp_path / "nope.json"))

    def test_cell_cross_product(self):
        spec = GridSpec.from_dict(SMOKE)
        cells = spec.cells()
        assert len(cells) == 4  # 1 dataset x 2 algorithms x 2 alphas
        assert len({cell.cell_id for cell in cells}) == 4

    def test_cell_seed_depends_on_root_and_cell(self):
        spec = GridSpec.from_dict(SMOKE)
        cells = spec.cells()
        seeds = [cell.seed(spec.seed) for cell in cells]
        assert len(set(seeds)) == len(seeds)
        assert [cell.seed(spec.seed) for cell in cells] == seeds  # stable
        assert cells[0].seed(spec.seed + 1) != seeds[0]

    def test_cell_id_order_independent(self):
        # A cell's identity (and thus its seed) does not change when the
        # spec's axes are reordered — only its parameters matter.
        spec_a = GridSpec.from_dict(SMOKE)
        spec_b = GridSpec.from_dict({**SMOKE, "alphas": [1.0, 0.5]})
        ids_a = {cell.cell_id for cell in spec_a.cells()}
        ids_b = {cell.cell_id for cell in spec_b.cells()}
        assert ids_a == ids_b

    def test_committed_specs_parse(self):
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parent.parent / "specs"
        for name in ("smoke.json", "smoke_warm.json", "fig5.json"):
            spec = GridSpec.from_json(str(specs_dir / name))
            assert spec.cells()
        warm = GridSpec.from_json(str(specs_dir / "smoke_warm.json"))
        assert warm.execution_mode == "warm_per_dataset"


class TestRunGrid:
    def test_deterministic_across_runs(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        rows1 = run_grid(spec, str(tmp_path / "m1.jsonl"))
        rows2 = run_grid(spec, str(tmp_path / "m2.jsonl"))
        assert [_strip(r) for r in rows1] == [_strip(r) for r in rows2]

    def test_resume_skips_completed_cells(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(spec, manifest)
        before = open(manifest).read()
        resumed = run_grid(spec, manifest)
        assert open(manifest).read() == before  # nothing re-ran
        assert [_strip(r) for r in resumed] == [_strip(r) for r in rows]

    def test_partial_manifest_resumes_to_same_results(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(spec, manifest)
        lines = open(manifest).read().strip().split("\n")
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w") as fh:
            fh.write("\n".join(lines[:2]) + "\n")
        resumed = run_grid(spec, partial)
        assert [_strip(r) for r in resumed] == [_strip(r) for r in rows]
        header, cells = load_manifest(partial)
        assert header["spec_key"] == spec.spec_key()
        assert len(cells) == len(spec.cells())

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(spec, manifest)
        content = open(manifest).read().strip().split("\n")
        with open(manifest, "w") as fh:
            fh.write("\n".join(content[:-1]) + "\n")
            fh.write(content[-1][: len(content[-1]) // 2])  # killed mid-write
        resumed = run_grid(spec, manifest)
        assert [_strip(r) for r in resumed] == [_strip(r) for r in rows]

    def test_edited_spec_rejected_on_resume(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        run_grid(spec, manifest)
        edited = GridSpec.from_dict({**SMOKE, "alphas": [0.5]})
        with pytest.raises(SpecError, match="spec changed"):
            run_grid(edited, manifest)

    def test_headerless_manifest_rejected_on_resume(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        run_grid(spec, manifest)
        lines = open(manifest).read().strip().split("\n")
        with open(manifest, "w") as fh:
            fh.write("\n".join(lines[1:]) + "\n")  # header line lost
        with pytest.raises(SpecError, match="no readable header"):
            run_grid(spec, manifest)

    def test_empty_existing_manifest_starts_fresh(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = tmp_path / "m.jsonl"
        manifest.write_text("")
        rows = run_grid(spec, str(manifest))
        header, cells = load_manifest(str(manifest))
        assert header is not None and len(cells) == len(rows)

    def test_different_config_rejected_on_resume(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        run_grid(spec, manifest)
        with pytest.raises(SpecError, match="config"):
            run_grid(spec, manifest, config_overrides={"eps": 0.9})

    def test_fresh_overwrites(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        run_grid(spec, manifest)
        rows = run_grid(spec, manifest, resume=False)
        header, cells = load_manifest(manifest)
        assert len(cells) == len(rows) == len(spec.cells())

    def test_progress_callback(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        seen = []
        run_grid(
            spec,
            str(tmp_path / "m.jsonl"),
            progress=lambda done, total, row: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_overrides_axes_reach_the_instance(self, tmp_path):
        spec = GridSpec.from_dict(
            {
                **SMOKE,
                "algorithms": ["TI-CSRM"],
                "alphas": [0.5],
                "h": [3],
                "budgets": [40.0],
                "cpes": [2.0],
                "windows": [50],
            }
        )
        (row,) = run_grid(spec, str(tmp_path / "m.jsonl"))
        assert row["h"] == 3 and row["budget"] == 40.0 and row["cpe"] == 2.0
        assert row["window"] == 50
        assert row["revenue"] > 0

    def test_grid_table_rows_flatten(self, tmp_path):
        spec = GridSpec.from_dict(SMOKE)
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        table = grid_table_rows(rows)
        assert len(table) == 4
        assert table[0]["dataset"] == "epinions_syn"
        assert "dataset_spec" not in table[0] and "cell_id" not in table[0]
        assert table[0]["h"] == "-"  # unset axes render as dashes


class TestEngineKnobsThroughGrid:
    """Satellite: share_samples / lazy_candidates are grid-pinnable."""

    def test_two_cell_grid_pins_share_and_lazy(self, tmp_path):
        spec = GridSpec.from_dict(
            {
                **SMOKE,
                "algorithms": ["TI-CSRM", "TI-CARM"],
                "alphas": [0.5],
                "config": {
                    "eps": 1.0,
                    "theta_cap": 120,
                    "share_samples": True,
                    "lazy_candidates": False,
                },
            }
        )
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        assert len(rows) == 2
        for row in rows:
            assert row["engine_spec"]["share_samples"] is True
            assert row["engine_spec"]["lazy_candidates"] is False
            assert row["revenue"] >= 0

    def test_resume_across_config_field_additions(self, tmp_path):
        """Manifests written before a config field existed stay resumable
        when the current value equals the field's default."""
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        first = run_grid(spec, manifest)
        # Simulate an old manifest: drop the new keys from the header.
        lines = open(manifest).read().splitlines()
        header = json.loads(lines[0])
        for key in ("share_samples", "lazy_candidates"):
            del header["config"][key]
        lines[0] = json.dumps(header, sort_keys=True)
        open(manifest, "w").write("\n".join(lines) + "\n")
        resumed = run_grid(spec, manifest)  # all cells load, none re-run
        assert [_strip(r) for r in resumed] == [_strip(r) for r in first]
        # A non-default current value is still a real mismatch.
        with pytest.raises(SpecError):
            run_grid(spec, manifest,
                     config_overrides={"lazy_candidates": False})

    def test_lazy_and_eager_cells_agree(self, tmp_path):
        """Lazy candidate caching is exact (bit-identical allocations),
        now checkable end-to-end through the grid layer."""
        base = {**SMOKE, "algorithms": ["TI-CSRM"], "alphas": [1.0]}
        lazy_spec = GridSpec.from_dict(base)
        eager_spec = GridSpec.from_dict(
            {**base, "config": {**base["config"], "lazy_candidates": False}}
        )
        (lazy_row,) = run_grid(lazy_spec, str(tmp_path / "lazy.jsonl"))
        (eager_row,) = run_grid(eager_spec, str(tmp_path / "eager.jsonl"))
        assert lazy_row["revenue"] == eager_row["revenue"]
        assert lazy_row["seeds"] == eager_row["seeds"]


class TestEdgeListCells:
    def test_edge_list_dataset_entry(self, tmp_path):
        from repro.graph.generators import erdos_renyi
        from repro.graph.io import save_edge_list

        graph = erdos_renyi(50, 0.08, seed=6)
        path = tmp_path / "el.txt"
        save_edge_list(graph, str(path))
        spec = GridSpec.from_dict(
            {
                "name": "el",
                "datasets": [
                    {
                        "path": str(path),
                        "name": "el",
                        "prob_model": "wc",
                        "h": 2,
                        "seed": 5,
                    }
                ],
                "algorithms": ["TI-CARM"],
                "alphas": [0.5],
                "config": {"eps": 1.0, "theta_cap": 100},
            }
        )
        rows1 = run_grid(spec, str(tmp_path / "m1.jsonl"))
        clear_grid_caches()
        rows2 = run_grid(spec, str(tmp_path / "m2.jsonl"))
        assert [_strip(r) for r in rows1] == [_strip(r) for r in rows2]
        assert rows1[0]["dataset"] == "el"


class TestGridCell:
    def test_params_include_all_axes(self):
        cell = GridCell(
            dataset={"name": "epinions_syn"},
            algorithm="TI-CSRM",
            h=5,
            budget=10.0,
            cpe=1.5,
            incentive_model="linear",
            alpha=0.5,
            window=100,
        )
        params = cell.params()
        assert params["dataset"] == "epinions_syn"
        assert params["h"] == 5 and params["window"] == 100
        assert len(cell.cell_id) == 16
