"""Tests for competitive multi-ad propagation (future work iii)."""

import numpy as np
import pytest

from repro.diffusion.competitive import (
    estimate_competitive_revenue,
    estimate_competitive_spreads,
    simulate_competitive_cascades,
)
from repro.diffusion.montecarlo import estimate_spread
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from tests.conftest import make_tiny_instance


class TestSimulation:
    def test_single_ad_reduces_to_ic(self, path_graph):
        probs = np.ones(path_graph.m)
        winner = simulate_competitive_cascades(path_graph, [probs], [[0]], rng=0)
        assert (winner == 0).all()

    def test_no_seeds_no_engagement(self, path_graph):
        probs = np.ones(path_graph.m)
        winner = simulate_competitive_cascades(path_graph, [probs, probs], [[], []], rng=0)
        assert (winner == -1).all()

    def test_seeds_engage_their_own_ad(self, path_graph):
        probs = np.zeros(path_graph.m)
        winner = simulate_competitive_cascades(
            path_graph, [probs, probs], [[0], [2]], rng=0
        )
        assert winner[0] == 0 and winner[2] == 1
        assert winner[1] == -1 and winner[3] == -1

    def test_users_engage_at_most_one_ad(self, diamond_graph, rng):
        probs = np.ones(diamond_graph.m)
        for _ in range(20):
            winner = simulate_competitive_cascades(
                diamond_graph, [probs, probs], [[1], [2]], rng
            )
            # Node 3 is reachable from both seeds but engages exactly once.
            assert winner[3] in (0, 1)

    def test_simultaneous_arrival_tie_split(self, diamond_graph, rng):
        probs = np.ones(diamond_graph.m)
        wins = [0, 0]
        for _ in range(400):
            winner = simulate_competitive_cascades(
                diamond_graph, [probs, probs], [[1], [2]], rng
            )
            wins[winner[3]] += 1
        # Deterministic arcs: node 3 is claimed by both at step 1; the
        # uniform tie-break should split roughly evenly.
        assert 120 < wins[0] < 280

    def test_blocking_changes_reach(self, path_graph, rng):
        # Ad 1 seeded at node 1 blocks ad 0's chain 0 -> 1 -> 2 -> 3.
        probs = np.ones(path_graph.m)
        winner = simulate_competitive_cascades(
            path_graph, [probs, probs], [[0], [1]], rng
        )
        assert winner[0] == 0
        assert winner[1] == 1
        assert winner[2] == 1 and winner[3] == 1  # downstream captured by ad 1

    def test_disjointness_enforced(self, path_graph):
        probs = np.ones(path_graph.m)
        with pytest.raises(EstimationError):
            simulate_competitive_cascades(path_graph, [probs, probs], [[0], [0]])

    def test_shape_validation(self, path_graph):
        with pytest.raises(EstimationError):
            simulate_competitive_cascades(path_graph, [np.ones(2)], [[0]])
        with pytest.raises(EstimationError):
            simulate_competitive_cascades(path_graph, [np.ones(path_graph.m)], [[0], [1]])


class TestEstimates:
    def test_single_ad_matches_independent_mc(self):
        g = erdos_renyi(25, 0.15, seed=1)
        probs = np.full(g.m, 0.4)
        seeds = [0, 3]
        competitive = estimate_competitive_spreads(g, [probs], [seeds], n_runs=1500, rng=2)
        independent = estimate_spread(g, probs, seeds, n_runs=1500, rng=3)
        assert competitive[0] == pytest.approx(independent, rel=0.1)

    def test_competition_never_exceeds_independent(self):
        g = erdos_renyi(30, 0.2, seed=4)
        probs = np.full(g.m, 0.5)
        sets = [[0, 1], [2, 3]]
        comp = estimate_competitive_spreads(g, [probs, probs], sets, n_runs=600, rng=5)
        for ad, seeds in enumerate(sets):
            indep = estimate_spread(g, probs, seeds, n_runs=600, rng=6 + ad)
            assert comp[ad] <= indep * 1.1  # competition only removes audience

    def test_total_engagements_bounded_by_n(self):
        g = erdos_renyi(30, 0.3, seed=7)
        probs = np.full(g.m, 0.6)
        comp = estimate_competitive_spreads(
            g, [probs, probs], [[0, 1], [2, 3]], n_runs=200, rng=8
        )
        assert comp.sum() <= g.n

    def test_revenue_applies_cpe(self):
        inst = make_tiny_instance(probs_value=1.0, cpes=(2.0, 1.0))
        revenue = estimate_competitive_revenue(inst, [[0], [3]], n_runs=50, rng=9)
        # Chains are disjoint: ad 0 gets 3 engagements at cpe 2, ad 1 gets 2 at cpe 1.
        assert revenue[0] == pytest.approx(6.0)
        assert revenue[1] == pytest.approx(2.0)

    def test_run_validation(self, path_graph):
        with pytest.raises(EstimationError):
            estimate_competitive_spreads(
                path_graph, [np.ones(path_graph.m)], [[0]], n_runs=0
            )
