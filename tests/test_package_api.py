"""The public API surface: everything advertised in __all__ must exist,
be documented, and the module docstring's quickstart must be honest."""

import inspect

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"

    def test_public_callables_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                assert inspect.getdoc(obj), f"{name} lacks a docstring"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert inspect.getdoc(obj), f"class {name} lacks a docstring"

    def test_submodules_documented(self):
        import repro.core
        import repro.diffusion
        import repro.experiments
        import repro.graph
        import repro.incentives
        import repro.rrset
        import repro.submodular
        import repro.topics

        for module in (
            repro,
            repro.core,
            repro.diffusion,
            repro.experiments,
            repro.graph,
            repro.incentives,
            repro.rrset,
            repro.submodular,
            repro.topics,
        ):
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_algorithms_share_result_type(self):
        from repro.core.allocation import AllocationResult

        instance, _ = repro.tightness_instance()
        oracle = repro.ExactOracle(instance)
        assert isinstance(repro.ca_greedy(instance, oracle), AllocationResult)
        assert isinstance(repro.cs_greedy(instance, oracle), AllocationResult)
