"""Parallel-vs-serial parity for the sampler backend seam.

Covers the RNG-stream contract of ``repro.rrset.backend``:

* ``SerialBackend`` is bit-identical to the bare ``RRSampler``;
* ``ParallelBackend(workers=1)`` is bit-identical to serial;
* parallel output is reproducible for a fixed ``(seed, workers)`` pair;
* the pool's shard merge equals a single-process run of the same shard
  plan (hypothesis-generated graphs);
* the seam threads through the engine, the static oracle and the
  singleton-spread pricer without changing semantics.

The worker count for the cross-process tests honours
``REPRO_TEST_WORKERS`` (default 2) so CI can pin it explicitly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_configuration
from repro.rrset.backend import (
    ParallelBackend,
    SerialBackend,
    SharedGraphPool,
    default_workers,
    make_backend,
    merge_shards,
    resolve_backend,
    shard_counts,
)
from repro.rrset.sampler import RRSampler, sample_batch_flat_kernel

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2") or 2)


@pytest.fixture(scope="module")
def mid_graph():
    g = powerlaw_configuration(400, mean_degree=6.0, exponent=2.2, seed=5)
    probs = np.random.default_rng(5).random(g.m) * 0.3
    return g, probs


@pytest.fixture(scope="module")
def shared_pool(mid_graph):
    g, _ = mid_graph
    pool = SharedGraphPool(g, WORKERS)
    yield pool
    pool.close()


def graphs(max_n: int = 12):
    """Hypothesis strategy: small random digraphs with edge probabilities."""

    @st.composite
    def _graph(draw):
        n = draw(st.integers(min_value=2, max_value=max_n))
        m = draw(st.integers(min_value=0, max_value=3 * n))
        pairs = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] != e[1]),
                min_size=m,
                max_size=m,
            )
        )
        g = DiGraph.from_edge_list(pairs, n=n)
        probs = draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False),
                min_size=g.m,
                max_size=g.m,
            )
        )
        return g, np.asarray(probs, dtype=np.float64)

    return _graph()


class TestShardPlan:
    def test_shard_counts_balanced_and_exhaustive(self):
        assert shard_counts(10, 4) == [3, 3, 2, 2]
        assert shard_counts(2, 4) == [1, 1]
        assert shard_counts(0, 3) == []
        assert sum(shard_counts(1234, 7)) == 1234

    def test_shard_counts_rejects_bad_shards(self):
        with pytest.raises(EstimationError):
            shard_counts(5, 0)

    def test_merge_shards_roundtrip(self):
        parts = [
            (np.array([1, 2, 3], dtype=np.int64), np.array([0, 2, 3], dtype=np.int64)),
            (np.array([], dtype=np.int64), np.array([0, 0], dtype=np.int64)),
            (np.array([7], dtype=np.int64), np.array([0, 1], dtype=np.int64)),
        ]
        members, indptr = merge_shards(parts)
        assert members.tolist() == [1, 2, 3, 7]
        assert indptr.tolist() == [0, 2, 3, 3, 4]

    def test_merge_shards_empty(self):
        members, indptr = merge_shards([])
        assert members.size == 0 and indptr.tolist() == [0]


class TestSerialBitIdentity:
    def test_serial_backend_matches_bare_sampler(self, mid_graph):
        g, probs = mid_graph
        a = SerialBackend(g, probs).sample_batch_flat(300, np.random.default_rng(9))
        b = RRSampler(g, probs).sample_batch_flat(300, np.random.default_rng(9))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_workers_1_bit_identical_to_serial(self, mid_graph):
        g, probs = mid_graph
        serial = SerialBackend(g, probs).sample_batch_flat(
            300, np.random.default_rng(17)
        )
        with ParallelBackend(g, probs, workers=1) as backend:
            par = backend.sample_batch_flat(300, np.random.default_rng(17))
        assert np.array_equal(serial[0], par[0])
        assert np.array_equal(serial[1], par[1])

    def test_workers_1_widths_bit_identical(self, mid_graph):
        g, probs = mid_graph
        serial = SerialBackend(g, probs).sample_batch_widths(
            100, np.random.default_rng(3)
        )
        with ParallelBackend(g, probs, workers=1) as backend:
            par = backend.sample_batch_widths(100, np.random.default_rng(3))
        assert np.array_equal(serial, par)


class TestParallelParity:
    def test_same_seed_same_workers_reproducible(self, mid_graph, shared_pool):
        g, probs = mid_graph
        backend = ParallelBackend(g, probs, pool=shared_pool)
        a = backend.sample_batch_flat(500, np.random.default_rng(21))
        b = backend.sample_batch_flat(500, np.random.default_rng(21))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_pool_merge_equals_single_process_plan(self, mid_graph, shared_pool):
        """The pooled result must equal running the identical shard plan
        (same shard sizes, same spawned SeedSequences) in-process."""
        g, probs = mid_graph
        backend = ParallelBackend(g, probs, pool=shared_pool)
        count = 500
        pooled = backend.sample_batch_flat(count, np.random.default_rng(33))

        rng = np.random.default_rng(33)
        counts = shard_counts(count, shared_pool.workers)
        root = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
        sampler = RRSampler(g, probs)
        parts = [
            sample_batch_flat_kernel(
                g.n,
                g.in_indptr,
                g.in_tails,
                sampler.probs_in,
                c,
                np.random.default_rng(seq),
            )
            for c, seq in zip(counts, root.spawn(len(counts)))
        ]
        ref = merge_shards(parts)
        assert np.array_equal(pooled[0], ref[0])
        assert np.array_equal(pooled[1], ref[1])

    def test_parallel_output_is_valid_csr(self, mid_graph, shared_pool):
        g, probs = mid_graph
        backend = ParallelBackend(g, probs, pool=shared_pool)
        members, indptr = backend.sample_batch_flat(257, np.random.default_rng(2))
        assert indptr.size == 258 and indptr[0] == 0
        assert indptr[-1] == members.size
        assert np.all(np.diff(indptr) >= 1)  # every set contains its root
        assert members.min() >= 0 and members.max() < g.n

    def test_count_zero_and_negative(self, mid_graph, shared_pool):
        g, probs = mid_graph
        backend = ParallelBackend(g, probs, pool=shared_pool)
        members, indptr = backend.sample_batch_flat(0, np.random.default_rng(1))
        assert members.size == 0 and indptr.tolist() == [0]
        with pytest.raises(EstimationError):
            backend.sample_batch_flat(-1)

    def test_count_smaller_than_workers(self, mid_graph, shared_pool):
        g, probs = mid_graph
        backend = ParallelBackend(g, probs, pool=shared_pool)
        members, indptr = backend.sample_batch_flat(1, np.random.default_rng(4))
        assert indptr.size == 2 and indptr[-1] == members.size >= 1

    def test_spread_estimates_agree_statistically(self, mid_graph, shared_pool):
        """Parallel draws a different stream but the same distribution:
        mean set size over a large batch must agree with serial."""
        g, probs = mid_graph
        serial = SerialBackend(g, probs)
        parallel = ParallelBackend(g, probs, pool=shared_pool)
        ms, is_ = serial.sample_batch_flat(4000, np.random.default_rng(8))
        mp_, ip_ = parallel.sample_batch_flat(4000, np.random.default_rng(8))
        mean_s = ms.size / 4000
        mean_p = mp_.size / 4000
        assert mean_p == pytest.approx(mean_s, rel=0.15)


@settings(max_examples=12, deadline=None)
@given(data=graphs())
def test_hypothesis_shard_plan_equivalence(data):
    """On arbitrary small graphs, running any shard plan in-process and
    merging equals one serial run per shard — the invariant the pool
    relies on (no cross-shard state, merge is pure offset arithmetic)."""
    g, probs = data
    sampler = RRSampler(g, probs)
    root = np.random.SeedSequence(99)
    counts = shard_counts(23, 4)
    parts = [
        sample_batch_flat_kernel(
            g.n,
            g.in_indptr,
            g.in_tails,
            sampler.probs_in,
            c,
            np.random.default_rng(seq),
        )
        for c, seq in zip(counts, root.spawn(len(counts)))
    ]
    members, indptr = merge_shards(parts)
    # CSR well-formedness
    assert indptr[0] == 0 and indptr[-1] == members.size
    assert indptr.size == 24
    sizes = np.diff(indptr)
    assert np.all(sizes >= 1)
    # Per-shard slices survive the merge byte for byte.
    offset_sets = 0
    for part_members, part_indptr in parts:
        k = part_indptr.size - 1
        lo = indptr[offset_sets]
        hi = indptr[offset_sets + k]
        assert np.array_equal(members[lo:hi], part_members)
        offset_sets += k
    # Every member id is a valid node.
    if members.size:
        assert members.min() >= 0 and members.max() < g.n


class TestResolveBackend:
    def test_serial_defaults(self):
        assert resolve_backend("serial", None) == ("serial", None)
        assert resolve_backend("serial", 0) == ("serial", None)
        assert resolve_backend("serial", 1) == ("serial", None)

    def test_workers_upgrade_serial(self):
        assert resolve_backend("serial", 2) == ("parallel", 2)

    def test_parallel_defaults_to_cpu_count(self):
        assert resolve_backend("parallel", None) == ("parallel", default_workers())
        assert resolve_backend("parallel", 0) == ("parallel", default_workers())
        assert resolve_backend("parallel", 3) == ("parallel", 3)

    def test_rejects_bad_specs(self):
        with pytest.raises(EstimationError):
            resolve_backend("turbo", None)
        with pytest.raises(EstimationError):
            resolve_backend("parallel", -1)

    def test_engine_accepts_parallel_workers_0(self, mid_graph):
        """The config default workers=0 must mean 'backend default', not
        crash (regression: the engine used to pass 0 straight through)."""
        from repro.core.instance import RMInstance
        from repro.core.ads import Advertiser
        from repro.core.ticsrm import ti_csrm

        g, probs = mid_graph
        ads = [Advertiser(index=0, cpe=1.0, budget=40.0)]
        inst = RMInstance(g, ads, [probs], [np.full(g.n, 1.0)])
        result = ti_csrm(
            inst,
            eps=0.6,
            theta_cap=300,
            opt_lower=5.0,
            seed=2,
            sampler_backend="parallel",
            workers=0,
        )
        assert result.extras["sampler_backend"] == "parallel"
        assert result.extras["workers"] == default_workers()

    def test_oracle_parallel_without_workers_shares_one_pool(self, mid_graph):
        """backend='parallel' with workers unset must resolve once and
        not leak a private pool per ad (regression)."""
        from repro.core.instance import RMInstance
        from repro.core.ads import Advertiser
        from repro.core.oracles import RRStaticOracle

        g, probs = mid_graph
        ads = [Advertiser(index=i, cpe=1.0, budget=40.0) for i in range(3)]
        inst = RMInstance(g, ads, [probs] * 3, [np.full(g.n, 1.0)] * 3)
        oracle = RRStaticOracle(inst, n_samples=500, seed=1, backend="parallel")
        assert oracle.spread(0, [0, 1]) > 0


class TestFactoryAndLifecycle:
    def test_make_backend_specs(self, mid_graph):
        g, probs = mid_graph
        assert isinstance(make_backend(g, probs), SerialBackend)
        assert isinstance(make_backend(g, probs, "serial"), SerialBackend)
        b = make_backend(g, probs, "serial", workers=WORKERS)
        try:
            assert isinstance(b, ParallelBackend)  # workers > 1 upgrades
        finally:
            b.close()
        with pytest.raises(EstimationError):
            make_backend(g, probs, "turbo")

    def test_pool_rejects_foreign_graph(self, mid_graph, shared_pool):
        other = powerlaw_configuration(50, mean_degree=4.0, exponent=2.3, seed=1)
        probs = np.full(other.m, 0.2)
        with pytest.raises(EstimationError):
            ParallelBackend(other, probs, pool=shared_pool)

    def test_pool_close_is_idempotent_and_final(self, mid_graph):
        g, probs = mid_graph
        pool = SharedGraphPool(g, WORKERS)
        backend = ParallelBackend(g, probs, pool=pool)
        backend.sample_batch_flat(10, np.random.default_rng(0))
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(EstimationError):
            backend.sample_batch_flat(10, np.random.default_rng(0))

    def test_backend_close_raises_on_use(self, mid_graph):
        """A closed backend must raise, not silently fall back to the
        serial stream (regression)."""
        g, probs = mid_graph
        for workers in (1, WORKERS):
            backend = ParallelBackend(g, probs, workers=workers)
            backend.sample_batch_flat(5, np.random.default_rng(0))
            backend.close()
            backend.close()  # idempotent
            with pytest.raises(EstimationError):
                backend.sample_batch_flat(5, np.random.default_rng(0))

    def test_probs_registration_dedups(self, mid_graph, shared_pool):
        _, probs = mid_graph
        name1 = shared_pool.register_probs(probs)
        name2 = shared_pool.register_probs(probs.copy())
        assert name1 == name2

    def test_probs_shape_validated(self, mid_graph, shared_pool):
        with pytest.raises(EstimationError):
            shared_pool.register_probs(np.array([0.5]))


class TestSeamConsumers:
    def test_engine_parallel_deterministic_and_valid(self, mid_graph):
        from repro.core.instance import RMInstance
        from repro.core.ads import Advertiser
        from repro.core.ticsrm import ti_csrm

        g, probs = mid_graph
        ads = [Advertiser(index=i, cpe=1.0, budget=60.0) for i in range(2)]
        inst = RMInstance(g, ads, [probs] * 2, [np.full(g.n, 1.0)] * 2)
        kw = dict(eps=0.6, theta_cap=400, opt_lower=5.0, seed=13)
        a = ti_csrm(inst, sampler_backend="parallel", workers=WORKERS, **kw)
        b = ti_csrm(inst, sampler_backend="parallel", workers=WORKERS, **kw)
        for i in range(2):
            assert a.allocation.seeds(i) == b.allocation.seeds(i)
        assert a.extras["sampler_backend"] == "parallel"
        assert a.extras["workers"] == WORKERS

    def test_engine_workers_1_matches_serial(self, mid_graph):
        from repro.core.instance import RMInstance
        from repro.core.ads import Advertiser
        from repro.core.ticarm import ti_carm

        g, probs = mid_graph
        ads = [Advertiser(index=i, cpe=1.0, budget=60.0) for i in range(2)]
        inst = RMInstance(g, ads, [probs] * 2, [np.full(g.n, 1.0)] * 2)
        kw = dict(eps=0.6, theta_cap=400, opt_lower=5.0, seed=13)
        serial = ti_carm(inst, **kw)
        par1 = ti_carm(inst, sampler_backend="parallel", workers=1, **kw)
        for i in range(2):
            assert serial.allocation.seeds(i) == par1.allocation.seeds(i)
        assert serial.revenue_per_ad == par1.revenue_per_ad

    def test_singleton_spreads_backend_param(self, mid_graph, shared_pool):
        from repro.diffusion.montecarlo import estimate_singleton_spreads_rr

        g, probs = mid_graph
        serial_default = estimate_singleton_spreads_rr(
            g, probs, n_samples=2000, rng=np.random.default_rng(6)
        )
        serial_explicit = estimate_singleton_spreads_rr(
            g,
            probs,
            n_samples=2000,
            rng=np.random.default_rng(6),
            backend=SerialBackend(g, probs),
        )
        assert np.array_equal(serial_default, serial_explicit)
        parallel = estimate_singleton_spreads_rr(
            g,
            probs,
            n_samples=2000,
            rng=np.random.default_rng(6),
            backend=ParallelBackend(g, probs, pool=shared_pool),
        )
        # Different stream, same estimand: close in aggregate.
        assert parallel.mean() == pytest.approx(serial_default.mean(), rel=0.2)

    def test_rr_static_oracle_backend_parity(self, mid_graph):
        from repro.core.instance import RMInstance
        from repro.core.ads import Advertiser
        from repro.core.oracles import RRStaticOracle

        g, probs = mid_graph
        ads = [Advertiser(index=0, cpe=1.0, budget=50.0)]
        inst = RMInstance(g, ads, [probs], [np.full(g.n, 1.0)])
        serial = RRStaticOracle(inst, n_samples=1500, seed=4)
        par1 = RRStaticOracle(inst, n_samples=1500, seed=4, backend="parallel", workers=1)
        seeds = [0, 1, 2]
        assert serial.spread(0, seeds) == par1.spread(0, seeds)
        par = RRStaticOracle(
            inst, n_samples=1500, seed=4, backend="parallel", workers=WORKERS
        )
        assert par.spread(0, seeds) == pytest.approx(serial.spread(0, seeds), rel=0.25)

    def test_cli_workers_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--dataset",
                "epinions_syn",
                "--algorithm",
                "TI-CSRM",
                "--n",
                "300",
                "--h",
                "2",
                "--theta-cap",
                "300",
                "--workers",
                str(WORKERS),
            ]
        )
        assert code == 0
        assert "TI-CSRM" in capsys.readouterr().out
