"""Differential/property layer for incremental RR maintenance (§14).

The dynamic-graph tentpole claims that
:meth:`AllocationSession.apply_edge_updates` keeps a warm store
*correct under change*: invalidation is edge-precise, resampling is
root-preserving and touches only the invalidated fraction, and the
maintained store is statistically indistinguishable from a cold
resample — bit-identical wherever the stream contract makes that
possible.  This suite locks each claim:

* **Precision & recall of invalidation** (hypothesis sweeps): every
  invalidated set really contains a changed head (it "would not have
  been valid"), and every surviving set's recorded reverse BFS replays
  identically on the new graph — each member's full in-arc slice
  (tails *and* probabilities) is unchanged, which by the touched-edge
  theorem (coins are flipped on exactly the in-arcs of members) means
  re-running the traversal reproduces the set verbatim.
* **Exactly-the-invalidated-fraction resampling**, asserted through
  ``session.stats`` deltas (the acceptance criterion).
* **Bit-identity** where the documented streams allow it: survivors of
  a pure probability-decrease batch match a same-seed cold store
  slot-for-slot; an update batch touching no stored set leaves the
  store bit-identical to a cold same-seed resample on the *new* graph;
  and the whole incremental pipeline is deterministic per seed.
* **Cold-vs-incremental allocation parity** on seeded TI-CSRM /
  TI-CARM runs, within CI tolerance.
* **Golden seeded allocations** for the mutated path across
  kernel × backend × spill.
* **Mutation-in-flight faults**: a worker killed during the
  invalidation resample recovers bit-identically; the ``mutate.delay``
  seam fires once per resample batch and never on a no-op update.
* **Spill → invalidate → query**: the inverted index and
  ``sets_containing`` stay consistent with membership after a memmap
  spill followed by a partial ``replace_sets``.

The CI dynamic-parity job runs this file on both kernel legs
(``REPRO_TEST_KERNEL`` parametrizes nothing here directly — the golden
class sweeps kernels explicitly, and the kernels are bit-identical per
seed, so every other test covers both legs by construction).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AllocationSession, EngineSpec, solve
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.faults import FaultPlan, FaultRule, fault_plan
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.updates import (
    UPDATE_OPS,
    compile_updates,
    random_update_batch,
)
from repro.rrset.collection import SharedRRStore
from repro.rrset.sampler import RRSampler

SPEC = EngineSpec(
    eps=1.0, theta_cap=200, opt_lower="kpt", kpt_max_samples=150, seed=13
)


def _instance(graph: DiGraph, probs=None, h: int = 2, budgets=(8.0, 8.0)):
    """An h-ad instance whose ads share one probability vector (one store)."""
    if probs is None:
        probs = np.full(graph.m, 0.3)
    probs = np.asarray(probs, dtype=np.float64)
    advertisers = [
        Advertiser(index=i, cpe=1.0, budget=float(budgets[i])) for i in range(h)
    ]
    incentives = [np.linspace(0.5, 1.5, graph.n) for _ in range(h)]
    return RMInstance(graph, advertisers, [probs] * h, incentives)


def _er_instance(n=80, p=0.06, seed=5):
    graph = erdos_renyi(n, p, seed=seed)
    probs = np.random.default_rng(seed + 1).random(graph.m) * 0.5
    return graph, _instance(graph, probs=probs)


def _single_store(session: AllocationSession):
    (group,) = session._warm.stores.values()
    return group.store


def _snapshot(store) -> list[np.ndarray]:
    return [np.asarray(store.set_members(k), dtype=np.int64).copy()
            for k in range(store.size)]


def _in_slices(graph: DiGraph, probs: np.ndarray, node: int):
    """(tails, probs) of *node*'s in-arcs, sorted by tail — the exact
    coin record the reverse BFS consults when it expands *node*."""
    probs_in = np.asarray(probs, dtype=np.float64)[graph.in_edge_ids]
    lo, hi = int(graph.in_indptr[node]), int(graph.in_indptr[node + 1])
    tails = np.asarray(graph.in_tails[lo:hi], dtype=np.int64)
    slice_probs = probs_in[lo:hi]
    order = np.argsort(tails, kind="stable")
    return tails[order], slice_probs[order]


def _batch_for(graph: DiGraph, seed: int, size: int):
    ops = UPDATE_OPS if graph.m else ("insert",)
    return random_update_batch(
        graph, np.random.default_rng(seed), size, ops=ops, prob=0.25
    )


# ----------------------------------------------------------------------
# 1. Invalidation precision & recall (hypothesis property sweeps)
# ----------------------------------------------------------------------
class TestInvalidationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        gseed=st.integers(0, 10**6),
        useed=st.integers(0, 10**6),
        size=st.integers(1, 10),
    )
    def test_precision_recall_and_root_preservation(self, gseed, useed, size):
        """(a) every survivor replays verbatim on the new graph,
        (b) no invalidated set would have been valid, and the pinned-root
        resample keeps every recorded root and every survivor's bits."""
        graph = erdos_renyi(18, 0.15, seed=gseed)
        probs = np.random.default_rng(gseed + 1).random(graph.m) * 0.8
        sampler = RRSampler(graph, probs)
        members, indptr = sampler.sample_batch_flat(
            40, np.random.default_rng(gseed + 2)
        )
        store = SharedRRStore(graph.n)
        store.extend_flat(members, indptr)
        old_sets = _snapshot(store)
        old_roots = store.roots().copy()

        batch = _batch_for(graph, useed, size)
        plan = compile_updates(graph, batch)
        heads = plan.changed_heads(probs)
        invalid = store.sets_touching(heads)
        invalid_ids = set(invalid.tolist())
        head_set = set(heads.tolist())
        new_probs = plan.apply_probs(probs)

        for sid in range(store.size):
            touched = bool(head_set & set(old_sets[sid].tolist()))
            if sid in invalid_ids:
                # (b) precision: an invalidated set really contains a
                # changed head — its traversal flipped a changed coin.
                assert touched
            else:
                assert not touched
                # (a) recall / replay: each member's in-arc record
                # (tails and probabilities) is identical on the new
                # graph, so re-running the recorded reverse BFS flips
                # the same coins on the same arcs and reproduces the
                # set verbatim.
                for node in old_sets[sid]:
                    ot, op = _in_slices(graph, probs, int(node))
                    nt, npp = _in_slices(plan.new_graph, new_probs, int(node))
                    np.testing.assert_array_equal(ot, nt)
                    np.testing.assert_array_equal(op, npp)

        # Root-preserving resample: invalidated slots redraw from their
        # recorded roots; survivors and all roots stay bit-identical.
        if invalid.size:
            new_sampler = RRSampler(plan.new_graph, new_probs)
            r_members, r_indptr = new_sampler.sample_batch_flat(
                int(invalid.size),
                np.random.default_rng(useed + 1),
                roots=old_roots[invalid],
            )
            store.replace_sets(invalid, r_members, r_indptr)
        np.testing.assert_array_equal(store.roots(), old_roots)
        for sid in range(store.size):
            if sid not in invalid_ids:
                np.testing.assert_array_equal(
                    store.set_members(sid), old_sets[sid]
                )
            else:
                mem = np.asarray(store.set_members(sid), dtype=np.int64)
                assert mem.size >= 1 and mem[0] == old_roots[sid]
                assert mem.min() >= 0 and mem.max() < graph.n


# ----------------------------------------------------------------------
# 2. Session-level incremental maintenance
# ----------------------------------------------------------------------
class TestSessionIncremental:
    def test_resamples_exactly_the_invalidated_fraction(self):
        """Acceptance criterion: sets_sampled moves by exactly the
        number of invalidated sets, observed through session.stats."""
        graph, inst = _er_instance()
        with AllocationSession(graph, spec=SPEC) as session:
            session.solve(inst)
            store = _single_store(session)
            stored = store.size
            probs = np.asarray(inst.ad_probs[0], dtype=np.float64)
            batch = _batch_for(graph, seed=3, size=6)
            plan = compile_updates(graph, batch)
            expected = store.sets_touching(plan.changed_heads(probs))
            before = session.stats
            report = session.apply_edge_updates(batch)
            after = session.stats

            assert report["invalidated_sets"] == expected.size
            assert report["checked_sets"] == stored
            assert report["graph_epoch"] == 1 == session.graph_epoch
            assert after["invalidated_sets"] == expected.size
            assert after["mutations"] == 1
            assert after["invalidation_rate"] == pytest.approx(
                expected.size / stored
            )
            # Only the invalidated sets were redrawn — nothing else.
            assert (
                after["sets_sampled"] - before["sets_sampled"]
                == expected.size
            )
            assert after["resample_batches"] == (1 if expected.size else 0)

            # The session solves again on the new graph, warm.
            final = _instance(
                session.graph, probs=plan.apply_probs(probs)
            )
            result = session.solve(final)
            assert result.total_revenue >= 0.0

    def test_stale_instance_rejected_after_mutation(self):
        graph, inst = _er_instance(seed=9)
        with AllocationSession(graph, spec=SPEC) as session:
            session.solve(inst)
            session.apply_edge_updates(_batch_for(graph, seed=4, size=3))
            with pytest.raises(Exception, match="different graph"):
                session.solve(inst)

    def test_same_seed_incremental_determinism(self):
        """The whole incremental pipeline is a pure function of
        (graph, spec, seed, updates): two sessions replaying it agree
        bit-for-bit — stores and post-mutation allocations."""
        graph, inst = _er_instance(seed=21)
        batch = _batch_for(graph, seed=8, size=5)

        def run():
            with AllocationSession(graph, spec=SPEC) as session:
                session.solve(inst)
                session.apply_edge_updates(batch)
                store = _single_store(session)
                sets = _snapshot(store)
                probs = np.asarray(inst.ad_probs[0], dtype=np.float64)
                plan = compile_updates(graph, batch)
                final = _instance(session.graph, probs=plan.apply_probs(probs))
                result = session.solve(final)
                return sets, result.allocation.seed_sets(), result.revenue_per_ad

        sets_a, alloc_a, rev_a = run()
        sets_b, alloc_b, rev_b = run()
        assert len(sets_a) == len(sets_b)
        for left, right in zip(sets_a, sets_b):
            np.testing.assert_array_equal(left, right)
        assert alloc_a == alloc_b
        assert rev_a == rev_b

    def test_prob_decrease_survivors_bit_identical_to_cold_store(self):
        """For a pure probability-decrease batch, every surviving slot
        is bit-identical in membership to the same slot of an
        independent same-seed cold store — incremental maintenance
        perturbed nothing it did not resample."""
        graph, inst = _er_instance(seed=33)
        probs = np.asarray(inst.ad_probs[0], dtype=np.float64)
        tails, heads = graph.edge_array()
        arc_ids = [0, graph.m // 2, graph.m - 1]
        batch = [
            ("set_prob", int(tails[e]), int(heads[e]), float(probs[e]) * 0.5)
            for e in sorted(set(arc_ids))
        ]

        with AllocationSession(graph, spec=SPEC) as cold:
            cold.solve(inst)
            cold_sets = _snapshot(_single_store(cold))

        with AllocationSession(graph, spec=SPEC) as session:
            session.solve(inst)
            store = _single_store(session)
            plan = compile_updates(graph, batch)
            invalid = set(
                store.sets_touching(plan.changed_heads(probs)).tolist()
            )
            report = session.apply_edge_updates(batch)
            assert report["invalidated_sets"] == len(invalid)
            assert store.size == len(cold_sets)
            survivors = 0
            for sid in range(store.size):
                if sid not in invalid:
                    np.testing.assert_array_equal(
                        store.set_members(sid), cold_sets[sid]
                    )
                    survivors += 1
            assert survivors == store.size - len(invalid)

    def test_zero_touch_update_bit_identical_to_cold_resample(self):
        """An update whose changed heads appear in no stored set leaves
        the store bit-identical to a cold same-seed resample on the
        *new* graph: no set ever examines a changed arc, so the two
        kernel runs consume identical streams."""
        graph = erdos_renyi(150, 0.02, seed=44)
        probs = np.random.default_rng(45).random(graph.m) * 0.4
        sampler = RRSampler(graph, probs)
        members, indptr = sampler.sample_batch_flat(
            25, np.random.default_rng(46)
        )
        covered = set(np.unique(members).tolist())
        tails, heads = graph.edge_array()
        arc = next(
            (e for e in range(graph.m) if int(heads[e]) not in covered), None
        )
        assert arc is not None, "graph too dense for a zero-touch arc"
        batch = [
            ("set_prob", int(tails[arc]), int(heads[arc]),
             float(probs[arc]) * 0.5)
        ]
        plan = compile_updates(graph, batch)
        store = SharedRRStore(graph.n)
        store.extend_flat(members, indptr)
        assert store.sets_touching(plan.changed_heads(probs)).size == 0

        cold_sampler = RRSampler(plan.new_graph, plan.apply_probs(probs))
        cold_members, cold_indptr = cold_sampler.sample_batch_flat(
            25, np.random.default_rng(46)
        )
        np.testing.assert_array_equal(members, cold_members)
        np.testing.assert_array_equal(indptr, cold_indptr)


# ----------------------------------------------------------------------
# 3. Cold-vs-incremental allocation parity (TI-CSRM / TI-CARM)
# ----------------------------------------------------------------------
class TestAllocationParity:
    @pytest.mark.parametrize("algorithm", ["TI-CSRM", "TI-CARM"])
    def test_incremental_matches_cold_within_tolerance(self, algorithm):
        """The maintained store and a cold solve on the mutated graph
        are different — equally valid — samples of the same RR
        distribution, so their allocations' revenues must agree within
        the estimators' CI tolerance."""
        graph = erdos_renyi(150, 0.05, seed=7)
        probs = np.random.default_rng(8).random(graph.m) * 0.4
        inst = _instance(graph, probs=probs, budgets=(10.0, 10.0))
        spec = EngineSpec(
            eps=1.0, theta_cap=300, opt_lower="kpt",
            kpt_max_samples=200, seed=17,
        )
        batch = _batch_for(graph, seed=29, size=10)
        plan = compile_updates(graph, batch)
        new_probs = plan.apply_probs(probs)

        with AllocationSession(graph, spec=spec) as session:
            session.solve(inst, algorithm)
            report = session.apply_edge_updates(batch)
            final = _instance(session.graph, probs=new_probs,
                              budgets=(10.0, 10.0))
            incremental = session.solve(final, algorithm)
        cold_inst = _instance(plan.new_graph, probs=new_probs,
                              budgets=(10.0, 10.0))
        cold = solve(cold_inst, algorithm, spec)

        assert report["checked_sets"] > 0
        r_inc = incremental.total_revenue
        r_cold = cold.total_revenue
        assert r_inc >= 0.0 and r_cold >= 0.0
        scale = max(r_inc, r_cold, 1.0)
        assert abs(r_inc - r_cold) <= 0.35 * scale


# ----------------------------------------------------------------------
# 4. Golden seeded allocations: the mutated path across
#    kernel × backend × spill
# ----------------------------------------------------------------------
def _mutated_alloc(**overrides):
    graph, inst = _er_instance(n=90, p=0.05, seed=51)
    probs = np.asarray(inst.ad_probs[0], dtype=np.float64)
    batch = _batch_for(graph, seed=52, size=8)
    spec = SPEC.override(**overrides)
    with AllocationSession(graph, spec=spec) as session:
        session.solve(inst)
        report = session.apply_edge_updates(batch)
        plan = compile_updates(graph, batch)
        final = _instance(session.graph, probs=plan.apply_probs(probs))
        result = session.solve(final)
        return (
            result.allocation.seed_sets(),
            result.revenue_per_ad,
            report,
            session.stats["spilled_stores"],
        )


class TestGoldenMutatedPath:
    @pytest.fixture(scope="class")
    def reference(self):
        return _mutated_alloc(kernel="numpy")

    @pytest.mark.parametrize(
        "overrides, expects_spill",
        [
            ({"kernel": "numba"}, False),
            ({"kernel": "numpy", "rr_bytes_budget": 1}, True),
            ({"kernel": "numba", "rr_bytes_budget": 1}, True),
            # workers == 1 parallel delegates to the serial stream.
            ({"kernel": "numpy", "sampler_backend": "parallel",
              "workers": 1}, False),
        ],
        ids=["numba", "numpy-spill", "numba-spill", "parallel-w1"],
    )
    def test_matches_numpy_serial_golden(
        self, reference, overrides, expects_spill
    ):
        seeds, revenue, report, spilled = _mutated_alloc(**overrides)
        ref_seeds, ref_revenue, ref_report, _ = reference
        assert seeds == ref_seeds
        assert revenue == ref_revenue
        assert report["invalidated_sets"] == ref_report["invalidated_sets"]
        if expects_spill:
            assert spilled >= 1

    @pytest.mark.slow
    def test_parallel_pool_deterministic(self):
        """The real worker pool consumes its own documented shard
        stream; the invariant is per-seed determinism and kernel
        agreement through a mutation, not equality with serial."""
        first = _mutated_alloc(sampler_backend="parallel", workers=2)
        second = _mutated_alloc(sampler_backend="parallel", workers=2)
        numba = _mutated_alloc(
            sampler_backend="parallel", workers=2, kernel="numba"
        )
        assert first[:2] == second[:2] == numba[:2]
        assert first[2]["invalidated_sets"] == second[2]["invalidated_sets"]


# ----------------------------------------------------------------------
# 5. Mutation-in-flight fault injection
# ----------------------------------------------------------------------
class TestMutationFaults:
    def test_mutate_delay_fires_once_per_resample_batch(self):
        graph, inst = _er_instance(seed=61)
        batch = _batch_for(graph, seed=62, size=6)
        plan = FaultPlan([FaultRule(seam="mutate.delay", delay_s=0.0)])
        with AllocationSession(graph, spec=SPEC) as session:
            session.solve(inst)
            with fault_plan(plan):
                report = session.apply_edge_updates(batch)
        assert report["invalidated_sets"] > 0
        stats = plan.stats["mutate.delay"]
        assert stats["arrivals"] == report["resample_batches"] == 1
        assert stats["fired"] == 1

    def test_mutate_delay_never_fires_on_noop_update(self):
        """A set_prob that does not move the family's value invalidates
        nothing, so the seam must not even be reached."""
        graph, inst = _er_instance(seed=63)
        probs = np.asarray(inst.ad_probs[0], dtype=np.float64)
        tails, heads = graph.edge_array()
        batch = [("set_prob", int(tails[0]), int(heads[0]), float(probs[0]))]
        plan = FaultPlan([FaultRule(seam="mutate.delay", delay_s=0.0)])
        with AllocationSession(graph, spec=SPEC) as session:
            session.solve(inst)
            with fault_plan(plan):
                report = session.apply_edge_updates(batch)
        assert report["invalidated_sets"] == 0
        assert report["resample_batches"] == 0
        assert plan.stats.get("mutate.delay", {"arrivals": 0})["arrivals"] == 0

    @pytest.mark.slow
    def test_worker_kill_during_invalidation_resample_recovers(self):
        """A worker killed mid-resample is respawned and its shard
        re-dispatched with the original pinned roots — the maintained
        store and the follow-up allocation are bit-identical to an
        undisturbed run."""
        graph, inst = _er_instance(n=90, p=0.05, seed=71)
        probs = np.asarray(inst.ad_probs[0], dtype=np.float64)
        batch = _batch_for(graph, seed=72, size=8)
        spec = SPEC.override(sampler_backend="parallel", workers=2)

        def run(with_fault: bool):
            with AllocationSession(graph, spec=spec) as session:
                session.solve(inst)
                if with_fault:
                    chaos = FaultPlan([FaultRule(seam="worker.kill", at=0)])
                    with fault_plan(chaos):
                        report = session.apply_edge_updates(batch)
                    assert chaos.stats["worker.kill"]["fired"] == 1
                else:
                    report = session.apply_edge_updates(batch)
                sets = _snapshot(_single_store(session))
                plan = compile_updates(graph, batch)
                final = _instance(session.graph,
                                  probs=plan.apply_probs(probs))
                result = session.solve(final)
                return sets, result.allocation.seed_sets(), report

        clean_sets, clean_alloc, clean_report = run(with_fault=False)
        assert clean_report["invalidated_sets"] > 0
        fault_sets, fault_alloc, fault_report = run(with_fault=True)
        assert len(clean_sets) == len(fault_sets)
        for left, right in zip(clean_sets, fault_sets):
            np.testing.assert_array_equal(left, right)
        assert clean_alloc == fault_alloc
        assert clean_report["invalidated_sets"] == (
            fault_report["invalidated_sets"]
        )


# ----------------------------------------------------------------------
# 6. Spill → invalidate → query regression
# ----------------------------------------------------------------------
class TestSpillInvalidateQuery:
    def test_queries_consistent_after_spill_and_partial_replace(self, tmp_path):
        """The inverted index must be rebuilt against the *rewritten*
        members of a spilled store: sets_containing / sets_touching /
        roots after spill → replace_sets agree with a RAM twin and with
        brute force over set_members."""
        graph = erdos_renyi(40, 0.08, seed=81)
        probs = np.random.default_rng(82).random(graph.m) * 0.6
        sampler = RRSampler(graph, probs)
        members, indptr = sampler.sample_batch_flat(
            60, np.random.default_rng(83)
        )
        spilling = SharedRRStore(
            graph.n, bytes_budget=1, spill_dir=str(tmp_path)
        )
        ram = SharedRRStore(graph.n)
        for store in (spilling, ram):
            store.extend_flat(members, indptr)
        assert spilling.spilled and not ram.spilled
        # Warm the inverted index *before* the replace, so a stale
        # index would be observable if replace_sets failed to drop it.
        spilling.sets_containing(0)
        ram.sets_containing(0)

        heads = np.unique(members)[:5]
        invalid = spilling.sets_touching(heads)
        np.testing.assert_array_equal(invalid, ram.sets_touching(heads))
        assert invalid.size > 0
        roots = spilling.roots()[invalid]
        r_members, r_indptr = RRSampler(graph, probs).sample_batch_flat(
            int(invalid.size), np.random.default_rng(84), roots=roots
        )
        for store in (spilling, ram):
            store.replace_sets(invalid, r_members, r_indptr)
        assert spilling.spilled

        np.testing.assert_array_equal(spilling.roots(), ram.roots())
        brute = {node: [] for node in range(graph.n)}
        for sid in range(ram.size):
            mem = np.asarray(ram.set_members(sid), dtype=np.int64)
            np.testing.assert_array_equal(spilling.set_members(sid), mem)
            for node in np.unique(mem):
                brute[int(node)].append(sid)
        for node in range(graph.n):
            expected = np.asarray(brute[node], dtype=np.int64)
            np.testing.assert_array_equal(
                spilling.sets_containing(node), expected
            )
            np.testing.assert_array_equal(
                ram.sets_containing(node), expected
            )
        spilling.close()
        ram.close()
