"""Tests for the coverage-indexed RR collection (Algorithm 2's engine room)."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.rrset.collection import RRCollection, estimate_spread_from_sets


def sets(*lists):
    return [np.asarray(x, dtype=np.int64) for x in lists]


class TestAddAndCounts:
    def test_counts_reflect_memberships(self):
        c = RRCollection(4)
        c.add_sets(sets([0, 1], [1, 2], [3]))
        assert c.counts.tolist() == [1, 2, 1, 1]
        assert c.theta == 3
        assert c.covered_total == 0

    def test_out_of_range_member_rejected(self):
        c = RRCollection(3)
        with pytest.raises(EstimationError):
            c.add_sets(sets([0, 5]))

    def test_nonpositive_n_rejected(self):
        with pytest.raises(EstimationError):
            RRCollection(0)

    def test_add_with_seeds_absorbs_covered(self):
        c = RRCollection(4)
        absorbed = c.add_sets(sets([0, 1], [2], [0, 3]), seeds=[0])
        assert absorbed == 2
        assert c.covered_total == 2
        # Only the uncovered set [2] contributes counts.
        assert c.counts.tolist() == [0, 0, 1, 0]


class TestCovering:
    def test_mark_covered_decrements_members(self):
        c = RRCollection(4)
        c.add_sets(sets([0, 1], [1, 2], [2, 3]))
        newly = c.mark_covered_by(1)
        assert newly == 2
        assert c.covered_total == 2
        # Sets containing 1 are dead; 2 retains only the third set.
        assert c.counts.tolist() == [0, 0, 1, 1]

    def test_double_cover_no_effect(self):
        c = RRCollection(3)
        c.add_sets(sets([0, 1], [1, 2]))
        c.mark_covered_by(1)
        assert c.mark_covered_by(1) == 0
        assert c.covered_total == 2

    def test_cover_by_disjoint_node(self):
        c = RRCollection(3)
        c.add_sets(sets([0], [1]))
        assert c.mark_covered_by(2) == 0


class TestSelection:
    def test_best_node_max_count(self):
        c = RRCollection(4)
        c.add_sets(sets([0, 1], [1], [1, 2], [3]))
        allowed = np.ones(4, dtype=bool)
        assert c.best_node(allowed) == 1

    def test_best_node_respects_mask(self):
        c = RRCollection(4)
        c.add_sets(sets([0, 1], [1], [1, 2], [3]))
        allowed = np.array([True, False, True, True])
        assert c.best_node(allowed) in (0, 2, 3)

    def test_best_node_empty_mask(self):
        c = RRCollection(3)
        c.add_sets(sets([0]))
        assert c.best_node(np.zeros(3, dtype=bool)) is None

    def test_ratio_selection_prefers_cheap(self):
        c = RRCollection(3)
        c.add_sets(sets([0], [0], [1]))
        costs = np.array([10.0, 1.0, 1.0])
        allowed = np.ones(3, dtype=bool)
        # node 0: 2/10 = 0.2; node 1: 1/1 = 1.0.
        assert c.best_node_by_ratio(costs, allowed) == 1

    def test_ratio_window_restricts_to_top_coverage(self):
        c = RRCollection(3)
        c.add_sets(sets([0], [0], [1]))
        costs = np.array([10.0, 0.1, 0.1])
        allowed = np.ones(3, dtype=bool)
        # Window 1 only considers the top-coverage node (0).
        assert c.best_node_by_ratio(costs, allowed, window=1) == 0
        assert c.best_node_by_ratio(costs, allowed, window=3) == 1

    def test_zero_cost_is_maximally_attractive(self):
        c = RRCollection(2)
        c.add_sets(sets([0], [1], [1]))
        costs = np.array([0.0, 5.0])
        allowed = np.ones(2, dtype=bool)
        assert c.best_node_by_ratio(costs, allowed) == 0


class TestEstimates:
    def test_max_residual_fraction(self):
        c = RRCollection(3)
        c.add_sets(sets([0], [0], [1]))
        allowed = np.ones(3, dtype=bool)
        assert c.max_residual_fraction(allowed) == pytest.approx(2 / 3)
        c.mark_covered_by(0)
        assert c.max_residual_fraction(allowed) == pytest.approx(1 / 3)

    def test_max_residual_fraction_empty(self):
        c = RRCollection(3)
        assert c.max_residual_fraction(np.ones(3, dtype=bool)) == 0.0

    def test_spread_estimate_includes_covered(self):
        c = RRCollection(4)
        c.add_sets(sets([0, 1], [1], [2], [3]))
        c.mark_covered_by(1)
        # F({1}) over ALL sets is 2/4 regardless of covering state.
        assert c.spread_estimate(1) == pytest.approx(4 * 2 / 4)

    def test_spread_estimate_for_sets(self):
        c = RRCollection(4)
        c.add_sets(sets([0, 1], [1], [2], [3]))
        assert c.spread_estimate([2, 3]) == pytest.approx(4 * 2 / 4)

    def test_spread_estimate_empty_collection(self):
        with pytest.raises(EstimationError):
            RRCollection(2).spread_estimate(0)

    def test_standalone_estimator(self):
        rr = sets([0, 1], [2], [0])
        assert estimate_spread_from_sets(rr, [0], 3) == pytest.approx(3 * 2 / 3)
        with pytest.raises(EstimationError):
            estimate_spread_from_sets([], [0], 3)


class TestMemory:
    def test_memory_grows_with_sets(self):
        c = RRCollection(10)
        before = c.memory_bytes()
        c.add_sets(sets([0, 1, 2], [3, 4]))
        assert c.memory_bytes() > before

    def test_memory_counts_members(self):
        c = RRCollection(10)
        c.add_sets(sets([0, 1, 2]))
        # 3 members at the narrowed width + 3 int64 index entries
        # + flags + counts array.
        assert c.members.dtype == np.int16
        assert c.memory_bytes() == 3 * c.members.itemsize + 3 * 8 + 1 + c.counts.nbytes
