"""Tests for RR-set sampling, including unbiasedness against exact spread."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.diffusion.worlds import exact_spread
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.rrset.sampler import RRSampler


class TestSamplerBasics:
    def test_target_always_member(self, path_graph, rng):
        sampler = RRSampler(path_graph, np.full(path_graph.m, 0.5))
        for _ in range(20):
            rr = sampler.sample(rng, target=2)
            assert 2 in rr.tolist()

    def test_zero_probs_give_singletons(self, path_graph, rng):
        sampler = RRSampler(path_graph, np.zeros(path_graph.m))
        for _ in range(10):
            assert sampler.sample(rng).size == 1

    def test_deterministic_graph_full_ancestry(self, path_graph, rng):
        sampler = RRSampler(path_graph, np.ones(path_graph.m))
        rr = sampler.sample(rng, target=3)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_members_unique(self, rng):
        g = erdos_renyi(30, 0.2, seed=1)
        sampler = RRSampler(g, np.full(g.m, 0.5))
        for _ in range(30):
            rr = sampler.sample(rng)
            assert len(set(rr.tolist())) == rr.size

    def test_invalid_target(self, path_graph, rng):
        sampler = RRSampler(path_graph, np.ones(path_graph.m))
        with pytest.raises(EstimationError):
            sampler.sample(rng, target=99)

    def test_probability_validation(self, path_graph):
        with pytest.raises(EstimationError):
            RRSampler(path_graph, np.ones(7))
        with pytest.raises(EstimationError):
            RRSampler(path_graph, np.full(path_graph.m, 1.5))

    def test_empty_graph_rejected(self):
        g = DiGraph(0, [], [])
        with pytest.raises(EstimationError):
            RRSampler(g, np.empty(0)).sample()

    def test_batch_count(self, path_graph, rng):
        sampler = RRSampler(path_graph, np.ones(path_graph.m))
        assert len(sampler.sample_batch(17, rng)) == 17
        with pytest.raises(EstimationError):
            sampler.sample_batch(-1)


class TestWidth:
    def test_width_counts_in_edges_of_members(self, path_graph, rng):
        sampler = RRSampler(path_graph, np.ones(path_graph.m))
        members, width = sampler.sample_with_width(rng)
        # Width = number of arcs into the RR set's members.
        expected = sum(path_graph.in_neighbors(v).size for v in members)
        assert width == expected


class TestUnbiasedness:
    """n * E[S hits R] must equal sigma(S) (Borgs et al.)."""

    @pytest.mark.parametrize("p", [0.2, 0.6])
    def test_singleton_estimate_matches_exact(self, diamond_graph, p):
        probs = np.full(diamond_graph.m, p)
        sampler = RRSampler(diamond_graph, probs)
        rng = np.random.default_rng(42)
        hits = sum(0 in sampler.sample(rng) for _ in range(20000))
        estimate = diamond_graph.n * hits / 20000
        exact = exact_spread(diamond_graph, probs, [0])
        assert estimate == pytest.approx(exact, rel=0.06)

    def test_pair_estimate_matches_exact(self, diamond_graph):
        probs = np.full(diamond_graph.m, 0.5)
        sampler = RRSampler(diamond_graph, probs)
        rng = np.random.default_rng(43)
        seeds = {1, 2}
        hits = sum(
            bool(seeds & set(sampler.sample(rng).tolist())) for _ in range(20000)
        )
        estimate = diamond_graph.n * hits / 20000
        exact = exact_spread(diamond_graph, probs, [1, 2])
        assert estimate == pytest.approx(exact, rel=0.06)

    def test_unbiased_on_random_graph(self):
        g = erdos_renyi(12, 0.25, seed=2)
        # Keep the number of random arcs enumerable for exact_spread.
        probs = np.where(np.arange(g.m) % 3 == 0, 0.5, 0.0)
        if (probs > 0).sum() > 18:
            probs[18 * 3 :] = 0.0
        sampler = RRSampler(g, probs)
        rng = np.random.default_rng(44)
        seeds = [0, 5]
        hits = sum(
            bool(set(seeds) & set(sampler.sample(rng).tolist())) for _ in range(30000)
        )
        estimate = g.n * hits / 30000
        exact = exact_spread(g, probs, seeds)
        assert estimate == pytest.approx(exact, rel=0.08)
