"""Tests for the spread oracles (exact, Monte-Carlo, static RR)."""

import numpy as np
import pytest

from repro.core.oracles import ExactOracle, MonteCarloOracle, RRStaticOracle
from repro.errors import EstimationError
from tests.conftest import make_tiny_instance


class TestExactOracle:
    def test_deterministic_values(self, tiny_instance):
        oracle = ExactOracle(tiny_instance)
        # Graph 0->1->2, 3->4 with p = 1.
        assert oracle.spread(0, {0}) == pytest.approx(3.0)
        assert oracle.spread(0, {3}) == pytest.approx(2.0)
        assert oracle.spread(0, {0, 3}) == pytest.approx(5.0)

    def test_empty_set(self, tiny_instance):
        assert ExactOracle(tiny_instance).spread(0, set()) == 0.0

    def test_bad_ad_index(self, tiny_instance):
        with pytest.raises(EstimationError):
            ExactOracle(tiny_instance).spread(5, {0})

    def test_marginals(self, tiny_instance):
        oracle = ExactOracle(tiny_instance)
        assert oracle.marginal_spread(0, 3, {0}) == pytest.approx(2.0)
        assert oracle.marginal_spread(0, 1, {0}) == pytest.approx(0.0)
        assert oracle.marginal_spread(0, 0, {0}) == 0.0  # already a seed

    def test_revenue_and_payment(self):
        inst = make_tiny_instance(cpes=(2.0, 1.0))
        oracle = ExactOracle(inst)
        assert oracle.revenue(0, {0}) == pytest.approx(6.0)
        # payment = revenue + incentives (linspace 0.5..1.5 over 5 nodes).
        assert oracle.payment(0, {0}) == pytest.approx(6.0 + 0.5)
        assert oracle.marginal_payment(0, 3, {0}) == pytest.approx(
            2.0 * 2.0 + inst.incentive(0, 3)
        )

    def test_total_revenue(self, tiny_instance):
        oracle = ExactOracle(tiny_instance)
        total = oracle.total_revenue([[0], [3]])
        assert total == pytest.approx(3.0 + 2.0)

    def test_cache_hit_consistency(self, tiny_instance):
        oracle = ExactOracle(tiny_instance)
        a = oracle.spread(0, {0, 3})
        b = oracle.spread(0, {3, 0})
        assert a == b


class TestMonteCarloOracle:
    def test_close_to_exact(self):
        inst = make_tiny_instance(probs_value=0.5)
        exact = ExactOracle(inst)
        mc = MonteCarloOracle(inst, n_runs=4000, seed=0)
        for seeds in ({0}, {1}, {0, 3}):
            assert mc.spread(0, seeds) == pytest.approx(
                exact.spread(0, seeds), rel=0.08
            )

    def test_order_independent_estimates(self):
        inst = make_tiny_instance(probs_value=0.5)
        a = MonteCarloOracle(inst, n_runs=50, seed=1)
        b = MonteCarloOracle(inst, n_runs=50, seed=1)
        # Evaluate in different orders; per-query streams must agree.
        a.spread(0, {1})
        va = a.spread(0, {0})
        vb = b.spread(0, {0})
        assert va == vb

    def test_run_validation(self):
        inst = make_tiny_instance()
        with pytest.raises(EstimationError):
            MonteCarloOracle(inst, n_runs=0)

    def test_marginal_clipped_nonnegative(self):
        inst = make_tiny_instance(probs_value=0.5)
        mc = MonteCarloOracle(inst, n_runs=30, seed=2)
        for u in range(inst.n):
            assert mc.marginal_spread(0, u, {0}) >= 0.0


class TestRRStaticOracle:
    def test_close_to_exact(self):
        inst = make_tiny_instance(probs_value=0.5)
        exact = ExactOracle(inst)
        rr = RRStaticOracle(inst, n_samples=30000, seed=3)
        for seeds in ({0}, {2}, {0, 3}):
            assert rr.spread(0, seeds) == pytest.approx(
                exact.spread(0, seeds), rel=0.08
            )

    def test_sample_validation(self):
        with pytest.raises(EstimationError):
            RRStaticOracle(make_tiny_instance(), n_samples=0)

    def test_monotone_in_seeds(self):
        inst = make_tiny_instance(probs_value=0.7)
        rr = RRStaticOracle(inst, n_samples=2000, seed=4)
        assert rr.spread(0, {0, 1}) >= rr.spread(0, {0})
