"""Tests for monotonicity/submodularity checkers and curvature."""

import numpy as np
import pytest

from repro.submodular.checks import (
    average_curvature,
    is_monotone,
    is_submodular,
    set_curvature,
    total_curvature,
)
from repro.submodular.functions import (
    CoverageFunction,
    ModularFunction,
    SetFunction,
    random_coverage_function,
)


class SquareOfSum(SetFunction):
    """Supermodular: f(S) = (sum of weights)^2 — should fail submodularity."""

    def __init__(self, weights):
        super().__init__(weights.keys())
        self.weights = weights

    def evaluate(self, subset):
        return sum(self.weights[x] for x in subset) ** 2


class NonMonotone(SetFunction):
    """|S| * (3 - |S|): rises then falls."""

    def __init__(self, n):
        super().__init__(range(n))

    def evaluate(self, subset):
        k = len(subset)
        return float(k * (3 - k))


class TestCheckers:
    def test_coverage_is_monotone_submodular(self):
        f = CoverageFunction({0: [1, 2], 1: [2, 3], 2: [4]})
        assert is_monotone(f)
        assert is_submodular(f)

    def test_modular_is_monotone_submodular(self):
        f = ModularFunction({0: 1.0, 1: 2.0})
        assert is_monotone(f)
        assert is_submodular(f)

    def test_supermodular_detected(self):
        f = SquareOfSum({0: 1.0, 1: 1.0, 2: 2.0})
        assert not is_submodular(f)

    def test_non_monotone_detected(self):
        f = NonMonotone(5)
        assert not is_monotone(f)

    def test_sampled_mode_on_larger_ground_set(self, rng):
        f = random_coverage_function(20, 15, rng=rng)
        assert is_monotone(f, n_samples=100, rng=1)
        assert is_submodular(f, n_samples=100, rng=2)


class TestCurvature:
    def test_modular_has_zero_curvature(self):
        f = ModularFunction({0: 1.0, 1: 5.0})
        assert total_curvature(f) == 0.0

    def test_full_overlap_has_curvature_one(self):
        # Two elements covering the same item: marginal given the other is 0.
        f = CoverageFunction({0: [9], 1: [9]})
        assert total_curvature(f) == 1.0

    def test_partial_overlap_between(self):
        f = CoverageFunction({0: [1, 2], 1: [2, 3]})
        # f(0 | {1}) = 1, f({0}) = 2 -> ratio 1/2 -> curvature 1/2.
        assert total_curvature(f) == pytest.approx(0.5)

    def test_empty_set_curvature_zero(self):
        f = CoverageFunction({0: [1]})
        assert set_curvature(f, set()) == 0.0
        assert average_curvature(f, set()) == 0.0

    def test_curvature_chain_inequality(self, rng):
        """0 <= avg(S) <= kappa(S) <= kappa(V) <= 1 (Iyer et al.)."""
        for trial in range(10):
            f = random_coverage_function(7, 5, rng=rng)
            elements = list(f.ground_set)
            size = int(rng.integers(1, len(elements)))
            subset = set(rng.choice(elements, size=size, replace=False).tolist())
            k_hat = average_curvature(f, subset)
            k_s = set_curvature(f, subset)
            k_total = total_curvature(f)
            assert 0.0 <= k_hat <= k_s + 1e-9
            assert k_s <= k_total + 1e-9
            assert k_total <= 1.0

    def test_zero_value_elements_skipped(self):
        f = CoverageFunction({0: [], 1: [5]})
        # Element 0 contributes nothing; curvature determined by element 1.
        assert total_curvature(f) == 0.0
