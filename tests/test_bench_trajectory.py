"""Append-only BENCH_*.json trajectory helper (benchmarks/trajectory.py)."""

from __future__ import annotations

import json

import pytest

from benchmarks.trajectory import TrajectoryError, append_entry, load_trajectory


class TestAppendEntry:
    def test_fresh_file_starts_a_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        entries = append_entry(path, {"rate": 1.0})
        assert len(entries) == 1
        assert entries[0]["rate"] == 1.0
        assert "recorded_utc" in entries[0]
        data = json.loads(path.read_text())
        assert set(data) == {"trajectory"}

    def test_legacy_single_report_is_wrapped_not_lost(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        legacy = {"meta": {"numpy": "2.4"}, "current": {"rate": 5.0}}
        path.write_text(json.dumps(legacy))
        entries = append_entry(path, {"current": {"rate": 9.0}})
        assert len(entries) == 2
        assert entries[0] == legacy  # history preserved verbatim
        assert entries[1]["current"]["rate"] == 9.0

    def test_appends_accumulate(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        for i in range(3):
            append_entry(path, {"i": i})
        assert [e["i"] for e in load_trajectory(path)] == [0, 1, 2]

    def test_existing_timestamp_is_kept(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        entries = append_entry(path, {"recorded_utc": "2026-01-01T00:00:00Z"})
        assert entries[0]["recorded_utc"] == "2026-01-01T00:00:00Z"

    def test_non_dict_entry_rejected(self, tmp_path):
        with pytest.raises(TrajectoryError, match="must be dicts"):
            append_entry(tmp_path / "BENCH_x.json", [1, 2])

    def test_corrupt_file_shapes_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TrajectoryError, match="JSON object"):
            append_entry(path, {"x": 1})
        path.write_text(json.dumps({"trajectory": "not a list"}))
        with pytest.raises(TrajectoryError, match="must be a list"):
            load_trajectory(path)

    def test_missing_or_empty_file_loads_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "nope.json") == []
        empty = tmp_path / "BENCH_x.json"
        empty.write_text("")
        assert load_trajectory(empty) == []


class TestCommittedReportsAreTrajectories:
    def test_bench_scripts_save_through_append_entry(self):
        # The overwrite seam is closed at the source level: no BENCH
        # writer uses bare write_text for its report any more.
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for script in (
            "bench_perf_hotpaths.py",
            "bench_grid_warm.py",
            "bench_session_reuse.py",
        ):
            text = (bench_dir / script).read_text()
            assert "append_entry" in text, script
            assert "RESULT_PATH.write_text" not in text, script
