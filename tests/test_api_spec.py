"""EngineSpec: validation, JSON round-trip, compilation to engine kwargs."""

import json

import numpy as np
import pytest

from repro.api.spec import EngineSpec
from repro.errors import SpecError
from repro.rrset.tim import DEFAULT_THETA_CAP


class TestValidation:
    def test_defaults_mirror_engine(self):
        spec = EngineSpec()
        assert spec.eps == 0.1
        assert spec.theta_cap == DEFAULT_THETA_CAP
        assert spec.opt_lower == "kpt"
        assert spec.lazy_candidates is True
        assert spec.sampler_backend == "serial"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eps": 0.0},
            {"eps": -1.0},
            {"ell": 0.0},
            {"window": 0},
            {"window": 1.5},
            {"window": True},
            {"theta_cap": 0},
            {"theta_cap": "2000"},
            {"kpt_max_samples": 0},
            {"sampler_backend": "gpu"},
            {"workers": -1},
            {"seed": "7"},
            {"seed": -5},
            {"opt_lower": "singleton"},
            {"opt_lower": -2.0},
            {"opt_lower": float("nan")},
            {"opt_lower": []},
            {"opt_lower": [1.0, -1.0]},
            {"opt_lower": {"bad": 1}},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            EngineSpec(**kwargs)

    def test_integral_floats_coerced(self):
        # Hand-edited JSON often carries 2000.0; coerce, don't crash later.
        spec = EngineSpec(window=5.0, theta_cap=2000.0, seed=7.0)
        assert spec.window == 5 and isinstance(spec.window, int)
        assert spec.theta_cap == 2000 and isinstance(spec.theta_cap, int)
        assert spec.seed == 7 and isinstance(spec.seed, int)

    def test_zero_opt_lower_allowed(self):
        # The engine floors numeric bounds at 1.0 (legacy wrappers always
        # accepted clamped zeros); the spec must not narrow that domain.
        assert EngineSpec(opt_lower=0.0).opt_lower == 0.0
        assert EngineSpec(opt_lower=[0.0, 5.0]).opt_lower == (0.0, 5.0)

    def test_opt_lower_sequence_normalized_to_tuple(self):
        spec = EngineSpec(opt_lower=np.asarray([2.0, 3.0]))
        assert spec.opt_lower == (2.0, 3.0)
        assert isinstance(spec.opt_lower, tuple)

    def test_override_revalidates(self):
        spec = EngineSpec()
        assert spec.override().eps == spec.eps
        assert spec.override(eps=0.5).eps == 0.5
        with pytest.raises(SpecError):
            spec.override(eps=-1.0)
        with pytest.raises(SpecError):
            spec.override(not_a_knob=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineSpec().eps = 0.5


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            EngineSpec(),
            EngineSpec(eps=0.7, ell=0.5, window=50, theta_cap=None, seed=11),
            EngineSpec(opt_lower=3.5, workers=2, sampler_backend="parallel"),
            EngineSpec(opt_lower=[1.0, 2.0, 3.0], share_samples=True,
                       lazy_candidates=False),
        ],
    )
    def test_dict_and_json_round_trip(self, spec):
        data = spec.to_dict()
        assert EngineSpec.from_dict(data) == spec
        # Through an actual JSON encode/decode cycle too.
        assert EngineSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            EngineSpec.from_dict({"epsilon": 0.1})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(SpecError):
            EngineSpec.from_dict([1, 2, 3])

    def test_from_json(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = EngineSpec(eps=0.9, opt_lower=[4.0, 5.0])
        path.write_text(json.dumps(spec.to_dict()))
        assert EngineSpec.from_json(str(path)) == spec
        with pytest.raises(SpecError):
            EngineSpec.from_json(str(tmp_path / "missing.json"))


class TestEngineKwargs:
    def test_kwargs_cover_every_engine_knob(self):
        kwargs = EngineSpec(opt_lower=(2.0, 3.0)).engine_kwargs()
        assert set(kwargs) == {
            "eps", "ell", "window", "theta_cap", "opt_lower",
            "kpt_max_samples", "share_samples", "lazy_candidates",
            "sampler_backend", "workers", "kernel", "rr_bytes_budget",
            "seed",
        }
        # Tuples decay to lists so the engine's isinstance checks hold.
        assert kwargs["opt_lower"] == [2.0, 3.0]

    def test_config_compiles_to_spec(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            eps=0.4, theta_cap=321, share_samples=True,
            lazy_candidates=False, workers=0, seed=13,
        )
        spec = config.engine_spec(opt_lower=[9.0], window=10)
        assert spec.eps == 0.4
        assert spec.theta_cap == 321
        assert spec.share_samples is True
        assert spec.lazy_candidates is False
        assert spec.window == 10
        assert spec.workers is None  # 0 means backend default
        assert spec.seed == 13
        assert config.engine_spec(opt_lower="kpt", seed=99).seed == 99
