"""Tests for the four incentive models."""

import numpy as np
import pytest

from repro.errors import InstanceError
from repro.incentives.models import (
    INCENTIVE_MODELS,
    compute_incentives,
    constant_incentives,
    linear_incentives,
    sublinear_incentives,
    superlinear_incentives,
)

SPREADS = np.array([1.0, 2.0, 5.0, 10.0])


class TestTransforms:
    def test_linear(self):
        assert np.allclose(linear_incentives(SPREADS, 0.5), 0.5 * SPREADS)

    def test_constant_same_for_all(self):
        costs = constant_incentives(SPREADS, 2.0)
        assert np.allclose(costs, costs[0])
        assert costs[0] == pytest.approx(2.0 * SPREADS.mean())

    def test_sublinear_log(self):
        costs = sublinear_incentives(SPREADS, 3.0)
        assert np.allclose(costs, 3.0 * np.log(SPREADS))
        assert costs[0] == 0.0  # spread-1 seeds are free, as in the paper

    def test_superlinear_square(self):
        assert np.allclose(superlinear_incentives(SPREADS, 0.1), 0.1 * SPREADS**2)

    def test_all_nonnegative(self):
        for model in INCENTIVE_MODELS.values():
            assert (model(SPREADS, 0.3) >= 0).all()

    def test_all_monotone_in_spread(self):
        ordered = np.sort(SPREADS)
        for model in INCENTIVE_MODELS.values():
            costs = model(ordered, 0.3)
            assert (np.diff(costs) >= -1e-12).all()

    def test_cost_ordering_across_models_at_high_spread(self):
        # At sigma >> 1: sublinear < linear < superlinear (up to alpha scale).
        sigma = np.array([1.0, 50.0])
        sub = sublinear_incentives(sigma, 1.0)[1]
        lin = linear_incentives(sigma, 1.0)[1]
        sup = superlinear_incentives(sigma, 1.0)[1]
        assert sub < lin < sup


class TestValidation:
    def test_rejects_spread_below_one(self):
        with pytest.raises(InstanceError):
            linear_incentives(np.array([0.5]), 1.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(InstanceError):
            linear_incentives(SPREADS, 0.0)

    def test_rejects_empty(self):
        with pytest.raises(InstanceError):
            linear_incentives(np.array([]), 1.0)


class TestRegistry:
    def test_lookup_by_name(self):
        by_name = compute_incentives(SPREADS, "linear", 0.2)
        assert np.allclose(by_name, 0.2 * SPREADS)

    def test_lookup_by_instance(self):
        model = INCENTIVE_MODELS["superlinear"]
        assert np.allclose(
            compute_incentives(SPREADS, model, 0.2), model(SPREADS, 0.2)
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(InstanceError):
            compute_incentives(SPREADS, "exotic", 1.0)

    def test_paper_alpha_grids_present(self):
        for model in INCENTIVE_MODELS.values():
            assert len(model.paper_alphas_flixster) == 5
            assert len(model.paper_alphas_epinions) == 5
