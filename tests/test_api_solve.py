"""repro.solve: legacy bit-identity, blocked parity, provenance echo."""

import numpy as np
import pytest

import repro
from repro.api import EngineSpec, solve
from repro.core.baselines import pagerank_gr, pagerank_rr
from repro.core.ti_engine import TIEngine
from repro.core.ticarm import ti_carm
from repro.core.ticsrm import ti_csrm

from tests.conftest import make_tiny_instance

LEGACY_KWARGS = dict(eps=0.8, theta_cap=150, opt_lower=1.0, seed=17)
SPEC = EngineSpec(eps=0.8, theta_cap=150, opt_lower=1.0, seed=17)

WRAPPERS = {
    "TI-CSRM": ti_csrm,
    "TI-CARM": ti_carm,
    "PageRank-GR": pagerank_gr,
    "PageRank-RR": pagerank_rr,
}
ENGINE_RULES = {
    "TI-CSRM": ("cs", "rate"),
    "TI-CARM": ("ca", "revenue"),
    "PageRank-GR": ("pagerank", "revenue"),
    "PageRank-RR": ("pagerank", "round_robin"),
}


def _same_result(a, b):
    assert a.allocation.seed_sets() == b.allocation.seed_sets()
    assert a.revenue_per_ad == b.revenue_per_ad
    assert a.seeding_cost_per_ad == b.seeding_cost_per_ad
    assert a.algorithm == b.algorithm


class TestLegacyBitIdentity:
    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_solve_matches_direct_engine(self, name):
        """solve(instance, name, spec) ≡ the pre-API direct engine call."""
        inst = make_tiny_instance()
        rule, selector = ENGINE_RULES[name]
        direct = TIEngine(
            inst,
            candidate_rule=rule,
            selector=selector,
            algorithm_name=name,
            **LEGACY_KWARGS,
        ).run()
        _same_result(solve(inst, name, SPEC), direct)

    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_wrappers_are_shims_over_solve(self, name):
        inst = make_tiny_instance()
        _same_result(WRAPPERS[name](inst, **LEGACY_KWARGS), solve(inst, name, SPEC))

    def test_windowed_ticsrm_identity(self):
        inst = make_tiny_instance()
        via_wrapper = ti_csrm(inst, window=2, **LEGACY_KWARGS)
        via_solve = solve(inst, "TI-CSRM", SPEC, window=2)
        _same_result(via_wrapper, via_solve)
        assert via_solve.algorithm == "TI-CSRM(2)"

    def test_generator_seed_still_accepted(self):
        inst = make_tiny_instance()
        a = ti_csrm(inst, eps=0.8, theta_cap=150, opt_lower=1.0,
                    seed=np.random.default_rng(3))
        b = ti_csrm(inst, eps=0.8, theta_cap=150, opt_lower=1.0,
                    seed=np.random.default_rng(3))
        _same_result(a, b)
        # A live generator is not JSON-able; the echoed spec records null.
        assert a.extras["engine_spec"]["seed"] is None


class TestBlockedParity:
    """Satellite bugfix: `blocked` must exist on every algorithm."""

    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_blocked_kwarg_respected_everywhere(self, name):
        inst = make_tiny_instance()
        blocked = np.zeros(inst.n, dtype=bool)
        blocked[[0, 3]] = True
        result = WRAPPERS[name](inst, blocked=blocked, **LEGACY_KWARGS)
        seeded = {node for seeds in result.allocation.seed_sets() for node in seeds}
        assert not seeded & {0, 3}

    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_blocked_through_solve(self, name):
        inst = make_tiny_instance()
        blocked = np.zeros(inst.n, dtype=bool)
        blocked[1] = True
        result = solve(inst, name, SPEC, blocked=blocked)
        seeded = {node for seeds in result.allocation.seed_sets() for node in seeds}
        assert 1 not in seeded


class TestProvenanceEcho:
    """Satellite: the fully resolved EngineSpec rides in extras."""

    def test_extras_carry_complete_spec(self):
        inst = make_tiny_instance()
        result = solve(inst, "TI-CSRM", SPEC, window=2)
        echoed = result.extras["engine_spec"]
        # Round-trips back into the exact spec the engine ran with.
        assert EngineSpec.from_dict(echoed) == SPEC.override(window=2)
        for key in ("theta_cap", "opt_lower", "seed", "eps", "ell",
                    "share_samples", "lazy_candidates", "sampler_backend",
                    "workers", "kpt_max_samples", "window"):
            assert key in echoed

    def test_window_cleared_for_unwindowed_algorithms(self):
        inst = make_tiny_instance()
        result = solve(inst, "TI-CARM", SPEC, window=3)
        assert result.extras["engine_spec"]["window"] is None
        # ... which preserves TI-CARM's lazy caching.
        assert result.extras["lazy_candidates"] is True

    def test_grid_manifest_rows_carry_spec(self, tmp_path):
        from repro.experiments.datasets import build_dataset
        from repro.experiments.grid import GridSpec, run_grid

        spec = GridSpec(
            name="prov",
            datasets=({"name": "epinions_syn", "n": 120, "h": 2,
                       "singleton_rr_samples": 300},),
            algorithms=("TI-CSRM",),
            alphas=(1.0,),
            config={"eps": 1.0, "theta_cap": 120},
        )
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        assert len(rows) == 1
        echoed = rows[0]["engine_spec"]
        assert echoed["theta_cap"] == 120
        assert echoed["seed"] == rows[0]["cell_seed"]
        EngineSpec.from_dict(echoed)  # validates

    def test_solve_in_package_namespace(self):
        assert repro.solve is solve
        for name in ("EngineSpec", "AllocationSession", "register_algorithm"):
            assert name in repro.__all__
