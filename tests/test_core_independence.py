"""Tests for matroids, the RM independence system, and rank computation."""

import itertools

import numpy as np
import pytest

from repro.core.independence import (
    PartitionMatroid,
    allocation_pairs_independent,
    lower_upper_rank,
    maximal_independent_sets,
    rm_partition_matroid,
)
from repro.errors import AllocationError


class TestPartitionMatroid:
    def test_membership(self):
        # Two blocks {0,1} and {2,3} with capacities 1 and 2.
        m = PartitionMatroid([0, 0, 1, 1], [1, 2])
        assert m.is_independent([0, 2, 3])
        assert not m.is_independent([0, 1])

    def test_downward_closure(self):
        m = PartitionMatroid([0, 0, 1], [1, 1])
        for subset in ([0, 2], [0], [2], []):
            assert m.is_independent(subset)

    def test_augmentation_axiom_exhaustive(self):
        """|Y| > |X| and both independent -> some element of Y extends X."""
        m = PartitionMatroid([0, 0, 1, 1, 2], [1, 2, 1])
        ground = range(5)
        independents = [
            set(c)
            for r in range(6)
            for c in itertools.combinations(ground, r)
            if m.is_independent(c)
        ]
        for x in independents:
            for y in independents:
                if len(y) > len(x):
                    assert any(m.is_independent(x | {e}) for e in y - x)

    def test_rank(self):
        m = PartitionMatroid([0, 0, 1, 1, 1], [1, 2])
        assert m.rank() == 3

    def test_validation(self):
        with pytest.raises(AllocationError):
            PartitionMatroid([0, 5], [1])
        with pytest.raises(AllocationError):
            PartitionMatroid([0], [-1])
        m = PartitionMatroid([0], [1])
        with pytest.raises(AllocationError):
            m.is_independent([3])


class TestRMMatroid:
    def test_lemma1_structure(self):
        """Pairs are independent iff no node repeats (Lemma 1)."""
        m = rm_partition_matroid(n_nodes=3, n_ads=2)
        # pair id = node * h + ad
        def pid(node, ad):
            return node * 2 + ad

        assert m.is_independent([pid(0, 0), pid(1, 1)])
        assert not m.is_independent([pid(0, 0), pid(0, 1)])
        assert m.rank() == 3  # one pair per node

    def test_pairs_helper(self):
        assert allocation_pairs_independent([(0, 0), (1, 1), (2, 0)])
        assert not allocation_pairs_independent([(0, 0), (0, 1)])
        assert allocation_pairs_independent([])


class TestRankComputation:
    def test_uniform_matroid_ranks_equal(self):
        is_indep = lambda s: len(s) <= 2
        r, big_r = lower_upper_rank(range(4), is_indep)
        assert r == big_r == 2

    def test_knapsack_rank_gap(self):
        # Weights 3, 1, 1, 1 with capacity 3: maximal sets {0} and {1,2,3}.
        weights = [3.0, 1.0, 1.0, 1.0]
        is_indep = lambda s: sum(weights[x] for x in s) <= 3.0
        r, big_r = lower_upper_rank(range(4), is_indep)
        assert (r, big_r) == (1, 3)

    def test_maximal_sets_found(self):
        weights = [2.0, 2.0, 3.0]
        is_indep = lambda s: sum(weights[x] for x in s) <= 4.0
        maximal = maximal_independent_sets(range(3), is_indep)
        assert frozenset({0, 1}) in maximal
        assert frozenset({2}) in maximal
        # {0} is not maximal: {0,1} extends it.
        assert frozenset({0}) not in maximal

    def test_empty_system(self):
        r, big_r = lower_upper_rank(range(3), lambda s: len(s) == 0)
        assert (r, big_r) == (0, 0)

    def test_ground_limit_enforced(self):
        with pytest.raises(AllocationError):
            maximal_independent_sets(range(30), lambda s: True)
