"""Tests for the shared RR store (future work i: memory-efficient TI-CSRM)."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.rrset.collection import RRCollection, SharedRRCollection, SharedRRStore


def sets(*lists):
    return [np.asarray(x, dtype=np.int64) for x in lists]


class TestStore:
    def test_extend_and_index(self):
        store = SharedRRStore(4)
        store.extend(sets([0, 1], [1, 2]))
        assert store.size == 2
        assert store.sets_containing(1).tolist() == [0, 1]
        assert store.sets_containing(3).tolist() == []
        assert store.member_total == 4

    def test_out_of_range_rejected(self):
        store = SharedRRStore(3)
        with pytest.raises(EstimationError):
            store.extend(sets([0, 7]))

    def test_invalid_n(self):
        with pytest.raises(EstimationError):
            SharedRRStore(0)

    def test_memory_counts_sets_and_index_once(self):
        store = SharedRRStore(5)
        store.extend(sets([0, 1, 2]))
        # 3 members at the narrowed width + 3 int64 index entries.
        assert store.members.dtype == np.int16
        assert store.memory_bytes() == 3 * store.members.itemsize + 3 * 8


class TestSharedCollection:
    def test_view_matches_private_collection(self):
        """A view over a shared store must behave exactly like a private
        RRCollection fed the same sets."""
        rr = sets([0, 1], [1, 2], [2, 3], [3])
        store = SharedRRStore(4)
        store.extend(rr)
        view = SharedRRCollection(store)
        view.adopt(4)
        private = RRCollection(4)
        private.add_sets(rr)

        assert view.counts.tolist() == private.counts.tolist()
        allowed = np.ones(4, dtype=bool)
        assert view.best_node(allowed) == private.best_node(allowed)

        assert view.mark_covered_by(1) == private.mark_covered_by(1)
        assert view.counts.tolist() == private.counts.tolist()
        assert view.covered_total == private.covered_total
        assert view.max_residual_fraction(allowed) == pytest.approx(
            private.max_residual_fraction(allowed)
        )

    def test_views_are_independent(self):
        store = SharedRRStore(3)
        store.extend(sets([0, 1], [1, 2]))
        a = SharedRRCollection(store)
        b = SharedRRCollection(store)
        a.adopt(2)
        b.adopt(2)
        a.mark_covered_by(1)
        assert a.covered_total == 2
        assert b.covered_total == 0
        assert b.counts.tolist() == [1, 2, 1]

    def test_partial_adoption(self):
        store = SharedRRStore(3)
        store.extend(sets([0], [1], [2]))
        view = SharedRRCollection(store)
        view.adopt(2)
        assert view.theta == 2
        assert view.counts.tolist() == [1, 1, 0]
        # Sets beyond the adopted range are invisible to covering.
        assert view.mark_covered_by(2) == 0

    def test_adopt_with_seeds_absorbs(self):
        store = SharedRRStore(3)
        store.extend(sets([0, 1], [2]))
        view = SharedRRCollection(store)
        absorbed = view.adopt(2, seeds=[0])
        assert absorbed == 1
        assert view.covered_total == 1
        assert view.counts.tolist() == [0, 0, 1]

    def test_adopt_beyond_store_rejected(self):
        store = SharedRRStore(3)
        view = SharedRRCollection(store)
        with pytest.raises(EstimationError):
            view.adopt(1)

    def test_ratio_selection_matches_private(self):
        rr = sets([0], [0], [1], [2, 0])
        store = SharedRRStore(3)
        store.extend(rr)
        view = SharedRRCollection(store)
        view.adopt(4)
        private = RRCollection(3)
        private.add_sets(rr)
        costs = np.array([5.0, 0.5, 1.0])
        allowed = np.ones(3, dtype=bool)
        assert view.best_node_by_ratio(costs, allowed) == private.best_node_by_ratio(
            costs, allowed
        )
        assert view.best_node_by_ratio(
            costs, allowed, window=1
        ) == private.best_node_by_ratio(costs, allowed, window=1)

    def test_overlay_memory_small(self):
        store = SharedRRStore(100)
        store.extend(sets(*[[i % 100] for i in range(50)]))
        view = SharedRRCollection(store)
        view.adopt(50)
        # Overlay = covered flags + counts vector only.
        assert view.memory_bytes() == 50 + view.counts.nbytes


class TestEngineSharing:
    def test_sharing_reduces_memory_same_constraints(self):
        import repro

        ds = repro.build_dataset("epinions_syn", n=400, h=6, singleton_rr_samples=800)
        inst = ds.build_instance("linear", 1.0)
        common = dict(eps=0.8, theta_cap=400, opt_lower=ds.opt_lower_bounds(), seed=3)
        private = repro.ti_csrm(inst, share_samples=False, **common)
        shared = repro.ti_csrm(inst, share_samples=True, **common)
        assert shared.extras["memory_bytes"] < private.extras["memory_bytes"]
        # Constraints still hold.
        for i in range(inst.h):
            assert shared.payment_per_ad[i] <= inst.budget(i) + 1e-6
        nodes = [n for n, _ in shared.allocation.pairs()]
        assert len(nodes) == len(set(nodes))

    def test_sharing_groups_by_probability_vector(self):
        """Ads with different probabilities must NOT share stores."""
        import repro
        from repro.core.ti_engine import TIEngine

        ds = repro.build_dataset("flixster_syn", n=300, h=4, singleton_rr_samples=600)
        inst = ds.build_instance("linear", 1.0)
        engine = TIEngine(
            inst,
            candidate_rule="cs",
            selector="rate",
            eps=0.8,
            theta_cap=300,
            opt_lower=ds.opt_lower_bounds(),
            seed=4,
            share_samples=True,
        )
        engine.run()
        stores = {id(s.store) for s in engine._states}
        # 4 ads in 2 pure-competition pairs -> exactly 2 shared stores.
        assert len(stores) == 2
