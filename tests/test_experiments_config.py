"""Tests for experiment configuration."""

from dataclasses import FrozenInstanceError

import pytest

from repro.experiments.config import ANALOG_ALPHA_GRIDS, ExperimentConfig


class TestConfig:
    def test_defaults_sane(self):
        cfg = ExperimentConfig()
        assert cfg.eps > 0
        assert cfg.theta_cap > 0
        assert cfg.opt_lower_mode in ("singleton", "kpt")

    def test_frozen(self):
        cfg = ExperimentConfig()
        with pytest.raises(FrozenInstanceError):
            cfg.eps = 0.5

    def test_quick_is_cheaper(self):
        cfg = ExperimentConfig()
        quick = cfg.quick()
        assert quick.theta_cap <= cfg.theta_cap
        assert quick.grid_mode == "quick"


class TestAlphaGrids:
    def test_analog_grid_used_for_known_datasets(self):
        cfg = ExperimentConfig(grid_mode="paper")
        assert cfg.alphas("linear", "epinions_syn") == ANALOG_ALPHA_GRIDS[
            "epinions_syn"
        ]["linear"]

    def test_quick_grid_subsets_paper_grid(self):
        cfg_paper = ExperimentConfig(grid_mode="paper")
        cfg_quick = ExperimentConfig(grid_mode="quick")
        full = cfg_paper.alphas("sublinear", "flixster_syn")
        quick = cfg_quick.alphas("sublinear", "flixster_syn")
        assert len(quick) == 3
        assert set(quick) <= set(full)
        assert quick[0] == full[0] and quick[-1] == full[-1]

    def test_unknown_dataset_falls_back_to_paper_grids(self):
        cfg = ExperimentConfig(grid_mode="paper")
        grid = cfg.alphas("linear", "some_crawled_graph")
        assert grid == (0.1, 0.2, 0.3, 0.4, 0.5)

    def test_epinions_fallback_variant(self):
        cfg = ExperimentConfig(grid_mode="paper")
        grid = cfg.alphas("constant", "epinions_real")
        assert grid == (6.0, 7.0, 8.0, 9.0, 10.0)

    def test_all_models_have_analog_grids(self):
        for grids in ANALOG_ALPHA_GRIDS.values():
            assert set(grids) == {"linear", "constant", "sublinear", "superlinear"}
            for grid in grids.values():
                assert len(grid) == 5
                assert all(a > 0 for a in grid)
                assert list(grid) == sorted(grid)
