"""Tests for the repro-lint framework (tools/lint).

Each rule gets a positive fixture (a violation the rule must flag), a
negative fixture (compliant code it must not flag), plus pragma and
baseline coverage; a self-check asserts the shipped ``src/`` tree stays
clean with an *empty* baseline.

``tools`` lives at the repo root (not under ``src``), so the root goes
on ``sys.path`` before the import.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import all_rules, resolve_rules, run_lint  # noqa: E402
from tools.lint.cli import main as lint_cli  # noqa: E402
from tools.lint.engine import parse_pragmas  # noqa: E402

from repro.cli import main as repro_cli


def lint_source(tmp_path: Path, source: str, rules=None):
    """Lint one scratch file; the findings list."""
    target = tmp_path / "mod.py"
    target.write_text(source)
    result = run_lint(tmp_path, paths=("mod.py",), rules=rules)
    return result.findings


def rule_ids(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------- registry


def test_all_rules_registered_and_ordered():
    rules = all_rules()
    assert [r.id for r in rules] == ["R1", "R2", "R3", "R4", "R5", "R6", "R7"]
    assert len({r.name for r in rules}) == len(rules)


def test_resolve_rules_by_id_and_slug():
    assert [r.id for r in resolve_rules("R1,R5")] == ["R1", "R5"]
    assert [r.id for r in resolve_rules("rng-discipline")] == ["R1"]
    with pytest.raises(ValueError):
        resolve_rules("R99")


# ---------------------------------------------------------------- R1


def test_r1_flags_default_rng_and_stdlib_random(tmp_path):
    findings = lint_source(
        tmp_path,
        "import random\n"
        "import numpy as np\n"
        "def f():\n"
        "    rng = np.random.default_rng(3)\n"
        "    return rng.random() + random.random()\n",
    )
    r1 = [f for f in findings if f.rule == "R1"]
    assert len(r1) >= 3  # the import, default_rng, random.random
    assert any(f.line == 4 for f in r1)


def test_r1_flags_legacy_global_and_entropy_seeds(tmp_path):
    findings = lint_source(
        tmp_path,
        "import time\n"
        "import numpy as np\n"
        "from repro._rng import as_generator\n"
        "def f():\n"
        "    a = np.random.rand(3)\n"
        "    rng = as_generator(int(time.time()))\n"
        "    return a, rng\n",
    )
    r1_lines = {f.line for f in findings if f.rule == "R1"}
    assert {5, 6} <= r1_lines


def test_r1_clean_on_as_generator(tmp_path):
    findings = lint_source(
        tmp_path,
        "from repro._rng import as_generator\n"
        "def f(seed):\n"
        "    rng = as_generator(seed)\n"
        "    return rng.random()\n",
    )
    assert not rule_ids(findings)


def test_r1_exempts_rng_module(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    target = pkg / "_rng.py"
    target.write_text(
        "import numpy as np\n"
        "def as_generator(seed=None):\n"
        "    return np.random.default_rng(seed)\n"
    )
    result = run_lint(tmp_path, paths=("repro/_rng.py",))
    assert not [f for f in result.findings if f.rule == "R1"]


# ---------------------------------------------------------------- R2


JIT_BAD = (
    "import numpy as np\n"
    "from numba import njit\n"
    "@njit(cache=True)\n"
    "def kernel(n):\n"
    "    out = np.zeros(n)\n"
    "    for i in range(n):\n"
    "        tmp = [i]\n"
    "    return out * SCALE\n"
)


def test_r2_flags_containers_and_globals(tmp_path):
    findings = lint_source(tmp_path, JIT_BAD)
    r2 = [f for f in findings if f.rule == "R2"]
    messages = " ".join(f.message for f in r2)
    assert "container in a loop" in messages
    assert "'SCALE'" in messages


def test_r2_flags_rng_in_kernel(tmp_path):
    findings = lint_source(
        tmp_path,
        "from numba import njit\n"
        "@njit\n"
        "def kernel(rng, n):\n"
        "    return rng.random(n)\n",
    )
    assert "R2" in rule_ids(findings)


def test_r2_clean_kernel_and_decorator_not_flagged(tmp_path):
    findings = lint_source(
        tmp_path,
        "import numpy as np\n"
        "from numba import njit\n"
        "CHUNK = 1 << 20\n"
        "@njit(cache=True)\n"
        "def kernel(out, n):\n"
        "    for i in range(n):\n"
        "        out[i] = np.sqrt(i) * CHUNK\n"
        "    return out\n",
    )
    assert "R2" not in rule_ids(findings)


# ---------------------------------------------------------------- R3


def test_r3_flags_unreleased_shared_memory(tmp_path):
    findings = lint_source(
        tmp_path,
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def leak():\n"
        "    shm = SharedMemory(create=True, size=64)\n"
        "    return shm.buf[0]\n",
    )
    assert "R3" in rule_ids(findings)


def test_r3_accepts_finally_with_and_finalize(tmp_path):
    findings = lint_source(
        tmp_path,
        "import weakref\n"
        "import tempfile\n"
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def finally_pair():\n"
        "    shm = SharedMemory(create=True, size=64)\n"
        "    try:\n"
        "        return bytes(shm.buf[:4])\n"
        "    finally:\n"
        "        shm.close()\n"
        "        shm.unlink()\n"
        "def ctx_managed():\n"
        "    with tempfile.NamedTemporaryFile() as handle:\n"
        "        return handle.name\n"
        "class Owner:\n"
        "    def __init__(self):\n"
        "        self.shm = SharedMemory(create=True, size=64)\n"
        "        weakref.finalize(self, self.shm.close)\n"
        "    def close(self):\n"
        "        self.shm.close()\n",
    )
    assert "R3" not in rule_ids(findings)


def test_r3_flags_unreleased_socket_and_http_server(tmp_path):
    """Satellite: the serving layer's resources are lifecycle-checked —
    a bare socket or ThreadingHTTPServer with no visible release leaks
    the port past the daemon's lifetime."""
    findings = lint_source(
        tmp_path,
        "import socket\n"
        "from http.server import ThreadingHTTPServer, BaseHTTPRequestHandler\n"
        "def leak_socket():\n"
        "    s = socket.socket()\n"
        "    s.bind(('127.0.0.1', 0))\n"
        "    return s.getsockname()\n"
        "def leak_server():\n"
        "    httpd = ThreadingHTTPServer(('127.0.0.1', 0), BaseHTTPRequestHandler)\n"
        "    httpd.serve_forever()\n",
    )
    r3 = [f for f in findings if f.rule == "R3"]
    assert len(r3) == 2


def test_r3_accepts_managed_socket_and_http_server(tmp_path):
    findings = lint_source(
        tmp_path,
        "import socket\n"
        "from http.server import ThreadingHTTPServer, BaseHTTPRequestHandler\n"
        "def with_socket():\n"
        "    with socket.socket() as s:\n"
        "        s.bind(('127.0.0.1', 0))\n"
        "        return s.getsockname()\n"
        "def finally_server():\n"
        "    httpd = ThreadingHTTPServer(('127.0.0.1', 0), BaseHTTPRequestHandler)\n"
        "    try:\n"
        "        httpd.handle_request()\n"
        "    finally:\n"
        "        httpd.server_close()\n"
        "class Daemon:\n"
        "    def __init__(self):\n"
        "        self.httpd = ThreadingHTTPServer(\n"
        "            ('127.0.0.1', 0), BaseHTTPRequestHandler)\n"
        "    def close(self):\n"
        "        self.httpd.server_close()\n",
    )
    assert "R3" not in rule_ids(findings)


# ---------------------------------------------------------------- R4


def test_r4_flags_lambda_closure_and_bound_method(tmp_path):
    findings = lint_source(
        tmp_path,
        "from multiprocessing import Process\n"
        "class Runner:\n"
        "    def go(self, pool):\n"
        "        pool.submit(self.step, 1)\n"
        "def spawn():\n"
        "    p = Process(target=lambda: None)\n"
        "    return p\n"
        "def closure_case():\n"
        "    def inner():\n"
        "        return 1\n"
        "    return Process(target=inner)\n",
    )
    r4 = [f for f in findings if f.rule == "R4"]
    messages = " ".join(f.message for f in r4)
    assert "lambda" in messages
    assert "bound method" in messages
    assert "closure" in messages


def test_r4_clean_module_level_target(tmp_path):
    findings = lint_source(
        tmp_path,
        "from multiprocessing import Process\n"
        "def worker_main(q):\n"
        "    q.put(1)\n"
        "def spawn(q):\n"
        "    return Process(target=worker_main, args=(q,))\n",
    )
    assert "R4" not in rule_ids(findings)


# ---------------------------------------------------------------- R5


def test_r5_flags_set_iteration_and_keys(tmp_path):
    findings = lint_source(
        tmp_path,
        "def f(items, mapping):\n"
        "    pool = set(items)\n"
        "    out = []\n"
        "    for x in pool:\n"
        "        out.append(x)\n"
        "    for k in mapping.keys():\n"
        "        out.append(k)\n"
        "    return out\n",
    )
    r5_lines = {f.line for f in findings if f.rule == "R5"}
    assert {4, 6} <= r5_lines


def test_r5_sorted_and_reducers_are_clean(tmp_path):
    findings = lint_source(
        tmp_path,
        "def f(items):\n"
        "    pool = set(items)\n"
        "    total = [x for x in sorted(pool)]\n"
        "    size = len(pool)\n"
        "    as_frozen = frozenset(int(x) for x in pool)\n"
        "    any_neg = any(x < 0 for x in pool)\n"
        "    return total, size, as_frozen, any_neg\n",
    )
    assert "R5" not in rule_ids(findings)


def test_r5_sum_comprehension_is_not_exempt(tmp_path):
    findings = lint_source(
        tmp_path,
        "def f(weights, items):\n"
        "    pool = set(items)\n"
        "    return sum(weights[x] for x in pool)\n",
    )
    assert "R5" in rule_ids(findings)


# ---------------------------------------------------------------- R6 / R7 (repo scope)


def test_r6_flags_dangling_marker(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "NOTES.md").write_text(
        "<!-- staleness-marker: src/gone.py -->\n"
    )
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "ok.py").write_text("x = 1\n")
    result = run_lint(tmp_path, paths=("src",))
    assert any(f.rule == "R6" and "gone.py" in f.message for f in result.findings)


def test_r7_flags_dishonest_all(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("__all__ = ['ghost']\n")
    result = run_lint(tmp_path, paths=("src",))
    messages = " ".join(f.message for f in result.findings if f.rule == "R7")
    assert "'ghost'" in messages
    assert "'solve'" in messages  # contract names must be advertised


# ---------------------------------------------------------------- pragmas


def test_pragma_suppresses_by_id_slug_and_all(tmp_path):
    source = (
        "import numpy as np\n"
        "def f(items):\n"
        "    a = np.random.default_rng(1)  # repro-lint: disable=R1\n"
        "    b = np.random.default_rng(2)  # repro-lint: disable=rng-discipline\n"
        "    pool = set(items)\n"
        "    rows = [x for x in pool]  # repro-lint: disable=all\n"
        "    return a, b, rows\n"
    )
    target = tmp_path / "mod.py"
    target.write_text(source)
    result = run_lint(tmp_path, paths=("mod.py",))
    assert not result.findings
    assert len(result.suppressed) == 3


def test_pragma_does_not_suppress_other_rules(tmp_path):
    findings = lint_source(
        tmp_path,
        "import numpy as np\n"
        "rng = np.random.default_rng(0)  # repro-lint: disable=R5\n",
    )
    assert "R1" in rule_ids(findings)


def test_parse_error_is_unsuppressible(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def broken(:  # repro-lint: disable=all\n")
    result = run_lint(tmp_path, paths=("mod.py",))
    assert [f.rule for f in result.findings] == ["E0"]


def test_parse_pragmas_tokens():
    pragmas = parse_pragmas("x = 1  # repro-lint: disable=R1, kernel-purity\n")
    assert pragmas == {1: {"R1", "kernel-purity"}}


# ---------------------------------------------------------------- baseline


def test_baseline_downgrades_and_reports_stale(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
    first = run_lint(tmp_path, paths=("mod.py",))
    assert first.findings

    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [f.to_dict() for f in first.findings]
                + [
                    {
                        "rule": "R1",
                        "path": "other.py",
                        "message": "long gone",
                    }
                ],
            }
        )
    )
    second = run_lint(tmp_path, paths=("mod.py",), baseline_path=baseline)
    assert not second.findings
    assert len(second.baselined) == len(first.findings)
    assert len(second.stale_baseline) == 1
    assert second.stale_baseline[0]["path"] == "other.py"


def test_baseline_matching_survives_line_drift(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
    first = run_lint(tmp_path, paths=("mod.py",))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps([f.to_dict() for f in first.findings]))
    # Shift every finding down two lines; (rule, path, message) still match.
    target.write_text(
        "# pad\n# pad\nimport numpy as np\nrng = np.random.default_rng(0)\n"
    )
    drifted = run_lint(tmp_path, paths=("mod.py",), baseline_path=baseline)
    assert not drifted.findings
    assert drifted.baselined


# ---------------------------------------------------------------- CLI


def test_cli_exit_codes_and_json(tmp_path, capsys):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "bad.py").write_text(
        "import numpy as np\nrng = np.random.default_rng(0)\n"
    )
    assert lint_cli(["--root", str(tmp_path), "src"]) == 1
    out = capsys.readouterr().out
    assert "R1[rng-discipline]" in out
    assert "bad.py:2" in out

    assert lint_cli(["--root", str(tmp_path), "--format", "json", "src"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["findings"][0]["rule"] == "R1"

    (tmp_path / "src" / "bad.py").write_text("x = 1\n")
    assert lint_cli(["--root", str(tmp_path), "src"]) == 0


def test_cli_usage_errors(tmp_path):
    (tmp_path / "src").mkdir()
    assert lint_cli(["--root", str(tmp_path), "no_such_dir"]) == 2
    assert lint_cli(["--root", str(tmp_path), "--rules", "R99", "src"]) == 2


def test_cli_update_baseline_roundtrip(tmp_path, capsys):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "bad.py").write_text(
        "import numpy as np\nrng = np.random.default_rng(0)\n"
    )
    baseline = tmp_path / "baseline.json"
    assert (
        lint_cli(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--update-baseline",
                "src",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        lint_cli(["--root", str(tmp_path), "--baseline", str(baseline), "src"])
        == 0
    )
    assert "baselined" in capsys.readouterr().out


def test_repro_cli_lint_subcommand(capsys):
    assert repro_cli(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "R1" in out and "R7" in out


# ---------------------------------------------------------------- self-check


def test_shipped_src_tree_is_clean():
    result = run_lint(REPO_ROOT, paths=("src",))
    assert result.ok, "\n".join(f.format() for f in result.findings)
    assert not result.stale_baseline


def test_shipped_baseline_is_empty():
    baseline = json.loads((REPO_ROOT / "tools" / "lint" / "baseline.json").read_text())
    assert baseline["findings"] == []
