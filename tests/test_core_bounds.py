"""Theorems 2–4 bound calculators and the Figure 1 tightness instance."""

import numpy as np
import pytest

from repro.core.bounds import (
    fnw_matroid_floor,
    theorem2_bound,
    theorem2_counterexample,
    theorem2_exponential_bound,
    theorem3_bound,
    theorem4_additive_deterioration,
    tightness_instance,
    worst_case_floor,
)
from repro.core.curvature import (
    total_revenue_curvature,
    payment_curvature,
    singleton_payment_extremes,
)
from repro.core.greedy import ca_greedy, cs_greedy, exhaustive_optimum
from repro.core.independence import lower_upper_rank
from repro.core.oracles import ExactOracle
from repro.errors import InstanceError


class TestTheorem2:
    def test_tight_value(self):
        assert theorem2_bound(1.0, 1, 2) == pytest.approx(0.5)

    def test_matroid_case_recovers_1_minus_e_kappa(self):
        # r = R: bound -> (1/k)(1 - ((R-k)/R)^R) >= (1/k)(1 - e^-k).
        for kappa in (0.3, 0.7, 1.0):
            b = theorem2_bound(kappa, 10, 10)
            assert b >= (1 / kappa) * (1 - np.exp(-kappa)) - 1e-9

    def test_kappa_zero_limit(self):
        assert theorem2_bound(0.0, 3, 5) == pytest.approx(3 / 5)
        # Continuity at the limit.
        assert theorem2_bound(1e-13, 3, 5) == pytest.approx(3 / 5, rel=1e-6)

    def test_dominates_exponential_relaxation(self):
        for kappa, r, R in [(0.5, 2, 4), (1.0, 3, 7), (0.2, 5, 5)]:
            assert theorem2_bound(kappa, r, R) >= theorem2_exponential_bound(
                kappa, r, R
            ) - 1e-12

    def test_floor_1_over_R(self):
        for kappa, r, R in [(0.5, 1, 4), (1.0, 2, 8), (0.9, 1, 2)]:
            assert theorem2_bound(kappa, r, R) >= worst_case_floor(R) - 1e-12

    def test_improves_as_r_approaches_R(self):
        values = [theorem2_bound(0.8, r, 6) for r in (1, 3, 6)]
        assert values[0] < values[1] < values[2]

    def test_validation(self):
        with pytest.raises(InstanceError):
            theorem2_bound(1.5, 1, 2)
        with pytest.raises(InstanceError):
            theorem2_bound(0.5, 3, 2)
        with pytest.raises(InstanceError):
            worst_case_floor(0)

    def test_zero_rank_gives_zero(self):
        assert theorem2_bound(0.5, 0, 1) == 0.0


class TestTheorem3:
    def test_closed_form(self):
        # 1 - R*pmax / (R*pmax + (1-k)*pmin)
        value = theorem3_bound(0.5, 2, 4.0, 1.0)
        assert value == pytest.approx(1 - 8.0 / (8.0 + 0.5))

    def test_degenerate_at_curvature_one(self):
        assert theorem3_bound(1.0, 2, 4.0, 1.0) == 0.0

    def test_improves_as_payment_ratio_shrinks(self):
        worse = theorem3_bound(0.2, 3, 10.0, 1.0)
        better = theorem3_bound(0.2, 3, 2.0, 1.0)
        assert better > worse

    def test_validation(self):
        with pytest.raises(InstanceError):
            theorem3_bound(-0.1, 1, 1.0, 1.0)
        with pytest.raises(InstanceError):
            theorem3_bound(0.5, 0, 1.0, 1.0)
        with pytest.raises(InstanceError):
            theorem3_bound(0.5, 1, 1.0, 2.0)


class TestTheorem4:
    def test_additive_term(self):
        loss = theorem4_additive_deterioration(0.1, [1.0, 2.0], [10.0, 5.0])
        assert loss == pytest.approx(0.1 * (10.0 + 10.0))

    def test_validation(self):
        with pytest.raises(InstanceError):
            theorem4_additive_deterioration(0.0, [1.0], [1.0])
        with pytest.raises(InstanceError):
            theorem4_additive_deterioration(0.1, [1.0], [1.0, 2.0])


class TestTheorem2Counterexample:
    """Reproduction finding: the literal Theorem-2 formula is exceeded on
    a 3-node matroid instance (see theorem2_counterexample docstring)."""

    @pytest.fixture(scope="class")
    def setup(self):
        instance, expected = theorem2_counterexample()
        return instance, expected, ExactOracle(instance)

    def test_optimum(self, setup):
        instance, expected, oracle = setup
        sets, opt = exhaustive_optimum(instance, oracle)
        assert opt == pytest.approx(expected["optimal_revenue"])
        assert set(sets[0]) == expected["optimal_seeds"]

    def test_greedy_lands_in_trap_under_both_tie_breaks(self, setup):
        instance, expected, oracle = setup
        for tie in ("index", "cost"):
            result = ca_greedy(instance, oracle, tie_break=tie)
            assert result.total_revenue == pytest.approx(expected["greedy_revenue"])
            assert set(result.allocation.seeds(0)) == expected["greedy_seeds"]

    def test_ingredients(self, setup):
        instance, expected, oracle = setup
        assert total_revenue_curvature(instance, oracle) == pytest.approx(
            expected["kappa_pi"]
        )

        def is_indep(subset):
            return oracle.payment(0, subset) <= instance.budget(0) + 1e-9

        r, R = lower_upper_rank(range(instance.n), is_indep)
        assert (r, R) == (expected["lower_rank"], expected["upper_rank"])

    def test_formula_exceeded_but_floor_holds(self, setup):
        instance, expected, oracle = setup
        formula = theorem2_bound(
            expected["kappa_pi"], expected["lower_rank"], expected["upper_rank"]
        )
        assert formula == pytest.approx(expected["theorem2_formula_value"])
        ratio = expected["greedy_revenue"] / expected["optimal_revenue"]
        assert ratio == pytest.approx(expected["observed_ratio"])
        # The documented finding: ratio strictly below the formula...
        assert ratio < formula
        # ...but at or above the empirically safe floor 1/(R+1).
        assert ratio >= 1.0 / (expected["upper_rank"] + 1)

    def test_cs_greedy_escapes_the_trap(self, setup):
        instance, expected, oracle = setup
        result = cs_greedy(instance, oracle)
        assert result.total_revenue == pytest.approx(expected["optimal_revenue"])

    def test_fnw_floor_is_matroid_only(self):
        # Sanity on the helper itself.
        assert fnw_matroid_floor(0.0) == 1.0
        assert fnw_matroid_floor(1.0) == 0.5
        with pytest.raises(InstanceError):
            fnw_matroid_floor(1.5)


class TestTightnessInstance:
    """The Figure 1 instance reproduces Theorem 2's tightness exactly."""

    @pytest.fixture(scope="class")
    def setup(self):
        instance, expected = tightness_instance()
        oracle = ExactOracle(instance)
        return instance, expected, oracle

    def test_optimum(self, setup):
        instance, expected, oracle = setup
        sets, opt = exhaustive_optimum(instance, oracle)
        assert opt == pytest.approx(expected["optimal_revenue"])
        assert set(sets[0]) == expected["optimal_seeds"]

    def test_adversarial_ca_greedy_achieves_half(self, setup):
        instance, expected, oracle = setup
        result = ca_greedy(instance, oracle, tie_break="cost")
        assert result.total_revenue == pytest.approx(
            expected["adversarial_greedy_revenue"]
        )
        assert set(result.allocation.seeds(0)) == expected["adversarial_greedy_seeds"]

    def test_friendly_tie_break_is_optimal(self, setup):
        instance, expected, oracle = setup
        result = ca_greedy(instance, oracle, tie_break="index")
        assert result.total_revenue == pytest.approx(expected["optimal_revenue"])

    def test_cs_greedy_is_optimal_footnote9(self, setup):
        instance, expected, oracle = setup
        result = cs_greedy(instance, oracle)
        assert result.total_revenue == pytest.approx(expected["optimal_revenue"])
        assert set(result.allocation.seeds(0)) == expected["optimal_seeds"]

    def test_ranks(self, setup):
        instance, expected, oracle = setup

        def is_indep(subset):
            return oracle.payment(0, subset) <= instance.budget(0) + 1e-9

        r, R = lower_upper_rank(range(instance.n), is_indep)
        assert r == expected["lower_rank"]
        assert R == expected["upper_rank"]

    def test_curvature(self, setup):
        instance, expected, oracle = setup
        assert total_revenue_curvature(instance, oracle) == pytest.approx(
            expected["kappa_pi"]
        )

    def test_bound_equals_observed_ratio(self, setup):
        instance, expected, oracle = setup
        bound = theorem2_bound(
            expected["kappa_pi"], expected["lower_rank"], expected["upper_rank"]
        )
        assert bound == pytest.approx(expected["theorem2_bound"])
        ratio = (
            expected["adversarial_greedy_revenue"] / expected["optimal_revenue"]
        )
        assert ratio == pytest.approx(bound)

    def test_payment_extremes(self, setup):
        instance, expected, oracle = setup
        rho_max, rho_min = singleton_payment_extremes(instance, oracle)
        # b: spread 3 + cost 4 = 7; g (leaf): spread 1 + cost 3 = 4;
        # a/c: 3 + 0.5 = 3.5.
        assert rho_max == pytest.approx(7.0)
        assert rho_min == pytest.approx(3.5)

    def test_theorem3_bound_holds_on_instance(self, setup):
        instance, expected, oracle = setup
        kappa_rho = payment_curvature(instance, oracle, 0)
        rho_max, rho_min = singleton_payment_extremes(instance, oracle)
        bound = theorem3_bound(kappa_rho, expected["upper_rank"], rho_max, rho_min)
        cs = cs_greedy(instance, oracle)
        _, opt = exhaustive_optimum(instance, oracle)
        assert cs.total_revenue >= bound * opt - 1e-9
