"""Tests for TIM sample-size determination and KPT estimation."""

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.graph.generators import erdos_renyi
from repro.rrset.sampler import RRSampler
from repro.rrset.tim import KPTEstimator, log_binomial, sample_size


class TestLogBinomial:
    def test_small_values_exact(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 0) == pytest.approx(0.0)
        assert log_binomial(10, 10) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_binomial(30, 7) == pytest.approx(log_binomial(30, 23))

    def test_invalid_rejected(self):
        with pytest.raises(EstimationError):
            log_binomial(5, 6)
        with pytest.raises(EstimationError):
            log_binomial(5, -1)


class TestSampleSize:
    def test_formula_value(self):
        # Direct evaluation of Eq. 8 for a hand-checked case.
        n, s, eps, ell, opt = 100, 2, 0.5, 1.0, 10.0
        expected = (8 + 2 * eps) * n * (
            ell * math.log(n) + log_binomial(n, s) + math.log(2)
        ) / (opt * eps * eps)
        assert sample_size(n, s, eps, ell, opt, theta_cap=None) == math.ceil(expected)

    def test_monotone_in_s(self):
        a = sample_size(100, 1, 0.5, 1.0, 10.0, theta_cap=None)
        b = sample_size(100, 5, 0.5, 1.0, 10.0, theta_cap=None)
        assert b > a

    def test_decreasing_in_eps_and_opt(self):
        base = sample_size(100, 2, 0.3, 1.0, 10.0, theta_cap=None)
        assert sample_size(100, 2, 0.6, 1.0, 10.0, theta_cap=None) < base
        assert sample_size(100, 2, 0.3, 1.0, 20.0, theta_cap=None) < base

    def test_cap_applies(self):
        assert sample_size(1000, 10, 0.1, 1.0, 1.0, theta_cap=77) == 77

    def test_validation(self):
        with pytest.raises(EstimationError):
            sample_size(0, 1, 0.5, 1.0, 1.0)
        with pytest.raises(EstimationError):
            sample_size(10, 0, 0.5, 1.0, 1.0)
        with pytest.raises(EstimationError):
            sample_size(10, 11, 0.5, 1.0, 1.0)
        with pytest.raises(EstimationError):
            sample_size(10, 1, -0.5, 1.0, 1.0)
        with pytest.raises(EstimationError):
            sample_size(10, 1, 0.5, 1.0, 0.0)


class TestKPT:
    def _estimator(self, n=60, p=0.2, seed=1, **kwargs):
        g = erdos_renyi(n, 0.1, seed=seed)
        sampler = RRSampler(g, np.full(g.m, p))
        return g, KPTEstimator(sampler, ell=1.0, rng=seed, **kwargs)

    def test_estimate_at_least_one(self):
        _, kpt = self._estimator(p=0.0)
        assert kpt.estimate(1) >= 1.0

    def test_estimate_cached(self):
        _, kpt = self._estimator()
        first = kpt.estimate(2)
        assert kpt.estimate(2) == first

    def test_is_lower_bound_of_opt(self):
        # OPT_s <= n always, and must upper-bound the KPT estimate w.h.p.
        g, kpt = self._estimator(n=80, p=0.3, seed=2)
        estimate = kpt.estimate(3)
        assert 1.0 <= estimate <= g.n

    def test_monotone_in_s_statistic(self):
        # kappa(R) grows with s, so the bound should not decrease.
        _, kpt = self._estimator(n=80, p=0.3, seed=3)
        assert kpt.estimate(5) >= kpt.estimate(1) - 1e-9

    def test_respects_sampling_budget(self):
        _, kpt = self._estimator(max_samples=50)
        kpt.estimate(1)
        assert len(kpt._widths) <= 50

    def test_trivial_graph(self):
        g = erdos_renyi(2, 0.0, seed=4)
        sampler = RRSampler(g, np.empty(0))
        kpt = KPTEstimator(sampler, rng=0)
        assert kpt.estimate(1) == 1.0
