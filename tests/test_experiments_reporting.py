"""Tests for plain-text reporting and persistence."""

import os

import pytest

from repro.experiments.reporting import (
    format_table,
    format_value,
    results_dir,
    save_report,
    series_text,
)


class TestFormatting:
    def test_format_value_types(self):
        assert format_value(3) == "3"
        assert format_value("x") == "x"
        assert format_value(3.14159) == "3.14"
        assert format_value(123456.7) == "1.235e+05"
        assert format_value(0.0000123) == "1.230e-05"
        assert format_value(0.0) == "0.00"

    def test_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text  # no KeyError

    def test_series_text(self):
        text = series_text("panel", [1, 2], {"algo": [10.0, 20.0]})
        assert "== panel ==" in text
        assert "algo" in text


class TestPersistence:
    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_report("unit", "hello")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"
        assert results_dir() == str(tmp_path)

    def test_results_dir_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert results_dir() == os.path.join("benchmarks", "results")


class TestGridManifestRoundTrip:
    """The docs/EXPERIMENTS.md §3 recipe: a grid report is a pure
    function of its manifest (load -> flatten -> format -> persist)."""

    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory):
        from repro.experiments.grid import GridSpec, run_grid

        path = str(tmp_path_factory.mktemp("grid") / "m.jsonl")
        spec = GridSpec.from_dict(
            {
                "name": "report_rt",
                "datasets": [
                    {"name": "epinions_syn", "n": 120, "h": 2,
                     "singleton_rr_samples": 400}
                ],
                "algorithms": ["TI-CSRM", "TI-CARM"],
                "alphas": [0.5, 1.0],
                "seed": 3,
                "config": {"eps": 1.0, "theta_cap": 100},
            }
        )
        run_grid(spec, path)
        return path

    def test_manifest_rows_render_and_persist(
        self, manifest, tmp_path, monkeypatch
    ):
        from repro.experiments.grid import grid_table_rows, load_manifest

        header, rows = load_manifest(manifest)
        assert header["total_cells"] == len(rows) == 4
        table = format_table(grid_table_rows(rows))
        lines = table.splitlines()
        assert len(lines) == 2 + 4  # header, rule, one line per cell
        assert lines[0].split()[:2] == ["dataset", "algorithm"]
        assert all("epinions_syn" in line for line in lines[2:])
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
        path = save_report("grid_report_rt", table)
        assert path == str(tmp_path / "out" / "grid_report_rt.txt")
        assert open(path).read() == table + "\n"

    def test_rendered_table_is_pure_function_of_manifest(self, manifest):
        from repro.experiments.grid import grid_table_rows, load_manifest

        render = lambda: format_table(grid_table_rows(load_manifest(manifest)[1]))
        assert render() == render()
