"""Tests for plain-text reporting and persistence."""

import os

from repro.experiments.reporting import (
    format_table,
    format_value,
    results_dir,
    save_report,
    series_text,
)


class TestFormatting:
    def test_format_value_types(self):
        assert format_value(3) == "3"
        assert format_value("x") == "x"
        assert format_value(3.14159) == "3.14"
        assert format_value(123456.7) == "1.235e+05"
        assert format_value(0.0000123) == "1.230e-05"
        assert format_value(0.0) == "0.00"

    def test_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text  # no KeyError

    def test_series_text(self):
        text = series_text("panel", [1, 2], {"algo": [10.0, 20.0]})
        assert "== panel ==" in text
        assert "algo" in text


class TestPersistence:
    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_report("unit", "hello")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"
        assert results_dir() == str(tmp_path)
