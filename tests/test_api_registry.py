"""The algorithm registry: built-ins, custom rules, solve() integration."""

import pytest

from repro.api import (
    BUILTIN_ALGORITHMS,
    EngineSpec,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    solve,
    unregister_algorithm,
)
from repro.errors import AllocationError

from tests.conftest import make_tiny_instance

SPEC = EngineSpec(eps=0.8, theta_cap=100, opt_lower=1.0, seed=5)


@pytest.fixture
def clean_registry():
    """Remove any algorithm the test registers."""
    before = set(algorithm_names())
    yield
    for name in set(algorithm_names()) - before:
        unregister_algorithm(name)


class TestBuiltins:
    def test_paper_algorithms_registered(self):
        assert set(BUILTIN_ALGORITHMS) <= set(algorithm_names())
        for name in BUILTIN_ALGORITHMS:
            assert get_algorithm(name).name == name

    def test_builtins_protected(self):
        with pytest.raises(AllocationError):
            unregister_algorithm("TI-CSRM")
        with pytest.raises(AllocationError):
            register_algorithm("TI-CSRM", "cs", "rate", replace=True)

    def test_unknown_algorithm_lists_options(self):
        with pytest.raises(AllocationError, match="TI-CSRM"):
            get_algorithm("TI-MAGIC")

    def test_ticsrm_label_tracks_window(self):
        definition = get_algorithm("TI-CSRM")
        assert definition.display(EngineSpec()) == "TI-CSRM"
        assert definition.display(EngineSpec(window=40)) == "TI-CSRM(40)"
        assert definition.supports_window
        assert not get_algorithm("TI-CARM").supports_window


class TestRegistration:
    def test_invalid_rules_rejected(self, clean_registry):
        with pytest.raises(AllocationError):
            register_algorithm("bad-rule", "magic", "rate")
        with pytest.raises(AllocationError):
            register_algorithm("bad-selector", "cs", "magic")
        with pytest.raises(AllocationError):
            register_algorithm("", "cs", "rate")
        with pytest.raises(AllocationError):
            register_algorithm("bad-overrides", "cs", "rate",
                              spec_overrides={"epsilon": 1})

    def test_duplicate_needs_replace(self, clean_registry):
        register_algorithm("dup", "cs", "rate")
        with pytest.raises(AllocationError):
            register_algorithm("dup", "ca", "revenue")
        register_algorithm("dup", "ca", "revenue", replace=True)
        assert get_algorithm("dup").candidate_rule == "ca"

    def test_string_rule_recombination_runs(self, clean_registry):
        # The paper's observation made executable: a *new* algorithm is
        # just a new (rule, selector) pairing.
        register_algorithm("CA-RR", "ca", "round_robin")
        result = solve(make_tiny_instance(), "CA-RR", SPEC)
        assert result.algorithm == "CA-RR"
        assert result.total_revenue >= 0.0

    def test_spec_overrides_pin_fields(self, clean_registry):
        register_algorithm(
            "TI-CSRM-w2", "cs", "rate", spec_overrides={"window": 2}
        )
        result = solve(make_tiny_instance(), "TI-CSRM-w2", SPEC)
        assert result.extras["engine_spec"]["window"] == 2
        # Registered overrides beat caller values: they define the algorithm.
        result = solve(make_tiny_instance(), "TI-CSRM-w2", SPEC, window=9)
        assert result.extras["engine_spec"]["window"] == 2


class TestCallableRules:
    def test_callable_candidate_and_selector(self, clean_registry):
        import numpy as np

        def cheapest_first(engine, ad):
            # Candidate: the cheapest unassigned node for this ad.
            allowed = ~engine._assigned
            if not allowed.any():
                return None
            costs = np.where(allowed, engine.instance.incentives[ad], np.inf)
            return int(costs.argmin())

        def first_candidate(engine, candidates):
            return candidates[0]

        register_algorithm("Cheapest-First", cheapest_first, first_candidate)
        inst = make_tiny_instance()
        result = solve(inst, "Cheapest-First", SPEC)
        assert result.algorithm == "Cheapest-First"
        # Node 0 is the cheapest (incentives are linspace(0.5, 1.5)), so
        # ad 0 seeds it first.
        assert result.allocation.seeds(0)[0] == 0
        # Lazy caching is disabled for callable rules; the echoed spec
        # records what actually ran.
        assert result.extras["lazy_candidates"] is False

    def test_selector_must_return_candidate(self, clean_registry):
        register_algorithm(
            "Broken", "ca", lambda engine, candidates: ("not", "a", "tuple", 0.0)
        )
        with pytest.raises(AllocationError):
            solve(make_tiny_instance(), "Broken", SPEC)

    def test_harness_and_grid_accept_registered(self, clean_registry, tmp_path):
        from repro.experiments.grid import GridSpec

        register_algorithm("CA-RR2", "ca", "round_robin")
        spec = GridSpec(
            name="custom",
            datasets=({"name": "epinions_syn", "n": 120, "h": 2,
                       "singleton_rr_samples": 300},),
            algorithms=("CA-RR2",),
            config={"eps": 1.0, "theta_cap": 100},
        )
        assert spec.cells()[0].algorithm == "CA-RR2"
