"""Tests for forward cascade simulation."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.diffusion.simulate import simulate_cascade, simulate_cascade_with_steps


class TestSimulateCascade:
    def test_deterministic_chain_activates_all(self, path_graph):
        active = simulate_cascade(path_graph, np.ones(path_graph.m), [0], rng=0)
        assert active.all()

    def test_zero_probabilities_activate_only_seeds(self, path_graph):
        active = simulate_cascade(path_graph, np.zeros(path_graph.m), [1], rng=0)
        assert active.tolist() == [False, True, False, False]

    def test_no_backward_influence(self, path_graph):
        active = simulate_cascade(path_graph, np.ones(path_graph.m), [2], rng=0)
        assert active.tolist() == [False, False, True, True]

    def test_empty_seed_set(self, path_graph):
        active = simulate_cascade(path_graph, np.ones(path_graph.m), [], rng=0)
        assert not active.any()

    def test_duplicate_seeds_harmless(self, path_graph):
        active = simulate_cascade(path_graph, np.zeros(path_graph.m), [0, 0], rng=0)
        assert active.sum() == 1

    def test_probability_shape_checked(self, path_graph):
        with pytest.raises(EstimationError):
            simulate_cascade(path_graph, np.ones(99), [0])

    def test_stochastic_edge_rate(self, star_graph, rng):
        # Center with 5 leaves at p = 0.4: mean activations ≈ 1 + 2.
        probs = np.full(star_graph.m, 0.4)
        totals = [
            simulate_cascade(star_graph, probs, [0], rng).sum() for _ in range(800)
        ]
        assert np.mean(totals) == pytest.approx(1 + 5 * 0.4, abs=0.2)


class TestSimulateWithSteps:
    def test_step_progression(self, path_graph):
        steps = simulate_cascade_with_steps(path_graph, np.ones(path_graph.m), [0], rng=0)
        assert steps.tolist() == [0, 1, 2, 3]

    def test_inactive_marked_minus_one(self, path_graph):
        steps = simulate_cascade_with_steps(path_graph, np.zeros(path_graph.m), [1], rng=0)
        assert steps.tolist() == [-1, 0, -1, -1]

    def test_multiple_seeds_step_zero(self, diamond_graph):
        steps = simulate_cascade_with_steps(
            diamond_graph, np.ones(diamond_graph.m), [1, 2], rng=0
        )
        assert steps[1] == 0 and steps[2] == 0
        assert steps[3] == 1
        assert steps[0] == -1

    def test_consistent_with_simulate(self, diamond_graph, rng):
        probs = np.full(diamond_graph.m, 0.5)
        seed = 77
        active = simulate_cascade(diamond_graph, probs, [0], rng=np.random.default_rng(seed))
        steps = simulate_cascade_with_steps(
            diamond_graph, probs, [0], rng=np.random.default_rng(seed)
        )
        assert np.array_equal(active, steps >= 0)
