"""Tests for the Table 1 statistics helpers."""

from repro.graph.digraph import DiGraph
from repro.graph.stats import compute_stats, is_symmetric


class TestSymmetry:
    def test_directed_graph_not_symmetric(self, path_graph):
        assert not is_symmetric(path_graph)

    def test_bidirected_graph_symmetric(self, path_graph):
        assert is_symmetric(path_graph.to_bidirected())

    def test_empty_graph_symmetric(self):
        assert is_symmetric(DiGraph(3, [], []))


class TestStats:
    def test_counts(self, star_graph):
        stats = compute_stats(star_graph, name="star")
        assert stats.n_nodes == 6
        assert stats.n_edges == 5
        assert stats.graph_type == "directed"
        assert stats.max_out_degree == 5
        assert stats.mean_out_degree == 5 / 6

    def test_type_inference_undirected(self, path_graph):
        stats = compute_stats(path_graph.to_bidirected())
        assert stats.graph_type == "undirected"

    def test_type_override(self, path_graph):
        stats = compute_stats(path_graph, graph_type="custom")
        assert stats.graph_type == "custom"

    def test_as_row_keys(self, star_graph):
        row = compute_stats(star_graph, name="star").as_row()
        assert row["dataset"] == "star"
        assert row["#nodes"] == 6
        assert row["#edges"] == 5

    def test_empty_graph(self):
        stats = compute_stats(DiGraph(0, [], []))
        assert stats.n_nodes == 0
        assert stats.mean_out_degree == 0.0
