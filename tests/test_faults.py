"""Chaos suite: deterministic fault injection across the execution layer.

Exercises the fault-tolerance contract of docs/ARCHITECTURE.md §11 with
:mod:`repro.faults` plans instead of real resource exhaustion:

* a worker killed mid-batch is respawned and the batch's output stays
  bit-identical per ``(seed, workers)``;
* a pool past its respawn budget — or whose shared memory cannot be
  created — degrades the backend to in-process execution of the same
  shard plan, still bit-identical;
* a hung worker (injected shard delay) trips the heartbeat supervisor;
* grid cells that raise or time out are quarantined as typed manifest
  rows, retried with backoff, and re-attempted on resume;
* a poisoned warm session group is torn down without leaking its pool.

The worker count honours ``REPRO_TEST_WORKERS`` (default 2), as in
``test_rrset_backend.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import (
    CellTimeoutError,
    EstimationError,
    FaultInjectedError,
    PoolDegradedError,
    SpecError,
    WorkerCrashError,
)
from repro.experiments.grid import (
    GridSpec,
    clear_grid_caches,
    load_manifest,
    run_grid,
)
from repro.faults import (
    FaultPlan,
    FaultRule,
    active_fault_plan,
    fault_plan,
    install_fault_plan,
)
from repro.graph.generators import powerlaw_configuration
from repro.rrset import backend as backend_module
from repro.rrset.backend import (
    FAULT_COUNTER_KEYS,
    ParallelBackend,
    SharedGraphPool,
    reap_orphan_shm,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2") or 2)
#: Chaos tests need a real pool, so never fewer than two workers.
POOL_WORKERS = max(WORKERS, 2)

GRID = {
    "name": "chaos",
    "datasets": [
        {"name": "epinions_syn", "n": 120, "h": 2, "singleton_rr_samples": 400}
    ],
    "algorithms": ["TI-CSRM"],
    "alphas": [0.5, 1.0],
    "seed": 11,
    "config": {"eps": 1.0, "theta_cap": 120},
}


@pytest.fixture(autouse=True)
def _clean_state():
    clear_grid_caches()
    install_fault_plan(None)
    yield
    install_fault_plan(None)
    clear_grid_caches()


@pytest.fixture(scope="module")
def mid_graph():
    g = powerlaw_configuration(300, mean_degree=5.0, exponent=2.2, seed=5)
    probs = np.random.default_rng(5).random(g.m) * 0.3
    return g, probs


def _strip(row: dict) -> dict:
    return {k: v for k, v in row.items() if k != "runtime_s"}


# ----------------------------------------------------------------------
# FaultPlan semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(SpecError, match="unknown fault seam"):
            FaultRule(seam="nope")
        with pytest.raises(SpecError, match="at >= 0"):
            FaultRule(seam="cell.raise", at=-1)
        with pytest.raises(SpecError, match="count >= 1"):
            FaultRule(seam="cell.raise", count=0)
        with pytest.raises(SpecError, match="probability"):
            FaultRule(seam="cell.raise", probability=1.5)
        with pytest.raises(SpecError, match="delay_s"):
            FaultRule(seam="shard.delay", delay_s=-1.0)
        with pytest.raises(SpecError, match="must be FaultRule"):
            FaultPlan(["worker.kill"])

    def test_ordinal_window(self):
        plan = FaultPlan([FaultRule(seam="cell.raise", at=1, count=2)])
        fired = [plan.fire("cell.raise") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_key_restricts_but_ordinals_stay_global(self):
        plan = FaultPlan([FaultRule(seam="cell.raise", at=0, count=2, key="b")])
        # Arrival 0 has the wrong key; arrival 1 (inside the window)
        # matches; arrival 2 is past the window even with the right key.
        assert plan.fire("cell.raise", key="a") is None
        assert plan.fire("cell.raise", key="b") is not None
        assert plan.fire("cell.raise", key="b") is None

    def test_probabilistic_rules_replay_after_reset(self):
        plan = FaultPlan(
            [FaultRule(seam="cell.raise", probability=0.5)], seed=123
        )
        first = [plan.fire("cell.raise") is not None for _ in range(32)]
        plan.reset()
        second = [plan.fire("cell.raise") is not None for _ in range(32)]
        assert first == second
        assert any(first) and not all(first)  # actually Bernoulli

    def test_maybe_raise_and_stats(self):
        plan = FaultPlan([FaultRule(seam="cell.raise", at=0, message="boom")])
        with pytest.raises(FaultInjectedError, match="boom"):
            plan.maybe_raise("cell.raise")
        plan.maybe_raise("cell.raise")  # window passed: no-op
        assert plan.stats == {"cell.raise": {"arrivals": 2, "fired": 1}}

    def test_unknown_seam_rejected_at_fire_time(self):
        with pytest.raises(SpecError, match="unknown fault seam"):
            FaultPlan().fire("nope")

    def test_install_and_scoped_restore(self):
        assert active_fault_plan() is None
        plan = FaultPlan()
        with fault_plan(plan) as installed:
            assert installed is plan and active_fault_plan() is plan
            inner = FaultPlan()
            with fault_plan(inner):
                assert active_fault_plan() is inner
            assert active_fault_plan() is plan
        assert active_fault_plan() is None
        with pytest.raises(SpecError, match="FaultPlan"):
            install_fault_plan("not a plan")


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    def _healthy(self, mid_graph, count=400, seed=21):
        g, probs = mid_graph
        with ParallelBackend(g, probs, workers=POOL_WORKERS) as backend:
            return backend.sample_batch_flat(count, np.random.default_rng(seed))

    def test_killed_worker_respawns_bit_identically(self, mid_graph):
        g, probs = mid_graph
        reference = self._healthy(mid_graph)
        plan = FaultPlan([FaultRule(seam="worker.kill", at=0)])
        with ParallelBackend(
            g, probs, workers=POOL_WORKERS, faults=plan
        ) as backend:
            out = backend.sample_batch_flat(400, np.random.default_rng(21))
            assert not backend.degraded
            assert backend.fault_counters["worker_respawns"] >= 1
            assert backend.fault_counters["shards_recovered"] >= 1
            assert backend.fault_counters["pool_degraded"] == 0
        assert plan.stats["worker.kill"]["fired"] == 1
        assert np.array_equal(reference[0], out[0])
        assert np.array_equal(reference[1], out[1])

    def test_respawn_budget_exhaustion_degrades_bit_identically(self, mid_graph):
        g, probs = mid_graph
        reference = self._healthy(mid_graph)
        # Every dispatched shard is killed, so the pool burns through its
        # respawn budget and must declare itself unrecoverable.
        plan = FaultPlan([FaultRule(seam="worker.kill", at=0, count=10_000)])
        with ParallelBackend(
            g, probs, workers=POOL_WORKERS, faults=plan
        ) as backend:
            out = backend.sample_batch_flat(400, np.random.default_rng(21))
            assert backend.degraded
            assert backend.fault_counters["pool_degraded"] == 1
            # Degraded mode keeps working (and stays deterministic).
            again = backend.sample_batch_flat(400, np.random.default_rng(21))
        assert np.array_equal(reference[0], out[0])
        assert np.array_equal(reference[1], out[1])
        assert np.array_equal(out[0], again[0])

    def test_failed_pool_raises_for_other_users(self, mid_graph):
        g, probs = mid_graph
        plan = FaultPlan([FaultRule(seam="worker.kill", at=0, count=10_000)])
        pool = SharedGraphPool(
            g, POOL_WORKERS, max_respawns=POOL_WORKERS, faults=plan
        )
        try:
            name = pool.register_probs(probs)
            seqs = np.random.SeedSequence(1).spawn(2)
            with pytest.raises(PoolDegradedError):
                pool.sample_shards(name, [5, 5], seqs)
            assert pool.failed
            # A failed pool refuses new batches instead of hanging.
            with pytest.raises(PoolDegradedError):
                pool.sample_shards(name, [5, 5], seqs)
        finally:
            pool.close()

    def test_shm_attach_failure_degrades_to_serial_plan(self, mid_graph):
        g, probs = mid_graph
        reference = self._healthy(mid_graph)
        plan = FaultPlan([FaultRule(seam="shm.attach", at=0)])
        with ParallelBackend(
            g, probs, workers=POOL_WORKERS, faults=plan
        ) as backend:
            assert backend.degraded
            assert backend.fault_counters["pool_degraded"] == 1
            out = backend.sample_batch_flat(400, np.random.default_rng(21))
        assert np.array_equal(reference[0], out[0])
        assert np.array_equal(reference[1], out[1])

    def test_hung_worker_trips_heartbeat(self, mid_graph):
        g, probs = mid_graph
        reference = self._healthy(mid_graph)
        plan = FaultPlan([FaultRule(seam="shard.delay", at=0, delay_s=5.0)])
        pool = SharedGraphPool(
            g,
            POOL_WORKERS,
            heartbeat_s=0.4,
            poll_s=0.1,
            faults=plan,
        )
        try:
            backend = ParallelBackend(g, probs, pool=pool)
            out = backend.sample_batch_flat(400, np.random.default_rng(21))
            assert pool.counters["worker_respawns"] >= POOL_WORKERS
            assert not backend.degraded
        finally:
            pool.close()
        assert np.array_equal(reference[0], out[0])
        assert np.array_equal(reference[1], out[1])

    def test_killed_worker_recovery_is_kernel_agnostic(self, mid_graph):
        # Recovery must stay bit-identical across the kernel seam: a
        # numba-kernel pool that loses a worker mid-batch still matches
        # the healthy numpy-kernel reference exactly (the shard plan,
        # not the kernel or the process topology, defines the streams).
        g, probs = mid_graph
        reference = self._healthy(mid_graph)
        plan = FaultPlan([FaultRule(seam="worker.kill", at=0)])
        with ParallelBackend(
            g, probs, workers=POOL_WORKERS, faults=plan, kernel="numba"
        ) as backend:
            out = backend.sample_batch_flat(400, np.random.default_rng(21))
            assert not backend.degraded
            assert backend.fault_counters["worker_respawns"] >= 1
        assert plan.stats["worker.kill"]["fired"] == 1
        assert np.array_equal(reference[0], out[0])
        assert np.array_equal(reference[1], out[1])

    def test_hung_worker_recovery_is_kernel_agnostic(self, mid_graph):
        g, probs = mid_graph
        reference = self._healthy(mid_graph)
        plan = FaultPlan([FaultRule(seam="shard.delay", at=0, delay_s=5.0)])
        pool = SharedGraphPool(
            g,
            POOL_WORKERS,
            heartbeat_s=0.4,
            poll_s=0.1,
            faults=plan,
            kernel="numba",
        )
        try:
            backend = ParallelBackend(g, probs, pool=pool, kernel="numba")
            out = backend.sample_batch_flat(400, np.random.default_rng(21))
            assert pool.counters["worker_respawns"] >= POOL_WORKERS
            assert not backend.degraded
        finally:
            pool.close()
        assert np.array_equal(reference[0], out[0])
        assert np.array_equal(reference[1], out[1])

    def test_pool_kernel_mismatch_rejected(self, mid_graph):
        g, probs = mid_graph
        pool = SharedGraphPool(g, POOL_WORKERS, kernel="numpy")
        try:
            with pytest.raises(EstimationError, match="one kernel"):
                ParallelBackend(g, probs, pool=pool, kernel="numba")
        finally:
            pool.close()

    def test_degraded_backend_close_is_idempotent(self, mid_graph):
        g, probs = mid_graph
        plan = FaultPlan([FaultRule(seam="shm.attach", at=0)])
        backend = ParallelBackend(g, probs, workers=POOL_WORKERS, faults=plan)
        assert backend.degraded
        backend.close()
        backend.close()

    def test_session_stats_surface_fault_counters(self, mid_graph):
        from repro.api.session import AllocationSession

        g, _ = mid_graph
        with AllocationSession(g) as session:
            stats = session.stats
            for key in FAULT_COUNTER_KEYS:
                assert stats[key] == 0
            assert stats["pool_degraded_state"] is False


class TestOrphanReaper:
    def test_reaps_dead_pid_segments_only(self, tmp_path):
        dead_pid = int(
            subprocess.run(
                [sys.executable, "-c", "import os; print(os.getpid())"],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
        )
        orphan = f"repro_{dead_pid}_0_abcd1234"
        live = f"repro_{os.getpid()}_0_abcd1234"
        unrelated = "psm_something_else"
        for name in (orphan, live, unrelated):
            (tmp_path / name).write_bytes(b"x")
        reaped = reap_orphan_shm(directory=str(tmp_path))
        assert reaped == [orphan]
        assert not (tmp_path / orphan).exists()
        assert (tmp_path / live).exists()
        assert (tmp_path / unrelated).exists()

    def test_missing_directory_is_noop(self, tmp_path):
        assert reap_orphan_shm(directory=str(tmp_path / "nope")) == []


# ----------------------------------------------------------------------
# Grid: retry, quarantine, resume
# ----------------------------------------------------------------------
class TestGridQuarantine:
    def test_execution_block_validates_fault_knobs(self):
        spec = GridSpec.from_dict(
            {
                **GRID,
                "execution": {
                    "cell_timeout_s": 5,
                    "max_retries": 2,
                    "retry_backoff_s": 0.1,
                },
            }
        )
        assert spec.cell_timeout_s == 5.0
        assert spec.max_retries == 2
        assert spec.retry_backoff_s == 0.1
        assert GridSpec.from_dict(spec.to_dict()) == spec
        # The knobs change how cells are driven, never which cells
        # exist, so the spec key (and hence resume) is unaffected.
        assert spec.spec_key() == GridSpec.from_dict(GRID).spec_key()
        for bad in (
            {"cell_timeout_s": 0},
            {"cell_timeout_s": "fast"},
            {"max_retries": -1},
            {"max_retries": 1.5},
            {"retry_backoff_s": -0.1},
            {"flaky": True},
        ):
            with pytest.raises(SpecError):
                GridSpec.from_dict({**GRID, "execution": bad})

    def test_injected_failure_quarantines_then_resume_completes(self, tmp_path):
        spec = GridSpec.from_dict(GRID)
        target = spec.cells()[0].cell_id
        manifest = str(tmp_path / "chaos.jsonl")
        plan = FaultPlan([FaultRule(seam="cell.raise", key=target, count=10)])
        with fault_plan(plan):
            rows = run_grid(spec, manifest, max_retries=0, retry_backoff=0.0)
        assert [row["kind"] for row in rows] == ["cell_error", "cell"]
        error = rows[0]
        assert error["cell_id"] == target
        assert error["quarantined"] is True
        assert error["attempts"] == 1
        assert error["error_type"] == "FaultInjectedError"
        assert error["dataset"] == "epinions_syn"  # axes survive for reports
        _, manifest_rows = load_manifest(manifest)
        assert [row["kind"] for row in manifest_rows] == ["cell_error", "cell"]

        # Resume without the plan: only the quarantined cell re-runs,
        # and the grid ends identical to a never-faulted run.
        resumed = run_grid(spec, manifest)
        assert [row["kind"] for row in resumed] == ["cell", "cell"]
        clean = run_grid(spec, str(tmp_path / "clean.jsonl"))
        assert [_strip(r) for r in resumed] == [_strip(r) for r in clean]
        # The manifest keeps the quarantine row as history.
        _, manifest_rows = load_manifest(manifest)
        kinds = [row["kind"] for row in manifest_rows]
        assert kinds.count("cell_error") == 1 and kinds.count("cell") == 2

    def test_retry_recovers_transient_failure(self, tmp_path):
        spec = GridSpec.from_dict(GRID)
        target = spec.cells()[0].cell_id
        sleeps: list[float] = []
        plan = FaultPlan(
            [FaultRule(seam="cell.raise", key=target, at=0, count=2)]
        )
        with fault_plan(plan):
            rows = run_grid(
                spec,
                str(tmp_path / "retry.jsonl"),
                max_retries=3,
                retry_backoff=0.5,
                sleep=sleeps.append,
            )
        assert [row["kind"] for row in rows] == ["cell", "cell"]
        assert rows[0]["attempts"] == 3  # two injected failures, then success
        assert "attempts" not in rows[1]  # first-try cells stay unannotated
        assert sleeps == [0.5, 1.0]  # exponential backoff between attempts

    def test_cell_timeout_quarantines_and_resumes(self, tmp_path):
        spec = GridSpec.from_dict(GRID)
        target = spec.cells()[0].cell_id
        manifest = str(tmp_path / "timeout.jsonl")
        plan = FaultPlan(
            [FaultRule(seam="cell.delay", key=target, delay_s=5.0)]
        )
        with fault_plan(plan):
            rows = run_grid(
                spec, manifest, cell_timeout=0.3, max_retries=0, retry_backoff=0.0
            )
        assert rows[0]["kind"] == "cell_error"
        assert rows[0]["error_type"] == "CellTimeoutError"
        assert rows[1]["kind"] == "cell"
        resumed = run_grid(spec, manifest, cell_timeout=0.3)
        assert [row["kind"] for row in resumed] == ["cell", "cell"]

    def test_warm_group_poisoning_reopens_session_without_leaks(self, tmp_path):
        spec = GridSpec.from_dict(GRID)
        target = spec.cells()[0].cell_id
        pools_before = set(backend_module._LIVE_POOLS)
        plan = FaultPlan([FaultRule(seam="cell.raise", key=target, at=0)])
        with fault_plan(plan):
            rows = run_grid(
                spec,
                str(tmp_path / "warm.jsonl"),
                execution="warm_per_dataset",
                config_overrides={
                    "workers": POOL_WORKERS,
                    "sampler_backend": "parallel",
                },
                max_retries=1,
                retry_backoff=0.0,
            )
        assert [row["kind"] for row in rows] == ["cell", "cell"]
        assert rows[0]["attempts"] == 2
        # The poisoned group was torn down and reopened: the retried
        # cell ran in a *fresh* session (solve_index restarts at 0).
        assert rows[0]["session"]["solve_index"] == 0
        # No worker pool leaked past its session's teardown.
        assert set(backend_module._LIVE_POOLS) <= pools_before

    def test_cell_timeout_error_importable_from_repro(self):
        import repro

        assert repro.CellTimeoutError is CellTimeoutError
        assert issubclass(repro.FaultInjectedError, repro.ReproError)
        assert repro.FaultPlan is FaultPlan


class TestCliQuarantine:
    def test_grid_exit_code_and_quarantine_table(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import EXIT_QUARANTINED, main

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        spec_path = tmp_path / "chaos.json"
        spec_path.write_text(json.dumps(GRID))
        manifest = str(tmp_path / "cli.jsonl")
        target = GridSpec.from_dict(GRID).cells()[0].cell_id
        plan = FaultPlan([FaultRule(seam="cell.raise", key=target, count=10)])
        with fault_plan(plan):
            code = main(
                ["grid", "--spec", str(spec_path), "--manifest", manifest]
            )
        out = capsys.readouterr().out
        assert code == EXIT_QUARANTINED == 3
        assert "QUARANTINED" in out
        assert "FaultInjectedError" in out
        # Re-running the same command (fault gone) completes the grid.
        code = main(["grid", "--spec", str(spec_path), "--manifest", manifest])
        out = capsys.readouterr().out
        assert code == 0
        assert "quarantined" not in out
