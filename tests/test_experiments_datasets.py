"""Tests for the synthetic analog dataset builders."""

import numpy as np
import pytest

from repro.errors import InstanceError
from repro.experiments.datasets import (
    DATASET_BUILDERS,
    Dataset,
    build_dataset,
    build_dblp_syn,
    build_livejournal_syn,
    clear_dataset_cache,
)


class TestRegistry:
    def test_four_analogs_registered(self):
        assert set(DATASET_BUILDERS) == {
            "flixster_syn",
            "epinions_syn",
            "dblp_syn",
            "livejournal_syn",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(InstanceError):
            build_dataset("snapchat_syn")

    def test_cache_returns_same_object(self):
        a = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        b = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        assert a is b

    def test_cache_cleared(self):
        a = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        clear_dataset_cache()
        b = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        assert a is not b


class TestFlixsterAnalog(object):
    def test_structure(self, quick_dataset):
        ds = quick_dataset
        assert ds.graph.n == 400
        assert ds.h == 4
        assert len(ds.ad_probs) == 4
        assert len(ds.budgets) == 4
        # Pure-competition pairs share distributions and probabilities.
        assert ds.gammas[0] == ds.gammas[1]
        assert np.array_equal(ds.ad_probs[0], ds.ad_probs[1])

    def test_spreads_floor_at_one(self, quick_dataset):
        for spread in quick_dataset.singleton_spreads:
            assert (spread >= 1.0).all()

    def test_budgets_exceed_top_singleton_payment(self, quick_dataset):
        """The non-degeneracy regime: every ad can afford its best seed."""
        ds = quick_dataset
        for i in range(ds.h):
            top_revenue = ds.cpes[i] * ds.max_singleton_spread(i)
            assert ds.budgets[i] >= 2.0 * top_revenue

    def test_opt_lower_bounds(self, quick_dataset):
        bounds = quick_dataset.opt_lower_bounds()
        assert len(bounds) == quick_dataset.h
        assert all(b >= 1.0 for b in bounds)


class TestScalabilityAnalogs:
    def test_dblp_is_undirected(self):
        ds = build_dblp_syn(n=500, h=4, seed=1)
        from repro.graph.stats import is_symmetric

        assert is_symmetric(ds.graph)
        assert ds.graph_type == "undirected"
        assert ds.spread_source == "out-degree proxy"

    def test_livejournal_rmat(self):
        ds = build_livejournal_syn(scale=8, h=4, seed=2)
        assert ds.graph.n == 256
        assert ds.cpes == [1.0] * 4


class TestBuildInstance:
    def test_default_instance(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0)
        assert inst.h == quick_dataset.h
        assert inst.n == quick_dataset.graph.n

    def test_h_cycling(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0, h=7)
        assert inst.h == 7
        # Ad 4 cycles back to source ad 0.
        assert inst.cpe(4) == quick_dataset.cpes[0]
        assert np.array_equal(inst.ad_probs[4], quick_dataset.ad_probs[0])

    def test_budget_override(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0, budget_override=500.0)
        assert all(inst.budget(i) == 500.0 for i in range(inst.h))

    def test_incentive_models_differ(self, quick_dataset):
        lin = quick_dataset.build_instance("linear", 1.0)
        const = quick_dataset.build_instance("constant", 1.0)
        assert not np.allclose(lin.incentives[0], const.incentives[0])

    def test_invalid_h(self, quick_dataset):
        with pytest.raises(InstanceError):
            quick_dataset.build_instance("linear", 1.0, h=0)
