"""Tests for the synthetic analog dataset builders."""

import numpy as np
import pytest

from repro.errors import InstanceError
from repro.experiments.datasets import (
    DATASET_BUILDERS,
    PROB_MODELS,
    Dataset,
    build_dataset,
    build_dblp_syn,
    build_edge_list_dataset,
    build_livejournal_syn,
    clear_dataset_cache,
    register_edge_list_dataset,
    unregister_dataset,
)


class TestRegistry:
    def test_four_analogs_registered(self):
        assert set(DATASET_BUILDERS) == {
            "flixster_syn",
            "epinions_syn",
            "dblp_syn",
            "livejournal_syn",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(InstanceError):
            build_dataset("snapchat_syn")

    def test_cache_returns_same_object(self):
        a = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        b = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        assert a is b

    def test_cache_cleared(self):
        a = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        clear_dataset_cache()
        b = build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500)
        assert a is not b


class TestFlixsterAnalog(object):
    def test_structure(self, quick_dataset):
        ds = quick_dataset
        assert ds.graph.n == 400
        assert ds.h == 4
        assert len(ds.ad_probs) == 4
        assert len(ds.budgets) == 4
        # Pure-competition pairs share distributions and probabilities.
        assert ds.gammas[0] == ds.gammas[1]
        assert np.array_equal(ds.ad_probs[0], ds.ad_probs[1])

    def test_spreads_floor_at_one(self, quick_dataset):
        for spread in quick_dataset.singleton_spreads:
            assert (spread >= 1.0).all()

    def test_budgets_exceed_top_singleton_payment(self, quick_dataset):
        """The non-degeneracy regime: every ad can afford its best seed."""
        ds = quick_dataset
        for i in range(ds.h):
            top_revenue = ds.cpes[i] * ds.max_singleton_spread(i)
            assert ds.budgets[i] >= 2.0 * top_revenue

    def test_opt_lower_bounds(self, quick_dataset):
        bounds = quick_dataset.opt_lower_bounds()
        assert len(bounds) == quick_dataset.h
        assert all(b >= 1.0 for b in bounds)


class TestScalabilityAnalogs:
    def test_dblp_is_undirected(self):
        ds = build_dblp_syn(n=500, h=4, seed=1)
        from repro.graph.stats import is_symmetric

        assert is_symmetric(ds.graph)
        assert ds.graph_type == "undirected"
        assert ds.spread_source == "out-degree proxy"

    def test_livejournal_rmat(self):
        ds = build_livejournal_syn(scale=8, h=4, seed=2)
        assert ds.graph.n == 256
        assert ds.cpes == [1.0] * 4


@pytest.fixture
def edge_list_file(tmp_path):
    from repro.graph.generators import erdos_renyi
    from repro.graph.io import save_edge_list

    graph = erdos_renyi(60, 0.08, seed=8)
    path = tmp_path / "crawl.txt"
    save_edge_list(graph, str(path))
    return str(path)


class TestEdgeListDataset:
    def test_wc_dataset_structure(self, edge_list_file):
        ds = build_edge_list_dataset(
            edge_list_file, name="crawl", prob_model="wc", h=3, seed=5
        )
        assert isinstance(ds, Dataset)
        assert ds.name == "crawl" and ds.h == 3
        assert ds.graph.n == 60
        assert np.array_equal(ds.ad_probs[0], ds.ad_probs[1])  # pure competition
        assert ds.meta["prob_model"] == "wc"
        assert ds.meta["remapped"] is True

    def test_tic_dataset_has_per_ad_probs(self, edge_list_file):
        ds = build_edge_list_dataset(
            edge_list_file, prob_model="tic", h=4, n_topics=4, seed=5
        )
        assert len(ds.ad_probs) == 4
        assert len(ds.gammas) == 4

    def test_trivalency_dataset(self, edge_list_file):
        ds = build_edge_list_dataset(
            edge_list_file, prob_model="trivalency", h=2, seed=5
        )
        levels = {0.1, 0.01, 0.001}
        assert set(np.unique(ds.ad_probs[0])) <= levels

    def test_rr_spread_mode(self, edge_list_file):
        ds = build_edge_list_dataset(
            edge_list_file,
            prob_model="wc",
            h=2,
            seed=5,
            spread_mode="rr",
            singleton_rr_samples=500,
        )
        assert ds.spread_source == "rr(500)"
        assert (ds.singleton_spreads[0] >= 1.0).all()

    def test_name_defaults_to_file_stem(self, edge_list_file):
        ds = build_edge_list_dataset(edge_list_file, h=2, seed=5)
        assert ds.name == "crawl"

    def test_unknown_prob_model_rejected(self, edge_list_file):
        assert "wc" in PROB_MODELS
        with pytest.raises(InstanceError, match="prob_model"):
            build_edge_list_dataset(edge_list_file, prob_model="magic")

    def test_unknown_spread_mode_rejected(self, edge_list_file):
        with pytest.raises(InstanceError, match="spread_mode"):
            build_edge_list_dataset(edge_list_file, spread_mode="magic")

    def test_deterministic_per_seed(self, edge_list_file):
        a = build_edge_list_dataset(edge_list_file, h=3, seed=5)
        b = build_edge_list_dataset(edge_list_file, h=3, seed=5)
        assert a.cpes == b.cpes and a.budgets == b.budgets

    def test_instance_builds_and_runs(self, edge_list_file):
        from repro.core.ticarm import ti_carm

        ds = build_edge_list_dataset(edge_list_file, h=2, seed=5)
        inst = ds.build_instance(incentive_model="linear", alpha=0.5)
        result = ti_carm(
            inst, eps=1.0, theta_cap=100, opt_lower=ds.opt_lower_bounds(), seed=1
        )
        assert result.total_revenue >= 0


class TestRegistration:
    def test_register_and_build(self, edge_list_file):
        register_edge_list_dataset("crawl_test", edge_list_file, h=2, seed=5)
        try:
            ds = build_dataset("crawl_test")
            assert ds.name == "crawl_test"
            # call-site kwargs override registration defaults
            ds3 = build_dataset("crawl_test", h=3)
            assert ds3.h == 3
        finally:
            unregister_dataset("crawl_test")
        assert "crawl_test" not in DATASET_BUILDERS

    def test_builtin_names_protected(self, edge_list_file):
        with pytest.raises(InstanceError):
            register_edge_list_dataset("epinions_syn", edge_list_file)
        with pytest.raises(InstanceError):
            unregister_dataset("epinions_syn")

    def test_cpe_override(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0, cpe_override=2.5)
        assert all(inst.cpe(i) == 2.5 for i in range(inst.h))


class TestBuildInstance:
    def test_default_instance(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0)
        assert inst.h == quick_dataset.h
        assert inst.n == quick_dataset.graph.n

    def test_h_cycling(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0, h=7)
        assert inst.h == 7
        # Ad 4 cycles back to source ad 0.
        assert inst.cpe(4) == quick_dataset.cpes[0]
        assert np.array_equal(inst.ad_probs[4], quick_dataset.ad_probs[0])

    def test_budget_override(self, quick_dataset):
        inst = quick_dataset.build_instance("linear", 1.0, budget_override=500.0)
        assert all(inst.budget(i) == 500.0 for i in range(inst.h))

    def test_incentive_models_differ(self, quick_dataset):
        lin = quick_dataset.build_instance("linear", 1.0)
        const = quick_dataset.build_instance("constant", 1.0)
        assert not np.allclose(lin.incentives[0], const.incentives[0])

    def test_invalid_h(self, quick_dataset):
        with pytest.raises(InstanceError):
            quick_dataset.build_instance("linear", 1.0, h=0)
