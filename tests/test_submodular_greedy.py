"""Tests for the generic greedy over independence systems."""

import pytest

from repro.submodular.functions import CoverageFunction, ModularFunction
from repro.submodular.greedy import exhaustive_maximum, greedy_independence_system


def cardinality_constraint(k):
    return lambda subset: len(subset) <= k


class TestGreedy:
    def test_cardinality_coverage(self):
        f = CoverageFunction({0: [1, 2, 3], 1: [3, 4], 2: [5], 3: [1]})
        solution, order = greedy_independence_system(f, cardinality_constraint(2))
        assert order[0] == 0  # biggest cover first
        assert len(solution) == 2
        assert f(solution) == 4.0  # 3 from element 0 plus 1 more

    def test_classic_1_minus_1_over_e(self):
        # Greedy on coverage under cardinality is within (1 - 1/e) of OPT.
        f = CoverageFunction(
            {0: [1, 2], 1: [3, 4], 2: [1, 3], 3: [5], 4: [2, 4, 5]}
        )
        solution, _ = greedy_independence_system(f, cardinality_constraint(2))
        _, opt = exhaustive_maximum(f, cardinality_constraint(2))
        assert f(solution) >= (1 - 1 / 2.72) * opt

    def test_ratio_rule_prefers_efficiency(self):
        f = CoverageFunction({0: [1, 2, 3, 4], 1: [5, 6, 7]})
        cost = ModularFunction({0: 100.0, 1: 1.0})
        solution, order = greedy_independence_system(
            f, cardinality_constraint(1), ratio_denominator=cost
        )
        assert order[0] == 1

    def test_infeasible_elements_skipped(self):
        f = CoverageFunction({0: [1], 1: [2], 2: [3]})

        def no_element_2(subset):
            return 2 not in subset

        solution, _ = greedy_independence_system(f, no_element_2)
        assert 2 not in solution
        assert solution == {0, 1}

    def test_tie_break_callable(self):
        f = CoverageFunction({0: [1], 1: [2], 2: [3]})
        solution, order = greedy_independence_system(
            f, cardinality_constraint(1), tie_break=lambda x: x
        )
        assert order[0] == 2  # all gains equal; largest tie-break key wins


class TestExhaustive:
    def test_finds_true_optimum(self):
        f = CoverageFunction({0: [1, 2], 1: [2, 3], 2: [4]})
        best, value = exhaustive_maximum(f, cardinality_constraint(2))
        # Any pair covers exactly 3 items; singletons cover at most 2.
        assert value == 3.0
        assert len(best) == 2

    def test_respects_constraint(self):
        f = CoverageFunction({0: [1], 1: [2], 2: [3]})
        best, _ = exhaustive_maximum(f, cardinality_constraint(1))
        assert len(best) <= 1

    def test_large_ground_set_rejected(self):
        f = CoverageFunction({i: [i] for i in range(25)})
        with pytest.raises(ValueError):
            exhaustive_maximum(f, cardinality_constraint(2))
