"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _dataset_kwargs, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_validates_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "epinions_syn", "--algorithm", "MAGIC"]
            )


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("flixster_syn", "epinions_syn", "dblp_syn", "livejournal_syn"):
            assert name in out

    def test_tightness(self, capsys):
        assert main(["tightness"]) == 0
        out = capsys.readouterr().out
        assert "optimal revenue" in out
        assert "6.00" in out  # OPT of the Figure-1 instance
        assert "3.00" in out  # adversarial CA-GREEDY
        assert "0.50" in out  # Theorem 2 bound

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "epinions_syn",
                "--algorithm", "TI-CSRM",
                "--incentives", "linear",
                "--alpha", "1.0",
                "--n", "300",
                "--h", "3",
                "--eps", "0.8",
                "--theta-cap", "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TI-CSRM" in out
        assert "revenue" in out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset", "epinions_syn",
                "--models", "constant",
                "--algorithms", "TI-CSRM", "TI-CARM",
                "--n", "300",
                "--h", "3",
                "--eps", "0.8",
                "--theta-cap", "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TI-CSRM" in out and "TI-CARM" in out
        assert "constant" in out

    def test_table2(self, capsys):
        code = main(["table", "--which", "2", "--n", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget mean" in out

    def test_table1(self, capsys):
        code = main(["table", "--which", "1", "--n", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#nodes" in out
        assert "livejournal_syn" in out


class TestSizing:
    def test_livejournal_n_rounds_to_nearest_power_of_two(self):
        # 1000 is nearer to 1024 (2^10) than 512 (2^9); the old
        # bit_length()-1 mapping silently built 512 nodes.
        args = build_parser().parse_args(
            ["run", "--dataset", "livejournal_syn", "--n", "1000"]
        )
        assert _dataset_kwargs(args)["scale"] == 10

    def test_livejournal_exact_power_kept(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "livejournal_syn", "--n", "512"]
        )
        assert _dataset_kwargs(args)["scale"] == 9

    def test_livejournal_scale_floor(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "livejournal_syn", "--n", "10"]
        )
        assert _dataset_kwargs(args)["scale"] == 6

    def test_run_header_echoes_effective_n(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "livejournal_syn",
                "--n", "200",
                "--h", "2",
                "--eps", "1.0",
                "--theta-cap", "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n=256" in out  # 200 -> 2^8
        assert "requested --n 200" in out


class TestGridCommand:
    SPEC = {
        "name": "cli_smoke",
        "datasets": [
            {"name": "epinions_syn", "n": 120, "h": 2, "singleton_rr_samples": 400}
        ],
        "algorithms": ["TI-CARM"],
        "alphas": [0.5],
        "config": {"eps": 1.0, "theta_cap": 100},
    }

    def test_grid_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid"])

    def test_grid_runs_and_resumes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        manifest = str(tmp_path / "m.jsonl")
        code = main(["grid", "--spec", str(spec_path), "--manifest", manifest])
        assert code == 0
        out = capsys.readouterr().out
        assert "cells=1" in out and "revenue" in out
        before = open(manifest).read()
        assert main(["grid", "--spec", str(spec_path), "--manifest", manifest]) == 0
        assert open(manifest).read() == before  # resumed, nothing re-ran


class TestIngestCommand:
    def test_ingest_reports_stats(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n100 200\n200 300\n100 100\n100 200\n")
        code = main(["ingest", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-loops dropped" in out and "#nodes" in out

    def test_ingest_with_cache(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        cache = tmp_path / "g.npz"
        assert main(["ingest", str(path), "--cache", str(cache)]) == 0
        assert cache.exists()
