"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_validates_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "epinions_syn", "--algorithm", "MAGIC"]
            )


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("flixster_syn", "epinions_syn", "dblp_syn", "livejournal_syn"):
            assert name in out

    def test_tightness(self, capsys):
        assert main(["tightness"]) == 0
        out = capsys.readouterr().out
        assert "optimal revenue" in out
        assert "6.00" in out  # OPT of the Figure-1 instance
        assert "3.00" in out  # adversarial CA-GREEDY
        assert "0.50" in out  # Theorem 2 bound

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "epinions_syn",
                "--algorithm", "TI-CSRM",
                "--incentives", "linear",
                "--alpha", "1.0",
                "--n", "300",
                "--h", "3",
                "--eps", "0.8",
                "--theta-cap", "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TI-CSRM" in out
        assert "revenue" in out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset", "epinions_syn",
                "--models", "constant",
                "--algorithms", "TI-CSRM", "TI-CARM",
                "--n", "300",
                "--h", "3",
                "--eps", "0.8",
                "--theta-cap", "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TI-CSRM" in out and "TI-CARM" in out
        assert "constant" in out

    def test_table2(self, capsys):
        code = main(["table", "--which", "2", "--n", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget mean" in out

    def test_table1(self, capsys):
        code = main(["table", "--which", "1", "--n", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#nodes" in out
        assert "livejournal_syn" in out
