"""Tests for possible worlds and exact spread enumeration."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.diffusion.worlds import (
    exact_singleton_spreads,
    exact_spread,
    reachable_from,
    sample_world,
)
from repro.graph.digraph import DiGraph


class TestSampleWorld:
    def test_extremes(self, path_graph, rng):
        assert sample_world(path_graph, np.ones(path_graph.m), rng).all()
        assert not sample_world(path_graph, np.zeros(path_graph.m), rng).any()

    def test_shape_checked(self, path_graph, rng):
        with pytest.raises(EstimationError):
            sample_world(path_graph, np.ones(2), rng)

    def test_live_rate(self, star_graph, rng):
        probs = np.full(star_graph.m, 0.3)
        live_counts = [sample_world(star_graph, probs, rng).sum() for _ in range(500)]
        assert np.mean(live_counts) == pytest.approx(5 * 0.3, abs=0.2)


class TestReachability:
    def test_all_live(self, path_graph):
        live = np.ones(path_graph.m, dtype=bool)
        assert reachable_from(path_graph, live, [0]).sum() == 4

    def test_broken_chain(self, path_graph):
        live = np.array([True, False, True])
        reached = reachable_from(path_graph, live, [0])
        assert reached.tolist() == [True, True, False, False]

    def test_multiple_seeds(self, path_graph):
        live = np.zeros(path_graph.m, dtype=bool)
        reached = reachable_from(path_graph, live, [0, 3])
        assert reached.tolist() == [True, False, False, True]

    def test_shape_checked(self, path_graph):
        with pytest.raises(EstimationError):
            reachable_from(path_graph, np.ones(1, dtype=bool), [0])


class TestExactSpread:
    def test_deterministic_graph(self, path_graph):
        assert exact_spread(path_graph, np.ones(path_graph.m), [0]) == pytest.approx(4.0)
        assert exact_spread(path_graph, np.ones(path_graph.m), [2]) == pytest.approx(2.0)

    def test_empty_seed_set(self, path_graph):
        assert exact_spread(path_graph, np.ones(path_graph.m), []) == 0.0

    def test_single_edge_closed_form(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        assert exact_spread(g, np.array([0.3]), [0]) == pytest.approx(1.3)

    def test_chain_closed_form(self, path_graph):
        # sigma({0}) = 1 + p + p^2 + p^3 for a 4-node chain.
        p = 0.5
        expected = 1 + p + p**2 + p**3
        assert exact_spread(path_graph, np.full(3, p), [0]) == pytest.approx(expected)

    def test_star_closed_form(self, star_graph):
        p = 0.25
        assert exact_spread(star_graph, np.full(5, p), [0]) == pytest.approx(1 + 5 * p)

    def test_diamond_inclusion_exclusion(self, diamond_graph):
        # sigma({0}) = 1 + 2p + P(3 reached); P = 1 - (1 - p^2)^2.
        p = 0.5
        expected = 1 + 2 * p + (1 - (1 - p * p) ** 2)
        assert exact_spread(diamond_graph, np.full(4, p), [0]) == pytest.approx(expected)

    def test_monotone_in_seeds(self, diamond_graph):
        probs = np.full(4, 0.3)
        s1 = exact_spread(diamond_graph, probs, [0])
        s2 = exact_spread(diamond_graph, probs, [0, 3])
        assert s2 >= s1

    def test_submodular_marginals(self, diamond_graph):
        probs = np.full(4, 0.4)

        def marg(x, base):
            return exact_spread(diamond_graph, probs, base + [x]) - exact_spread(
                diamond_graph, probs, base
            )

        assert marg(1, [0]) <= marg(1, []) + 1e-12

    def test_random_edge_limit_enforced(self):
        g = DiGraph.from_edge_list([(0, i) for i in range(1, 25)], n=25)
        with pytest.raises(EstimationError):
            exact_spread(g, np.full(g.m, 0.5), [0])

    def test_deterministic_edges_do_not_count_against_limit(self):
        g = DiGraph.from_edge_list([(0, i) for i in range(1, 25)], n=25)
        assert exact_spread(g, np.ones(g.m), [0]) == pytest.approx(25.0)


class TestExactSingletons:
    def test_chain_values(self, path_graph):
        spreads = exact_singleton_spreads(path_graph, np.ones(path_graph.m))
        assert spreads.tolist() == [4.0, 3.0, 2.0, 1.0]
