"""Tests for the adaptive multi-window campaign (future work iv)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveCampaign, run_adaptive_campaign
from repro.errors import InstanceError
from tests.conftest import make_tiny_instance


PLANNER = dict(eps=0.8, theta_cap=300, opt_lower=3.0)


def build_instance(budget=12.0, h=2):
    return make_tiny_instance(budgets=(budget,) * h, h=h)


class TestValidation:
    def test_bad_windows(self):
        with pytest.raises(InstanceError):
            AdaptiveCampaign(build_instance(), n_windows=0)

    def test_bad_split(self):
        with pytest.raises(InstanceError):
            AdaptiveCampaign(build_instance(), budget_split="weird")


class TestCampaign:
    def test_runs_and_reports_windows(self):
        result = run_adaptive_campaign(
            build_instance(), n_windows=3, planner_kwargs=PLANNER, seed=1
        )
        assert 1 <= len(result.windows) <= 3
        assert result.total_revenue >= 0.0

    def test_budgets_never_overspent(self):
        inst = build_instance(budget=8.0)
        result = run_adaptive_campaign(
            inst, n_windows=3, planner_kwargs=PLANNER, seed=2
        )
        spent = [0.0] * inst.h
        for window in result.windows:
            for i in range(inst.h):
                spent[i] += window.realized_revenue[i] + window.incentives_paid[i]
        for i in range(inst.h):
            assert spent[i] <= inst.budget(i) + 1e-6
            assert result.windows[-1].remaining_budgets[i] >= -1e-9

    def test_no_user_seeds_twice_across_windows(self):
        result = run_adaptive_campaign(
            build_instance(budget=15.0), n_windows=4, planner_kwargs=PLANNER, seed=3
        )
        seen: set[int] = set()
        for window in result.windows:
            for seeds in window.seeds_per_ad:
                for u in seeds:
                    assert u not in seen, f"user {u} seeded twice"
                    seen.add(u)

    def test_revenue_accumulates_across_windows(self):
        result = run_adaptive_campaign(
            build_instance(budget=20.0), n_windows=3, planner_kwargs=PLANNER, seed=4
        )
        assert result.total_revenue == pytest.approx(
            sum(w.total_revenue for w in result.windows)
        )
        per_ad = result.revenue_per_ad(2)
        assert sum(per_ad) == pytest.approx(result.total_revenue)

    def test_deterministic_under_seed(self):
        a = run_adaptive_campaign(
            build_instance(), n_windows=2, planner_kwargs=PLANNER, seed=5
        )
        b = run_adaptive_campaign(
            build_instance(), n_windows=2, planner_kwargs=PLANNER, seed=5
        )
        assert a.total_revenue == pytest.approx(b.total_revenue)
        assert [w.seeds_per_ad for w in a.windows] == [
            w.seeds_per_ad for w in b.windows
        ]

    def test_budget_split_modes(self):
        for split in ("even", "all"):
            result = run_adaptive_campaign(
                build_instance(),
                n_windows=2,
                planner_kwargs=PLANNER,
                budget_split=split,
                seed=6,
            )
            assert result.windows

    def test_single_window_equals_one_shot_frame(self):
        """T = 1 with 'all' split plans against the full budget once."""
        inst = build_instance(budget=10.0)
        result = run_adaptive_campaign(
            inst, n_windows=1, planner_kwargs=PLANNER, budget_split="all", seed=7
        )
        assert len(result.windows) == 1

    def test_frozen_users_do_not_reengage(self):
        """A user engaged in window 1 contributes no revenue later."""
        inst = build_instance(budget=30.0)
        result = run_adaptive_campaign(
            inst, n_windows=3, planner_kwargs=PLANNER, seed=8
        )
        # Total realized engag. value never exceeds cpe * n per ad.
        per_ad = result.revenue_per_ad(inst.h)
        for i in range(inst.h):
            assert per_ad[i] <= inst.cpe(i) * inst.n + 1e-9
