"""Tests for the TIC parameter learner."""

import numpy as np
import pytest

from repro.errors import TopicModelError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.topics.distribution import single_topic, uniform_distribution
from repro.topics.edge_probs import TICModel
from repro.topics.learning import CascadeLog, estimate_tic_model, generate_cascade_log


class TestCascadeLog:
    def test_add_and_len(self, path_graph):
        log = CascadeLog(path_graph, items=[single_topic(1, 0)])
        log.add(0, np.array([0, 1, -1, -1]))
        assert len(log) == 1

    def test_bad_item_index(self, path_graph):
        log = CascadeLog(path_graph, items=[single_topic(1, 0)])
        with pytest.raises(TopicModelError):
            log.add(5, np.zeros(4, dtype=np.int64))

    def test_bad_trace_shape(self, path_graph):
        log = CascadeLog(path_graph, items=[single_topic(1, 0)])
        with pytest.raises(TopicModelError):
            log.add(0, np.zeros(3, dtype=np.int64))


class TestGenerateLog:
    def test_trace_count(self, path_graph):
        model = TICModel(path_graph, np.full((1, path_graph.m), 0.5))
        log = generate_cascade_log(
            path_graph, model, [single_topic(1, 0)], cascades_per_item=7,
            seeds_per_cascade=1, rng=0,
        )
        assert len(log) == 7

    def test_seeds_have_step_zero(self, path_graph):
        model = TICModel(path_graph, np.full((1, path_graph.m), 1.0))
        log = generate_cascade_log(
            path_graph, model, [single_topic(1, 0)], cascades_per_item=3,
            seeds_per_cascade=2, rng=1,
        )
        for trace in log.traces:
            assert (trace == 0).sum() == 2

    def test_parameter_validation(self, path_graph):
        model = TICModel(path_graph, np.zeros((1, path_graph.m)))
        with pytest.raises(TopicModelError):
            generate_cascade_log(path_graph, model, [single_topic(1, 0)], cascades_per_item=0)
        with pytest.raises(TopicModelError):
            generate_cascade_log(
                path_graph, model, [single_topic(1, 0)], seeds_per_cascade=99
            )


class TestEstimation:
    def test_deterministic_edge_learned_as_high(self):
        # Single arc with p = 1: every exposure is a success.
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        truth = TICModel(g, np.array([[1.0]]))
        log = generate_cascade_log(
            g, truth, [single_topic(1, 0)], cascades_per_item=60,
            seeds_per_cascade=1, rng=2,
        )
        learned = estimate_tic_model(log, 1, smoothing=1.0)
        assert learned.tensor[0, 0] > 0.7

    def test_dead_edge_learned_as_low(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        truth = TICModel(g, np.array([[0.0]]))
        log = generate_cascade_log(
            g, truth, [single_topic(1, 0)], cascades_per_item=60,
            seeds_per_cascade=1, rng=3,
        )
        learned = estimate_tic_model(log, 1)
        assert learned.tensor[0, 0] < 0.1

    def test_recovers_ordering_on_random_graph(self):
        g = erdos_renyi(30, 0.2, seed=4)
        rng = np.random.default_rng(5)
        tensor = rng.choice([0.05, 0.6], size=(1, g.m), p=[0.5, 0.5])
        truth = TICModel(g, tensor)
        log = generate_cascade_log(
            g, truth, [single_topic(1, 0)], cascades_per_item=400,
            seeds_per_cascade=3, rng=6,
        )
        learned = estimate_tic_model(log, 1, smoothing=0.5)
        strong = learned.tensor[0, tensor[0] == 0.6]
        weak = learned.tensor[0, tensor[0] == 0.05]
        # Well-exposed strong edges should clearly dominate weak ones on average.
        if strong.size and weak.size:
            assert strong.mean() > weak.mean() + 0.1

    def test_topic_attribution(self):
        # Two topics; items are point masses, so credit goes to the right row.
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        truth = TICModel(g, np.array([[1.0], [0.0]]))
        items = [single_topic(2, 0), single_topic(2, 1)]
        log = generate_cascade_log(
            g, truth, items, cascades_per_item=50, seeds_per_cascade=1, rng=7
        )
        learned = estimate_tic_model(log, 2)
        assert learned.tensor[0, 0] > learned.tensor[1, 0]

    def test_topic_count_mismatch_rejected(self, path_graph):
        log = CascadeLog(path_graph, items=[uniform_distribution(3)])
        with pytest.raises(TopicModelError):
            estimate_tic_model(log, 2)

    def test_zero_topics_rejected(self, path_graph):
        log = CascadeLog(path_graph, items=[])
        with pytest.raises(TopicModelError):
            estimate_tic_model(log, 0)
