"""Tests for the reference CA-GREEDY / CS-GREEDY algorithms."""

import numpy as np
import pytest

from repro.core.ads import Advertiser
from repro.core.greedy import ca_greedy, cs_greedy, exhaustive_optimum
from repro.core.instance import RMInstance
from repro.core.oracles import ExactOracle
from repro.errors import AllocationError
from repro.graph.digraph import DiGraph
from tests.conftest import make_tiny_instance


class TestCAGreedy:
    def test_respects_budgets(self):
        inst = make_tiny_instance(budgets=(3.6, 3.6))
        oracle = ExactOracle(inst)
        result = ca_greedy(inst, oracle)
        for i in range(inst.h):
            assert oracle.payment(i, result.allocation.seeds(i)) <= inst.budget(i) + 1e-9

    def test_disjoint_seed_sets(self):
        inst = make_tiny_instance(budgets=(20.0, 20.0))
        result = ca_greedy(inst, ExactOracle(inst))
        pairs = result.allocation.pairs()
        nodes = [n for n, _ in pairs]
        assert len(nodes) == len(set(nodes))

    def test_picks_max_spread_first(self):
        inst = make_tiny_instance(budgets=(100.0, 100.0))
        result = ca_greedy(inst, ExactOracle(inst))
        # Node 0 has spread 3 (chain 0->1->2) and should be seeded first.
        first_pairs = result.allocation.pairs()
        assert (0, 0) in first_pairs or (0, 1) in first_pairs

    def test_unknown_tie_break_rejected(self):
        inst = make_tiny_instance()
        with pytest.raises(AllocationError):
            ca_greedy(inst, ExactOracle(inst), tie_break="bogus")

    def test_single_ad_matches_im_greedy(self):
        # With one ad, huge budget, and zero costs, CA-GREEDY is classic
        # greedy influence maximization: it should reach full spread.
        g = DiGraph.from_edge_list([(0, 1), (1, 2), (3, 4)], n=5)
        advs = [Advertiser(index=0, cpe=1.0, budget=100.0)]
        inst = RMInstance(g, advs, [np.ones(g.m)], [np.zeros(g.n)])
        result = ca_greedy(inst, ExactOracle(inst))
        assert result.total_revenue == pytest.approx(5.0)


class TestCSGreedy:
    def test_prefers_efficient_seeds(self):
        # Node 0: spread 3, cost 10. Node 3: spread 2, cost 0.1.
        g = DiGraph.from_edge_list([(0, 1), (1, 2), (3, 4)], n=5)
        advs = [Advertiser(index=0, cpe=1.0, budget=5.0)]
        incentives = np.array([10.0, 0.1, 0.1, 0.1, 0.1])
        inst = RMInstance(g, advs, [np.ones(g.m)], [incentives])
        result = cs_greedy(inst, ExactOracle(inst))
        assert 3 in result.allocation.seeds(0)
        assert 0 not in result.allocation.seeds(0)

    def test_budget_feasible(self):
        inst = make_tiny_instance(budgets=(4.0, 4.0))
        oracle = ExactOracle(inst)
        result = cs_greedy(inst, oracle)
        for i in range(inst.h):
            assert oracle.payment(i, result.allocation.seeds(i)) <= inst.budget(i) + 1e-9

    def test_zero_cost_nodes_handled(self):
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        advs = [Advertiser(index=0, cpe=1.0, budget=10.0)]
        inst = RMInstance(g, advs, [np.ones(g.m)], [np.zeros(g.n)])
        result = cs_greedy(inst, ExactOracle(inst))
        assert result.total_revenue == pytest.approx(2.0)


class TestAgainstBruteForce:
    def test_ca_reaches_brute_force_on_easy_instance(self):
        inst = make_tiny_instance(budgets=(50.0, 50.0))
        oracle = ExactOracle(inst)
        _, opt = exhaustive_optimum(inst, oracle)
        result = ca_greedy(inst, oracle)
        assert result.total_revenue == pytest.approx(opt)

    def test_cs_within_half_on_random_instances(self, rng):
        """On tiny random instances both greedies stay within sane factors."""
        for trial in range(5):
            n = 5
            edges = [(u, v) for u in range(n) for v in range(n)
                     if u != v and rng.random() < 0.3]
            g = DiGraph.from_edge_list(edges, n=n)
            probs = np.ones(g.m)
            budget = float(rng.uniform(4, 9))
            advs = [Advertiser(index=0, cpe=1.0, budget=budget)]
            incentives = rng.uniform(0.1, 2.0, size=n)
            inst = RMInstance(g, advs, [probs], [incentives])
            oracle = ExactOracle(inst)
            _, opt = exhaustive_optimum(inst, oracle)
            if opt == 0:
                continue
            ca = ca_greedy(inst, oracle).total_revenue
            cs = cs_greedy(inst, oracle).total_revenue
            assert ca >= 0.45 * opt
            assert cs >= 0.3 * opt  # Thm 3 can be weak; sanity floor

    def test_exhaustive_limit(self):
        inst = make_tiny_instance()
        with pytest.raises(AllocationError):
            exhaustive_optimum(inst, ExactOracle(inst), max_assignments=5)


class TestResultMetadata:
    def test_algorithm_names(self):
        inst = make_tiny_instance()
        oracle = ExactOracle(inst)
        assert ca_greedy(inst, oracle).algorithm == "CA-GREEDY"
        assert cs_greedy(inst, oracle).algorithm == "CS-GREEDY"

    def test_revenue_matches_oracle_totals(self):
        inst = make_tiny_instance(budgets=(6.0, 6.0))
        oracle = ExactOracle(inst)
        result = ca_greedy(inst, oracle)
        recomputed = oracle.total_revenue(result.allocation.seed_sets())
        assert result.total_revenue == pytest.approx(recomputed)
