"""PageRank tests, including cross-validation against networkx."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete, erdos_renyi, star
from repro.graph.pagerank import pagerank, pagerank_order


class TestBasicProperties:
    def test_sums_to_one(self):
        g = erdos_renyi(50, 0.1, seed=1)
        assert pagerank(g).sum() == pytest.approx(1.0, abs=1e-9)

    def test_uniform_on_complete_graph(self):
        g = complete(6)
        ranks = pagerank(g)
        assert np.allclose(ranks, 1.0 / 6.0, atol=1e-8)

    def test_star_center_receives_no_rank_bonus(self):
        # Outward star: leaves only receive; center only teleports.
        g = star(5)
        ranks = pagerank(g)
        assert all(ranks[leaf] > ranks[0] for leaf in range(1, 6))

    def test_empty_graph(self):
        assert pagerank(DiGraph(0, [], [])).size == 0

    def test_all_dangling(self):
        g = DiGraph(4, [], [])
        assert np.allclose(pagerank(g), 0.25)

    def test_invalid_damping(self):
        g = star(3)
        with pytest.raises(ValueError):
            pagerank(g, damping=1.0)

    def test_max_iter_exceeded(self):
        g = erdos_renyi(30, 0.2, seed=2)
        with pytest.raises(ConvergenceError):
            pagerank(g, tol=0.0, max_iter=3)


class TestWeighted:
    def test_weights_shape_checked(self):
        g = star(3)
        with pytest.raises(ValueError):
            pagerank(g, weights=np.ones(99))

    def test_negative_weights_rejected(self):
        g = star(3)
        with pytest.raises(ValueError):
            pagerank(g, weights=-np.ones(g.m))

    def test_zero_weights_treated_as_dangling(self):
        g = star(3)
        ranks = pagerank(g, weights=np.zeros(g.m))
        assert np.allclose(ranks, 0.25)

    def test_weighting_shifts_mass(self):
        # 0 -> 1 (heavy), 0 -> 2 (light): node 1 should outrank node 2.
        g = DiGraph.from_edge_list([(0, 1), (0, 2)], n=3)
        w = np.zeros(g.m)
        tails, heads = g.edge_array()
        w[(tails == 0) & (heads == 1)] = 10.0
        w[(tails == 0) & (heads == 2)] = 1.0
        ranks = pagerank(g, weights=w)
        assert ranks[1] > ranks[2]


class TestAgainstNetworkx:
    nx = pytest.importorskip("networkx")

    def test_matches_networkx_unweighted(self):
        g = erdos_renyi(80, 0.08, seed=3)
        ours = pagerank(g, tol=1e-12)
        nxg = self.nx.DiGraph(list(g.edges()))
        nxg.add_nodes_from(range(g.n))
        theirs = self.nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        theirs_vec = np.array([theirs[i] for i in range(g.n)])
        assert np.allclose(ours, theirs_vec, atol=1e-6)

    def test_matches_networkx_weighted(self, rng):
        g = erdos_renyi(60, 0.1, seed=4)
        w = rng.random(g.m) + 0.1
        ours = pagerank(g, weights=w, tol=1e-12)
        nxg = self.nx.DiGraph()
        nxg.add_nodes_from(range(g.n))
        tails, heads = g.edge_array()
        for t, h, weight in zip(tails, heads, w):
            nxg.add_edge(int(t), int(h), weight=float(weight))
        theirs = self.nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500, weight="weight")
        theirs_vec = np.array([theirs[i] for i in range(g.n)])
        assert np.allclose(ours, theirs_vec, atol=1e-6)


class TestOrdering:
    def test_order_is_descending(self):
        g = erdos_renyi(40, 0.15, seed=5)
        order = pagerank_order(g)
        ranks = pagerank(g)
        assert np.all(np.diff(ranks[order]) <= 1e-12)

    def test_order_is_permutation(self):
        g = erdos_renyi(40, 0.15, seed=6)
        assert sorted(pagerank_order(g).tolist()) == list(range(40))
