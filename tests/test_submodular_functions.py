"""Tests for the set-function toolkit."""

import numpy as np
import pytest

from repro.submodular.functions import (
    CoverageFunction,
    ModularFunction,
    ScaledFunction,
    SumFunction,
    WeightedCoverageFunction,
    random_coverage_function,
)


class TestModular:
    def test_additivity(self):
        f = ModularFunction({0: 1.0, 1: 2.0, 2: 4.0})
        assert f({0, 2}) == 5.0
        assert f(set()) == 0.0

    def test_marginal_is_weight(self):
        f = ModularFunction({0: 1.0, 1: 2.0})
        assert f.marginal(1, {0}) == 2.0
        assert f.marginal(1, {1}) == 0.0

    def test_outside_ground_set_rejected(self):
        f = ModularFunction({0: 1.0})
        with pytest.raises(ValueError):
            f({5})


class TestCoverage:
    def test_union_semantics(self):
        f = CoverageFunction({0: [10, 11], 1: [11, 12], 2: []})
        assert f({0}) == 2.0
        assert f({0, 1}) == 3.0
        assert f({2}) == 0.0

    def test_marginal_diminishes(self):
        f = CoverageFunction({0: [10, 11], 1: [11, 12]})
        assert f.marginal(1, set()) == 2.0
        assert f.marginal(1, {0}) == 1.0

    def test_weighted_coverage(self):
        f = WeightedCoverageFunction({0: [10], 1: [10, 11]}, {10: 3.0, 11: 0.5})
        assert f({0}) == 3.0
        assert f({0, 1}) == 3.5

    def test_weighted_unknown_item_counts_zero(self):
        f = WeightedCoverageFunction({0: [99]}, {})
        assert f({0}) == 0.0


class TestCombinators:
    def test_scaled(self):
        base = CoverageFunction({0: [1], 1: [1, 2]})
        f = ScaledFunction(base, 2.5)
        assert f({1}) == 5.0

    def test_sum(self):
        cover = CoverageFunction({0: [1], 1: [2]})
        costs = ModularFunction({0: 0.5, 1: 1.5})
        rho = SumFunction([cover, costs])
        assert rho({0, 1}) == 2.0 + 2.0

    def test_sum_requires_common_ground(self):
        with pytest.raises(ValueError):
            SumFunction([ModularFunction({0: 1.0}), ModularFunction({1: 1.0})])

    def test_sum_requires_parts(self):
        with pytest.raises(ValueError):
            SumFunction([])


class TestRandomCoverage:
    def test_every_element_has_value(self):
        f = random_coverage_function(8, 5, rng=np.random.default_rng(1))
        for x in range(8):
            assert f({x}) >= 1.0
