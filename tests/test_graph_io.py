"""Round-trip and ingestion tests for graph persistence."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.io import (
    ingest_cached,
    ingest_edge_list,
    load_edge_list,
    load_npz,
    read_edge_array,
    save_edge_list,
    save_npz,
)


class TestEdgeListIO:
    def test_round_trip(self, tmp_path, diamond_graph):
        path = str(tmp_path / "g.txt")
        save_edge_list(diamond_graph, path)
        loaded = load_edge_list(path)
        assert loaded == diamond_graph

    def test_header_preserves_isolated_nodes(self, tmp_path):
        g = DiGraph.from_edge_list([(0, 1)], n=7)
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        assert load_edge_list(path).n == 7

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = str(tmp_path / "g.txt")
        path_file = tmp_path / "g.txt"
        path_file.write_text("# a comment\n\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.n == 3 and g.m == 2

    def test_percent_comments_skipped(self, tmp_path):
        (tmp_path / "g.txt").write_text("% matrix-market style comment\n0 1\n")
        g = load_edge_list(str(tmp_path / "g.txt"))
        assert g.n == 2 and g.m == 1

    def test_malformed_line_rejected(self, tmp_path):
        (tmp_path / "bad.txt").write_text("0\n")
        with pytest.raises(GraphError):
            load_edge_list(str(tmp_path / "bad.txt"))

    def test_non_integer_token_rejected(self, tmp_path):
        (tmp_path / "bad.txt").write_text("0 1\n1 x\n")
        with pytest.raises(GraphError):
            load_edge_list(str(tmp_path / "bad.txt"))

    def test_explicit_n_wins(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n")
        assert load_edge_list(str(tmp_path / "g.txt"), n=9).n == 9

    def test_declared_n_too_small_raises(self, tmp_path):
        # The satellite bugfix: an n smaller than the data must fail
        # loudly instead of producing out-of-range arcs downstream.
        (tmp_path / "g.txt").write_text("0 1\n1 5\n")
        with pytest.raises(GraphError, match="node id 5"):
            load_edge_list(str(tmp_path / "g.txt"), n=3)

    def test_stale_header_raises(self, tmp_path):
        # A header left over from before edits added node 7.
        (tmp_path / "g.txt").write_text("# DiGraph n=3 m=1\n0 1\n1 7\n")
        with pytest.raises(GraphError, match="stale header"):
            load_edge_list(str(tmp_path / "g.txt"))

    def test_extra_columns_ignored(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1 0.5\n1 2 0.25\n")
        g = load_edge_list(str(tmp_path / "g.txt"))
        assert g.m == 2 and g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_mixed_width_lines_not_repaired(self, tmp_path):
        # A 3-token line plus a 1-token line average out to 2 tokens per
        # line; the parser must not re-pair the flat token stream into
        # fabricated arcs — the short line is malformed.
        (tmp_path / "g.txt").write_text("1 2 3\n4\n")
        with pytest.raises(GraphError, match="malformed"):
            load_edge_list(str(tmp_path / "g.txt"))

    def test_mixed_width_valid_lines_parse(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1 7\n1 2\n")
        g = load_edge_list(str(tmp_path / "g.txt"))
        assert g.m == 2 and g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_no_trailing_newline(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n1 2")
        assert load_edge_list(str(tmp_path / "g.txt")).m == 2


class TestConstructorOptionRoundTrip:
    def test_dedupe_false_multigraph_round_trips(self, tmp_path):
        # The satellite bugfix: a dedupe=False graph with duplicate arcs
        # must reload with the same m, not silently deduplicated.
        g = DiGraph(4, [0, 0, 1], [1, 1, 2], dedupe=False)
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.m == 3
        assert loaded == g
        assert loaded.deduped is False

    def test_deduped_graph_round_trips(self, tmp_path):
        g = DiGraph(4, [0, 0, 1], [1, 1, 2], dedupe=True)
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.m == g.m == 2
        assert loaded.deduped is True

    def test_self_loop_graph_round_trips(self, tmp_path):
        g = DiGraph(3, [0, 1], [0, 2], allow_self_loops=True)
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded == g
        assert loaded.allows_self_loops is True

    def test_explicit_kwargs_override_header(self, tmp_path):
        g = DiGraph(4, [0, 0, 1], [1, 1, 2], dedupe=False)
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        assert load_edge_list(path, dedupe=True).m == 2

    def test_npz_round_trips_options(self, tmp_path):
        g = DiGraph(3, [0, 1], [0, 2], dedupe=False, allow_self_loops=True)
        path = str(tmp_path / "g.npz")
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded == g and loaded.allows_self_loops is True


class TestChunkedReader:
    def test_chunk_boundary_invariance(self, tmp_path):
        path = str(tmp_path / "g.txt")
        (tmp_path / "g.txt").write_text(
            "# header comment n=200\n10 20\n% other comment\n\n30 40\n50 60\n70 80"
        )
        baseline = read_edge_array(path)
        for chunk_bytes in (1, 2, 3, 5, 8, 13, 64):
            tails, heads, header = read_edge_array(path, chunk_bytes=chunk_bytes)
            assert np.array_equal(tails, baseline[0]), chunk_bytes
            assert np.array_equal(heads, baseline[1]), chunk_bytes
            assert header == baseline[2] == {"n": 200}

    def test_invalid_chunk_bytes(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n")
        with pytest.raises(GraphError):
            read_edge_array(str(tmp_path / "g.txt"), chunk_bytes=0)

    def test_large_file_matches_line_order(self, tmp_path):
        rng = np.random.default_rng(9)
        pairs = rng.integers(0, 500, size=(2_000, 2))
        path = tmp_path / "big.txt"
        path.write_text("\n".join(f"{t}\t{h}" for t, h in pairs) + "\n")
        tails, heads, _ = read_edge_array(str(path), chunk_bytes=256)
        assert np.array_equal(tails, pairs[:, 0])
        assert np.array_equal(heads, pairs[:, 1])

    def test_header_first_occurrence_wins(self, tmp_path):
        (tmp_path / "g.txt").write_text("# n=5\n0 1\n# n=99\n")
        _, _, header = read_edge_array(str(tmp_path / "g.txt"))
        assert header["n"] == 5


class TestIngestEdgeList:
    def test_snap_style_ids_remap_to_pre_remapped_equivalent(self, tmp_path):
        # Acceptance criterion: a SNAP-style list with non-contiguous ids
        # ingests into the same allocation as its dense equivalent.
        dense = erdos_renyi(60, 0.08, seed=4)
        tails, heads = dense.edge_array()
        sparse_ids = np.sort(
            np.random.default_rng(1).choice(10**7, size=dense.n, replace=False)
        )
        path = tmp_path / "sparse.txt"
        path.write_text(
            "# SNAP crawl\n"
            + "\n".join(
                f"{sparse_ids[t]}\t{sparse_ids[h]}" for t, h in zip(tails, heads)
            )
        )
        result = ingest_edge_list(str(path))
        assert result.graph == dense
        assert np.array_equal(result.original_ids, sparse_ids)
        assert result.raw_edges == dense.m
        assert result.self_loops_dropped == 0
        assert result.duplicates_dropped == 0

    def test_self_loops_and_duplicates_accounted(self, tmp_path):
        (tmp_path / "g.txt").write_text("5 5\n5 9\n9 5\n5 9\n")
        result = ingest_edge_list(str(tmp_path / "g.txt"))
        assert result.graph.n == 2 and result.graph.m == 2
        assert result.raw_edges == 4
        assert result.self_loops_dropped == 1
        assert result.duplicates_dropped == 1
        assert (
            result.graph.m
            + result.self_loops_dropped
            + result.duplicates_dropped
            == result.raw_edges
        )

    def test_keep_duplicates_and_loops(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 0\n0 1\n0 1\n")
        result = ingest_edge_list(
            str(tmp_path / "g.txt"),
            remap_ids=False,
            drop_self_loops=False,
            dedupe=False,
        )
        assert result.graph.m == 3
        assert result.self_loops_dropped == 0 and result.duplicates_dropped == 0

    def test_negative_ids_rejected(self, tmp_path):
        (tmp_path / "g.txt").write_text("-1 2\n")
        with pytest.raises(GraphError, match="negative"):
            ingest_edge_list(str(tmp_path / "g.txt"))

    def test_no_remap_validates_against_declared_n(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n1 7\n")
        with pytest.raises(GraphError):
            ingest_edge_list(str(tmp_path / "g.txt"), remap_ids=False, n=4)

    def test_remap_with_too_small_declared_n_rejected(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n1 2\n2 3\n3 0\n")
        with pytest.raises(GraphError):
            ingest_edge_list(str(tmp_path / "g.txt"), n=2)

    def test_empty_file(self, tmp_path):
        (tmp_path / "g.txt").write_text("# nothing here\n")
        result = ingest_edge_list(str(tmp_path / "g.txt"))
        assert result.graph.n == 0 and result.graph.m == 0

    def test_stats_row_shape(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n")
        row = ingest_edge_list(str(tmp_path / "g.txt")).stats_row()
        assert row["nodes"] == 2 and row["arcs"] == 1 and row["remapped"]


class TestIngestCache:
    def test_cache_hit_is_equivalent(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n100 100\n100 200\n")
        cache = str(tmp_path / "g.npz")
        first = ingest_cached(str(path), cache)
        assert (tmp_path / "g.npz").exists()
        second = ingest_cached(str(path), cache)
        assert second.graph == first.graph
        assert np.array_equal(second.original_ids, first.original_ids)
        assert second.raw_edges == first.raw_edges
        assert second.self_loops_dropped == first.self_loops_dropped
        assert second.duplicates_dropped == first.duplicates_dropped

    def test_cache_invalidated_by_source_edit(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        cache = str(tmp_path / "g.npz")
        assert ingest_cached(str(path), cache).graph.m == 1
        path.write_text("0 1\n1 2\n9 4\n")
        # force a different mtime even on coarse filesystems
        import os

        os.utime(path, ns=(1, 1))
        assert ingest_cached(str(path), cache).graph.m == 3

    def test_cache_invalidated_by_option_change(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        cache = str(tmp_path / "g.npz")
        assert ingest_cached(str(path), cache).graph.m == 1
        kept = ingest_cached(
            str(path), cache, drop_self_loops=False, remap_ids=False
        )
        assert kept.graph.m == 2

    def test_default_cache_path(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        ingest_cached(str(path))
        assert (tmp_path / "g.txt.ingest.npz").exists()

    def test_corrupt_cache_falls_back(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        cache = tmp_path / "g.npz"
        cache.write_bytes(b"not an npz archive")
        assert ingest_cached(str(path), str(cache)).graph.m == 1


class TestNpzIO:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(60, 0.1, seed=4)
        path = str(tmp_path / "g.npz")
        save_npz(g, path)
        assert load_npz(path) == g

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_npz(str(tmp_path / "nope.npz"))

    def test_legacy_archive_without_flags(self, tmp_path):
        g = erdos_renyi(20, 0.1, seed=2)
        tails, heads = g.edge_array()
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(path, n=np.int64(g.n), tails=tails, heads=heads)
        assert load_npz(path) == g
