"""Round-trip tests for graph persistence."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


class TestEdgeListIO:
    def test_round_trip(self, tmp_path, diamond_graph):
        path = str(tmp_path / "g.txt")
        save_edge_list(diamond_graph, path)
        loaded = load_edge_list(path)
        assert loaded == diamond_graph

    def test_header_preserves_isolated_nodes(self, tmp_path):
        g = DiGraph.from_edge_list([(0, 1)], n=7)
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        assert load_edge_list(path).n == 7

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = str(tmp_path / "g.txt")
        path_file = tmp_path / "g.txt"
        path_file.write_text("# a comment\n\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.n == 3 and g.m == 2

    def test_malformed_line_rejected(self, tmp_path):
        (tmp_path / "bad.txt").write_text("0\n")
        with pytest.raises(GraphError):
            load_edge_list(str(tmp_path / "bad.txt"))

    def test_explicit_n_wins(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n")
        assert load_edge_list(str(tmp_path / "g.txt"), n=9).n == 9


class TestNpzIO:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(60, 0.1, seed=4)
        path = str(tmp_path / "g.npz")
        save_npz(g, path)
        assert load_npz(path) == g

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_npz(str(tmp_path / "nope.npz"))
