"""Tests for allocations and result objects."""

import pytest

from repro.core.allocation import Allocation, AllocationResult
from repro.errors import AllocationError


class TestAllocation:
    def test_add_and_query(self):
        alloc = Allocation(2)
        alloc.add(3, 0)
        alloc.add(5, 1)
        assert alloc.is_assigned(3)
        assert alloc.owner_of(5) == 1
        assert alloc.owner_of(7) is None
        assert alloc.seeds(0) == [3]
        assert alloc.total_seeds == 2

    def test_disjointness_enforced(self):
        alloc = Allocation(2)
        alloc.add(3, 0)
        with pytest.raises(AllocationError):
            alloc.add(3, 1)
        with pytest.raises(AllocationError):
            alloc.add(3, 0)

    def test_insertion_order_preserved(self):
        alloc = Allocation(1)
        for node in (9, 2, 7):
            alloc.add(node, 0)
        assert alloc.seeds(0) == [9, 2, 7]

    def test_pairs_view(self):
        alloc = Allocation(2)
        alloc.add(1, 0)
        alloc.add(2, 1)
        assert set(alloc.pairs()) == {(1, 0), (2, 1)}

    def test_bad_indices(self):
        alloc = Allocation(2)
        with pytest.raises(AllocationError):
            alloc.add(0, 5)
        with pytest.raises(AllocationError):
            alloc.seeds(-1)
        with pytest.raises(AllocationError):
            Allocation(0)

    def test_seed_sets_copies(self):
        alloc = Allocation(1)
        alloc.add(0, 0)
        sets = alloc.seed_sets()
        sets[0].append(99)
        assert alloc.seeds(0) == [0]


class TestAllocationResult:
    def _result(self):
        alloc = Allocation(2)
        alloc.add(0, 0)
        alloc.add(1, 1)
        return AllocationResult(
            allocation=alloc,
            revenue_per_ad=[10.0, 20.0],
            seeding_cost_per_ad=[1.0, 2.0],
            algorithm="TEST",
            runtime_seconds=0.5,
        )

    def test_totals(self):
        res = self._result()
        assert res.total_revenue == 30.0
        assert res.total_seeding_cost == 3.0
        assert res.total_seeds == 2

    def test_payments(self):
        res = self._result()
        assert res.payment_per_ad == [11.0, 22.0]

    def test_summary_contains_key_figures(self):
        text = self._result().summary()
        assert "TEST" in text
        assert "30.0" in text
