"""Tests for Advertiser and RMInstance validation."""

import numpy as np
import pytest

from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.errors import InstanceError
from repro.graph.digraph import DiGraph


class TestAdvertiser:
    def test_valid(self):
        adv = Advertiser(index=0, cpe=1.5, budget=100.0)
        assert adv.name == "ad-0"
        assert adv.engagements_affordable() == pytest.approx(100.0 / 1.5)

    def test_custom_name(self):
        assert Advertiser(index=1, cpe=1.0, budget=5.0, name="nike").name == "nike"

    def test_validation(self):
        with pytest.raises(InstanceError):
            Advertiser(index=-1, cpe=1.0, budget=1.0)
        with pytest.raises(InstanceError):
            Advertiser(index=0, cpe=0.0, budget=1.0)
        with pytest.raises(InstanceError):
            Advertiser(index=0, cpe=1.0, budget=-2.0)


def _graph():
    return DiGraph.from_edge_list([(0, 1), (1, 2)], n=3)


def _make(budgets=(10.0,), incentive_rows=None, probs_value=0.5):
    g = _graph()
    h = len(budgets)
    advertisers = [Advertiser(index=i, cpe=1.0, budget=budgets[i]) for i in range(h)]
    probs = [np.full(g.m, probs_value)] * h
    if incentive_rows is None:
        incentive_rows = [np.ones(g.n)] * h
    return RMInstance(g, advertisers, probs, incentive_rows)


class TestRMInstance:
    def test_valid_instance(self):
        inst = _make(budgets=(10.0, 20.0))
        assert inst.h == 2
        assert inst.n == 3
        assert inst.cpe(0) == 1.0
        assert inst.budget(1) == 20.0

    def test_seeding_cost_is_modular(self):
        inst = _make(incentive_rows=[np.array([1.0, 2.0, 4.0])])
        assert inst.seeding_cost(0, [0, 2]) == 5.0
        assert inst.seeding_cost(0, []) == 0.0

    def test_incentive_accessors(self):
        inst = _make(incentive_rows=[np.array([1.0, 2.0, 4.0])])
        assert inst.incentive(0, 2) == 4.0
        assert inst.max_incentive(0) == 4.0

    def test_no_advertisers_rejected(self):
        g = _graph()
        with pytest.raises(InstanceError):
            RMInstance(g, [], [], [])

    def test_misindexed_advertisers_rejected(self):
        g = _graph()
        advs = [Advertiser(index=3, cpe=1.0, budget=1.0)]
        with pytest.raises(InstanceError):
            RMInstance(g, advs, [np.zeros(g.m)], [np.zeros(g.n)])

    def test_wrong_prob_shape_rejected(self):
        g = _graph()
        advs = [Advertiser(index=0, cpe=1.0, budget=1.0)]
        with pytest.raises(InstanceError):
            RMInstance(g, advs, [np.zeros(g.m + 1)], [np.zeros(g.n)])

    def test_prob_range_checked(self):
        g = _graph()
        advs = [Advertiser(index=0, cpe=1.0, budget=1.0)]
        with pytest.raises(InstanceError):
            RMInstance(g, advs, [np.full(g.m, 1.5)], [np.zeros(g.n)])

    def test_negative_incentives_rejected(self):
        with pytest.raises(InstanceError):
            _make(incentive_rows=[np.array([-1.0, 0.0, 0.0])])

    def test_degenerate_budget_rejected(self):
        # Every node's incentive exceeds the budget: no affordable seed.
        with pytest.raises(InstanceError):
            _make(budgets=(0.5,), incentive_rows=[np.array([1.0, 2.0, 3.0])])

    def test_mismatched_lengths_rejected(self):
        g = _graph()
        advs = [Advertiser(index=0, cpe=1.0, budget=1.0)]
        with pytest.raises(InstanceError):
            RMInstance(g, advs, [], [np.zeros(g.n)])
