"""End-to-end integration tests across the full stack.

These exercise the public API the way the examples and benchmarks do:
build an analog dataset, materialize instances for several incentive
models, run all four Section-5 algorithms, and check the paper's
structural claims (disjointness, budget feasibility, cost ordering,
constant-model equivalence) on the outputs.
"""

import numpy as np
import pytest

import repro
from repro.experiments.harness import ALGORITHMS, run_algorithm, run_algorithms


@pytest.fixture(scope="module")
def sweep_results(quick_dataset, quick_config):
    """One shared mid-α linear run of all four algorithms."""
    instance = quick_dataset.build_instance("linear", 1.5)
    return instance, run_algorithms(quick_dataset, instance, quick_config)


class TestStructuralInvariants:
    def test_disjoint_seed_sets(self, sweep_results):
        _, results = sweep_results
        for result in results.values():
            nodes = [n for n, _ in result.allocation.pairs()]
            assert len(nodes) == len(set(nodes))

    def test_budget_feasibility_under_own_estimates(self, sweep_results):
        instance, results = sweep_results
        for result in results.values():
            for i in range(instance.h):
                assert result.payment_per_ad[i] <= instance.budget(i) + 1e-6

    def test_every_ad_gets_a_seed(self, sweep_results):
        """Budgets exceed top singleton payments, so no ad should end empty
        (the paper's Table 2 design goal)."""
        _, results = sweep_results
        for name in ("TI-CSRM", "TI-CARM"):
            allocation = results[name].allocation
            for i in range(allocation.h):
                assert len(allocation.seeds(i)) >= 1, f"{name} starved ad {i}"

    def test_total_seeds_well_below_n(self, sweep_results):
        instance, results = sweep_results
        for result in results.values():
            assert result.total_seeds < instance.n


class TestPaperShapeClaims:
    def test_csrm_has_lowest_seeding_cost(self, sweep_results):
        """Figure 3's headline: TI-CSRM consistently spends least on seeds."""
        _, results = sweep_results
        csrm_cost = results["TI-CSRM"].total_seeding_cost
        for name in ("TI-CARM", "PageRank-GR", "PageRank-RR"):
            assert csrm_cost <= results[name].total_seeding_cost + 1e-6

    def test_constant_incentives_equalize_carm_csrm(self, quick_dataset, quick_config):
        instance = quick_dataset.build_instance("constant", 2.0)
        carm = run_algorithm("TI-CARM", quick_dataset, instance, quick_config)
        csrm = run_algorithm("TI-CSRM", quick_dataset, instance, quick_config)
        assert carm.total_revenue == pytest.approx(csrm.total_revenue)
        assert carm.allocation.pairs() == csrm.allocation.pairs()

    def test_csrm_beats_baselines_at_high_alpha(self, quick_dataset, quick_config):
        """When incentives are expensive, cost-sensitivity must pay off
        against the PageRank heuristics (Figure 2's shape)."""
        instance = quick_dataset.build_instance("linear", 2.5)
        results = run_algorithms(quick_dataset, instance, quick_config)
        assert results["TI-CSRM"].total_revenue >= 0.95 * max(
            results["PageRank-GR"].total_revenue,
            results["PageRank-RR"].total_revenue,
        )

    def test_revenue_decreases_with_alpha(self, quick_dataset, quick_config):
        """Higher α means costlier seeds, so host revenue shrinks (Fig. 2)."""
        revenues = []
        for alpha in (0.5, 2.5):
            instance = quick_dataset.build_instance("linear", alpha)
            result = run_algorithm("TI-CSRM", quick_dataset, instance, quick_config)
            revenues.append(result.total_revenue)
        assert revenues[1] <= revenues[0] * 1.05


class TestPublicAPI:
    def test_quickstart_flow(self, quick_dataset):
        """The README quickstart, executed."""
        instance = quick_dataset.build_instance(incentive_model="linear", alpha=1.0)
        result = repro.ti_csrm(
            instance,
            eps=0.8,
            theta_cap=500,
            opt_lower=quick_dataset.opt_lower_bounds(),
            seed=1,
        )
        assert result.algorithm == "TI-CSRM"
        assert "revenue" in result.summary()

    def test_reference_greedy_on_tightness_instance(self):
        instance, expected = repro.tightness_instance()
        oracle = repro.ExactOracle(instance)
        assert repro.cs_greedy(instance, oracle).total_revenue == pytest.approx(
            expected["optimal_revenue"]
        )

    def test_version_exposed(self):
        assert repro.__version__


class TestCrossEstimatorConsistency:
    def test_rr_static_oracle_agrees_with_mc_on_allocation(
        self, quick_dataset, quick_config
    ):
        """Evaluating a fixed allocation with two independent estimators
        (static RR vs Monte-Carlo) should agree within sampling noise —
        unlike the engine's own adaptive estimate, these are unbiased."""
        instance = quick_dataset.build_instance("linear", 1.0)
        result = run_algorithm("TI-CSRM", quick_dataset, instance, quick_config)
        seeds = result.allocation.seeds(0)
        if not seeds:
            pytest.skip("ad 0 received no seeds at this scale")
        rr_oracle = repro.RRStaticOracle(instance, n_samples=4000, seed=11)
        from repro.diffusion.montecarlo import estimate_spread

        mc = estimate_spread(
            instance.graph, instance.ad_probs[0], seeds, n_runs=400, rng=12
        )
        rr = rr_oracle.spread(0, seeds)
        assert rr == pytest.approx(mc, rel=0.3, abs=2.0)
