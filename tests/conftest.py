"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import build_dataset
from repro.graph.digraph import DiGraph


@pytest.fixture
def rng():
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def path_graph():
    """0 -> 1 -> 2 -> 3."""
    return DiGraph.from_edge_list([(0, 1), (1, 2), (2, 3)], n=4)


@pytest.fixture
def star_graph():
    """Center 0 pointing at leaves 1..5."""
    return DiGraph.from_edge_list([(0, i) for i in range(1, 6)], n=6)


@pytest.fixture
def diamond_graph():
    """0 -> {1, 2} -> 3: two length-2 paths sharing endpoints."""
    return DiGraph.from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)], n=4)


def make_tiny_instance(
    probs_value: float = 1.0,
    h: int = 2,
    budgets=(10.0, 10.0),
    cpes=(1.0, 1.0),
) -> RMInstance:
    """A 5-node, 2-ad instance small enough for the exact oracle.

    Graph: 0 -> 1 -> 2, 3 -> 4 (a chain plus a separate edge).
    """
    graph = DiGraph.from_edge_list([(0, 1), (1, 2), (3, 4)], n=5)
    probs = np.full(graph.m, probs_value)
    advertisers = [
        Advertiser(index=i, cpe=cpes[i], budget=budgets[i]) for i in range(h)
    ]
    incentives = [np.linspace(0.5, 1.5, graph.n) for _ in range(h)]
    return RMInstance(graph, advertisers, [probs] * h, incentives)


@pytest.fixture
def tiny_instance():
    """Deterministic (p = 1) two-ad instance for exact-oracle tests."""
    return make_tiny_instance()


@pytest.fixture(scope="session")
def quick_dataset():
    """A small FLIXSTER analog shared across experiment tests."""
    return build_dataset("flixster_syn", n=400, h=4, singleton_rr_samples=1_500)


@pytest.fixture(scope="session")
def quick_config():
    """Cheap estimator settings for integration tests."""
    return ExperimentConfig(eps=0.8, theta_cap=600, singleton_rr_samples=1_500, seed=3)
