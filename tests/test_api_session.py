"""AllocationSession: warm-start parity, store reuse, lifecycle."""

import numpy as np
import pytest

from repro.api import AllocationSession, EngineSpec, solve
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.errors import AllocationError
from repro.graph.digraph import DiGraph

from tests.conftest import make_tiny_instance

SPEC = EngineSpec(eps=0.8, theta_cap=200, opt_lower=1.0, seed=21)


def _same_alloc(a, b):
    assert a.allocation.seed_sets() == b.allocation.seed_sets()
    assert a.revenue_per_ad == b.revenue_per_ad


def _instance_with_budgets(dataset_instance, budgets):
    inst = dataset_instance
    advertisers = [
        Advertiser(index=i, cpe=inst.cpe(i), budget=float(budgets[i]))
        for i in range(inst.h)
    ]
    return RMInstance(inst.graph, advertisers, inst.ad_probs, inst.incentives)


class TestWarmStartParity:
    def test_warm_resolve_identical_and_no_resampling(self):
        """Satellite: warm re-solve == fresh solve; RR stores reused."""
        inst = make_tiny_instance()
        with AllocationSession(inst.graph, spec=SPEC) as session:
            cold = session.solve(inst)
            cold_stats = session.stats
            assert cold_stats["sample_batches"] > 0
            warm = session.solve(inst)
            warm_stats = session.stats
        _same_alloc(cold, warm)
        # The warm solve drew nothing: same batch/set counters.
        assert warm_stats["sample_batches"] == cold_stats["sample_batches"]
        assert warm_stats["sets_sampled"] == cold_stats["sets_sampled"]
        assert warm_stats["solves"] == 2

    def test_session_cold_solve_matches_share_samples_engine(self):
        """A session's first solve is bit-identical to a fresh
        share_samples=True solve — warm mode is the shared-store path
        with persistence."""
        inst = make_tiny_instance()
        with AllocationSession(inst.graph, spec=SPEC) as session:
            cold = session.solve(inst)
        fresh = solve(inst, "TI-CSRM", SPEC.override(share_samples=True))
        _same_alloc(cold, fresh)
        assert cold.extras["engine_spec"]["share_samples"] is True

    def test_kpt_mode_warm_parity(self):
        inst = make_tiny_instance()
        spec = EngineSpec(eps=0.8, theta_cap=120, opt_lower="kpt",
                          kpt_max_samples=200, seed=4)
        with AllocationSession(inst.graph, spec=spec) as session:
            cold = session.solve(inst)
            batches = session.stats["sample_batches"]
            warm = session.solve(inst)
            assert session.stats["sample_batches"] == batches
        _same_alloc(cold, warm)

    def test_kpt_rebuilt_when_accuracy_params_change(self):
        """A warm solve under different (ell, kpt_max_samples) must not
        reuse KPT bounds computed under the old parameters."""
        inst = make_tiny_instance()
        spec = EngineSpec(eps=0.8, theta_cap=120, opt_lower="kpt",
                          kpt_max_samples=200, seed=4)
        with AllocationSession(inst.graph, spec=spec) as session:
            session.solve(inst)
            (group,) = session._warm.stores.values()
            first_kpt = group.kpt
            assert first_kpt.ell == spec.ell
            # Same params again: the estimator is reused untouched.
            session.solve(inst)
            assert group.kpt is first_kpt
            # Changed accuracy: fresh estimator carrying the new params.
            session.solve(inst, spec=spec.override(ell=3.0, kpt_max_samples=500))
            assert group.kpt is not first_kpt
            assert group.kpt.ell == 3.0
            assert group.kpt.max_samples == 500

    def test_changed_budgets_reuse_stores(self):
        """The production query pattern: same graph/probs, new budgets."""
        inst = make_tiny_instance(budgets=(10.0, 10.0))
        smaller = _instance_with_budgets(inst, (4.0, 5.0))
        with AllocationSession(inst.graph, spec=SPEC) as session:
            session.solve(inst)
            drawn = session.stats["sets_sampled"]
            result = session.solve(smaller)
            # Re-solving under tighter budgets needs no fresh sets.
            assert session.stats["sets_sampled"] == drawn
            assert session.stats["stores"] == 1  # both ads share one prob vector
        total_payment = sum(result.payment_per_ad)
        assert total_payment <= 4.0 + 5.0 + 1e-9

    def test_blocked_changes_do_not_invalidate(self):
        inst = make_tiny_instance()
        blocked = np.zeros(inst.n, dtype=bool)
        blocked[2] = True
        with AllocationSession(inst.graph, spec=SPEC) as session:
            session.solve(inst)
            drawn = session.stats["sets_sampled"]
            result = session.solve(inst, blocked=blocked)
            assert session.stats["sets_sampled"] == drawn
        seeded = {n for seeds in result.allocation.seed_sets() for n in seeds}
        assert 2 not in seeded


class TestSessionSemantics:
    def test_other_graph_rejected(self):
        inst = make_tiny_instance()
        other = DiGraph.from_edge_list([(0, 1)], n=2)
        with AllocationSession(other, spec=SPEC) as session:
            with pytest.raises(AllocationError, match="different graph"):
                session.solve(inst)

    def test_requires_digraph(self):
        with pytest.raises(AllocationError):
            AllocationSession("not a graph")

    def test_closed_session_refuses_solves(self):
        inst = make_tiny_instance()
        session = AllocationSession.for_instance(inst, spec=SPEC)
        session.solve(inst)
        assert session.is_closed is False
        session.close()
        session.close()  # idempotent
        assert session.is_closed is True
        with pytest.raises(AllocationError, match="closed"):
            session.solve(inst)

    def test_stats_json_serializable(self):
        """Satellite: session.stats feeds the serve layer's /stats
        endpoint verbatim, so every value must survive json.dumps
        (numpy scalars would not)."""
        import json

        inst = make_tiny_instance()
        with AllocationSession(inst.graph, spec=SPEC) as session:
            session.solve(inst)
            stats = json.loads(json.dumps(session.stats))
        assert stats["solves"] == 1
        assert stats["store_bytes"] >= 0
        assert isinstance(stats["pool_active"], bool)

    def test_backend_pinned_by_session(self):
        inst = make_tiny_instance()
        with AllocationSession(inst.graph, spec=SPEC) as session:
            result = session.solve(
                inst, spec=SPEC.override(sampler_backend="parallel", workers=2)
            )
        # The session was built serial; per-solve specs cannot flip it.
        assert result.extras["engine_spec"]["sampler_backend"] == "serial"
        assert result.extras["engine_spec"]["workers"] is None

    def test_pagerank_orders_cached(self):
        inst = make_tiny_instance()
        with AllocationSession(inst.graph, spec=SPEC) as session:
            a = session.solve(inst, "PageRank-GR")
            assert session.stats["pagerank_orders"] == 1
            b = session.solve(inst, "PageRank-GR")
            assert session.stats["pagerank_orders"] == 1
        _same_alloc(a, b)

    def test_new_prob_vector_grows_family(self):
        inst = make_tiny_instance(probs_value=1.0)
        other = make_tiny_instance(probs_value=0.5)
        other = RMInstance(inst.graph, other.advertisers, other.ad_probs,
                           other.incentives)
        with AllocationSession(inst.graph, spec=SPEC) as session:
            session.solve(inst)
            assert session.stats["stores"] == 1
            session.solve(other)
            assert session.stats["stores"] == 2


class TestAdaptiveReuse:
    def test_campaign_with_reuse_samples(self):
        from repro.core.adaptive import run_adaptive_campaign

        inst = make_tiny_instance()
        result = run_adaptive_campaign(
            inst,
            n_windows=2,
            planner_kwargs=dict(eps=0.8, theta_cap=150, opt_lower=1.0),
            seed=5,
            reuse_samples=True,
        )
        assert len(result.windows) >= 1
        assert result.total_revenue >= 0.0

    def test_harness_threads_session(self, quick_dataset, quick_config):
        from repro.experiments.harness import run_algorithm

        inst = quick_dataset.build_instance("linear", 1.0)
        with AllocationSession(inst.graph, spec=quick_config.engine_spec(
                opt_lower=quick_dataset.opt_lower_bounds(inst.h))) as session:
            first = run_algorithm("TI-CSRM", quick_dataset, inst, quick_config,
                                  session=session)
            drawn = session.stats["sets_sampled"]
            second = run_algorithm("TI-CSRM", quick_dataset, inst, quick_config,
                                   session=session)
            assert session.stats["sets_sampled"] == drawn
        _same_alloc(first, second)
