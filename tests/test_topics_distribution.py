"""Tests for ad topic distributions."""

import numpy as np
import pytest

from repro.errors import TopicModelError
from repro.topics.distribution import (
    TopicDistribution,
    peaked_distribution,
    pure_competition_ads,
    random_distribution,
    single_topic,
    uniform_distribution,
)


class TestTopicDistribution:
    def test_valid_vector_accepted(self):
        d = TopicDistribution([0.2, 0.8])
        assert d.n_topics == 2
        assert d.gamma.sum() == pytest.approx(1.0)

    def test_normalizes_tiny_drift(self):
        d = TopicDistribution([0.5, 0.5000001])
        assert d.gamma.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(TopicModelError):
            TopicDistribution([-0.1, 1.1])

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(TopicModelError):
            TopicDistribution([0.2, 0.2])

    def test_rejects_empty(self):
        with pytest.raises(TopicModelError):
            TopicDistribution([])

    def test_dominant_topic(self):
        assert TopicDistribution([0.1, 0.7, 0.2]).dominant_topic() == 1

    def test_equality_and_hash(self):
        a = TopicDistribution([0.3, 0.7])
        b = TopicDistribution([0.3, 0.7])
        assert a == b
        assert hash(a) == hash(b)

    def test_overlap_identical_is_one(self):
        d = TopicDistribution([0.4, 0.6])
        assert d.overlap(d) == pytest.approx(1.0)

    def test_overlap_disjoint_is_zero(self):
        a = single_topic(2, 0)
        b = single_topic(2, 1)
        assert a.overlap(b) == pytest.approx(0.0)

    def test_overlap_dimension_mismatch(self):
        with pytest.raises(TopicModelError):
            single_topic(2, 0).overlap(single_topic(3, 0))


class TestFactories:
    def test_uniform(self):
        d = uniform_distribution(4)
        assert np.allclose(d.gamma, 0.25)

    def test_uniform_rejects_zero_topics(self):
        with pytest.raises(TopicModelError):
            uniform_distribution(0)

    def test_single_topic(self):
        d = single_topic(5, 2)
        assert d.gamma[2] == 1.0
        assert d.gamma.sum() == pytest.approx(1.0)

    def test_single_topic_out_of_range(self):
        with pytest.raises(TopicModelError):
            single_topic(3, 3)

    def test_random_distribution_valid(self):
        d = random_distribution(6, seed=1)
        assert d.n_topics == 6
        assert d.gamma.sum() == pytest.approx(1.0)

    def test_peaked_distribution_paper_values(self):
        d = peaked_distribution(10, 3, peak=0.91)
        assert d.gamma[3] == pytest.approx(0.91)
        assert d.gamma[0] == pytest.approx(0.01)

    def test_peaked_single_topic_degenerates(self):
        d = peaked_distribution(1, 0)
        assert d.gamma[0] == 1.0


class TestPureCompetition:
    def test_pairs_share_distribution(self):
        ads = pure_competition_ads(10, 10, seed=2)
        assert len(ads) == 10
        for k in range(0, 10, 2):
            assert ads[k] == ads[k + 1]

    def test_distinct_pairs_use_distinct_topics(self):
        ads = pure_competition_ads(10, 10, seed=3)
        dominant = {ads[k].dominant_topic() for k in range(0, 10, 2)}
        assert len(dominant) == 5

    def test_odd_count(self):
        ads = pure_competition_ads(5, 10, seed=4)
        assert len(ads) == 5
        assert ads[4].dominant_topic() not in {a.dominant_topic() for a in ads[:4]}

    def test_too_many_pairs_rejected(self):
        with pytest.raises(TopicModelError):
            pure_competition_ads(12, 5)

    def test_zero_ads_rejected(self):
        with pytest.raises(TopicModelError):
            pure_competition_ads(0)
