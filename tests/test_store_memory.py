"""Memory-bounded RR stores: dtype narrowing, memmap spill, accounting.

Locks down the ISSUE-7 memory contract of
:mod:`repro.rrset.collection` (docs/ARCHITECTURE.md §2):

* ``members`` lives in the smallest sufficient signed dtype
  (:func:`member_dtype_for`) and narrowing is a lossless round-trip of
  the sampler's ``int64`` batches;
* ``indptr`` starts ``int32`` and upcasts to ``int64`` exactly when
  total membership crosses ``INDPTR_NARROW_MAX``;
* a :class:`SharedRRStore` past its ``bytes_budget`` spills members to
  a temp-file memmap — every read path (CSR slices, inverted index,
  adoption) returns identical values, and the spill file is unlinked on
  :meth:`close` (or by the GC finalizer safety net);
* measured accounting — ``member_bytes`` / ``peak_bytes`` /
  ``bytes_per_rr_set`` — surfaces through engine extras, session stats
  and grid manifest rows.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineSpec, solve
from repro.api.session import AllocationSession
from repro.errors import EstimationError
from repro.rrset import collection as collection_module
from repro.rrset.collection import (
    RRCollection,
    SharedRRCollection,
    SharedRRStore,
    member_dtype_for,
)

#: Engine/session/manifest memory-block keys (docs/ARCHITECTURE.md §2).
MEMORY_KEYS = {
    "store_bytes",
    "peak_store_bytes",
    "bytes_per_rr_set",
    "spilled_stores",
    "rr_bytes_budget",
}


def _flat(sets):
    arrays = [np.asarray(s, dtype=np.int64) for s in sets]
    indptr = np.concatenate(
        ([0], np.cumsum([a.size for a in arrays]))
    ).astype(np.int64)
    members = (
        np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
    )
    return members, indptr


# ----------------------------------------------------------------------
# Dtype narrowing
# ----------------------------------------------------------------------
class TestMemberDtype:
    @pytest.mark.parametrize(
        "n_nodes, expected",
        [
            (1, np.int16),
            (2**15 - 1, np.int16),
            (2**15, np.int32),
            (2**31 - 1, np.int32),
            (2**31, np.int64),
        ],
    )
    def test_thresholds(self, n_nodes, expected):
        assert member_dtype_for(n_nodes) == np.dtype(expected)

    def test_narrowing_round_trips_collection(self):
        sets = [[0, 5, 7], [299], [], [7, 8]]
        c = RRCollection(300)
        c.add_sets_flat(*_flat(sets))
        assert c.members.dtype == np.int16
        for sid, ref in enumerate(sets):
            np.testing.assert_array_equal(
                c.set_members(sid), np.asarray(ref, dtype=np.int16)
            )
        # A second batch must not promote back to int64 on concatenate.
        c.add_sets_flat(*_flat([[1, 2]]))
        assert c.members.dtype == np.int16

    def test_narrowing_round_trips_store(self):
        sets = [[0, 40_000], [1], [39_999, 3]]
        store = SharedRRStore(40_001)
        store.extend_flat(*_flat(sets))
        assert store.members.dtype == np.int32
        for sid, ref in enumerate(sets):
            np.testing.assert_array_equal(
                store.set_members(sid), np.asarray(ref, dtype=np.int32)
            )

    def test_out_of_range_ids_still_rejected_before_cast(self):
        store = SharedRRStore(100)
        with pytest.raises(EstimationError, match="out-of-range"):
            store.extend_flat(*_flat([[100]]))


class TestIndptrNarrowing:
    def test_starts_int32_and_upcasts_past_threshold(self, monkeypatch):
        monkeypatch.setattr(collection_module, "INDPTR_NARROW_MAX", 5)
        store = SharedRRStore(50)
        store.extend_flat(*_flat([[1, 2], [3]]))  # total 3 members
        assert store.indptr.dtype == np.int32
        store.extend_flat(*_flat([[4, 5, 6]]))  # total 6 > 5: upcast
        assert store.indptr.dtype == np.int64
        np.testing.assert_array_equal(store.indptr, [0, 2, 3, 6])
        # And stays int64 from then on.
        store.extend_flat(*_flat([[7]]))
        assert store.indptr.dtype == np.int64

    def test_collection_upcasts_too(self, monkeypatch):
        monkeypatch.setattr(collection_module, "INDPTR_NARROW_MAX", 2)
        c = RRCollection(10)
        c.add_sets_flat(*_flat([[1], [2, 3], [4]]))
        assert c.indptr.dtype == np.int64
        np.testing.assert_array_equal(c.indptr, [0, 1, 3, 4])


# ----------------------------------------------------------------------
# Memmap spill
# ----------------------------------------------------------------------
class TestSpill:
    def test_round_trip_equality_against_unspilled(self, tmp_path):
        rng = np.random.default_rng(4)
        batches = [
            _flat([rng.integers(0, 500, size=rng.integers(0, 8)) for _ in range(6)])
            for _ in range(4)
        ]
        ram = SharedRRStore(500)
        spilling = SharedRRStore(500, bytes_budget=16, spill_dir=str(tmp_path))
        for members, indptr in batches:
            ram.extend_flat(members, indptr)
            spilling.extend_flat(members, indptr)
        assert not ram.spilled and spilling.spilled
        assert isinstance(spilling.members, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(spilling.members), ram.members
        )
        np.testing.assert_array_equal(spilling.indptr, ram.indptr)
        for node in (0, 17, 499):
            np.testing.assert_array_equal(
                spilling.sets_containing(node), ram.sets_containing(node)
            )

    def test_unbudgeted_store_never_spills(self):
        store = SharedRRStore(100)
        store.extend_flat(*_flat([np.arange(50)] * 20))
        assert not store.spilled
        assert not isinstance(store.members, np.memmap)

    def test_spill_accounting(self, tmp_path):
        store = SharedRRStore(300, bytes_budget=64, spill_dir=str(tmp_path))
        store.extend_flat(*_flat([[1, 2, 3], [4]]))  # 8 bytes: in RAM
        assert not store.spilled
        in_ram = store.memory_bytes()
        assert store.peak_bytes == in_ram
        assert store.member_bytes == 4 * 2  # int16
        store.extend_flat(*_flat([np.arange(40)]))  # 88 bytes: spills
        assert store.spilled
        # RAM accounting drops the members once they live on disk; the
        # inverted-index share (8 bytes/member) remains.
        assert store.memory_bytes() == store.member_total * 8
        assert store.peak_bytes >= in_ram
        assert store.bytes_per_rr_set() == pytest.approx(
            (store.member_bytes + store.indptr.nbytes) / store.size
        )

    def test_close_unlinks_spill_file_and_blocks_growth(self, tmp_path):
        store = SharedRRStore(100, bytes_budget=1, spill_dir=str(tmp_path))
        store.extend_flat(*_flat([[1, 2], [3]]))
        assert store.spilled
        path = store._spill_path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)
        store.close()  # idempotent
        with pytest.raises(EstimationError, match="closed"):
            store.extend_flat(*_flat([[1]]))

    def test_finalizer_reaps_spill_file_on_gc(self, tmp_path):
        store = SharedRRStore(100, bytes_budget=1, spill_dir=str(tmp_path))
        store.extend_flat(*_flat([[1, 2], [3]]))
        path = store._spill_path
        del store
        gc.collect()
        assert not os.path.exists(path)

    def test_adoption_over_spilled_store_matches_ram(self, tmp_path):
        rng = np.random.default_rng(9)
        batch = _flat(
            [rng.integers(0, 60, size=rng.integers(1, 6)) for _ in range(30)]
        )
        ram = SharedRRStore(60)
        spilling = SharedRRStore(60, bytes_budget=8, spill_dir=str(tmp_path))
        for store in (ram, spilling):
            store.extend_flat(*batch)
        a, b = SharedRRCollection(ram), SharedRRCollection(spilling)
        for col in (a, b):
            col.adopt(20, seeds=[5])
        np.testing.assert_array_equal(a.counts, b.counts)
        assert a.covered_total == b.covered_total
        node = int(np.argmax(a.counts))
        assert a.mark_covered_by(node) == b.mark_covered_by(node)
        np.testing.assert_array_equal(a.counts, b.counts)

    @settings(max_examples=15, deadline=None)
    @given(
        budget=st.integers(1, 200),
        data_seed=st.integers(0, 2**16),
        n_batches=st.integers(1, 5),
    )
    def test_spill_is_value_transparent(self, budget, data_seed, n_batches):
        rng = np.random.default_rng(data_seed)
        ram = SharedRRStore(200)
        budgeted = SharedRRStore(200, bytes_budget=budget)
        try:
            for _ in range(n_batches):
                batch = _flat(
                    [
                        rng.integers(0, 200, size=rng.integers(0, 10))
                        for _ in range(rng.integers(1, 8))
                    ]
                )
                ram.extend_flat(*batch)
                budgeted.extend_flat(*batch)
            np.testing.assert_array_equal(
                np.asarray(budgeted.members), ram.members
            )
            np.testing.assert_array_equal(budgeted.indptr, ram.indptr)
        finally:
            budgeted.close()


# ----------------------------------------------------------------------
# Accounting surfaces: engine extras, session stats, grid manifest
# ----------------------------------------------------------------------
class TestAccountingSurfaces:
    def test_engine_extras_memory_block(self):
        from tests.conftest import make_tiny_instance

        inst = make_tiny_instance(probs_value=0.6)
        spec = EngineSpec(
            eps=0.8, theta_cap=150, opt_lower=1.0, seed=17,
            share_samples=True, rr_bytes_budget=1,
        )
        result = solve(inst, "TI-CSRM", spec)
        memory = result.extras["memory"]
        assert set(memory) == MEMORY_KEYS
        assert memory["rr_bytes_budget"] == 1
        assert memory["spilled_stores"] >= 1
        assert memory["bytes_per_rr_set"] > 0
        assert memory["peak_store_bytes"] >= memory["store_bytes"] >= 0

    def test_engine_extras_without_budget(self):
        from tests.conftest import make_tiny_instance

        result = solve(
            make_tiny_instance(probs_value=0.6),
            "TI-CSRM",
            EngineSpec(eps=0.8, theta_cap=150, opt_lower=1.0, seed=17),
        )
        memory = result.extras["memory"]
        assert memory["rr_bytes_budget"] is None
        assert memory["spilled_stores"] == 0
        assert memory["bytes_per_rr_set"] > 0

    def test_invalid_budget_rejected_by_spec(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            EngineSpec(rr_bytes_budget=0)
        with pytest.raises(SpecError):
            EngineSpec(rr_bytes_budget=-5)
        assert EngineSpec(rr_bytes_budget=None).rr_bytes_budget is None

    def test_session_stats_carry_memory_keys(self):
        from tests.conftest import make_tiny_instance

        inst = make_tiny_instance(probs_value=0.6)
        spec = EngineSpec(
            eps=0.8, theta_cap=150, opt_lower=1.0, seed=17,
            share_samples=True, rr_bytes_budget=1,
        )
        with AllocationSession(inst.graph, spec=spec) as session:
            session.solve(inst, "TI-CSRM")
            stats = session.stats
            assert stats["spilled_stores"] >= 1
            assert stats["store_bytes"] >= 0
            assert stats["peak_store_bytes"] > 0
            assert stats["bytes_per_rr_set"] > 0
            spill_paths = [
                g.store._spill_path
                for g in session._warm.stores.values()
                if g.store is not None and g.store.spilled
            ]
            assert spill_paths
        # close() reaped every spill file with the session.
        assert not any(os.path.exists(p) for p in spill_paths)

    def test_grid_manifest_rows_carry_memory_block(self, tmp_path):
        from repro.experiments.grid import GridSpec, clear_grid_caches, run_grid

        clear_grid_caches()
        spec = GridSpec.from_dict(
            {
                "name": "membudget",
                "datasets": [
                    {
                        "name": "epinions_syn",
                        "n": 120,
                        "h": 2,
                        "singleton_rr_samples": 400,
                    }
                ],
                "algorithms": ["TI-CSRM"],
                "alphas": [1.0],
                "seed": 11,
                "config": {
                    "eps": 1.0,
                    "theta_cap": 120,
                    "share_samples": True,
                    "rr_bytes_budget": 1,
                    "kernel": "numba",
                },
            }
        )
        rows = run_grid(spec, str(tmp_path / "mem.jsonl"))
        assert rows and all(row["kind"] == "cell" for row in rows)
        for row in rows:
            memory = row["memory"]
            assert set(memory) == MEMORY_KEYS
            assert memory["rr_bytes_budget"] == 1
            assert memory["spilled_stores"] >= 1
            assert memory["bytes_per_rr_set"] > 0
            assert row["engine_spec"]["kernel"] == "numba"
            assert row["engine_spec"]["rr_bytes_budget"] == 1
        clear_grid_caches()

    def test_warm_grid_session_block_carries_store_bytes(self, tmp_path):
        from repro.experiments.grid import GridSpec, clear_grid_caches, run_grid

        clear_grid_caches()
        spec = GridSpec.from_dict(
            {
                "name": "memwarm",
                "datasets": [
                    {
                        "name": "epinions_syn",
                        "n": 120,
                        "h": 2,
                        "singleton_rr_samples": 400,
                    }
                ],
                "algorithms": ["TI-CSRM"],
                "alphas": [0.5, 1.0],
                "seed": 11,
                "config": {"eps": 1.0, "theta_cap": 120},
            }
        )
        rows = run_grid(
            spec, str(tmp_path / "warm.jsonl"), execution="warm_per_dataset"
        )
        assert [row["kind"] for row in rows] == ["cell", "cell"]
        for row in rows:
            session = row["session"]
            assert session["store_bytes"] > 0
            assert session["peak_store_bytes"] >= session["store_bytes"]
            assert session["bytes_per_rr_set"] > 0
            assert session["spilled_stores"] == 0
        clear_grid_caches()
