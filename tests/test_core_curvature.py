"""Tests for RM-specific curvature computations."""

import numpy as np
import pytest

from repro.core.ads import Advertiser
from repro.core.curvature import (
    PaymentSetFunction,
    RevenueSetFunction,
    SpreadSetFunction,
    max_payment_curvature,
    payment_curvature,
    singleton_payment_extremes,
    total_revenue_curvature,
)
from repro.core.instance import RMInstance
from repro.core.oracles import ExactOracle
from repro.graph.digraph import DiGraph
from repro.submodular.checks import is_monotone, is_submodular, total_curvature
from tests.conftest import make_tiny_instance


class TestSetFunctionAdapters:
    def test_spread_function_monotone_submodular(self):
        inst = make_tiny_instance(probs_value=0.5)
        f = SpreadSetFunction(ExactOracle(inst), ad=0)
        assert is_monotone(f)
        assert is_submodular(f)

    def test_revenue_scales_spread(self):
        inst = make_tiny_instance(probs_value=1.0, cpes=(2.0, 1.0))
        oracle = ExactOracle(inst)
        spread = SpreadSetFunction(oracle, 0)
        revenue = RevenueSetFunction(oracle, 0)
        assert revenue({0}) == pytest.approx(2.0 * spread({0}))

    def test_payment_adds_modular_costs(self):
        inst = make_tiny_instance(probs_value=1.0)
        oracle = ExactOracle(inst)
        pay = PaymentSetFunction(oracle, 0)
        rev = RevenueSetFunction(oracle, 0)
        assert pay({0, 3}) == pytest.approx(
            rev({0, 3}) + inst.seeding_cost(0, [0, 3])
        )

    def test_payment_monotone_submodular(self):
        inst = make_tiny_instance(probs_value=0.5)
        f = PaymentSetFunction(ExactOracle(inst), 0)
        assert is_monotone(f)
        assert is_submodular(f)


class TestCurvatureValues:
    def test_disconnected_graph_zero_curvature(self):
        # No arcs: spread is modular (each seed contributes exactly itself).
        g = DiGraph(4, [], [])
        advs = [Advertiser(index=0, cpe=1.0, budget=10.0)]
        inst = RMInstance(g, advs, [np.empty(0)], [np.ones(4)])
        oracle = ExactOracle(inst)
        assert total_revenue_curvature(inst, oracle) == 0.0
        assert payment_curvature(inst, oracle, 0) == 0.0

    def test_chain_graph_full_curvature(self):
        # 0 -> 1 deterministic: pi(1 | {0}) = 0 while pi({1}) = 1.
        g = DiGraph.from_edge_list([(0, 1)], n=2)
        advs = [Advertiser(index=0, cpe=1.0, budget=10.0)]
        inst = RMInstance(g, advs, [np.ones(1)], [np.zeros(2)])
        oracle = ExactOracle(inst)
        assert total_revenue_curvature(inst, oracle) == pytest.approx(1.0)

    def test_matches_generic_curvature(self):
        inst = make_tiny_instance(probs_value=0.5, h=1, budgets=(10.0,))
        oracle = ExactOracle(inst)
        generic = total_curvature(RevenueSetFunction(oracle, 0))
        specific = total_revenue_curvature(inst, oracle)
        assert specific == pytest.approx(generic)

    def test_payment_curvature_below_revenue_curvature(self):
        """Adding a modular cost dilutes curvature: kappa_rho <= kappa_pi
        when incentives are strictly positive."""
        inst = make_tiny_instance(probs_value=1.0)
        oracle = ExactOracle(inst)
        k_pi = total_revenue_curvature(inst, oracle)
        k_rho = payment_curvature(inst, oracle, 0)
        assert k_rho <= k_pi + 1e-9

    def test_max_payment_curvature(self):
        inst = make_tiny_instance(probs_value=0.5)
        oracle = ExactOracle(inst)
        per_ad = [payment_curvature(inst, oracle, i) for i in range(inst.h)]
        assert max_payment_curvature(inst, oracle) == pytest.approx(max(per_ad))


class TestPaymentExtremes:
    def test_extremes_on_tiny_instance(self):
        inst = make_tiny_instance(probs_value=1.0, h=1, budgets=(10.0,))
        oracle = ExactOracle(inst)
        rho_max, rho_min = singleton_payment_extremes(inst, oracle)
        # Singleton payments: sigma + cost with costs linspace(0.5, 1.5).
        payments = [
            oracle.spread(0, {u}) + inst.incentive(0, u) for u in range(inst.n)
        ]
        assert rho_max == pytest.approx(max(payments))
        assert rho_min == pytest.approx(min(payments))
        assert rho_max >= rho_min
