"""Parity tests for the flat CSR RR backend and the lazy TI engine.

Three layers of evidence that the flat data plane preserves estimator
semantics exactly:

1. the vectorized level-synchronous batch sampler reproduces, bit for
   bit, a transparent pure-Python reference that consumes the identical
   RNG stream (same draw shapes, same order);
2. the flat :class:`RRCollection` / :class:`SharedRRCollection` match a
   naive list-of-sets reference implementation (a mirror of the legacy
   backend's semantics) on residual counts, covered totals and return
   values, under hypothesis-generated workloads;
3. seeded end-to-end runs of all four algorithms are identical across
   lazy/eager candidate evaluation and across shared/private sampling
   (for probability-distinct ads, where the streams must coincide).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import Advertiser
from repro.core.instance import RMInstance
from repro.core.ti_engine import TIEngine
from repro.graph.generators import erdos_renyi
from repro.rrset.collection import (
    RRCollection,
    SharedRRCollection,
    SharedRRStore,
    estimate_spread_from_sets,
)
from repro.rrset.sampler import RRSampler


# ----------------------------------------------------------------------
# 1. Sampler parity against a transparent reference
# ----------------------------------------------------------------------
def reference_batch_flat(sampler, count, rng):
    """Pure-Python mirror of ``sample_batch_flat``'s RNG stream.

    Same draws in the same order: one vectorized root draw, then per
    chunk and per BFS level one ``rng.random(E)`` over the frontier's
    candidate arcs (frontier ascending by (set, node), each node's
    in-arc slice contiguous).
    """
    n = sampler.graph.n
    in_indptr = sampler._in_indptr
    tails = sampler._in_tails
    probs = sampler.probs_in
    roots = rng.integers(0, n, size=count).astype(np.int64)
    chunk = sampler._chunk_size(count)
    per_set: list[list[int]] = [[] for _ in range(count)]
    for c0 in range(0, count, chunk):
        c1 = min(c0 + chunk, count)
        visited = set()
        frontier = []
        for ls, k in enumerate(range(c0, c1)):
            root = int(roots[k])
            per_set[k].append(root)
            visited.add((ls, root))
            frontier.append((ls, root))
        while frontier:
            edges = []
            for ls, v in frontier:
                for e in range(int(in_indptr[v]), int(in_indptr[v + 1])):
                    edges.append((ls, e))
            if not edges:
                break
            draws = rng.random(len(edges))
            cand = [
                (ls, int(tails[e]))
                for (ls, e), d in zip(edges, draws)
                if d < probs[e]
            ]
            if not cand:
                break
            fresh = [
                key
                for key in sorted({ls * n + node for ls, node in cand})
                if (key // n, key % n) not in visited
            ]
            if not fresh:
                break
            frontier = []
            for key in fresh:
                ls, node = key // n, key % n
                visited.add((ls, node))
                per_set[c0 + ls].append(node)
                frontier.append((ls, node))
    members = (
        np.concatenate([np.asarray(s, dtype=np.int64) for s in per_set])
        if count
        else np.empty(0, dtype=np.int64)
    )
    indptr = np.concatenate(
        ([0], np.cumsum([len(s) for s in per_set]))
    ).astype(np.int64)
    return members, indptr


class TestSamplerParity:
    @pytest.mark.parametrize("p", [0.0, 0.3, 1.0])
    def test_flat_batch_matches_reference(self, p):
        g = erdos_renyi(40, 0.15, seed=3)
        sampler = RRSampler(g, np.full(g.m, p))
        fast_m, fast_i = sampler.sample_batch_flat(64, np.random.default_rng(9))
        ref_m, ref_i = reference_batch_flat(sampler, 64, np.random.default_rng(9))
        assert fast_i.tolist() == ref_i.tolist()
        assert fast_m.tolist() == ref_m.tolist()

    def test_flat_batch_matches_reference_across_chunks(self, monkeypatch):
        """Chunk boundaries must not change the sampled sets' semantics
        relative to the reference, which follows the same chunking."""
        g = erdos_renyi(25, 0.2, seed=4)
        monkeypatch.setattr(RRSampler, "_CHUNK_BYTES", g.n * 7)  # chunk = 7
        sampler = RRSampler(g, np.full(g.m, 0.5))
        assert sampler._chunk_size(50) == 7
        fast_m, fast_i = sampler.sample_batch_flat(50, np.random.default_rng(11))
        ref_m, ref_i = reference_batch_flat(sampler, 50, np.random.default_rng(11))
        assert fast_i.tolist() == ref_i.tolist()
        assert fast_m.tolist() == ref_m.tolist()

    def test_sets_are_valid_rr_sets(self):
        """Root first, members unique, all members reach the root in the
        full graph (a necessary condition of reverse reachability)."""
        g = erdos_renyi(30, 0.2, seed=5)
        sampler = RRSampler(g, np.full(g.m, 0.6))
        members, indptr = sampler.sample_batch_flat(40, np.random.default_rng(12))
        # Full-graph reachability: reverse-BFS closure from each root.
        for k in range(40):
            rr = members[indptr[k] : indptr[k + 1]]
            assert rr.size >= 1
            assert len(set(rr.tolist())) == rr.size
            closure = {int(rr[0])}
            stack = [int(rr[0])]
            while stack:
                v = stack.pop()
                for u in g.in_neighbors(v):
                    if int(u) not in closure:
                        closure.add(int(u))
                        stack.append(int(u))
            assert set(rr.tolist()) <= closure

    def test_batch_list_wrapper_matches_flat(self):
        g = erdos_renyi(20, 0.2, seed=6)
        sampler = RRSampler(g, np.full(g.m, 0.4))
        flat_m, flat_i = sampler.sample_batch_flat(15, np.random.default_rng(13))
        as_list = sampler.sample_batch(15, np.random.default_rng(13))
        assert len(as_list) == 15
        for k, rr in enumerate(as_list):
            assert rr.tolist() == flat_m[flat_i[k] : flat_i[k + 1]].tolist()


# ----------------------------------------------------------------------
# 2. Collection parity against a naive reference (legacy semantics)
# ----------------------------------------------------------------------
class NaiveCollection:
    """List-of-sets mirror of the legacy RRCollection semantics."""

    def __init__(self, n_nodes):
        self.n_nodes = n_nodes
        self.sets: list[np.ndarray] = []
        self.covered: list[bool] = []
        self.covered_total = 0
        self.counts = np.zeros(n_nodes, dtype=np.int64)

    def add_sets(self, new_sets, seeds=()):
        seed_set = {int(s) for s in seeds}
        absorbed = 0
        for members in new_sets:
            members = np.asarray(members, dtype=np.int64)
            self.sets.append(members)
            if seed_set & set(members.tolist()):
                self.covered.append(True)
                self.covered_total += 1
                absorbed += 1
                continue
            self.covered.append(False)
            self.counts[members] += 1
        return absorbed

    def mark_covered_by(self, node):
        newly = 0
        for sid, members in enumerate(self.sets):
            if self.covered[sid] or node not in members.tolist():
                continue
            self.covered[sid] = True
            self.covered_total += 1
            newly += 1
            self.counts[members] -= 1
        return newly

    def spread_estimate(self, seed_set):
        hits = sum(
            1
            for s in self.sets
            if set(int(v) for v in seed_set) & set(s.tolist())
        )
        return self.n_nodes * hits / len(self.sets)


set_lists = st.lists(
    st.frozensets(st.integers(0, 7), min_size=1, max_size=5),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(
    set_lists,
    st.frozensets(st.integers(0, 7), max_size=2),
    st.lists(st.integers(0, 7), max_size=4),
)
def test_flat_collection_matches_naive(rr_sets, seeds, cover_nodes):
    """Counts, covered totals and return values track the naive mirror
    through an arbitrary add + cover sequence."""
    arrays = [np.asarray(sorted(s), dtype=np.int64) for s in rr_sets]
    flat = RRCollection(8)
    naive = NaiveCollection(8)
    assert flat.add_sets(arrays, seeds=list(seeds)) == naive.add_sets(
        arrays, seeds=list(seeds)
    )
    for node in cover_nodes:
        assert flat.mark_covered_by(node) == naive.mark_covered_by(node)
        assert flat.counts.tolist() == naive.counts.tolist()
        assert flat.covered_total == naive.covered_total
    assert flat.spread_estimate(list(seeds or {0})) == pytest.approx(
        naive.spread_estimate(list(seeds or {0}))
    )
    # Invariant: residual counts always equal a from-scratch recount.
    recount = np.zeros(8, dtype=np.int64)
    for sid, members in enumerate(arrays):
        if not naive.covered[sid]:
            recount[members] += 1
    assert flat.counts.tolist() == recount.tolist()


@settings(max_examples=40, deadline=None)
@given(
    set_lists,
    st.frozensets(st.integers(0, 7), max_size=2),
    st.integers(0, 7),
    st.integers(0, 12),
)
def test_shared_adopt_matches_private_add(rr_sets, seeds, cover_node, split):
    """Adopting a store prefix in two steps is equivalent to feeding the
    same sets (same seeds) to a private collection in two batches."""
    arrays = [np.asarray(sorted(s), dtype=np.int64) for s in rr_sets]
    split = min(split, len(arrays))
    store = SharedRRStore(8)
    store.extend(arrays)
    view = SharedRRCollection(store)
    private = RRCollection(8)
    view.adopt(split, seeds=list(seeds))
    private.add_sets(arrays[:split], seeds=list(seeds))
    assert view.mark_covered_by(cover_node) == private.mark_covered_by(cover_node)
    view.adopt(len(arrays), seeds=list(seeds))
    private.add_sets(arrays[split:], seeds=list(seeds))
    assert view.counts.tolist() == private.counts.tolist()
    assert view.covered_total == private.covered_total
    assert view.theta == private.theta


def test_estimate_spread_from_sets_matches_naive():
    rr = [np.array([0, 1]), np.array([2]), np.array([0, 3])]
    assert estimate_spread_from_sets(rr, [0], 4) == pytest.approx(4 * 2 / 3)
    assert estimate_spread_from_sets(rr, [1, 2], 4) == pytest.approx(4 * 2 / 3)
    assert estimate_spread_from_sets(rr, [5], 4) == 0.0


# ----------------------------------------------------------------------
# 3. End-to-end engine parity
# ----------------------------------------------------------------------
ALGOS = [
    ("carm", "ca", "revenue"),
    ("csrm", "cs", "rate"),
    ("pr-gr", "pagerank", "revenue"),
    ("pr-rr", "pagerank", "round_robin"),
]


def distinct_prob_instance(h=3, n=50, seed=21):
    """Every ad gets a different probability vector, so shared-sampling
    groups are singletons and shared/private streams must coincide."""
    g = erdos_renyi(n, 0.1, seed=seed)
    rng = np.random.default_rng(seed + 1)
    advs = [Advertiser(index=i, cpe=1.0, budget=11.0) for i in range(h)]
    probs = [np.full(g.m, 0.2 + 0.1 * i) for i in range(h)]
    incentives = [rng.uniform(0.1, 1.0, size=n) for _ in range(h)]
    return RMInstance(g, advs, probs, incentives)


def run_engine(inst, rule, selector, **overrides):
    params = dict(
        eps=0.7, theta_cap=500, opt_lower=4.0, seed=17, share_samples=False
    )
    params.update(overrides)
    return TIEngine(inst, candidate_rule=rule, selector=selector, **params).run()


class TestEngineParity:
    @pytest.mark.parametrize("name,rule,selector", ALGOS, ids=[a[0] for a in ALGOS])
    @pytest.mark.parametrize("share", [False, True], ids=["private", "shared"])
    def test_lazy_matches_eager(self, name, rule, selector, share):
        """CELF-style candidate caching must not change any allocation."""
        inst = distinct_prob_instance()
        lazy = run_engine(inst, rule, selector, share_samples=share)
        eager = run_engine(
            inst, rule, selector, share_samples=share, lazy_candidates=False
        )
        assert lazy.allocation.pairs() == eager.allocation.pairs()
        assert lazy.revenue_per_ad == pytest.approx(eager.revenue_per_ad)
        assert lazy.seeding_cost_per_ad == pytest.approx(eager.seeding_cost_per_ad)
        assert lazy.extras["theta_per_ad"] == eager.extras["theta_per_ad"]

    @pytest.mark.parametrize("name,rule,selector", ALGOS, ids=[a[0] for a in ALGOS])
    def test_shared_matches_private_for_distinct_probs(self, name, rule, selector):
        """With singleton sharing groups the RNG streams coincide, so the
        backend swap (store+view vs private collection) must be invisible:
        identical seeds, residuals, covered totals, allocations."""
        inst = distinct_prob_instance()
        private = run_engine(inst, rule, selector, share_samples=False)
        shared = run_engine(inst, rule, selector, share_samples=True)
        assert private.allocation.pairs() == shared.allocation.pairs()
        assert private.revenue_per_ad == pytest.approx(shared.revenue_per_ad)
        assert private.extras["theta_per_ad"] == shared.extras["theta_per_ad"]

    @pytest.mark.parametrize("share", [False, True], ids=["private", "shared"])
    def test_seeded_runs_are_reproducible(self, share):
        inst = distinct_prob_instance()
        for _, rule, selector in ALGOS:
            a = run_engine(inst, rule, selector, share_samples=share)
            b = run_engine(inst, rule, selector, share_samples=share)
            assert a.allocation.pairs() == b.allocation.pairs()
            assert a.revenue_per_ad == pytest.approx(b.revenue_per_ad)

    def test_engine_collections_match_recount(self):
        """After a full run, every per-ad residual state is consistent:
        counts equal a recount over uncovered sets, covered_total equals
        the covered-flag sum (the mark_covered_by/adopt invariants)."""
        inst = distinct_prob_instance()
        engine = TIEngine(
            inst,
            candidate_rule="cs",
            selector="rate",
            eps=0.7,
            theta_cap=500,
            opt_lower=4.0,
            seed=17,
        )
        engine.run()
        for state in engine._states:
            coll = state.collection
            recount = np.zeros(inst.n, dtype=np.int64)
            for sid in range(coll.theta):
                if not coll.covered[sid]:
                    recount[coll.set_members(sid)] += 1
            assert coll.counts.tolist() == recount.tolist()
            assert coll.covered_total == int(np.asarray(coll.covered).sum())

    def test_group_key_uses_raw_bytes(self):
        """Ads with equal probability vectors (distinct array objects)
        share one store; ads with different vectors never do."""
        g = erdos_renyi(30, 0.1, seed=30)
        advs = [Advertiser(index=i, cpe=1.0, budget=8.0) for i in range(3)]
        probs = [
            np.full(g.m, 0.3),
            np.full(g.m, 0.3),  # equal values, different object
            np.full(g.m, 0.4),
        ]
        incentives = [np.full(30, 0.5) for _ in range(3)]
        inst = RMInstance(g, advs, probs, incentives)
        engine = TIEngine(
            inst,
            candidate_rule="cs",
            selector="rate",
            eps=0.8,
            theta_cap=200,
            opt_lower=3.0,
            seed=31,
            share_samples=True,
        )
        engine.run()
        stores = {id(s.store) for s in engine._states}
        assert len(stores) == 2
        assert id(engine._states[0].store) == id(engine._states[1].store)
