"""Tests for the scalable TI engine (Algorithm 2) and its four configurations."""

import numpy as np
import pytest

from repro.core.ads import Advertiser
from repro.core.baselines import pagerank_gr, pagerank_rr
from repro.core.instance import RMInstance
from repro.core.oracles import ExactOracle
from repro.core.ti_engine import TIEngine
from repro.core.ticarm import ti_carm
from repro.core.ticsrm import ti_csrm
from repro.errors import AllocationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi


def small_instance(h=2, budget=12.0, seed=0, n=40, zero_costs=False):
    g = erdos_renyi(n, 0.08, seed=seed)
    rng = np.random.default_rng(seed + 1)
    advs = [Advertiser(index=i, cpe=1.0, budget=budget) for i in range(h)]
    probs = [np.full(g.m, 0.3) for _ in range(h)]
    if zero_costs:
        incentives = [np.zeros(n) for _ in range(h)]
    else:
        incentives = [rng.uniform(0.1, 1.0, size=n) for _ in range(h)]
    return RMInstance(g, advs, probs, incentives)


COMMON = dict(eps=0.8, theta_cap=400, opt_lower=3.0, seed=5)


class TestEngineValidation:
    def test_unknown_rules_rejected(self):
        inst = small_instance()
        with pytest.raises(AllocationError):
            TIEngine(inst, candidate_rule="bogus")
        with pytest.raises(AllocationError):
            TIEngine(inst, selector="bogus")
        with pytest.raises(AllocationError):
            TIEngine(inst, eps=0.0)
        with pytest.raises(AllocationError):
            TIEngine(inst, window=0)

    def test_unknown_opt_lower_spec(self):
        inst = small_instance()
        engine = TIEngine(inst, opt_lower="nonsense")
        with pytest.raises(AllocationError):
            engine.run()


class TestInvariants:
    @pytest.mark.parametrize(
        "runner",
        [ti_carm, ti_csrm, pagerank_gr, pagerank_rr],
        ids=["carm", "csrm", "pr-gr", "pr-rr"],
    )
    def test_disjoint_and_budget_feasible(self, runner):
        inst = small_instance(h=3, budget=10.0)
        result = runner(inst, **COMMON)
        nodes = [n for n, _ in result.allocation.pairs()]
        assert len(nodes) == len(set(nodes))
        # Budget feasibility under the engine's own estimates.
        for i in range(inst.h):
            assert result.payment_per_ad[i] <= inst.budget(i) + 1e-6

    def test_theta_respects_cap(self):
        inst = small_instance()
        result = ti_carm(inst, **COMMON)
        assert all(t <= 400 for t in result.extras["theta_per_ad"])

    def test_seed_size_estimates_cover_seeds(self):
        inst = small_instance()
        result = ti_csrm(inst, **COMMON)
        for i in range(inst.h):
            assert len(result.allocation.seeds(i)) <= result.extras[
                "seed_size_estimate_per_ad"
            ][i]

    def test_memory_reported(self):
        inst = small_instance()
        result = ti_csrm(inst, **COMMON)
        assert result.extras["memory_bytes"] > 0

    def test_deterministic_under_seed(self):
        inst = small_instance()
        a = ti_csrm(inst, **COMMON)
        b = ti_csrm(inst, **COMMON)
        assert a.allocation.pairs() == b.allocation.pairs()
        assert a.total_revenue == pytest.approx(b.total_revenue)


class TestEstimates:
    def test_revenue_close_to_exact_on_allocation(self):
        """The engine's internal estimate should track the true expected
        revenue of the allocation it returns."""
        inst = small_instance(h=1, budget=15.0, n=25)
        result = ti_csrm(inst, eps=0.3, theta_cap=20_000, opt_lower=3.0, seed=6)
        seeds = result.allocation.seeds(0)
        if seeds:
            exact = ExactOracle(inst)
            # The 25-node graph at p=0.3 has too many random arcs for the
            # exact oracle; use a large Monte-Carlo instead.
            from repro.diffusion.montecarlo import estimate_spread

            mc = estimate_spread(inst.graph, inst.ad_probs[0], seeds, n_runs=3000, rng=7)
            assert result.total_revenue == pytest.approx(mc, rel=0.25)

    def test_zero_probability_instance_yields_singletons_only(self):
        g = erdos_renyi(15, 0.2, seed=8)
        advs = [Advertiser(index=0, cpe=1.0, budget=5.0)]
        inst = RMInstance(g, advs, [np.zeros(g.m)], [np.full(15, 0.5)])
        result = ti_csrm(inst, eps=0.8, theta_cap=200, opt_lower=1.0, seed=9)
        # Every RR set is a singleton; each seed covers ~theta/n sets and
        # budget 5 limits how many fit.
        assert result.payment_per_ad[0] <= 5.0 + 1e-6


class TestModes:
    def test_constant_costs_make_carm_equal_csrm(self):
        """With identical incentives everywhere the CS ratio ordering
        coincides with the CA ordering (the paper's constant-model check)."""
        g = erdos_renyi(30, 0.1, seed=10)
        advs = [Advertiser(index=i, cpe=1.0, budget=12.0) for i in range(2)]
        probs = [np.full(g.m, 0.3)] * 2
        incentives = [np.full(30, 0.7)] * 2
        inst = RMInstance(g, advs, probs, incentives)
        a = ti_carm(inst, **COMMON)
        b = ti_csrm(inst, **COMMON)
        assert a.total_revenue == pytest.approx(b.total_revenue)
        assert a.allocation.pairs() == b.allocation.pairs()

    def test_window_one_matches_carm_selection_bias(self):
        """window=1 restricts the CS candidate to the max-coverage node, so
        seed *sets* should coincide with TI-CARM's under equal selectors...
        we check the weaker, robust property: revenue is no less than 80%
        of CARM's (they share candidates but rank ads differently)."""
        inst = small_instance(h=2, budget=10.0, seed=11)
        carm = ti_carm(inst, **COMMON)
        csrm_w1 = ti_csrm(inst, window=1, **COMMON)
        if carm.total_revenue > 0:
            assert csrm_w1.total_revenue >= 0.5 * carm.total_revenue

    def test_window_grows_revenue_weakly(self):
        inst = small_instance(h=2, budget=10.0, seed=12)
        revenues = [
            ti_csrm(inst, window=w, **COMMON).total_revenue for w in (1, 5, None)
        ]
        assert max(revenues) >= revenues[0] - 1e-9

    def test_round_robin_cycles_ads(self):
        inst = small_instance(h=3, budget=8.0, seed=13)
        result = pagerank_rr(inst, **COMMON)
        sizes = [len(result.allocation.seeds(i)) for i in range(3)]
        # Round-robin should not starve any ad (budgets are equal).
        if sum(sizes) >= 3:
            assert min(sizes) >= 1

    def test_pagerank_gr_uses_pagerank_candidates(self):
        inst = small_instance(h=1, budget=50.0, seed=14, zero_costs=True)
        from repro.graph.pagerank import pagerank_order

        result = pagerank_gr(inst, **COMMON)
        seeds = result.allocation.seeds(0)
        order = pagerank_order(inst.graph, weights=inst.ad_probs[0]).tolist()
        if seeds:
            # Seeds must form a prefix of the PageRank order.
            assert seeds == order[: len(seeds)]


class TestNaming:
    def test_algorithm_names(self):
        inst = small_instance()
        assert ti_carm(inst, **COMMON).algorithm == "TI-CARM"
        assert ti_csrm(inst, **COMMON).algorithm == "TI-CSRM"
        assert ti_csrm(inst, window=7, **COMMON).algorithm == "TI-CSRM(7)"
        assert pagerank_gr(inst, **COMMON).algorithm == "PageRank-GR"
        assert pagerank_rr(inst, **COMMON).algorithm == "PageRank-RR"
