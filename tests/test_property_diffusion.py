"""Property-based tests for diffusion and RR estimators on random tiny graphs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.diffusion.worlds import exact_spread
from repro.graph.digraph import DiGraph
from repro.rrset.collection import RRCollection
from repro.rrset.sampler import RRSampler


@st.composite
def tiny_weighted_graphs(draw):
    """A graph on <= 6 nodes with <= 8 probabilistic arcs."""
    n = draw(st.integers(2, 6))
    n_edges = draw(st.integers(0, 8))
    edges = set()
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((u, v))
    g = DiGraph.from_edge_list(sorted(edges), n=n)
    probs = np.array(
        [draw(st.sampled_from([0.0, 0.25, 0.5, 1.0])) for _ in range(g.m)]
    )
    return g, probs


@settings(max_examples=30, deadline=None)
@given(tiny_weighted_graphs(), st.integers(0, 2**6 - 1))
def test_exact_spread_monotone(graph_probs, mask):
    g, probs = graph_probs
    seeds = [v for v in range(g.n) if mask >> v & 1]
    base = exact_spread(g, probs, seeds)
    for extra in range(g.n):
        grown = exact_spread(g, probs, set(seeds) | {extra})
        assert grown >= base - 1e-9


@settings(max_examples=30, deadline=None)
@given(tiny_weighted_graphs())
def test_exact_spread_bounds(graph_probs):
    g, probs = graph_probs
    for u in range(g.n):
        s = exact_spread(g, probs, [u])
        assert 1.0 - 1e-9 <= s <= g.n + 1e-9


@settings(max_examples=25, deadline=None)
@given(tiny_weighted_graphs())
def test_exact_spread_submodular(graph_probs):
    g, probs = graph_probs
    # f(x | S+y) <= f(x | S) for the first few triples.
    nodes = list(range(min(g.n, 4)))
    for x in nodes:
        for y in nodes:
            if x == y:
                continue
            s0 = exact_spread(g, probs, [])
            sx = exact_spread(g, probs, [x])
            sy = exact_spread(g, probs, [y])
            sxy = exact_spread(g, probs, [x, y])
            assert sxy - sy <= sx - s0 + 1e-9


@settings(max_examples=15, deadline=None)
@given(tiny_weighted_graphs())
def test_rr_estimator_tracks_exact_spread(graph_probs):
    """n*F_R({u}) concentrates near sigma({u}) with a generous tolerance."""
    g, probs = graph_probs
    sampler = RRSampler(g, probs)
    rng = np.random.default_rng(0)
    counts = np.zeros(g.n)
    samples = 4000
    for _ in range(samples):
        counts[sampler.sample(rng)] += 1
    for u in range(g.n):
        estimate = g.n * counts[u] / samples
        exact = exact_spread(g, probs, [u])
        assert abs(estimate - exact) <= max(0.35, 0.25 * exact)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.frozensets(st.integers(0, 7), min_size=1, max_size=4),
        min_size=1,
        max_size=12,
    ),
    st.integers(0, 7),
)
def test_collection_counts_match_naive_recount(rr_sets, cover_node):
    """Residual counts always equal a from-scratch recount."""
    c = RRCollection(8)
    c.add_sets([np.array(sorted(s)) for s in rr_sets])
    c.mark_covered_by(cover_node)
    naive = np.zeros(8, dtype=int)
    for sid, members in enumerate(rr_sets):
        if cover_node in members:
            continue
        for v in members:
            naive[v] += 1
    assert c.counts.tolist() == naive.tolist()
    assert c.covered_total == sum(1 for s in rr_sets if cover_node in s)
