"""Tests for the Table 1–3 builders (smoke scale)."""

from repro.experiments.datasets import build_dataset
from repro.experiments.memory import megabytes, memory_ratio, result_memory_mb
from repro.experiments.tables import table1_rows, table2_rows, table3_rows


def quick_sets():
    return [
        build_dataset("flixster_syn", n=300, h=2, singleton_rr_samples=500),
        build_dataset("dblp_syn", n=400, h=4, seed=5),
    ]


class TestTable1:
    def test_rows_have_table1_columns(self):
        rows = table1_rows(quick_sets())
        assert len(rows) == 2
        for row in rows:
            assert {"dataset", "#nodes", "#edges", "type"} <= set(row)

    def test_type_matches_dataset(self):
        rows = table1_rows(quick_sets())
        by_name = {r["dataset"]: r for r in rows}
        assert by_name["flixster_syn"]["type"] == "directed"
        assert by_name["dblp_syn"]["type"] == "undirected"


class TestTable2:
    def test_summary_statistics(self):
        rows = table2_rows(quick_sets())
        for row in rows:
            assert row["budget min"] <= row["budget mean"] <= row["budget max"]
            assert row["cpe min"] <= row["cpe mean"] <= row["cpe max"]


class TestTable3:
    def test_memory_rows(self, quick_config):
        ds = build_dataset("dblp_syn", n=400, h=4, seed=5)
        rows = table3_rows([ds], config=quick_config, h_values=(1, 2))
        assert len(rows) == 2  # one per algorithm
        for row in rows:
            assert row["h=1 (MB)"] > 0
            assert row["h=2 (MB)"] >= row["h=1 (MB)"]  # memory grows with h


class TestMemoryHelpers:
    def test_megabytes(self):
        assert megabytes(2_000_000) == 2.0

    def test_result_memory(self, quick_dataset, quick_config):
        from repro.experiments.harness import run_algorithm

        inst = quick_dataset.build_instance("linear", 1.0)
        csrm = run_algorithm("TI-CSRM", quick_dataset, inst, quick_config)
        carm = run_algorithm("TI-CARM", quick_dataset, inst, quick_config)
        assert result_memory_mb(csrm) > 0
        assert memory_ratio(csrm, carm) > 0
