"""Tests for the algorithm harness and figure runners (smoke scale)."""

import pytest

from repro.errors import InstanceError
from repro.experiments.figures import (
    run_ablation_epsilon,
    run_alpha_sweep,
    run_diagnostics,
    run_figure4,
    run_figure5_advertisers,
    run_figure5_budgets,
)
from repro.experiments.harness import (
    ALGORITHMS,
    evaluate_allocation_mc,
    run_algorithm,
    run_algorithms,
)


class TestRunAlgorithm:
    def test_all_four_algorithms_run(self, quick_dataset, quick_config):
        inst = quick_dataset.build_instance("linear", 1.0)
        for name in ALGORITHMS:
            result = run_algorithm(name, quick_dataset, inst, quick_config)
            assert result.algorithm.startswith(name.split("(")[0])
            assert result.total_revenue >= 0.0

    def test_unknown_algorithm_rejected(self, quick_dataset, quick_config):
        inst = quick_dataset.build_instance("linear", 1.0)
        with pytest.raises(InstanceError):
            run_algorithm("TI-MAGIC", quick_dataset, inst, quick_config)

    def test_run_algorithms_collects_all(self, quick_dataset, quick_config):
        inst = quick_dataset.build_instance("linear", 1.0)
        results = run_algorithms(
            quick_dataset, inst, quick_config, algorithms=("TI-CSRM", "TI-CARM")
        )
        assert set(results) == {"TI-CSRM", "TI-CARM"}

    def test_mc_revalidation_same_order_of_magnitude(self, quick_dataset, quick_config):
        """With theta capped far below L(s, eps) the adaptive selection
        inflates the engine's own estimate (winner's curse); the MC
        re-estimate must stay the same order of magnitude and below the
        optimistic estimate."""
        inst = quick_dataset.build_instance("linear", 1.0)
        result = run_algorithm("TI-CSRM", quick_dataset, inst, quick_config)
        mc = evaluate_allocation_mc(inst, result, n_runs=150, seed=1)
        if result.total_revenue > 0:
            assert mc <= 1.2 * result.total_revenue
            assert mc >= result.total_revenue / 6.0


class TestFigureRunners:
    def test_alpha_sweep_rows(self, quick_dataset, quick_config):
        rows = run_alpha_sweep(
            quick_dataset,
            quick_config,
            incentive_models=("linear",),
            algorithms=("TI-CSRM", "TI-CARM"),
        )
        alphas = quick_config.alphas("linear", quick_dataset.name)
        assert len(rows) == len(alphas) * 2
        for row in rows:
            assert row["revenue"] >= 0
            assert row["seed_cost"] >= 0
            assert row["algorithm"] in ("TI-CSRM", "TI-CARM")

    def test_constant_model_equalizes(self, quick_dataset, quick_config):
        rows = run_alpha_sweep(
            quick_dataset,
            quick_config,
            incentive_models=("constant",),
            algorithms=("TI-CSRM", "TI-CARM"),
        )
        by_alpha = {}
        for row in rows:
            by_alpha.setdefault(row["alpha"], {})[row["algorithm"]] = row["revenue"]
        for pair in by_alpha.values():
            assert pair["TI-CSRM"] == pytest.approx(pair["TI-CARM"])

    def test_figure4_rows(self, quick_dataset, quick_config):
        rows = run_figure4(
            quick_dataset, quick_config, alphas=(1.0,), windows=(1, None)
        )
        assert len(rows) == 2
        assert {r["window"] for r in rows} == {1, "n"}

    def test_figure5_advertisers(self, quick_dataset, quick_config):
        rows = run_figure5_advertisers(
            quick_dataset, quick_config, h_values=(1, 3), budget=200.0
        )
        assert len(rows) == 4  # 2 h-values x 2 algorithms
        assert all(row["memory_mb"] > 0 for row in rows)

    def test_figure5_budgets(self, quick_dataset, quick_config):
        rows = run_figure5_budgets(
            quick_dataset, quick_config, budgets=(150.0, 300.0), h=2
        )
        assert len(rows) == 4
        assert {row["budget"] for row in rows} == {150.0, 300.0}

    def test_diagnostics(self, quick_dataset, quick_config):
        rows = run_diagnostics(quick_dataset, quick_config, alpha=1.0)
        assert rows
        for row in rows:
            assert row["avg_seed_cost"] >= 0
            assert row["avg_marginal_revenue"] >= 0

    def test_ablation_epsilon_theta_shrinks(self, quick_dataset, quick_config):
        rows = run_ablation_epsilon(
            quick_dataset, quick_config, eps_values=(0.4, 1.2), alpha=1.0,
            theta_cap=3_000,
        )
        assert len(rows) == 2
        # Larger eps needs no more RR sets than smaller eps.
        assert rows[1]["theta_total"] <= rows[0]["theta_total"]
