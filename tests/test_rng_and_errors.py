"""Tests for RNG helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro._rng import as_generator, spawn
from repro import errors


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        rng = as_generator(np.random.SeedSequence(7))
        assert isinstance(rng, np.random.Generator)


class TestSpawn:
    def test_children_are_independent_and_reproducible(self):
        parent_a = as_generator(5)
        parent_b = as_generator(5)
        kids_a = spawn(parent_a, 3)
        kids_b = spawn(parent_b, 3)
        for ka, kb in zip(kids_a, kids_b):
            assert np.array_equal(ka.random(4), kb.random(4))
        # Distinct children produce distinct streams.
        draws = [tuple(np.round(k.random(4), 12)) for k in spawn(as_generator(5), 3)]
        assert len(set(draws)) == 3

    def test_zero_children(self):
        assert spawn(as_generator(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "GraphError",
            "TopicModelError",
            "InstanceError",
            "AllocationError",
            "EstimationError",
            "ConvergenceError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_single_except_catches_everything(self):
        try:
            raise errors.EstimationError("boom")
        except errors.ReproError as exc:
            assert "boom" in str(exc)
