"""Unit tests for the CSR digraph substrate."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0, [], [])
        assert g.n == 0
        assert g.m == 0

    def test_nodes_without_edges(self):
        g = DiGraph(5, [], [])
        assert g.n == 5
        assert g.m == 0
        assert list(g.out_neighbors(3)) == []
        assert list(g.in_neighbors(3)) == []

    def test_basic_adjacency(self, diamond_graph):
        assert sorted(diamond_graph.out_neighbors(0).tolist()) == [1, 2]
        assert sorted(diamond_graph.in_neighbors(3).tolist()) == [1, 2]
        assert diamond_graph.out_neighbors(3).size == 0
        assert diamond_graph.in_neighbors(0).size == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1, [], [])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(3, [0], [3])
        with pytest.raises(GraphError):
            DiGraph(3, [-1], [0])

    def test_self_loop_rejected_by_default(self):
        with pytest.raises(GraphError):
            DiGraph(2, [1], [1])

    def test_self_loop_allowed_when_opted_in(self):
        g = DiGraph(2, [1], [1], allow_self_loops=True)
        assert g.m == 1

    def test_dedupe_removes_duplicates(self):
        g = DiGraph(3, [0, 0, 1], [1, 1, 2])
        assert g.m == 2

    def test_dedupe_disabled_keeps_duplicates(self):
        g = DiGraph(3, [0, 0], [1, 1], dedupe=False)
        assert g.m == 2

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(3, [0, 1], [1])


class TestConstructors:
    def test_from_edge_list_infers_n(self):
        g = DiGraph.from_edge_list([(0, 4), (2, 1)])
        assert g.n == 5
        assert g.m == 2

    def test_from_edge_list_explicit_n(self):
        g = DiGraph.from_edge_list([(0, 1)], n=10)
        assert g.n == 10

    def test_from_edge_list_empty(self):
        g = DiGraph.from_edge_list([])
        assert g.n == 0 and g.m == 0

    def test_from_adjacency(self):
        g = DiGraph.from_adjacency({0: [1, 2], 2: [1]})
        assert g.n == 3
        assert g.m == 3
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]


class TestEdgeIds:
    def test_canonical_order_sorted_by_tail(self):
        g = DiGraph(4, [2, 0, 1], [3, 1, 2], dedupe=False)
        tails, heads = g.edge_array()
        assert tails.tolist() == [0, 1, 2]
        assert heads.tolist() == [1, 2, 3]

    def test_in_edge_ids_map_to_same_arc(self, diamond_graph):
        tails, heads = diamond_graph.edge_array()
        for v in range(diamond_graph.n):
            ids = diamond_graph.in_edge_ids_of(v)
            for eid, u in zip(ids, diamond_graph.in_neighbors(v)):
                assert tails[eid] == u
                assert heads[eid] == v

    def test_out_edge_ids_contiguous(self, diamond_graph):
        ids = diamond_graph.out_edge_ids(0)
        assert ids.tolist() == [0, 1]


class TestDegrees:
    def test_degree_vectors(self, star_graph):
        assert star_graph.out_degrees().tolist() == [5, 0, 0, 0, 0, 0]
        assert star_graph.in_degrees().tolist() == [0, 1, 1, 1, 1, 1]

    def test_degree_sums_equal_m(self, rng):
        tails = rng.integers(0, 20, size=50)
        heads = (tails + 1 + rng.integers(0, 19, size=50)) % 20
        g = DiGraph(20, tails, heads)
        assert g.out_degrees().sum() == g.m
        assert g.in_degrees().sum() == g.m


class TestDerivedGraphs:
    def test_reverse_swaps_adjacency(self, path_graph):
        r = path_graph.reverse()
        assert list(r.out_neighbors(1)) == [0]
        assert list(r.in_neighbors(0)) == [1]
        assert r.m == path_graph.m

    def test_reverse_twice_is_identity(self, diamond_graph):
        assert diamond_graph.reverse().reverse() == diamond_graph

    def test_to_bidirected(self, path_graph):
        b = path_graph.to_bidirected()
        assert b.m == 2 * path_graph.m
        assert b.has_edge(1, 0) and b.has_edge(0, 1)

    def test_to_bidirected_idempotent_on_symmetric(self, path_graph):
        b = path_graph.to_bidirected()
        assert b.to_bidirected().m == b.m

    def test_derived_graphs_propagate_self_loop_flag(self):
        g = DiGraph(3, [0, 1], [0, 2], allow_self_loops=True)
        assert g.to_bidirected().allows_self_loops
        assert g.reverse().has_edge(0, 0)
        assert g.subgraph([0, 1]).allows_self_loops

    def test_subgraph_relabels(self):
        g = DiGraph.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)], n=4)
        sub = g.subgraph([1, 2, 3])
        assert sub.n == 3
        # Edges (1,2) and (2,3) survive as (0,1), (1,2).
        assert sub.m == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)


class TestQueries:
    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert not path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 3)

    def test_edges_iteration_matches_edge_array(self, diamond_graph):
        tails, heads = diamond_graph.edge_array()
        assert list(diamond_graph.edges()) == list(zip(tails.tolist(), heads.tolist()))

    def test_equality_and_hash(self):
        g1 = DiGraph.from_edge_list([(0, 1), (1, 2)], n=3)
        g2 = DiGraph.from_edge_list([(1, 2), (0, 1)], n=3)
        assert g1 == g2
        assert hash(g1) == hash(g2)
        g3 = DiGraph.from_edge_list([(0, 1)], n=3)
        assert g1 != g3
