"""Warm-session grid execution: provenance, parity, resume, lifecycle.

The cold path's guarantees (order-independence, bit-reproducibility per
``(spec, seed)``) are covered by ``tests/test_experiments_grid.py``;
this suite covers what ``execution: warm_per_dataset`` adds — and what
it deliberately trades away (docs/ARCHITECTURE.md §10).
"""

import json

import pytest

import repro.experiments.grid as grid_module
from repro.api.registry import register_algorithm, unregister_algorithm
from repro.errors import SpecError
from repro.experiments.grid import (
    AllocationSession,
    GridSpec,
    clear_grid_caches,
    load_manifest,
    run_grid,
    session_group_key,
)

SMOKE = {
    "name": "smoke",
    "datasets": [
        {"name": "epinions_syn", "n": 120, "h": 2, "singleton_rr_samples": 400}
    ],
    "algorithms": ["TI-CSRM", "TI-CARM"],
    "alphas": [0.5, 1.0],
    "seed": 11,
    "config": {"eps": 1.0, "theta_cap": 120},
}
WARM = {**SMOKE, "execution": {"mode": "warm_per_dataset"}}


def _strip(row: dict) -> dict:
    return {k: v for k, v in row.items() if k != "runtime_s"}


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_grid_caches()
    yield
    clear_grid_caches()


@pytest.fixture
def recorded_sessions(monkeypatch):
    """Record (and expose) every AllocationSession the grid runner opens."""
    created = []

    class RecordingSession(AllocationSession):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            created.append(self)

    monkeypatch.setattr(grid_module, "AllocationSession", RecordingSession)
    return created


class TestExecutionSpec:
    def test_default_is_cold(self):
        spec = GridSpec.from_dict(SMOKE)
        assert spec.execution_mode == "cold"
        assert spec.execution == {"mode": "cold"}

    def test_round_trip_preserves_warm_mode(self):
        spec = GridSpec.from_dict(WARM)
        assert spec.execution_mode == "warm_per_dataset"
        assert GridSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["execution"] == {"mode": "warm_per_dataset"}

    def test_cold_to_dict_is_pre_execution_canonical_form(self):
        # The canonical form (and thus spec_key) of a cold spec must be
        # byte-identical to what the field-less GridSpec produced, so
        # pre-warm manifests stay resumable.
        assert "execution" not in GridSpec.from_dict(SMOKE).to_dict()

    def test_spec_key_ignores_execution_mode(self):
        assert (
            GridSpec.from_dict(SMOKE).spec_key()
            == GridSpec.from_dict(WARM).spec_key()
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecError, match="execution mode"):
            GridSpec.from_dict({**SMOKE, "execution": {"mode": "tepid"}})

    def test_unknown_execution_key_rejected(self):
        with pytest.raises(SpecError, match="execution keys"):
            GridSpec.from_dict(
                {**SMOKE, "execution": {"mode": "cold", "frobnicate": 1}}
            )

    def test_non_object_execution_rejected(self):
        with pytest.raises(SpecError, match="execution"):
            GridSpec.from_dict({**SMOKE, "execution": "warm_per_dataset"})

    def test_group_key_distinguishes_builder_options(self):
        spec_a = GridSpec.from_dict(SMOKE)
        spec_b = GridSpec.from_dict(
            {**SMOKE, "datasets": [{**SMOKE["datasets"][0], "n": 130}]}
        )
        key_a = session_group_key(spec_a.cells()[0])
        key_b = session_group_key(spec_b.cells()[0])
        assert key_a != key_b
        assert key_a.startswith("epinions_syn@")


class TestWarmProvenance:
    def test_rows_carry_session_blocks(self, tmp_path):
        spec = GridSpec.from_dict(WARM)
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        assert len(rows) == 4
        for cell, row in zip(spec.cells(), rows):
            session = row["session"]
            assert session["group"] == session_group_key(cell)
            # Warm mode implies shared-store semantics; the engine-spec
            # echo records what actually ran.
            assert row["engine_spec"]["share_samples"] is True
        first, *rest = [row["session"] for row in rows]
        assert first["solve_index"] == 0 and first["warm_resolve"] is False
        assert first["store_misses"] == 1 and first["sets_sampled"] > 0
        for index, session in enumerate(rest, start=1):
            assert session["solve_index"] == index
            assert session["warm_resolve"] is True
            # One distinct probability vector on this dataset: every
            # later cell finds the existing store (a hit, no miss).
            assert session["store_hits"] == 1
            assert session["store_misses"] == 0

    def test_store_fully_serves_identical_sampling_needs(self, tmp_path):
        spec = GridSpec.from_dict(WARM)
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        sampled = [row["session"]["sets_sampled"] for row in rows]
        # Cells after the first adopt the store's prefix and sample only
        # past its end; the whole grid's sampling is about one cold
        # cell's worth, not four.
        assert sum(sampled[1:]) <= sampled[0]

    def test_manifest_header_pins_mode(self, tmp_path):
        manifest = str(tmp_path / "m.jsonl")
        run_grid(GridSpec.from_dict(WARM), manifest)
        header, rows = load_manifest(manifest)
        assert header["execution_mode"] == "warm_per_dataset"
        assert all("session" in row for row in rows)

    def test_cold_rows_and_header_unchanged(self, tmp_path):
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(GridSpec.from_dict(SMOKE), manifest)
        header, _ = load_manifest(manifest)
        assert "execution_mode" not in header
        assert all("session" not in row for row in rows)

    def test_explicit_cold_block_equals_default(self, tmp_path):
        default = run_grid(GridSpec.from_dict(SMOKE), str(tmp_path / "a.jsonl"))
        explicit = run_grid(
            GridSpec.from_dict({**SMOKE, "execution": {"mode": "cold"}}),
            str(tmp_path / "b.jsonl"),
        )
        assert [_strip(r) for r in default] == [_strip(r) for r in explicit]

    def test_execution_override_beats_spec(self, tmp_path):
        rows = run_grid(
            GridSpec.from_dict(SMOKE),
            str(tmp_path / "m.jsonl"),
            execution="warm_per_dataset",
        )
        assert all("session" in row for row in rows)
        with pytest.raises(SpecError, match="execution mode"):
            run_grid(
                GridSpec.from_dict(SMOKE),
                str(tmp_path / "n.jsonl"),
                execution="lukewarm",
            )

    def test_two_dataset_groups_run_contiguously(self, tmp_path, recorded_sessions):
        spec = GridSpec.from_dict(
            {
                **WARM,
                "datasets": [
                    {"name": "epinions_syn", "n": 120, "h": 2,
                     "singleton_rr_samples": 400},
                    {"name": "dblp_syn", "n": 150, "h": 2},
                ],
                "algorithms": ["TI-CARM"],
            }
        )
        seen = []
        rows = run_grid(
            spec,
            str(tmp_path / "m.jsonl"),
            progress=lambda done, total, row: seen.append(
                row["session"]["group"]
            ),
        )
        # Execution is group-contiguous...
        groups = [key for i, key in enumerate(seen) if i == 0 or key != seen[i - 1]]
        assert len(groups) == len(set(seen)) == 2
        # ...rows return in cells() order, each group numbered 0, 1, ...
        for cell, row in zip(spec.cells(), rows):
            assert row["session"]["group"] == session_group_key(cell)
        assert [r["session"]["solve_index"] for r in rows] == [0, 1, 0, 1]
        # One session per group, all closed (eagerly, group by group).
        assert len(recorded_sessions) == 2
        assert all(s._closed for s in recorded_sessions)


class TestWarmColdStatisticalParity:
    """Warm reuse draws different — equally valid — RR samples than cold
    solves, so results are statistically, not bitwise, comparable."""

    def test_revenue_parity_on_smoke_grid(self, tmp_path):
        cold = run_grid(GridSpec.from_dict(SMOKE), str(tmp_path / "c.jsonl"))
        warm = run_grid(GridSpec.from_dict(WARM), str(tmp_path / "w.jsonl"))
        assert [r["cell_id"] for r in cold] == [r["cell_id"] for r in warm]
        ratios = []
        for c, w in zip(cold, warm):
            assert c["revenue"] > 0 and w["revenue"] > 0
            ratio = w["revenue"] / c["revenue"]
            assert 0.6 < ratio < 1.6, (c["algorithm"], c["alpha"], ratio)
            ratios.append(ratio)
        assert 0.85 < sum(ratios) / len(ratios) < 1.18

    def test_seed_cost_parity_on_smoke_grid(self, tmp_path):
        cold = run_grid(GridSpec.from_dict(SMOKE), str(tmp_path / "c.jsonl"))
        warm = run_grid(GridSpec.from_dict(WARM), str(tmp_path / "w.jsonl"))
        for c, w in zip(cold, warm):
            assert c["seed_cost"] > 0 and w["seed_cost"] > 0
            assert 0.5 < w["seed_cost"] / c["seed_cost"] < 2.0
            assert abs(w["seeds"] - c["seeds"]) <= max(3, 0.5 * c["seeds"])

    def test_warm_runs_are_deterministic(self, tmp_path):
        rows1 = run_grid(GridSpec.from_dict(WARM), str(tmp_path / "a.jsonl"))
        rows2 = run_grid(GridSpec.from_dict(WARM), str(tmp_path / "b.jsonl"))
        assert [_strip(r) for r in rows1] == [_strip(r) for r in rows2]


class TestWarmResume:
    def test_interrupted_warm_run_resumes_to_full_grid(self, tmp_path):
        spec = GridSpec.from_dict(WARM)
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(spec, manifest)
        lines = open(manifest).read().strip().split("\n")
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w") as fh:
            fh.write("\n".join(lines[:3]) + "\n")  # header + 2 cells
        resumed = run_grid(spec, partial)
        assert len(resumed) == len(rows)
        # Completed cells are preserved verbatim; the re-run tail opens
        # a fresh session, so its solve indices restart at 0.
        assert [_strip(r) for r in resumed[:2]] == [_strip(r) for r in rows[:2]]
        assert resumed[2]["session"]["solve_index"] == 0
        assert resumed[3]["session"]["solve_index"] == 1
        header, cells = load_manifest(partial)
        assert header["execution_mode"] == "warm_per_dataset"
        assert len(cells) == len(spec.cells())

    def test_fully_resumed_warm_run_opens_no_sessions(
        self, tmp_path, recorded_sessions
    ):
        spec = GridSpec.from_dict(WARM)
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(spec, manifest)
        opened = len(recorded_sessions)
        resumed = run_grid(spec, manifest)
        assert [_strip(r) for r in resumed] == [_strip(r) for r in rows]
        assert len(recorded_sessions) == opened  # nothing re-opened

    def test_mode_mismatch_rejected_both_ways(self, tmp_path):
        cold_manifest = str(tmp_path / "cold.jsonl")
        run_grid(GridSpec.from_dict(SMOKE), cold_manifest)
        with pytest.raises(SpecError, match="execution mode 'cold'"):
            run_grid(GridSpec.from_dict(WARM), cold_manifest)
        warm_manifest = str(tmp_path / "warm.jsonl")
        run_grid(GridSpec.from_dict(WARM), warm_manifest)
        with pytest.raises(SpecError, match="execution mode 'warm_per_dataset'"):
            run_grid(GridSpec.from_dict(SMOKE), warm_manifest)

    def test_pre_execution_mode_manifest_reads_as_cold(self, tmp_path):
        # Manifests written before the execution block existed carry no
        # execution_mode key: they were cold runs and must keep resuming
        # under cold — and be rejected under warm.
        spec = GridSpec.from_dict(SMOKE)
        manifest = str(tmp_path / "m.jsonl")
        rows = run_grid(spec, manifest)
        header, _ = load_manifest(manifest)
        assert "execution_mode" not in header  # the legacy shape itself
        resumed = run_grid(spec, manifest)
        assert [_strip(r) for r in resumed] == [_strip(r) for r in rows]
        with pytest.raises(SpecError, match="warm"):
            run_grid(spec, manifest, execution="warm_per_dataset")

    def test_fresh_ignores_mode_mismatch(self, tmp_path):
        manifest = str(tmp_path / "m.jsonl")
        run_grid(GridSpec.from_dict(SMOKE), manifest)
        rows = run_grid(GridSpec.from_dict(WARM), manifest, resume=False)
        header, _ = load_manifest(manifest)
        assert header["execution_mode"] == "warm_per_dataset"
        assert all("session" in row for row in rows)


class TestCrashedCellCleanup:
    """A cell that raises must not orphan sessions or worker pools.

    Since the fault-tolerance layer (ARCHITECTURE.md §11) a crashing
    cell is *quarantined* — the grid completes with a typed error row —
    but the cleanup contract is unchanged: the poisoned group's session
    closes immediately (each later cell of the group reopens a fresh
    one), and every session is closed by the time run_grid returns.
    """

    @pytest.fixture
    def boom_algorithm(self):
        def boom_selector(engine, candidates):
            raise RuntimeError("boom")

        register_algorithm("BOOM", "ca", boom_selector)
        yield "BOOM"
        unregister_algorithm("BOOM")

    def test_crash_closes_sessions(self, tmp_path, recorded_sessions, boom_algorithm):
        spec = GridSpec.from_dict({**WARM, "algorithms": ["BOOM"]})
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        assert all(row["kind"] == "cell_error" for row in rows)
        assert all(row["error_type"] == "RuntimeError" for row in rows)
        # One session per failing cell: each failure tears its group
        # down, the next cell reopens — and every one ends closed.
        assert len(recorded_sessions) == len(rows)
        for session in recorded_sessions:
            assert session._closed
            assert session.stats["stores"] == 0  # stores dropped with the close

    def test_crash_does_not_orphan_shared_graph_pool(
        self, tmp_path, recorded_sessions, boom_algorithm
    ):
        # The parallel backend puts the graph into multiprocessing
        # shared memory (SharedGraphPool) owned by the group's session;
        # the crash path must tear it down.
        spec = GridSpec.from_dict(
            {
                **WARM,
                "algorithms": ["BOOM"],
                "config": {
                    **WARM["config"],
                    "sampler_backend": "parallel",
                    "workers": 2,
                },
            }
        )
        rows = run_grid(spec, str(tmp_path / "m.jsonl"))
        assert all(row["kind"] == "cell_error" for row in rows)
        assert recorded_sessions
        for session in recorded_sessions:
            assert session._closed
            assert session._warm.pool is None  # pool closed, not orphaned

    def test_manifest_keeps_completed_cells_next_to_quarantined_ones(
        self, tmp_path, boom_algorithm
    ):
        # TI-CSRM cells sort before BOOM in no axis — order is the spec
        # order, so put the healthy algorithm first and crash second.
        spec = GridSpec.from_dict(
            {**WARM, "algorithms": ["TI-CARM", "BOOM"], "alphas": [0.5]}
        )
        manifest = str(tmp_path / "m.jsonl")
        run_grid(spec, manifest)
        header, rows = load_manifest(manifest)
        assert header is not None and len(rows) == 2
        assert rows[0]["kind"] == "cell" and rows[0]["algorithm"] == "TI-CARM"
        assert rows[1]["kind"] == "cell_error" and rows[1]["algorithm"] == "BOOM"
        # And the manifest resumes (same mode) once the spec is fixed.
        fixed = GridSpec.from_dict(
            {**WARM, "algorithms": ["TI-CARM"], "alphas": [0.5]}
        )
        with pytest.raises(SpecError, match="spec changed"):
            run_grid(fixed, manifest)
