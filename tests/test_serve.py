"""The serving layer: schema, session pool, daemon, client.

Covers the PR's acceptance criteria end to end:

* a repeated identical query is served warm (observable via ``/stats``)
  and byte-identical both to its cold first response and to a direct
  ``repro.solve``-path run of the same spec and seed;
* LRU eviction keeps the pool's measured bytes under the budget;
* admission backpressure (bounded queue → 429) and fault-seam rejects;
* graceful drain: in-flight queries finish, later ones get 503, every
  session closes, no shared-memory segments leak;
* PR 6 fault tolerance holds through the daemon (a worker killed
  mid-query recovers and the query still succeeds).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import types
from contextlib import contextmanager

import pytest

from repro.errors import ServeError
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import _cell_dataset, session_group_key
from repro.experiments.harness import run_algorithm
from repro.faults import FaultPlan, FaultRule, fault_plan
from repro.serve import QueryRequest, ReproServer, ServeConfig, SessionPool, pool_key
from repro.serve import client as serve_client

#: Cheap estimator settings: every serve test solves tiny analogs.
CFG = ExperimentConfig(eps=1.0, theta_cap=150, singleton_rr_samples=400, seed=7)
ENTRY = {"name": "epinions_syn", "n": 80, "h": 2, "singleton_rr_samples": 400}
OTHER_ENTRY = {"name": "flixster_syn", "n": 80, "h": 2, "singleton_rr_samples": 400}


@contextmanager
def running_server(**kwargs):
    """A started daemon with its solver loop on a background thread.

    (On a non-main thread the SIGALRM in-solve deadline degrades to the
    queue-deadline check only — exactly the documented fallback.)
    """
    kwargs.setdefault("config", CFG)
    server = ReproServer(ServeConfig(**kwargs))
    server.start()
    solver = threading.Thread(target=server.run, daemon=True)
    solver.start()
    try:
        yield server
    finally:
        server.begin_drain()
        solver.join(timeout=60)
        server.shutdown()
        assert not solver.is_alive()


def _comparable(payload: dict) -> dict:
    """A response minus its run-local fields (wall clock, provenance)."""
    return {k: v for k, v in payload.items() if k not in ("runtime_s", "serve")}


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
class TestSchema:
    def test_round_trip(self):
        request = QueryRequest.from_dict(
            {"dataset": dict(ENTRY), "algorithm": "TI-CARM", "budget": 50, "seed": 3}
        )
        assert QueryRequest.from_dict(request.to_dict()) == request
        assert request.budget == 50.0  # numbers normalize to float

    def test_unknown_keys_rejected(self):
        with pytest.raises(ServeError, match="unknown query keys"):
            QueryRequest.from_dict({"dataset": dict(ENTRY), "eps": 0.1})

    def test_dataset_required(self):
        with pytest.raises(ServeError, match="'dataset'"):
            QueryRequest.from_dict({"algorithm": "TI-CSRM"})

    def test_invalid_axes_rejected(self):
        with pytest.raises(ServeError, match="unknown algorithm"):
            QueryRequest(dataset=dict(ENTRY), algorithm="NOPE")
        with pytest.raises(ServeError, match="unknown incentive model"):
            QueryRequest(dataset=dict(ENTRY), incentive_model="bribes")
        with pytest.raises(ServeError, match="alpha"):
            QueryRequest(dataset=dict(ENTRY), alpha=-1.0)
        with pytest.raises(ServeError, match="seed"):
            QueryRequest(dataset=dict(ENTRY), seed=True)
        with pytest.raises(ServeError, match="dataset"):
            QueryRequest(dataset="epinions_syn")

    def test_pool_key_matches_grid_session_grouping(self):
        """The serve pool key is the grid runner's session-group key:
        same dataset entry → same warm-sharing decision in both layers."""
        cell = types.SimpleNamespace(dataset=dict(ENTRY))
        assert pool_key(ENTRY) == session_group_key(cell)
        assert pool_key(ENTRY) != pool_key({**ENTRY, "n": 81})
        assert pool_key(ENTRY) == pool_key(dict(ENTRY))  # content, not identity


# ----------------------------------------------------------------------
# Session pool
# ----------------------------------------------------------------------
class TestSessionPool:
    def test_lease_cold_then_warm(self):
        with SessionPool(CFG) as pool:
            request = QueryRequest(dataset=dict(ENTRY))
            entry, warm = pool.lease(request)
            assert not warm
            again, warm = pool.lease(request)
            assert warm and again is entry
            assert pool.counters["cold_misses"] == 1
            assert pool.counters["warm_hits"] == 1
        assert entry.session.is_closed

    def test_lru_eviction_under_byte_budget(self):
        """Measured bytes stay under the budget; LRU goes first and the
        just-served key survives when the budget allows it."""
        with SessionPool(CFG, bytes_budget=100) as pool:
            a, _ = pool.lease(QueryRequest(dataset=dict(ENTRY)))
            b, _ = pool.lease(QueryRequest(dataset=dict(OTHER_ENTRY)))
            a.store_bytes = 80
            b.store_bytes = 60  # 140 total: LRU (a) must go
            evicted = pool.evict_over_budget(protect=b.key)
            assert evicted == [a.key]
            assert a.session.is_closed and not b.session.is_closed
            assert pool.total_store_bytes() <= 100
            assert pool.counters["evictions"] == 1
            assert pool.counters["evicted_bytes"] == 80

    def test_protected_session_evicted_when_it_alone_busts_budget(self):
        with SessionPool(CFG, bytes_budget=50) as pool:
            entry, _ = pool.lease(QueryRequest(dataset=dict(ENTRY)))
            entry.store_bytes = 80
            assert pool.evict_over_budget(protect=entry.key) == [entry.key]
            assert len(pool) == 0 and entry.session.is_closed

    def test_max_sessions_cap(self):
        with SessionPool(CFG, max_sessions=1) as pool:
            a, _ = pool.lease(QueryRequest(dataset=dict(ENTRY)))
            b, _ = pool.lease(QueryRequest(dataset=dict(OTHER_ENTRY)))
            pool.evict_over_budget(protect=b.key)
            assert len(pool) == 1 and b.key in pool
            assert a.session.is_closed

    def test_discard_quarantines(self):
        with SessionPool(CFG) as pool:
            entry, _ = pool.lease(QueryRequest(dataset=dict(ENTRY)))
            pool.discard(entry.key)
            assert entry.session.is_closed
            assert pool.counters["discards"] == 1
            fresh, warm = pool.lease(QueryRequest(dataset=dict(ENTRY)))
            assert not warm and fresh.session is not entry.session

    def test_mutated_session_never_served_warm(self):
        """A pooled session whose graph was mutated is stale: its pool
        key still names the *original* dataset entry, so answering from
        it would return allocations for a graph the client never asked
        about.  ``lease`` must discard it and reopen cold
        (docs/ARCHITECTURE.md §14)."""
        with SessionPool(CFG) as pool:
            request = QueryRequest(dataset=dict(ENTRY))
            entry, _ = pool.lease(request)
            # Mutate the pooled session out from under the pool (any
            # holder of the session object can: leases are not copies).
            tails, heads = entry.dataset.graph.edge_array()
            entry.session.apply_edge_updates(
                [("delete", int(tails[0]), int(heads[0]))]
            )
            assert entry.session.graph_epoch == 1
            fresh, warm = pool.lease(request)
            assert not warm
            assert fresh.session is not entry.session
            assert entry.session.is_closed
            assert fresh.session.graph_epoch == 0
            assert pool.counters["stale_discards"] == 1
            assert pool.counters["warm_hits"] == 0
            # The replacement is genuinely healthy: it serves warm next.
            again, warm = pool.lease(request)
            assert warm and again.session is fresh.session

    def test_closed_pool_refuses_leases(self):
        pool = SessionPool(CFG)
        pool.close()
        pool.close()  # idempotent
        assert pool.is_closed
        with pytest.raises(ServeError, match="closed"):
            pool.lease(QueryRequest(dataset=dict(ENTRY)))

    def test_stats_json_serializable(self):
        with SessionPool(CFG, bytes_budget=10**9) as pool:
            pool.lease(QueryRequest(dataset=dict(ENTRY)))
            json.dumps(pool.stats())

    def test_budget_validation(self):
        with pytest.raises(ServeError, match="bytes_budget"):
            SessionPool(CFG, bytes_budget=0)
        with pytest.raises(ServeError, match="max_sessions"):
            SessionPool(CFG, max_sessions=0)


# ----------------------------------------------------------------------
# Daemon integration (HTTP, warm hits, bit-identity)
# ----------------------------------------------------------------------
class TestServerIntegration:
    def test_warm_hit_and_bit_identical_to_direct_solve(self):
        """Acceptance: the repeated query is served warm (per /stats),
        identically to its first response, and both match a direct
        solve of the same spec and seed byte for byte."""
        with running_server() as server:
            addr = server.address
            axes = dict(dataset=dict(ENTRY), algorithm="TI-CSRM", seed=11)
            first = serve_client.query(addr, **axes)
            second = serve_client.query(addr, **axes)
            stats = serve_client.stats(addr)
            health = serve_client.healthz(addr)

        assert first["serve"]["warm_session"] is False
        assert second["serve"]["warm_session"] is True
        assert second["serve"]["sets_sampled"] == 0  # fully reused the stores
        assert _comparable(first) == _comparable(second)

        assert stats["pool"]["warm_hits"] >= 1
        assert stats["serve"]["warm_hit_rate"] > 0
        assert stats["serve"]["queries_served"] == 2
        assert health["status"] == "ok"
        json.dumps(stats)  # the whole payload is JSON-clean end to end

        # Sessions solve on the shared-store path, so the reference run
        # is the same config with share_samples=True (the documented
        # session contract; see test_api_session.py).
        dataset = _cell_dataset(dict(ENTRY), memo={})
        instance = dataset.build_instance(incentive_model="linear", alpha=1.0)
        direct = run_algorithm(
            "TI-CSRM",
            dataset,
            instance,
            dataclasses.replace(CFG, share_samples=True),
            seed=11,
        )
        assert direct.allocation.seed_sets() == first["allocation"]
        assert [float(r) for r in direct.revenue_per_ad] == first["revenue_per_ad"]
        assert [float(c) for c in direct.seeding_cost_per_ad] == (
            first["seeding_cost_per_ad"]
        )

    def test_concurrent_clients_identical_responses(self):
        """Parallel identical queries serialize onto one warm session and
        all get the same bytes back."""
        with running_server() as server:
            addr = server.address
            results: list[dict] = []
            errors: list[Exception] = []

            def hit():
                try:
                    results.append(
                        serve_client.query(
                            addr, dataset=dict(ENTRY), algorithm="TI-CSRM", seed=5
                        )
                    )
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = serve_client.stats(addr)

        assert not errors
        assert len(results) == 4
        reference = _comparable(results[0])
        assert all(_comparable(r) == reference for r in results[1:])
        assert stats["pool"]["warm_hits"] >= 3
        assert stats["pool"]["session_count"] == 1

    def test_lru_eviction_through_the_server(self):
        """A 1-byte budget forces every session out after its query:
        measured bytes stay under budget, queries still succeed."""
        with running_server(bytes_budget=1) as server:
            addr = server.address
            first = serve_client.query(addr, dataset=dict(ENTRY), seed=3)
            second = serve_client.query(addr, dataset=dict(ENTRY), seed=3)
            stats = serve_client.stats(addr)

        assert first["serve"]["evicted"] == [first["serve"]["pool_key"]]
        # The evicted session cannot serve warm; the re-query went cold.
        assert second["serve"]["warm_session"] is False
        assert _comparable(first) == _comparable(second)  # eviction ≠ drift
        assert stats["pool"]["evictions"] == 2
        assert stats["pool"]["total_store_bytes"] <= 1
        assert stats["pool"]["session_count"] == 0

    def test_bad_queries_rejected_not_crashing(self):
        with running_server() as server:
            addr = server.address
            status, payload = serve_client.request(
                addr, "/solve", {"dataset": dict(ENTRY), "algorithm": "NOPE"}
            )
            assert (status, payload["error_type"]) == (400, "ServeError")
            status, payload = serve_client.request(addr, "/nope", {})
            assert status == 404
            # The client fail-fasts the same validation before sending.
            with pytest.raises(ServeError, match="unknown algorithm"):
                serve_client.query(addr, dataset=dict(ENTRY), algorithm="NOPE")
            # The daemon still serves after rejections.
            ok = serve_client.query(addr, dataset=dict(ENTRY), seed=2)
            assert ok["status"] == "ok"


# ----------------------------------------------------------------------
# Admission: backpressure, fault seams, drain
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_backpressure(self):
        """queue_size=1 with a stalled solver: the first query is being
        solved, the second waits, the third bounces 429."""
        plan = FaultPlan(
            [FaultRule(seam="serve.delay", at=0, delay_s=2.0)], seed=0
        )
        with running_server(queue_size=1) as server, fault_plan(plan):
            statuses: list[int] = []

            def hit():
                status, _ = serve_client.request(
                    server.address, "/solve", {"dataset": dict(ENTRY), "seed": 1}
                )
                statuses.append(status)

            first = threading.Thread(target=hit)
            first.start()
            deadline = time.monotonic() + 5
            while (
                plan.stats.get("serve.delay", {}).get("arrivals", 0) < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)  # solver dequeued the first query: stalled
            second = threading.Thread(target=hit)
            second.start()
            deadline = time.monotonic() + 5
            while server._queue.qsize() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)  # second query parked in the queue
            status, payload = server.submit({"dataset": dict(ENTRY), "seed": 1})
            assert (status, payload["error_type"]) == (429, "QueueFull")
            first.join(timeout=60)
            second.join(timeout=60)
            assert statuses == [200, 200]
            assert server.counters["admission_rejects"] == 1

    def test_serve_reject_fault_seam(self):
        plan = FaultPlan([FaultRule(seam="serve.reject", at=0)], seed=0)
        with running_server() as server, fault_plan(plan):
            status, payload = server.submit({"dataset": dict(ENTRY)})
            assert (status, payload["error_type"]) == (429, "AdmissionRejected")
            ok_status, _ = server.submit({"dataset": dict(ENTRY), "seed": 1})
            assert ok_status == 200  # only the tagged arrival is rejected

    def test_queue_deadline_times_out_stale_queries(self):
        """A query that overstays its deadline waiting is answered 504
        without burning solver time."""
        server = ReproServer(
            ServeConfig(config=CFG, query_timeout_s=0.05, max_queries=1)
        )
        outcome: list[tuple[int, dict]] = []
        submitter = threading.Thread(
            target=lambda: outcome.append(server.submit({"dataset": dict(ENTRY)}))
        )
        submitter.start()
        deadline = time.monotonic() + 5
        while server._queue.qsize() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.1)  # let the queued query expire before solving starts
        server.run()  # processes one job, then drains (max_queries=1)
        submitter.join(timeout=10)
        (status, payload), = outcome
        assert (status, payload["error_type"]) == (504, "QueryTimeout")
        assert server.counters["query_timeouts"] == 1
        assert server.drained and server.pool.is_closed

    def test_graceful_drain(self):
        """In-flight queries finish; post-drain queries get 503; the pool
        closes with its sessions."""
        with running_server() as server:
            addr = server.address
            ok = serve_client.query(addr, dataset=dict(ENTRY), seed=1)
            assert ok["status"] == "ok"
            pool = server.pool
            server.begin_drain()
            status, payload = serve_client.request(
                addr, "/solve", {"dataset": dict(ENTRY)}
            )
            assert (status, payload["error_type"]) == (503, "Draining")
            assert serve_client.healthz(addr)["status"] == "draining"
        assert server.drained
        assert pool.is_closed
        assert server.counters["draining_rejects"] >= 1
        # Idempotent shutdown.
        server.shutdown()
        server.close()

    def test_max_queries_self_drain(self):
        with running_server(max_queries=1) as server:
            addr = server.address
            ok = serve_client.query(addr, dataset=dict(ENTRY), seed=1)
            assert ok["status"] == "ok"
            deadline = time.monotonic() + 10
            while not server.drained and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.drained and server.pool.is_closed


# ----------------------------------------------------------------------
# Fault tolerance through the daemon (PR 6 machinery)
# ----------------------------------------------------------------------
class TestServeFaultTolerance:
    def test_worker_killed_mid_query_recovers(self):
        """A worker killed during a served query is respawned and the
        query succeeds — supervision holds through the serving layer —
        and the drain leaves no shared-memory segments behind."""
        parallel = dataclasses.replace(
            CFG, sampler_backend="parallel", workers=2
        )
        plan = FaultPlan([FaultRule(seam="worker.kill", at=0)], seed=3)
        with running_server(config=parallel) as server, fault_plan(plan):
            payload = serve_client.query(
                server.address, dataset=dict(ENTRY), seed=9
            )
            stats = serve_client.stats(server.address)
        assert payload["status"] == "ok"
        (row,) = stats["pool"]["sessions"]
        assert row["session"]["worker_respawns"] >= 1
        assert server.pool.is_closed  # drained: the pool released its SHM

    def test_solve_error_quarantines_session(self):
        """An unexpected solve failure answers 500, the session is
        discarded, and the next query reopens cold and succeeds."""
        with running_server() as server:
            ok_status, ok = server.submit({"dataset": dict(ENTRY), "seed": 1})
            assert ok_status == 200
            # Poison the pooled session behind the server's back: the
            # next warm lease blows up mid-solve (AllocationError).
            (entry,) = server.pool.entries()
            entry.session.close()
            status, payload = server.submit({"dataset": dict(ENTRY), "seed": 1})
            assert status == 500
            assert payload["status"] == "error"
            assert server.pool.counters["discards"] == 1
            again_status, again = server.submit({"dataset": dict(ENTRY), "seed": 1})
            assert again_status == 200
            assert again["serve"]["warm_session"] is False  # reopened cold
            assert _comparable(ok) == _comparable(again)

    def test_dataset_build_failure_is_a_clean_error(self):
        with running_server() as server:
            status, payload = server.submit(
                {"dataset": {**ENTRY, "bogus_option": 1}}
            )
            assert status == 500
            assert payload["status"] == "error"
            ok_status, _ = server.submit({"dataset": dict(ENTRY), "seed": 1})
            assert ok_status == 200  # the daemon survived the bad build


# ----------------------------------------------------------------------
# Client plumbing
# ----------------------------------------------------------------------
class TestClient:
    def test_addr_parsing(self):
        from repro.serve.client import _split_addr

        assert _split_addr("127.0.0.1:8642") == ("127.0.0.1", 8642)
        assert _split_addr("http://localhost:80/") == ("localhost", 80)
        with pytest.raises(ServeError, match="host:port"):
            _split_addr("nonsense")

    def test_unreachable_daemon(self):
        with pytest.raises(ServeError, match="cannot reach"):
            serve_client.healthz("127.0.0.1:9", timeout=0.5)

    def test_client_validates_before_sending(self):
        with pytest.raises(ServeError, match="unknown algorithm"):
            serve_client.query("127.0.0.1:9", dataset=dict(ENTRY), algorithm="NOPE")
