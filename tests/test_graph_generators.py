"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    complete,
    erdos_renyi,
    kronecker_like,
    path,
    powerlaw_configuration,
    preferential_attachment,
    star,
)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        g = erdos_renyi(100, 0.05, seed=1)
        expected = 100 * 99 * 0.05
        assert 0.5 * expected < g.m < 1.5 * expected

    def test_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, seed=1).m == 0
        assert erdos_renyi(10, 1.0, seed=1).m == 90

    def test_no_self_loops(self):
        g = erdos_renyi(30, 0.3, seed=2)
        tails, heads = g.edge_array()
        assert np.all(tails != heads)

    def test_invalid_p_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_deterministic_under_seed(self):
        assert erdos_renyi(50, 0.1, seed=9) == erdos_renyi(50, 0.1, seed=9)


class TestPowerlawConfiguration:
    def test_size_and_mean_degree(self):
        g = powerlaw_configuration(500, mean_degree=6.0, seed=3)
        assert g.n == 500
        # Dedupe/self-loop removal shaves some edges; stay within 40%.
        assert 0.6 * 6.0 * 500 < g.m <= 6.0 * 500

    def test_heavy_tail_present(self):
        g = powerlaw_configuration(1000, mean_degree=8.0, seed=4)
        out = g.out_degrees()
        assert out.max() >= 5 * max(out.mean(), 1.0)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(1, 5.0)
        with pytest.raises(GraphError):
            powerlaw_configuration(100, -1.0)

    def test_deterministic_under_seed(self):
        a = powerlaw_configuration(200, 5.0, seed=11)
        b = powerlaw_configuration(200, 5.0, seed=11)
        assert a == b


class TestPreferentialAttachment:
    def test_size(self):
        g = preferential_attachment(300, m_per_node=2, seed=5)
        assert g.n == 300
        assert g.m >= 300  # roughly 2 per node, minus dedupe

    def test_hub_formation(self):
        g = preferential_attachment(500, m_per_node=3, seed=6)
        total = g.out_degrees() + g.in_degrees()
        assert total.max() >= 10 * total.mean() / 2

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(GraphError):
            preferential_attachment(1)
        with pytest.raises(GraphError):
            preferential_attachment(10, m_per_node=0)


class TestKronecker:
    def test_size_power_of_two(self):
        g = kronecker_like(8, edge_factor=4, seed=7)
        assert g.n == 256
        assert g.m > 0

    def test_skewed_degrees(self):
        g = kronecker_like(10, edge_factor=8, seed=8)
        out = g.out_degrees()
        assert out.max() >= 8 * max(out.mean(), 1.0)

    def test_rejects_zero_scale(self):
        with pytest.raises(GraphError):
            kronecker_like(0)


class TestCannedGraphs:
    def test_star_outward(self):
        g = star(4)
        assert g.n == 5
        assert g.out_degrees()[0] == 4
        assert g.in_degrees()[0] == 0

    def test_star_inward(self):
        g = star(4, outward=False)
        assert g.in_degrees()[0] == 4

    def test_path(self):
        g = path(5)
        assert g.n == 5 and g.m == 4
        assert g.has_edge(3, 4) and not g.has_edge(4, 3)

    def test_complete(self):
        g = complete(4)
        assert g.m == 12
        tails, heads = g.edge_array()
        assert np.all(tails != heads)

    def test_single_node_path(self):
        g = path(1)
        assert g.n == 1 and g.m == 0
