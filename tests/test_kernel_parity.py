"""Kernel-seam parity: the numba batch kernel is bit-identical to numpy.

The seam (:mod:`repro.rrset.kernels`) promises that ``kernel="numba"``
consumes the *exact same RNG stream* as the numpy reference and returns
bit-identical ``(members, indptr)`` CSR pairs — whether numba is
installed (JIT-compiled) or not (the same loops run interpreted).  Four
layers of evidence:

1. hypothesis property sweeps over random graphs/seeds/counts, at every
   execution tier: serial sampler, ``workers == 1`` parallel delegate,
   and the ``workers >= 2`` shard-plan merge;
2. golden seeded TI-CSRM / TI-CARM allocations pinned to literal seed
   sets, asserted across (kernel, backend, spill) combinations;
3. degenerate graphs through the seam: empty graph, single node,
   isolated nodes, and a self-loop/duplicate-arc edge list reloaded via
   ``ingest_edge_list``;
4. a subprocess import guard proving ``import repro`` (and the numba
   kernel spelling itself) works with numba blocked from importing.

Heavier sweeps and real-pool runs carry ``@pytest.mark.slow`` (excluded
by default; CI's kernel-parity job runs ``-m "slow or not slow"``).
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineSpec, solve
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.io import ingest_edge_list
from repro.rrset.kernels import (
    KERNELS,
    NUMBA_AVAILABLE,
    resolve_batch_kernel,
    resolve_kernel,
    sample_batch_flat_kernel_numba,
)
from repro.rrset.backend import ParallelBackend, SerialBackend
from repro.rrset.sampler import RRSampler, sample_batch_flat_kernel


def _batch(graph, probs, count, seed, kernel):
    """One seeded batch through the seam + the post-batch stream probe.

    The probe (one extra ``rng.random()``) turns "same output" into
    "same output *and* same RNG stream position" — the stronger
    property that makes kernels interchangeable mid-run.
    """
    sampler = RRSampler(graph, probs, kernel=kernel)
    rng = np.random.default_rng(seed)
    members, indptr = sampler.sample_batch_flat(count, rng)
    return members, indptr, rng.random()


def assert_kernel_parity(graph, probs, count, seed):
    m_np, i_np, probe_np = _batch(graph, probs, count, seed, "numpy")
    m_nb, i_nb, probe_nb = _batch(graph, probs, count, seed, "numba")
    np.testing.assert_array_equal(m_np, m_nb)
    np.testing.assert_array_equal(i_np, i_nb)
    assert probe_np == probe_nb  # identical stream position afterwards
    assert m_nb.dtype == np.int64 and i_nb.dtype == np.int64


def _er_graph(n, p, graph_seed, probs_seed, scale=1.0):
    g = erdos_renyi(n, p, seed=graph_seed)
    probs = np.random.default_rng(probs_seed).random(g.m) * scale
    return g, probs


# ----------------------------------------------------------------------
# Seam resolution
# ----------------------------------------------------------------------
class TestResolve:
    def test_legal_spellings(self):
        assert KERNELS == ("numpy", "numba", "auto")
        assert resolve_kernel("numpy") == "numpy"
        # Explicit "numba" passes through even without numba installed
        # (interpreted fallback) so parity suites run anywhere.
        assert resolve_kernel("numba") == "numba"
        assert resolve_kernel(None) == resolve_kernel("auto")
        assert resolve_kernel("auto") == (
            "numba" if NUMBA_AVAILABLE else "numpy"
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(EstimationError, match="unknown kernel"):
            resolve_kernel("gpu")
        g = erdos_renyi(5, 0.5, seed=1)
        with pytest.raises(EstimationError, match="unknown kernel"):
            RRSampler(g, np.full(g.m, 0.1), kernel="gpu")

    def test_resolved_callables(self):
        assert resolve_batch_kernel("numpy") is sample_batch_flat_kernel
        assert resolve_batch_kernel("numba") is sample_batch_flat_kernel_numba

    def test_sampler_and_backends_record_resolved_kernel(self):
        g, probs = _er_graph(20, 0.2, 3, 4)
        assert RRSampler(g, probs, kernel="numba").kernel == "numba"
        assert SerialBackend(g, probs, kernel="numpy").kernel == "numpy"
        auto = RRSampler(g, probs).kernel
        assert auto == ("numba" if NUMBA_AVAILABLE else "numpy")

    def test_engine_extras_record_kernel(self):
        from tests.conftest import make_tiny_instance

        spec = EngineSpec(eps=0.8, theta_cap=100, opt_lower=1.0, seed=3,
                          kernel="numba")
        result = solve(make_tiny_instance(), "TI-CSRM", spec)
        assert result.extras["kernel"] == "numba"
        assert result.extras["engine_spec"]["kernel"] == "numba"


# ----------------------------------------------------------------------
# 1. Hypothesis property sweeps
# ----------------------------------------------------------------------
class TestPropertyParity:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 60),
        p=st.floats(0.0, 0.6),
        graph_seed=st.integers(0, 2**16),
        probs_seed=st.integers(0, 2**16),
        count=st.integers(0, 40),
        seed=st.integers(0, 2**16),
    )
    def test_serial_bit_identity(self, n, p, graph_seed, probs_seed, count, seed):
        g, probs = _er_graph(n, p, graph_seed, probs_seed)
        assert_kernel_parity(g, probs, count, seed)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 40),
        graph_seed=st.integers(0, 2**16),
        seed=st.integers(0, 2**16),
        count=st.integers(1, 30),
    )
    def test_workers1_delegate_bit_identity(self, n, graph_seed, seed, count):
        g, probs = _er_graph(n, 0.3, graph_seed, graph_seed + 1)
        outs = {}
        for kernel in ("numpy", "numba"):
            with ParallelBackend(g, probs, workers=1, kernel=kernel) as b:
                outs[kernel] = b.sample_batch_flat(
                    count, np.random.default_rng(seed)
                )
        np.testing.assert_array_equal(outs["numpy"][0], outs["numba"][0])
        np.testing.assert_array_equal(outs["numpy"][1], outs["numba"][1])

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 40),
        graph_seed=st.integers(0, 2**16),
        seed=st.integers(0, 2**16),
        count=st.integers(1, 30),
        workers=st.integers(2, 4),
    )
    def test_workers_shard_merge_bit_identity(
        self, n, graph_seed, seed, count, workers
    ):
        # degraded=True executes the exact worker shard plan in-process
        # (same per-shard streams, same merge) without process spawns,
        # keeping the sweep fast; a real pool run is pinned below.
        g, probs = _er_graph(n, 0.3, graph_seed, graph_seed + 1)
        outs = {}
        for kernel in ("numpy", "numba"):
            with ParallelBackend(
                g, probs, workers=workers, degraded=True, kernel=kernel
            ) as b:
                outs[kernel] = b.sample_batch_flat(
                    count, np.random.default_rng(seed)
                )
        np.testing.assert_array_equal(outs["numpy"][0], outs["numba"][0])
        np.testing.assert_array_equal(outs["numpy"][1], outs["numba"][1])

    @pytest.mark.slow
    def test_real_pool_workers2_bit_identity(self):
        g, probs = _er_graph(200, 0.05, 9, 10, scale=0.4)
        outs = {}
        for kernel in ("numpy", "numba"):
            with ParallelBackend(g, probs, workers=2, kernel=kernel) as b:
                outs[kernel] = b.sample_batch_flat(
                    300, np.random.default_rng(33)
                )
                assert not b.degraded
        np.testing.assert_array_equal(outs["numpy"][0], outs["numba"][0])
        np.testing.assert_array_equal(outs["numpy"][1], outs["numba"][1])

    @pytest.mark.slow
    @settings(max_examples=200, deadline=None)
    @given(
        n=st.integers(2, 120),
        p=st.floats(0.0, 0.8),
        graph_seed=st.integers(0, 2**24),
        probs_seed=st.integers(0, 2**24),
        count=st.integers(0, 120),
        seed=st.integers(0, 2**24),
        chunk_bytes=st.sampled_from([256, 2048, 16 * 1024 * 1024]),
    )
    def test_deep_sweep_including_chunk_splits(
        self, n, p, graph_seed, probs_seed, count, seed, chunk_bytes
    ):
        # Tiny chunk_bytes forces multi-chunk batches, exercising the
        # per-chunk visited bitmap reset and stream interleaving.
        g, probs = _er_graph(n, p, graph_seed, probs_seed)
        probs_in = np.ascontiguousarray(probs[g.in_edge_ids])
        args = (g.n, g.in_indptr, g.in_tails, probs_in, count)
        r1, r2 = np.random.default_rng(seed), np.random.default_rng(seed)
        m_np, i_np = sample_batch_flat_kernel(*args, r1, chunk_bytes)
        m_nb, i_nb = sample_batch_flat_kernel_numba(*args, r2, chunk_bytes)
        np.testing.assert_array_equal(m_np, m_nb)
        np.testing.assert_array_equal(i_np, i_nb)
        assert r1.random() == r2.random()


# ----------------------------------------------------------------------
# 2. Golden seeded allocations across (kernel, backend, spill)
# ----------------------------------------------------------------------
#: Seed sets of the pinned run (epinions_syn n=120 h=2, linear α=1.0,
#: eps=1.0, theta_cap=120, seed=11).  Literal values lock the RNG
#: stream itself: any kernel/backend/spill combination that drifts —
#: even to an equally valid sample — fails loudly here.  Private and
#: shared sampling are *documented* distinct streams (prob-identical
#: ads share one store under ``share_samples``), so each gets its own
#: golden; spilling a shared store must never move the shared one.
GOLDEN = {
    "TI-CSRM": {
        "private": {
            "seeds": [
                [23, 4, 68, 89, 90, 101, 16, 21, 37, 24, 83, 105, 106,
                 109, 36, 43, 87, 76],
                [12, 3, 65, 29, 113, 69, 80, 1, 95, 119, 6, 38, 53, 20, 8],
            ],
            "revenue": [82.5, 46.0],
        },
        "shared": {
            "seeds": [
                [23, 4, 68, 89, 90, 101, 16, 21, 37, 24, 83, 105, 106,
                 109, 36, 43, 87, 76],
                [78, 52, 44, 14, 48, 5, 69, 6, 17, 10, 32, 84, 7, 12],
            ],
            "revenue": [82.5, 40.0],
        },
    },
    "TI-CARM": {
        "private": {
            "seeds": [
                [93, 40, 31, 101, 17, 67, 6, 16, 21],
                [103, 61, 88, 94],
            ],
            "revenue": [69.0, 37.0],
        },
        "shared": {
            "seeds": [
                [93, 103, 61, 17, 67, 101, 6],
                [111, 40, 31, 23, 77, 16],
            ],
            "revenue": [61.5, 37.0],
        },
    },
}


@pytest.fixture(scope="module")
def golden_instance():
    from repro.experiments.datasets import build_dataset

    ds = build_dataset("epinions_syn", n=120, h=2, singleton_rr_samples=400)
    inst = ds.build_instance(incentive_model="linear", alpha=1.0)
    return inst, ds.opt_lower_bounds()


def _golden_spec(opt_lower, **overrides):
    return EngineSpec(
        eps=1.0, theta_cap=120, opt_lower=opt_lower, seed=11, **overrides
    )


class TestGoldenAllocations:
    @pytest.mark.parametrize("algorithm", sorted(GOLDEN))
    @pytest.mark.parametrize("kernel", ["numpy", "numba"])
    @pytest.mark.parametrize(
        "golden_key, extra",
        [
            ("private", {}),
            ("shared", {"share_samples": True}),
            # rr_bytes_budget=1 forces every shared store to spill to a
            # memmap on its first batch; allocations must not move off
            # the shared-sampling golden.
            ("shared", {"share_samples": True, "rr_bytes_budget": 1}),
        ],
        ids=["ram-private", "ram-shared", "spill-shared"],
    )
    def test_serial_combinations_match_golden(
        self, golden_instance, algorithm, kernel, golden_key, extra
    ):
        inst, opt_lower = golden_instance
        spec = _golden_spec(opt_lower, kernel=kernel, **extra)
        result = solve(inst, algorithm, spec)
        golden = GOLDEN[algorithm][golden_key]
        assert result.allocation.seed_sets() == golden["seeds"]
        assert result.revenue_per_ad == pytest.approx(golden["revenue"])
        assert result.extras["kernel"] == kernel
        if extra.get("rr_bytes_budget"):
            assert result.extras["memory"]["spilled_stores"] >= 1

    @pytest.mark.slow
    @pytest.mark.parametrize("algorithm", sorted(GOLDEN))
    @pytest.mark.parametrize("kernel", ["numpy", "numba"])
    def test_parallel_pool_matches_serial_result(
        self, golden_instance, algorithm, kernel
    ):
        # The parallel backend consumes a *different* documented stream
        # (shard plan) than serial, so it gets its own invariant: both
        # kernels agree with each other, exactly, through a real pool.
        inst, opt_lower = golden_instance
        spec = _golden_spec(
            opt_lower, kernel=kernel, sampler_backend="parallel", workers=2
        )
        result = solve(inst, algorithm, spec)
        reference = solve(
            inst,
            algorithm,
            _golden_spec(
                opt_lower, kernel="numpy", sampler_backend="parallel", workers=2
            ),
        )
        assert result.allocation.seed_sets() == reference.allocation.seed_sets()
        assert result.revenue_per_ad == reference.revenue_per_ad


# ----------------------------------------------------------------------
# 3. Degenerate graphs through the seam
# ----------------------------------------------------------------------
class TestDegenerateGraphs:
    @pytest.mark.parametrize("kernel", ["numpy", "numba"])
    def test_empty_graph_rejected(self, kernel):
        empty = DiGraph.from_edge_list([], n=0)
        with pytest.raises(EstimationError):
            ParallelBackend(empty, np.zeros(0), workers=1, kernel=kernel)
        with pytest.raises(EstimationError):
            RRSampler(empty, np.zeros(0), kernel=kernel).sample(
                np.random.default_rng(0)
            )

    def test_single_node_graph(self):
        g = DiGraph.from_edge_list([], n=1)
        for kernel in ("numpy", "numba"):
            members, indptr, _ = _batch(g, np.zeros(0), 7, 5, kernel)
            np.testing.assert_array_equal(members, np.zeros(7, dtype=np.int64))
            np.testing.assert_array_equal(indptr, np.arange(8, dtype=np.int64))

    def test_isolated_nodes_parity(self):
        # Nodes 10..29 have no arcs at all: their RR sets are singleton
        # roots, interleaved with reachable ones in the same batch.
        edges = [(i, j) for i in range(10) for j in range(10) if i != j]
        g = DiGraph.from_edge_list(edges, n=30)
        probs = np.full(g.m, 0.4)
        assert_kernel_parity(g, probs, 50, 13)
        members, indptr, _ = _batch(g, probs, 50, 13, "numba")
        roots = members[indptr[:-1]]
        isolated = roots >= 10
        # An isolated root's whole set is just itself.
        np.testing.assert_array_equal(
            np.diff(indptr)[isolated], np.ones(int(isolated.sum()))
        )

    def test_self_loop_stripped_multigraph_reload(self, tmp_path):
        # A messy crawl: duplicate arcs, self loops, comment lines.
        path = tmp_path / "messy.txt"
        path.write_text(
            "# messy multigraph crawl\n"
            "0 1\n0 1\n1 1\n1 2\n2 0\n2 2\n3 0\n0 1\n3 3\n2 1\n"
        )
        result = ingest_edge_list(str(path))  # dedupes + drops self loops
        g = result.graph
        assert g.m == 5  # (0,1) (1,2) (2,0) (3,0) (2,1)
        probs = np.random.default_rng(2).random(g.m)
        assert_kernel_parity(g, probs, 40, 17)


# ----------------------------------------------------------------------
# 4. Import guard: repro must work with numba absent
# ----------------------------------------------------------------------
_BLOCK_NUMBA_SCRIPT = """
import sys

class _Block:
    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked for the import-guard test")
        return None

sys.meta_path.insert(0, _Block())
sys.modules.pop("numba", None)

import numpy as np
import repro
from repro.rrset.kernels import NUMBA_AVAILABLE, resolve_kernel

assert NUMBA_AVAILABLE is False
assert repro.NUMBA_AVAILABLE is False
assert resolve_kernel("auto") == "numpy"

# The numba spelling still runs (interpreted) and stays bit-identical.
g = repro.DiGraph.from_edge_list([(0, 1), (1, 2), (2, 0), (0, 2)], n=4)
probs = np.full(g.m, 0.5)
out = {}
for kernel in ("numpy", "numba"):
    sampler = repro.RRSampler(g, probs, kernel=kernel)
    out[kernel] = sampler.sample_batch_flat(25, np.random.default_rng(3))
assert np.array_equal(out["numpy"][0], out["numba"][0])
assert np.array_equal(out["numpy"][1], out["numba"][1])
print("import-guard ok")
"""


class TestImportGuard:
    def test_repro_imports_and_samples_with_numba_blocked(self):
        proc = subprocess.run(
            [sys.executable, "-c", _BLOCK_NUMBA_SCRIPT],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "import-guard ok" in proc.stdout
