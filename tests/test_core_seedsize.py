"""Tests for the latent seed-set size estimation (Eq. 10)."""

import pytest

from repro.core.seedsize import next_seed_size
from repro.errors import EstimationError


class TestNextSeedSize:
    def test_exact_formula(self):
        # s + floor((B - rho) / (c_max + cpe * n * F_max))
        value = next_seed_size(
            current=2,
            budget=100.0,
            payment_so_far=40.0,
            max_incentive=5.0,
            cpe=1.0,
            n_nodes=100,
            max_residual_fraction=0.05,
        )
        # denominator = 5 + 1*100*0.05 = 10; floor(60/10) = 6.
        assert value == 8

    def test_zero_increment_when_budget_tight(self):
        value = next_seed_size(3, 50.0, 49.0, 5.0, 1.0, 100, 0.05)
        assert value == 3

    def test_exhausted_budget_returns_current(self):
        assert next_seed_size(4, 10.0, 10.0, 1.0, 1.0, 50, 0.1) == 4
        assert next_seed_size(4, 10.0, 12.0, 1.0, 1.0, 50, 0.1) == 4

    def test_never_decreases(self):
        for payment in (0.0, 5.0, 9.9):
            assert next_seed_size(2, 10.0, payment, 1.0, 1.0, 10, 0.1) >= 2

    def test_capped_at_n(self):
        assert next_seed_size(1, 1e9, 0.0, 0.001, 1.0, 20, 0.0001) == 20

    def test_free_zero_gain_seeds_cap_at_n(self):
        assert next_seed_size(1, 10.0, 0.0, 0.0, 1.0, 30, 0.0) == 30

    def test_negative_current_rejected(self):
        with pytest.raises(EstimationError):
            next_seed_size(-1, 10.0, 0.0, 1.0, 1.0, 10, 0.1)

    def test_conservative_never_overestimates(self):
        """The increment uses the max possible per-seed payment, so
        increment * denominator never exceeds the leftover budget."""
        cases = [
            (1, 100.0, 10.0, 2.0, 1.5, 50, 0.2),
            (5, 1000.0, 500.0, 10.0, 2.0, 200, 0.01),
            (2, 33.3, 3.3, 0.5, 1.0, 77, 0.09),
        ]
        for current, budget, paid, c_max, cpe, n, f_max in cases:
            s_new = next_seed_size(current, budget, paid, c_max, cpe, n, f_max)
            increment = s_new - current
            denom = c_max + cpe * n * f_max
            assert increment * denom <= (budget - paid) + 1e-9
