"""Monte-Carlo and RR singleton estimators against exact ground truth."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.diffusion.montecarlo import (
    degree_proxy_spreads,
    estimate_singleton_spreads,
    estimate_singleton_spreads_rr,
    estimate_spread,
)
from repro.diffusion.worlds import exact_singleton_spreads, exact_spread
from repro.graph.generators import erdos_renyi


class TestEstimateSpread:
    def test_matches_exact_on_chain(self, path_graph):
        probs = np.full(path_graph.m, 0.5)
        exact = exact_spread(path_graph, probs, [0])
        mc = estimate_spread(path_graph, probs, [0], n_runs=4000, rng=1)
        assert mc == pytest.approx(exact, rel=0.08)

    def test_matches_exact_on_diamond(self, diamond_graph):
        probs = np.full(diamond_graph.m, 0.6)
        exact = exact_spread(diamond_graph, probs, [0])
        mc = estimate_spread(diamond_graph, probs, [0], n_runs=4000, rng=2)
        assert mc == pytest.approx(exact, rel=0.08)

    def test_empty_seed_set_is_zero(self, path_graph):
        assert estimate_spread(path_graph, np.ones(path_graph.m), [], n_runs=10) == 0.0

    def test_rejects_nonpositive_runs(self, path_graph):
        with pytest.raises(EstimationError):
            estimate_spread(path_graph, np.ones(path_graph.m), [0], n_runs=0)

    def test_deterministic_graph_has_zero_variance(self, path_graph):
        mc = estimate_spread(path_graph, np.ones(path_graph.m), [0], n_runs=5)
        assert mc == 4.0


class TestSingletonEstimators:
    def test_mc_matches_exact(self, diamond_graph):
        probs = np.full(diamond_graph.m, 0.5)
        exact = exact_singleton_spreads(diamond_graph, probs)
        mc = estimate_singleton_spreads(diamond_graph, probs, n_runs=3000, rng=3)
        assert np.allclose(mc, exact, rtol=0.1)

    def test_mc_restricted_nodes(self, diamond_graph):
        probs = np.full(diamond_graph.m, 0.5)
        partial = estimate_singleton_spreads(
            diamond_graph, probs, n_runs=100, rng=4, nodes=[0]
        )
        assert partial[0] > 0
        assert partial[1] == 0.0

    def test_rr_matches_exact(self, diamond_graph):
        probs = np.full(diamond_graph.m, 0.5)
        exact = exact_singleton_spreads(diamond_graph, probs)
        rr = estimate_singleton_spreads_rr(diamond_graph, probs, n_samples=20000, rng=5)
        assert np.allclose(rr, exact, rtol=0.1)

    def test_rr_and_mc_agree_on_random_graph(self):
        g = erdos_renyi(40, 0.1, seed=6)
        probs = np.full(g.m, 0.3)
        mc = estimate_singleton_spreads(g, probs, n_runs=800, rng=7)
        rr = estimate_singleton_spreads_rr(g, probs, n_samples=20000, rng=8)
        # Compare the top node and the overall scale.
        assert rr.sum() == pytest.approx(mc.sum(), rel=0.15)
        assert abs(int(rr.argmax()) - int(mc.argmax())) == 0 or (
            rr[mc.argmax()] >= 0.8 * rr.max()
        )

    def test_rr_floors_at_one(self, path_graph):
        rr = estimate_singleton_spreads_rr(path_graph, np.zeros(path_graph.m), n_samples=50, rng=9)
        assert (rr >= 1.0).all()

    def test_rr_rejects_nonpositive_samples(self, path_graph):
        with pytest.raises(EstimationError):
            estimate_singleton_spreads_rr(path_graph, np.ones(path_graph.m), n_samples=0)


class TestDegreeProxy:
    def test_values(self, star_graph):
        proxy = degree_proxy_spreads(star_graph)
        assert proxy[0] == 6.0
        assert proxy[1] == 1.0

    def test_always_at_least_one(self, path_graph):
        assert (degree_proxy_spreads(path_graph) >= 1.0).all()
