"""Property-based validation of Theorems 2 and 3 on random tiny instances.

For every random instance we compute the true optimum by brute force, the
instance-dependent bound ingredients (curvature, ranks, payment extremes)
exactly, and assert the greedy solutions respect their guarantees.  This
is the strongest executable statement of the paper's theory.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.ads import Advertiser
from repro.core.bounds import theorem2_bound, theorem3_bound
from repro.core.curvature import (
    max_payment_curvature,
    singleton_payment_extremes,
    total_revenue_curvature,
)
from repro.core.greedy import ca_greedy, cs_greedy, exhaustive_optimum
from repro.core.independence import lower_upper_rank
from repro.core.instance import RMInstance
from repro.core.oracles import ExactOracle
from repro.graph.digraph import DiGraph


@st.composite
def tiny_rm_instances(draw):
    """Deterministic-probability instances on <= 5 nodes, single ad.

    p in {0, 1} keeps the exact oracle O(1) per query so brute force and
    curvature stay fast; costs and budget are drawn to exercise both
    binding and loose knapsacks.
    """
    n = draw(st.integers(3, 5))
    edges = set()
    for _ in range(draw(st.integers(0, 7))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((u, v))
    g = DiGraph.from_edge_list(sorted(edges), n=n)
    probs = np.ones(g.m)
    costs = np.array(
        [draw(st.sampled_from([0.1, 0.5, 1.0, 2.0, 4.0])) for _ in range(n)]
    )
    budget = draw(st.sampled_from([3.0, 5.0, 8.0, 12.0]))
    if costs.min() > budget:
        costs[0] = budget / 2.0
    advs = [Advertiser(index=0, cpe=1.0, budget=budget)]
    return RMInstance(g, advs, [probs], [costs])


@settings(max_examples=25, deadline=None)
@given(tiny_rm_instances())
def test_greedy_floor_one_over_R_plus_one(inst):
    """Empirically safe floor for CA-GREEDY: opt / (R + 1).

    The literal Theorem-2 formula is exceeded on twin-tie matroid
    instances (see ``theorem2_counterexample`` and the reproduction
    notes); this floor held on an exhaustive ~235K-instance enumeration
    and is what the property suite pins down.
    """
    oracle = ExactOracle(inst)
    _, opt = exhaustive_optimum(inst, oracle)
    if opt <= 0:
        return

    def is_indep(subset):
        return oracle.payment(0, subset) <= inst.budget(0) + 1e-9

    _, big_r = lower_upper_rank(range(inst.n), is_indep)
    if big_r == 0:
        return
    for tie in ("index", "cost"):
        greedy_value = ca_greedy(inst, oracle, tie_break=tie).total_revenue
        assert greedy_value >= opt / (big_r + 1) - 1e-6


@settings(max_examples=25, deadline=None)
@given(tiny_rm_instances())
def test_theorem2_bound_holds_when_ranks_differ(inst):
    """Outside the twin-tie family (all observed violations had r = R and
    κ_π = 1), the Theorem-2 formula held on every enumerated instance —
    asserted here for the r < R regime."""
    oracle = ExactOracle(inst)
    _, opt = exhaustive_optimum(inst, oracle)
    if opt <= 0:
        return
    kappa = total_revenue_curvature(inst, oracle)

    def is_indep(subset):
        return oracle.payment(0, subset) <= inst.budget(0) + 1e-9

    r, big_r = lower_upper_rank(range(inst.n), is_indep)
    if big_r == 0 or r == big_r:
        return
    bound = theorem2_bound(kappa, r, big_r)
    for tie in ("index", "cost"):
        greedy_value = ca_greedy(inst, oracle, tie_break=tie).total_revenue
        assert greedy_value >= bound * opt - 1e-6


@settings(max_examples=25, deadline=None)
@given(tiny_rm_instances())
def test_theorem3_guarantee_holds(inst):
    oracle = ExactOracle(inst)
    _, opt = exhaustive_optimum(inst, oracle)
    if opt <= 0:
        return
    kappa_rho = max_payment_curvature(inst, oracle)

    def is_indep(subset):
        return oracle.payment(0, subset) <= inst.budget(0) + 1e-9

    _, big_r = lower_upper_rank(range(inst.n), is_indep)
    if big_r == 0:
        return
    rho_max, rho_min = singleton_payment_extremes(inst, oracle)
    bound = theorem3_bound(kappa_rho, big_r, rho_max, rho_min)
    greedy_value = cs_greedy(inst, oracle).total_revenue
    assert greedy_value >= bound * opt - 1e-6


@settings(max_examples=25, deadline=None)
@given(tiny_rm_instances())
def test_greedy_solutions_feasible(inst):
    oracle = ExactOracle(inst)
    for algo in (ca_greedy, cs_greedy):
        result = algo(inst, oracle)
        seeds = result.allocation.seeds(0)
        assert oracle.payment(0, seeds) <= inst.budget(0) + 1e-6
        assert len(seeds) == len(set(seeds))


@settings(max_examples=20, deadline=None)
@given(tiny_rm_instances())
def test_greedy_never_beats_optimum(inst):
    oracle = ExactOracle(inst)
    _, opt = exhaustive_optimum(inst, oracle)
    for algo in (ca_greedy, cs_greedy):
        assert algo(inst, oracle).total_revenue <= opt + 1e-6
