"""Property-based tests for matroid/independence-system structure."""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.independence import (
    PartitionMatroid,
    allocation_pairs_independent,
    lower_upper_rank,
)

matroid_specs = st.tuples(
    st.lists(st.integers(0, 3), min_size=1, max_size=8),  # groups
    st.lists(st.integers(0, 3), min_size=4, max_size=4),  # capacities
)


@settings(max_examples=50, deadline=None)
@given(matroid_specs)
def test_partition_matroid_axioms(spec):
    """Downward closure + augmentation on exhaustive subsets (Def. 1–2)."""
    groups, capacities = spec
    m = PartitionMatroid(groups, capacities)
    ground = range(len(groups))
    independents = [
        frozenset(c)
        for r in range(len(groups) + 1)
        for c in itertools.combinations(ground, r)
        if m.is_independent(c)
    ]
    independent_set = set(independents)
    # Non-empty (empty set is always independent).
    assert frozenset() in independent_set
    # Downward closure.
    for x in independents:
        for e in x:
            assert x - {e} in independent_set
    # Augmentation.
    for x in independents:
        for y in independents:
            if len(y) > len(x):
                assert any(x | {e} in independent_set for e in y - x)


@settings(max_examples=50, deadline=None)
@given(matroid_specs)
def test_matroid_ranks_coincide(spec):
    """All maximal independent sets of a matroid share one cardinality."""
    groups, capacities = spec
    m = PartitionMatroid(groups, capacities)
    r, big_r = lower_upper_rank(range(len(groups)), m.is_independent, max_ground=8)
    assert r == big_r == m.rank()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 2)), min_size=0, max_size=8
    )
)
def test_pair_disjointness_matches_matroid_semantics(pairs):
    """The helper agrees with 'no node appears twice' (Lemma 1)."""
    nodes = [node for node, _ in pairs]
    expected = len(nodes) == len(set(nodes))
    assert allocation_pairs_independent(pairs) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(0.5, 3.0), min_size=2, max_size=7),
    st.floats(1.0, 8.0),
)
def test_knapsack_system_downward_closed_and_ranked(weights, capacity):
    """Knapsack feasible families are independence systems with r <= R."""
    def is_indep(subset):
        return sum(weights[i] for i in subset) <= capacity

    ground = range(len(weights))
    subsets = [
        frozenset(c)
        for r in range(len(weights) + 1)
        for c in itertools.combinations(ground, r)
    ]
    feasible = {s for s in subsets if is_indep(s)}
    for s in feasible:
        for e in s:
            assert s - {e} in feasible
    r, big_r = lower_upper_rank(ground, is_indep, max_ground=8)
    assert 0 <= r <= big_r
