#!/usr/bin/env python
"""The TIC learning pipeline: from cascade logs to campaign allocation.

The paper's FLIXSTER experiments run on influence probabilities *learned*
from propagation logs (Barbieri et al.'s topic-aware MLE).  This example
exercises that full pipeline on synthetic data:

1. fix a ground-truth TIC model on a graph;
2. simulate a log of timestamped cascades for a catalogue of items;
3. re-estimate the per-topic arc probabilities from the log alone;
4. allocate a new ad campaign with TI-CSRM under the *learned* model and
   compare against the allocation under the *true* model.

Run with:  python examples/learning_pipeline.py
"""

import numpy as np

import repro
from repro.graph.generators import powerlaw_configuration
from repro.topics.distribution import peaked_distribution, random_distribution
from repro.topics.learning import estimate_tic_model, generate_cascade_log


def allocate(graph, ad_probs, seed):
    """Build a 2-ad instance from probability vectors and run TI-CSRM."""
    spreads = [
        repro.estimate_singleton_spreads_rr(graph, p, n_samples=3000, rng=seed)
        for p in ad_probs
    ]
    advertisers = [
        repro.Advertiser(index=i, cpe=1.5, budget=5.0 * 1.5 * float(s.max()))
        for i, s in enumerate(spreads)
    ]
    incentives = [repro.compute_incentives(s, "linear", 1.0) for s in spreads]
    instance = repro.RMInstance(graph, advertisers, ad_probs, incentives)
    return repro.ti_csrm(
        instance,
        eps=0.5,
        theta_cap=1500,
        opt_lower=[float(s.max()) for s in spreads],
        seed=seed,
    )


def main() -> None:
    seed = 21
    n_topics = 4
    graph = powerlaw_configuration(600, mean_degree=6.0, seed=seed)
    truth = repro.random_tic_model(
        graph, n_topics, seed=seed, levels=(0.5, 0.2, 0.05)
    )
    print(f"graph: {graph.n} users, {graph.m} arcs; {n_topics} latent topics")

    # 2. A training log: 60 items with random topic mixtures, 40 cascades each.
    items = [random_distribution(n_topics, seed=seed + k) for k in range(60)]
    log = generate_cascade_log(
        graph, truth, items, cascades_per_item=40, seeds_per_cascade=5, rng=seed
    )
    activations = int(np.mean([(t >= 0).sum() for t in log.traces]))
    print(f"training log: {len(log)} cascades, ~{activations} activations each")

    # 3. Learn the tensor back.
    learned = estimate_tic_model(log, n_topics, smoothing=0.5)
    exposed = truth.tensor > 0
    corr = np.corrcoef(truth.tensor.ravel(), learned.tensor.ravel())[0, 1]
    print(f"learned-vs-true per-topic arc probability correlation: {corr:.3f}")

    # 4. Allocate a fresh campaign under both models.
    campaign = [peaked_distribution(n_topics, 0), peaked_distribution(n_topics, 1)]
    true_probs = [truth.ad_probabilities(g) for g in campaign]
    learned_probs = [learned.ad_probabilities(g) for g in campaign]

    res_true = allocate(graph, true_probs, seed)
    res_learned = allocate(graph, learned_probs, seed)
    print(f"\nallocation planned with true model:    {res_true.summary()}")
    print(f"allocation planned with learned model: {res_learned.summary()}")

    # The metric that matters: how do both plans perform under the TRUE
    # propagation model?
    def true_value(result):
        total = 0.0
        for i, seeds in enumerate(result.allocation.seed_sets()):
            if seeds:
                total += 1.5 * repro.estimate_spread(
                    graph, true_probs[i], seeds, n_runs=300, rng=seed
                )
        return total

    v_true = true_value(res_true)
    v_learned = true_value(res_learned)
    print(
        f"\nrealized revenue under the true model: plan-with-truth {v_true:.1f} "
        f"vs plan-with-learned {v_learned:.1f} "
        f"({100 * (v_learned / max(v_true, 1e-9) - 1):+.1f}%)"
    )


if __name__ == "__main__":
    main()
