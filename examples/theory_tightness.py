#!/usr/bin/env python
"""Walk through the paper's theory on the Figure 1 instance.

Reconstructs the 7-node tightness instance of Theorem 2, derives every
quantity in the bound from scratch (exact spreads, brute-force optimum,
ranks of the independence system, curvature), and demonstrates:

* CA-GREEDY with an adversarial tie-break lands on exactly half the
  optimum — the bound is tight;
* CS-GREEDY escapes the trap and finds the optimum (footnote 9);
* this reproduction's finding: a 3-node matroid instance on which the
  literal Theorem-2 formula is exceeded (see
  ``repro.core.bounds.theorem2_counterexample``).

Run with:  python examples/theory_tightness.py
"""

import repro
from repro.core.bounds import theorem2_counterexample
from repro.core.curvature import total_revenue_curvature
from repro.core.independence import lower_upper_rank, maximal_independent_sets


def analyze(title, instance, expected):
    names = "abcdefg"
    oracle = repro.ExactOracle(instance)
    print(f"=== {title} ===")
    print(f"nodes: {instance.n}, budget: {instance.budget(0)}, cpe: {instance.cpe(0)}")
    for u in range(instance.n):
        print(
            f"  node {names[u]}: sigma={oracle.spread(0, [u]):.0f} "
            f"cost={instance.incentive(0, u):.1f} "
            f"payment={oracle.payment(0, [u]):.1f}"
        )

    def is_indep(subset):
        return oracle.payment(0, subset) <= instance.budget(0) + 1e-9

    maximal = maximal_independent_sets(range(instance.n), is_indep)
    r, big_r = lower_upper_rank(range(instance.n), is_indep)
    kappa = total_revenue_curvature(instance, oracle)
    bound = repro.theorem2_bound(kappa, r, big_r)
    sets, opt = repro.exhaustive_optimum(instance, oracle)
    print(f"maximal feasible seed sets: "
          f"{[sorted(names[u] for u in s) for s in maximal]}")
    print(f"ranks: r={r}, R={big_r}; curvature kappa_pi={kappa:.2f}")
    print(f"Theorem 2 bound: {bound:.3f};  optimum: {opt:.0f} "
          f"on {sorted(names[u] for u in sets[0])}")

    ca_adv = repro.ca_greedy(instance, oracle, tie_break="cost")
    ca_friendly = repro.ca_greedy(instance, oracle, tie_break="index")
    cs = repro.cs_greedy(instance, oracle)
    for tag, res in [
        ("CA-GREEDY (adversarial ties)", ca_adv),
        ("CA-GREEDY (friendly ties)", ca_friendly),
        ("CS-GREEDY", cs),
    ]:
        ratio = res.total_revenue / opt
        marker = "  <-- bound attained" if abs(ratio - bound) < 1e-9 else ""
        print(
            f"  {tag:<30} revenue {res.total_revenue:4.0f} "
            f"({100 * ratio:5.1f}% of OPT){marker}"
        )
    print()


def main() -> None:
    instance, expected = repro.tightness_instance()
    analyze("Figure 1: Theorem 2 is tight", instance, expected)

    counter, counter_expected = theorem2_counterexample()
    analyze(
        "Reproduction finding: the formula is exceeded on a matroid instance",
        counter,
        counter_expected,
    )
    print(
        "note: on the second instance the greedy/OPT ratio (2/3) falls below\n"
        "the Theorem-2 formula value (3/4) for every tie-break — the closed\n"
        "form, which descends from the uniform-matroid analysis, is not a\n"
        "universal worst-case bound for general independence systems.\n"
        "See EXPERIMENTS.md ('Theory notes') for the exhaustive enumeration."
    )


if __name__ == "__main__":
    main()
