#!/usr/bin/env python
"""Competition in the ad marketplace: how topical overlap shapes revenue.

The paper's partition-matroid constraint means advertisers whose ads live
in the same topical market compete for the same influencers.  This
example builds two marketplaces on the same graph —

* a *pure competition* marketplace (every pair of ads shares a peaked
  topic distribution, as in the paper's FLIXSTER setup), and
* a *segmented* marketplace (each ad owns its topic exclusively),

runs TI-CSRM on both, and shows that competition depresses per-ad
revenue while segmentation lets every ad reach its own audience.

Run with:  python examples/marketplace_competition.py
"""

import numpy as np

import repro
from repro.graph.generators import powerlaw_configuration
from repro.topics.distribution import peaked_distribution, pure_competition_ads


def build_instance(graph, tic, gammas, alpha, budget_multiple, seed):
    """Price incentives and budgets for a list of ad distributions."""
    unique = {}
    ad_probs, spreads = [], []
    for gamma in gammas:
        if gamma not in unique:
            probs = tic.ad_probabilities(gamma)
            spread = repro.estimate_singleton_spreads_rr(
                graph, probs, n_samples=4000, rng=seed
            )
            unique[gamma] = (probs, spread)
        probs, spread = unique[gamma]
        ad_probs.append(probs)
        spreads.append(spread)
    advertisers = []
    incentives = []
    rng = np.random.default_rng(seed)
    for i, spread in enumerate(spreads):
        budget = 1.5 * float(spread.max()) * budget_multiple
        advertisers.append(repro.Advertiser(index=i, cpe=1.5, budget=budget))
        incentives.append(repro.compute_incentives(spread, "linear", alpha))
    instance = repro.RMInstance(graph, advertisers, ad_probs, incentives)
    opt_lower = [float(s.max()) for s in spreads]
    return instance, opt_lower


def run_marketplace(tag, graph, tic, gammas, seed):
    instance, opt_lower = build_instance(
        graph, tic, gammas, alpha=1.0, budget_multiple=4.0, seed=seed
    )
    result = repro.ti_csrm(
        instance, eps=0.4, theta_cap=2500, opt_lower=opt_lower, seed=seed
    )
    per_ad = [f"{r:7.1f}" for r in result.revenue_per_ad]
    print(f"{tag:>16}: total revenue {result.total_revenue:8.1f} | per ad: {per_ad}")
    return result


def main() -> None:
    seed = 11
    n_topics = 8
    graph = powerlaw_configuration(1000, mean_degree=7.0, seed=seed)
    tic = repro.random_tic_model(graph, n_topics, seed=seed)
    print(f"graph: {graph.n} users, {graph.m} arcs, {n_topics} latent topics\n")

    # Marketplace A: 6 ads in pure competition (3 contested topics).
    competitive = pure_competition_ads(6, n_topics, seed=seed)
    # Marketplace B: 6 ads, each on its own topic.
    segmented = [peaked_distribution(n_topics, z) for z in range(6)]

    res_comp = run_marketplace("pure competition", graph, tic, competitive, seed)
    res_seg = run_marketplace("segmented", graph, tic, segmented, seed)

    overlap_pairs = sum(
        1
        for i in range(6)
        for j in range(i + 1, 6)
        if competitive[i].overlap(competitive[j]) > 0.99
    )
    print(
        f"\ncompetitive marketplace has {overlap_pairs} fully-overlapping ad pairs; "
        "each pair splits one influencer pool under the disjointness constraint."
    )
    print(
        f"segmented marketplace revenue is "
        f"{100 * (res_seg.total_revenue / max(res_comp.total_revenue, 1e-9) - 1):+.1f}% "
        "vs pure competition on the same graph and budgets."
    )

    # The cleanest view of the matroid constraint: the SAME ad, alone in
    # the marketplace vs facing five clones bidding for the same topic.
    # Budgets are set large enough that the *seed pool*, not the budget,
    # is the binding resource - that is where disjointness bites.
    solo_instance, solo_lower = build_instance(
        graph, tic, competitive[:1], alpha=1.0, budget_multiple=200.0, seed=seed
    )
    solo = repro.ti_csrm(
        solo_instance, eps=0.4, theta_cap=2500, opt_lower=solo_lower, seed=seed
    )
    contested_instance, contested_lower = build_instance(
        graph, tic, [competitive[0]] * 6, alpha=1.0, budget_multiple=200.0, seed=seed
    )
    contested = repro.ti_csrm(
        contested_instance,
        eps=0.4,
        theta_cap=2500,
        opt_lower=contested_lower,
        seed=seed,
    )
    drop = 100 * (1 - contested.revenue_per_ad[0] / max(solo.revenue_per_ad[0], 1e-9))
    print(
        f"\nad 0 alone in the market earns {solo.revenue_per_ad[0]:.1f}; "
        f"against 5 same-topic competitors it earns {contested.revenue_per_ad[0]:.1f} "
        f"({drop:+.1f}% drop) - competition for shared influencers is real."
    )


if __name__ == "__main__":
    main()
