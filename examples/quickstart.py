#!/usr/bin/env python
"""Quickstart: one incentivized ad campaign, end to end.

Builds a small synthetic social network, sets up three advertisers with
topic-targeted ads, prices seed incentives from each user's estimated
influence, runs TI-CSRM, and prints the resulting allocation with the
host's revenue split.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    rng_seed = 42

    # --- 1. The social graph (the host's asset) -----------------------
    from repro.graph.generators import powerlaw_configuration

    graph = powerlaw_configuration(800, mean_degree=7.0, seed=rng_seed)
    print(f"social graph: {graph.n} users, {graph.m} follow arcs")

    # --- 2. Topic model and ads ---------------------------------------
    # Ten latent topics; three ads, two of them in pure competition.
    tic = repro.random_tic_model(graph, n_topics=10, seed=rng_seed)
    gammas = repro.pure_competition_ads(3, n_topics=10, seed=rng_seed)
    ad_probs = [tic.ad_probabilities(g) for g in gammas]

    # --- 3. Price seed incentives from demonstrated influence ---------
    # c_i(u) = alpha * sigma_i({u}) (linear incentives, Section 5).
    singleton_spreads = [
        repro.estimate_singleton_spreads_rr(graph, p, n_samples=4000, rng=rng_seed)
        for p in ad_probs
    ]
    alpha = 1.0
    incentives = [repro.compute_incentives(s, "linear", alpha) for s in singleton_spreads]

    # --- 4. Advertiser contracts --------------------------------------
    advertisers = [
        repro.Advertiser(index=0, cpe=1.5, budget=120.0, name="running-shoes"),
        repro.Advertiser(index=1, cpe=2.0, budget=150.0, name="trail-shoes"),
        repro.Advertiser(index=2, cpe=1.0, budget=80.0, name="espresso"),
    ]
    instance = repro.RMInstance(graph, advertisers, ad_probs, incentives)

    # --- 5. Run the host's allocation algorithm -----------------------
    # One spec holds every engine knob; repro.solve runs any registered
    # algorithm under it (use an AllocationSession for repeated solves).
    spec = repro.EngineSpec(
        eps=0.4,
        theta_cap=3000,
        opt_lower=[float(s.max()) for s in singleton_spreads],
        seed=rng_seed,
    )
    result = repro.solve(instance, "TI-CSRM", spec)

    # --- 6. Report -----------------------------------------------------
    print(f"\n{result.summary()}\n")
    for adv in advertisers:
        seeds = result.allocation.seeds(adv.index)
        print(
            f"{adv.name:>14}: budget {adv.budget:7.1f} | "
            f"revenue {result.revenue_per_ad[adv.index]:7.1f} | "
            f"incentives {result.seeding_cost_per_ad[adv.index]:6.1f} | "
            f"{len(seeds):3d} seeds, e.g. {seeds[:5]}"
        )
    total_payment = sum(result.payment_per_ad)
    print(
        f"\nhost takes {result.total_revenue:.1f} in engagement revenue; "
        f"{result.total_seeding_cost:.1f} flows through to seed users "
        f"({100 * result.total_seeding_cost / max(total_payment, 1e-9):.1f}% of payments)"
    )


if __name__ == "__main__":
    main()
