#!/usr/bin/env python
"""Scalability demo: runtime and memory as the marketplace grows.

A miniature of the paper's Figure 5 / Table 3: run TI-CARM and
(window-restricted) TI-CSRM on the DBLP analog while growing the number
of advertisers, and report wall-clock time, RR-set memory, and seed
counts.  The shapes to look for: roughly linear time in h, TI-CSRM
slightly slower and hungrier than TI-CARM, both allocating more total
seeds as competition widens.

Run with:  python examples/scalability_demo.py
"""

import numpy as np

import repro
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import run_figure5_advertisers
from repro.experiments.reporting import format_table


def main() -> None:
    config = ExperimentConfig(
        eps=0.5, theta_cap=20_000, scalability_window=200, seed=9
    )
    # Small enough that the honest Eq.-8 sample sizes stay below the cap,
    # so the TI-CSRM vs TI-CARM memory difference is visible (cf. Table 3).
    dataset = repro.build_dataset("dblp_syn", n=800, h=12)
    print(
        f"dataset: {dataset.name} n={dataset.graph.n} m={dataset.graph.m} "
        f"(undirected co-authorship analog, Weighted Cascade, degree-proxy incentives)\n"
    )

    rows = run_figure5_advertisers(
        dataset,
        config,
        h_values=(1, 4, 8),
        budget=0.5 * float(np.median(dataset.budgets)),
    )
    print(format_table(rows))

    csrm = [r for r in rows if r["algorithm"] == "TI-CSRM"]
    carm = [r for r in rows if r["algorithm"] == "TI-CARM"]
    t_ratio = csrm[-1]["runtime_s"] / max(carm[-1]["runtime_s"], 1e-9)
    m_ratio = csrm[-1]["memory_mb"] / max(carm[-1]["memory_mb"], 1e-9)
    print(
        f"\nat h={csrm[-1]['h']}: TI-CSRM takes {t_ratio:.2f}x the time and "
        f"{m_ratio:.2f}x the RR memory of TI-CARM "
        "(paper: slightly slower, 1.2-1.4x memory on LIVEJOURNAL)"
    )
    growth = csrm[-1]["runtime_s"] / max(csrm[0]["runtime_s"], 1e-9)
    print(
        f"TI-CSRM runtime grew {growth:.1f}x from h={csrm[0]['h']} to "
        f"h={csrm[-1]['h']} ({csrm[-1]['h'] / csrm[0]['h']:.0f}x more advertisers) "
        "- roughly linear, as in Figure 5."
    )


if __name__ == "__main__":
    main()
