#!/usr/bin/env python
"""Incentive design: how the cost model changes who gets seeded.

A miniature of the paper's Figures 2 and 3: sweep the incentive scale α
under the four cost models (linear, constant, sublinear, superlinear)
and compare the cost-sensitive and cost-agnostic allocators.  The
takeaways this prints are the paper's headline results:

* under *constant* incentives cost-sensitivity buys nothing;
* the more convex the incentive curve, the larger TI-CSRM's advantage,
  because hub influencers become disproportionately expensive;
* TI-CSRM always pays the least in total seed incentives.

Run with:  python examples/incentive_design.py
"""

import repro
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import run_alpha_sweep
from repro.experiments.reporting import format_table


def main() -> None:
    config = ExperimentConfig(
        eps=0.5, theta_cap=1500, singleton_rr_samples=4000, grid_mode="quick", seed=3
    )
    dataset = repro.build_dataset(
        "epinions_syn", n=1000, h=6, singleton_rr_samples=config.singleton_rr_samples
    )
    print(
        f"dataset: {dataset.name} n={dataset.graph.n} m={dataset.graph.m} "
        f"h={dataset.h} (all ads in pure competition)\n"
    )

    rows = run_alpha_sweep(
        dataset, config, algorithms=("TI-CSRM", "TI-CARM")
    )
    print(format_table(rows, columns=[
        "incentives", "alpha", "algorithm", "revenue", "seed_cost", "seeds"
    ]))

    # Summarize the CSRM advantage per incentive model at the top alpha.
    print("\nTI-CSRM vs TI-CARM at the most expensive alpha per model:")
    by_cell = {(r["incentives"], r["alpha"], r["algorithm"]): r for r in rows}
    for model in ("linear", "constant", "sublinear", "superlinear"):
        alphas = sorted({r["alpha"] for r in rows if r["incentives"] == model})
        top = alphas[-1]
        csrm = by_cell[(model, top, "TI-CSRM")]
        carm = by_cell[(model, top, "TI-CARM")]
        gain = 100 * (csrm["revenue"] / max(carm["revenue"], 1e-9) - 1)
        savings = carm["seed_cost"] - csrm["seed_cost"]
        print(
            f"  {model:>11} (alpha={top:g}): revenue {gain:+6.1f}%, "
            f"incentive savings {savings:8.1f}"
        )


if __name__ == "__main__":
    main()
