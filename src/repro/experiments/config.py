"""Tunables of the experiment suite.

The paper runs with ε = 0.1 (quality) / 0.3 (scalability) on a 264 GB
server with C-level RR sampling.  The pure-Python reproduction keeps the
same algorithmic structure but works on scaled-down synthetic analogs,
so the defaults here trade estimator tightness for wall-clock sanity:
larger ε, a per-ad θ cap, and singleton spreads priced by a shared RR
sample instead of 5 000 Monte-Carlo runs (see DESIGN.md §4).  Every knob
is recorded in the emitted reports — and, compiled into the resolved
``EngineSpec``, in every grid manifest row — so ``docs/EXPERIMENTS.md``
can state precisely what was run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """One bundle of estimator / sweep settings."""

    # Estimation accuracy (Eq. 8).
    eps: float = 0.3
    ell: float = 0.5
    theta_cap: int = 4_000
    # "singleton" prices OPT_s lower bounds from the dataset's singleton
    # spreads (free, always valid); "kpt" runs TIM's estimator.
    opt_lower_mode: str = "singleton"
    kpt_max_samples: int = 2_000
    # Singleton-spread pricing for incentives.
    singleton_rr_samples: int = 8_000
    # Window for TI-CSRM in scalability runs (Fig. 5 uses w = 5000 on the
    # paper's graphs; scaled with our graphs).
    scalability_window: int = 500
    # Sweep resolution: "paper" uses the full α grids, "quick" a subset.
    grid_mode: str = "quick"
    # Base RNG seed for everything derived from this config.
    seed: int = 7
    # RR sampling backend seam (docs/ARCHITECTURE.md): "serial" is
    # bit-identical to the bare sampler; "parallel" fans batches over a
    # shared-memory worker pool.  workers = 0 means "backend default"
    # (serial stays in-process; parallel uses the machine's CPU count);
    # any workers > 1 upgrades "serial" to "parallel".
    sampler_backend: str = "serial"
    workers: int = 0
    # Batch-kernel seam (repro.rrset.kernels): "numpy", "numba" or
    # "auto" (numba when importable).  Bit-identical either way, so it
    # never changes results — only throughput.
    kernel: str = "auto"
    # RAM budget (bytes) per shared RR store; 0 = unbounded.  Past it
    # the store's member array spills to a temp-file memmap
    # (docs/ARCHITECTURE.md §2), keeping real-crawl grids inside a
    # declared memory envelope.
    rr_bytes_budget: int = 0
    # Engine storage / laziness knobs (docs/ARCHITECTURE.md §6):
    # share_samples stores probability-identical ads' RR sets once;
    # lazy_candidates=False forces eager per-round candidate rescans.
    # Both compile into the EngineSpec, so grid specs can pin them.
    share_samples: bool = False
    lazy_candidates: bool = True

    def quick(self) -> "ExperimentConfig":
        """A cheaper copy for smoke tests."""
        return replace(self, theta_cap=1_000, singleton_rr_samples=2_000, grid_mode="quick")

    def engine_spec(self, *, opt_lower, window=None, seed=None):
        """Compile this config into an :class:`~repro.api.spec.EngineSpec`.

        *opt_lower* must be resolved by the caller (the ``"singleton"``
        mode needs dataset spreads the config cannot see); *window* and
        *seed* are per-run values (``seed=None`` falls back to the
        config's seed).  This is the one place experiment settings turn
        into engine settings — harness, grid runner and CLI all call it.
        """
        from repro.api.spec import EngineSpec

        return EngineSpec(
            eps=self.eps,
            ell=self.ell,
            window=window,
            theta_cap=self.theta_cap,
            opt_lower=opt_lower,
            kpt_max_samples=self.kpt_max_samples,
            share_samples=self.share_samples,
            lazy_candidates=self.lazy_candidates,
            sampler_backend=self.sampler_backend,
            workers=self.workers or None,
            kernel=self.kernel,
            rr_bytes_budget=self.rr_bytes_budget or None,
            seed=self.seed if seed is None else int(seed),
        )

    def alphas(self, model_name: str, dataset_name: str) -> tuple[float, ...]:
        """The α grid for one (incentive model, dataset) cell of Fig. 2/3.

        The synthetic analogs have different absolute spread scales than
        the crawled graphs, so the grids below are re-centred to put seed
        costs in the same *relative* regime as the paper's (a 10–40%
        share of advertiser payments, where cost-sensitivity matters);
        unknown datasets fall back to the paper's literal grids.
        """
        grid = None
        for prefix, grids in ANALOG_ALPHA_GRIDS.items():
            if dataset_name.startswith(prefix):
                grid = grids[model_name]
                break
        if grid is None:
            from repro.incentives.models import INCENTIVE_MODELS

            model = INCENTIVE_MODELS[model_name]
            grid = (
                model.paper_alphas_epinions
                if "epinions" in dataset_name
                else model.paper_alphas_flixster
            )
        if self.grid_mode == "paper":
            return grid
        # quick: endpoints plus midpoint.
        return (grid[0], grid[len(grid) // 2], grid[-1])


# α grids for the synthetic analogs (see ExperimentConfig.alphas).
# Superlinear grids are capped so that the costliest influencer stays
# affordable (c^max_i = α·σ_max² ≲ half the smallest budget), honouring
# the paper's non-degeneracy assumption that no single incentive exceeds
# any advertiser's budget (Section 2).
_QUALITY_GRIDS = {
    "linear": (0.5, 1.0, 1.5, 2.0, 2.5),
    "constant": (1.0, 2.0, 3.0, 4.0, 5.0),
    "sublinear": (2.0, 4.0, 6.0, 8.0, 10.0),
    "superlinear": (0.004, 0.008, 0.012, 0.016, 0.02),
}
ANALOG_ALPHA_GRIDS: dict[str, dict[str, tuple[float, ...]]] = {
    "flixster_syn": {**_QUALITY_GRIDS, "superlinear": (0.01, 0.02, 0.03, 0.04, 0.05)},
    "epinions_syn": _QUALITY_GRIDS,
    "dblp_syn": _QUALITY_GRIDS,
    "livejournal_syn": _QUALITY_GRIDS,
}

DEFAULT_CONFIG = ExperimentConfig()
