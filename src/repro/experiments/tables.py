"""Tables 1–3 of the paper, over the synthetic analogs."""

from __future__ import annotations

import numpy as np

from repro.graph.stats import compute_stats
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import Dataset, build_dataset
from repro.experiments.figures import run_figure5_advertisers


def table1_rows(datasets: list[Dataset] | None = None) -> list[dict]:
    """Table 1: dataset statistics (#nodes, #edges, type)."""
    if datasets is None:
        datasets = [
            build_dataset(name)
            for name in ("flixster_syn", "epinions_syn", "dblp_syn", "livejournal_syn")
        ]
    rows = []
    for ds in datasets:
        stats = compute_stats(ds.graph, name=ds.name, graph_type=ds.graph_type)
        row = stats.as_row()
        row["paper counterpart"] = ds.meta.get("paper_counterpart", "")
        rows.append(row)
    return rows


def table2_rows(datasets: list[Dataset] | None = None) -> list[dict]:
    """Table 2: advertiser budgets and cost-per-engagement summary."""
    if datasets is None:
        datasets = [build_dataset(name) for name in ("flixster_syn", "epinions_syn")]
    rows = []
    for ds in datasets:
        budgets = np.asarray(ds.budgets)
        cpes = np.asarray(ds.cpes)
        rows.append(
            {
                "dataset": ds.name,
                "budget mean": float(budgets.mean()),
                "budget max": float(budgets.max()),
                "budget min": float(budgets.min()),
                "cpe mean": float(cpes.mean()),
                "cpe max": float(cpes.max()),
                "cpe min": float(cpes.min()),
            }
        )
    return rows


def table3_rows(
    datasets: list[Dataset] | None = None,
    config: ExperimentConfig | None = None,
    h_values: tuple[int, ...] = (1, 5, 10, 15, 20),
) -> list[dict]:
    """Table 3: RR-collection memory (MB) for TI-CARM/TI-CSRM vs h.

    The paper reports process GB on its full-size graphs; the reproduced
    quantity is the analytically tracked RR storage, whose *shape*
    (linear in h; TI-CSRM above TI-CARM) is the claim under test.
    """
    if config is None:
        config = ExperimentConfig()
    if datasets is None:
        datasets = [build_dataset("dblp_syn"), build_dataset("livejournal_syn")]
    rows = []
    for ds in datasets:
        runs = run_figure5_advertisers(ds, config, h_values=h_values)
        by_algo: dict[str, dict[int, float]] = {}
        seeds_by_algo: dict[str, dict[int, int]] = {}
        for run in runs:
            by_algo.setdefault(run["algorithm"], {})[run["h"]] = run["memory_mb"]
            seeds_by_algo.setdefault(run["algorithm"], {})[run["h"]] = run["seeds"]
        for algo, mem in by_algo.items():
            row = {"dataset": ds.name, "algorithm": algo}
            for h in h_values:
                row[f"h={h} (MB)"] = mem.get(h, float("nan"))
            row["seeds@hmax"] = seeds_by_algo[algo].get(h_values[-1], 0)
            rows.append(row)
    return rows
