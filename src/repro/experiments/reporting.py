"""Plain-text reporting: paper-style tables and series.

Benchmarks and the grid CLI print these tables (the "same rows/series
the paper reports") and persist them via :func:`save_report` under
``benchmarks/results/`` (override with the ``REPRO_RESULTS_DIR``
environment variable), so ``docs/EXPERIMENTS.md`` — the handbook
mapping each artifact to its paper counterpart — is backed by files
rather than scrollback.  A grid report is a pure function of its
manifest: ``format_table(grid_table_rows(load_manifest(path)[1]))``
re-renders it at any time (EXPERIMENTS.md §3).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

_RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"
_DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")


def format_value(value) -> str:
    """Render one table cell."""
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.2f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict-rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[k]) for r in rendered))
        for k, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    return f"{header}\n{rule}\n{body}"


def series_text(title: str, xs: Iterable, ys_by_name: dict[str, Iterable]) -> str:
    """Render one figure panel: an x column plus one column per series."""
    xs = list(xs)
    names = list(ys_by_name)
    rows = []
    for k, x in enumerate(xs):
        row = {"x": x}
        for name in names:
            row[name] = list(ys_by_name[name])[k]
        rows.append(row)
    return f"== {title} ==\n" + format_table(rows, ["x"] + names)


def results_dir() -> str:
    """Directory where reports are persisted (overridable via env)."""
    return os.environ.get(_RESULTS_DIR_ENV, _DEFAULT_RESULTS_DIR)


def save_report(name: str, text: str) -> str:
    """Write *text* to ``<results_dir>/<name>.txt``; returns the path."""
    directory = results_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    return path
