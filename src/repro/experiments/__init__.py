"""Experiment harness: synthetic analog datasets and per-figure runners."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import (
    Dataset,
    DATASET_BUILDERS,
    build_dataset,
    clear_dataset_cache,
)
from repro.experiments.harness import run_algorithm, run_algorithms, ALGORITHMS
from repro.experiments.figures import (
    run_alpha_sweep,
    run_figure4,
    run_figure5_advertisers,
    run_figure5_budgets,
    run_diagnostics,
    run_ablation_epsilon,
)
from repro.experiments.tables import table1_rows, table2_rows, table3_rows
from repro.experiments.reporting import format_table, save_report, series_text

__all__ = [
    "ExperimentConfig",
    "Dataset",
    "DATASET_BUILDERS",
    "build_dataset",
    "clear_dataset_cache",
    "run_algorithm",
    "run_algorithms",
    "ALGORITHMS",
    "run_alpha_sweep",
    "run_figure4",
    "run_figure5_advertisers",
    "run_figure5_budgets",
    "run_diagnostics",
    "run_ablation_epsilon",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "format_table",
    "save_report",
    "series_text",
]
