"""Experiment harness: synthetic analog datasets and per-figure runners."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import (
    Dataset,
    DATASET_BUILDERS,
    PROB_MODELS,
    build_dataset,
    build_edge_list_dataset,
    clear_dataset_cache,
    register_edge_list_dataset,
    unregister_dataset,
)
from repro.experiments.grid import (
    GridCell,
    GridSpec,
    clear_grid_caches,
    default_manifest_path,
    grid_table_rows,
    load_manifest,
    run_grid,
)
from repro.experiments.harness import run_algorithm, run_algorithms, ALGORITHMS
from repro.experiments.figures import (
    run_alpha_sweep,
    run_figure4,
    run_figure5_advertisers,
    run_figure5_budgets,
    figure5_grid_spec,
    run_diagnostics,
    run_ablation_epsilon,
)
from repro.experiments.tables import table1_rows, table2_rows, table3_rows
from repro.experiments.reporting import format_table, save_report, series_text

__all__ = [
    "ExperimentConfig",
    "Dataset",
    "DATASET_BUILDERS",
    "PROB_MODELS",
    "build_dataset",
    "build_edge_list_dataset",
    "clear_dataset_cache",
    "register_edge_list_dataset",
    "unregister_dataset",
    "GridCell",
    "GridSpec",
    "clear_grid_caches",
    "default_manifest_path",
    "grid_table_rows",
    "load_manifest",
    "run_grid",
    "figure5_grid_spec",
    "run_algorithm",
    "run_algorithms",
    "ALGORITHMS",
    "run_alpha_sweep",
    "run_figure4",
    "run_figure5_advertisers",
    "run_figure5_budgets",
    "run_diagnostics",
    "run_ablation_epsilon",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "format_table",
    "save_report",
    "series_text",
]
