"""Running registered algorithms on experiment cells.

One entry point, :func:`run_algorithm`, compiles an
:class:`~repro.experiments.config.ExperimentConfig` (plus the dataset's
free ``OPT_s`` lower bounds) into an
:class:`~repro.api.spec.EngineSpec` and hands it to
:func:`repro.solve`.  Any algorithm in the registry — the paper's four
or a user-registered variant — is runnable by name; an optional
:class:`~repro.api.session.AllocationSession` warms repeated cells
over the same dataset.
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import InstanceError
from repro.api.registry import BUILTIN_ALGORITHMS, get_algorithm
from repro.api.solve import solve
from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import Dataset

#: The paper's four Section-5 algorithms (figure/table runners iterate
#: these); the registry may hold more — run_algorithm accepts any entry.
ALGORITHMS = BUILTIN_ALGORITHMS


def _opt_lower(dataset: Dataset, instance: RMInstance, config: ExperimentConfig):
    if config.opt_lower_mode == "singleton":
        return dataset.opt_lower_bounds(instance.h)
    if config.opt_lower_mode == "kpt":
        return "kpt"
    raise InstanceError(f"unknown opt_lower_mode {config.opt_lower_mode!r}")


def run_algorithm(
    algorithm: str,
    dataset: Dataset,
    instance: RMInstance,
    config: ExperimentConfig,
    window: int | None = None,
    seed: int | None = None,
    session=None,
) -> AllocationResult:
    """Run one registered algorithm on *instance* with *config*'s estimators.

    *window* reaches only algorithms with a windowed candidate rule
    (TI-CSRM among the built-ins; :func:`repro.solve` clears it for the
    rest).  *session* optionally threads an
    :class:`~repro.api.session.AllocationSession` so repeated cells on
    one dataset reuse RR samples.
    """
    try:
        definition = get_algorithm(algorithm)
    except Exception:
        from repro.api.registry import algorithm_names

        raise InstanceError(
            f"unknown algorithm {algorithm!r}; options: {list(algorithm_names())}"
        ) from None
    spec = config.engine_spec(
        opt_lower=_opt_lower(dataset, instance, config), window=window, seed=seed
    )
    if session is not None:
        return session.solve(instance, definition, spec)
    return solve(instance, definition, spec)


def run_algorithms(
    dataset: Dataset,
    instance: RMInstance,
    config: ExperimentConfig,
    algorithms=ALGORITHMS,
    window: int | None = None,
) -> dict[str, AllocationResult]:
    """Run several algorithms on the same instance; returns name → result."""
    return {
        name: run_algorithm(name, dataset, instance, config, window=window)
        for name in algorithms
    }


def evaluate_allocation_mc(
    instance: RMInstance,
    result: AllocationResult,
    n_runs: int = 200,
    seed: int = 0,
) -> float:
    """Re-estimate a result's total revenue with independent Monte-Carlo.

    Useful to confirm rankings are not artifacts of the RR estimator that
    produced the allocations.
    """
    from repro.diffusion.montecarlo import estimate_spread

    rng = as_generator(seed)
    total = 0.0
    for i, seeds in enumerate(result.allocation.seed_sets()):
        if not seeds:
            continue
        spread = estimate_spread(
            instance.graph, instance.ad_probs[i], seeds, n_runs=n_runs, rng=rng
        )
        total += instance.cpe(i) * spread
    return total
