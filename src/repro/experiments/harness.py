"""Running the four Section-5 algorithms on experiment cells.

One entry point, :func:`run_algorithm`, maps an algorithm name to the
right engine configuration for a given dataset/instance pair, threading
through the config's estimator settings and the dataset's free
``OPT_s`` lower bounds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InstanceError
from repro.core.allocation import AllocationResult
from repro.core.baselines import pagerank_gr, pagerank_rr
from repro.core.instance import RMInstance
from repro.core.ticarm import ti_carm
from repro.core.ticsrm import ti_csrm
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import Dataset

ALGORITHMS = ("TI-CSRM", "TI-CARM", "PageRank-GR", "PageRank-RR")


def _opt_lower(dataset: Dataset, instance: RMInstance, config: ExperimentConfig):
    if config.opt_lower_mode == "singleton":
        return dataset.opt_lower_bounds(instance.h)
    if config.opt_lower_mode == "kpt":
        return "kpt"
    raise InstanceError(f"unknown opt_lower_mode {config.opt_lower_mode!r}")


def run_algorithm(
    algorithm: str,
    dataset: Dataset,
    instance: RMInstance,
    config: ExperimentConfig,
    window: int | None = None,
    seed: int | None = None,
) -> AllocationResult:
    """Run one named algorithm on *instance* with *config*'s estimators.

    *window* applies only to TI-CSRM (``None`` = full window ``w = n``).
    """
    opt_lower = _opt_lower(dataset, instance, config)
    seed = config.seed if seed is None else seed
    common = dict(
        eps=config.eps,
        ell=config.ell,
        theta_cap=config.theta_cap,
        opt_lower=opt_lower,
        kpt_max_samples=config.kpt_max_samples,
        sampler_backend=config.sampler_backend,
        workers=config.workers or None,
        seed=seed,
    )
    if algorithm == "TI-CSRM":
        return ti_csrm(instance, window=window, **common)
    if algorithm == "TI-CARM":
        return ti_carm(instance, **common)
    if algorithm == "PageRank-GR":
        return pagerank_gr(instance, **common)
    if algorithm == "PageRank-RR":
        return pagerank_rr(instance, **common)
    raise InstanceError(f"unknown algorithm {algorithm!r}; options: {ALGORITHMS}")


def run_algorithms(
    dataset: Dataset,
    instance: RMInstance,
    config: ExperimentConfig,
    algorithms=ALGORITHMS,
    window: int | None = None,
) -> dict[str, AllocationResult]:
    """Run several algorithms on the same instance; returns name → result."""
    return {
        name: run_algorithm(name, dataset, instance, config, window=window)
        for name in algorithms
    }


def evaluate_allocation_mc(
    instance: RMInstance,
    result: AllocationResult,
    n_runs: int = 200,
    seed: int = 0,
) -> float:
    """Re-estimate a result's total revenue with independent Monte-Carlo.

    Useful to confirm rankings are not artifacts of the RR estimator that
    produced the allocations.
    """
    from repro.diffusion.montecarlo import estimate_spread

    rng = np.random.default_rng(seed)
    total = 0.0
    for i, seeds in enumerate(result.allocation.seed_sets()):
        if not seeds:
            continue
        spread = estimate_spread(
            instance.graph, instance.ad_probs[i], seeds, n_runs=n_runs, rng=rng
        )
        total += instance.cpe(i) * spread
    return total
