"""Declarative scenario grids over the Section-5 experiment space.

A :class:`GridSpec` names the axes of a scenario matrix — datasets
(synthetic analogs *or* ingested edge lists), algorithms, advertiser
counts ``h``, budgets, CPEs, incentive models, α values and TI-CSRM
windows — and :func:`run_grid` runs the full cross product:

* **Deterministic per-cell seeds.**  Every cell derives its RNG seed from
  the spec's root seed and the cell's parameter digest via
  ``numpy.random.SeedSequence``, so a cell's result depends only on
  ``(spec, root seed)`` — never on execution order, resume history, or
  which other cells exist.

* **Resumable JSONL manifests.**  Each completed cell is appended to a
  manifest file as one JSON line; re-running the same spec skips
  completed cells and finishes the rest.  The manifest header pins the
  spec digest and the estimator config, so resuming against an edited
  spec or different config fails loudly instead of mixing results.

* **Backend threading.**  The spec's ``config`` block (or CLI
  ``--workers``) selects the serial / shared-memory-parallel RR sampling
  backend for every cell, exactly as in single runs.

Specs are plain JSON (see ``specs/`` at the repo root)::

    {
      "name": "smoke",
      "datasets": [{"name": "epinions_syn", "n": 150, "h": 3}],
      "algorithms": ["TI-CSRM", "TI-CARM"],
      "alphas": [0.5, 1.0],
      "config": {"eps": 1.0, "theta_cap": 200}
    }

Dataset entries with a ``"path"`` key are ingested edge lists routed
through :func:`repro.experiments.datasets.build_edge_list_dataset`; all
other keys in the entry are builder keyword arguments.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import MISSING, asdict, dataclass, field

import numpy as np

from repro.errors import SpecError
from repro.api.registry import algorithm_names
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import (
    Dataset,
    build_dataset,
    build_edge_list_dataset,
)
from repro.experiments.harness import run_algorithm
from repro.experiments.reporting import results_dir
from repro.incentives.models import INCENTIVE_MODELS

MANIFEST_VERSION = 1

#: Manifest/table columns every cell row carries (besides the axes).
CELL_RESULT_FIELDS = ("revenue", "seed_cost", "seeds", "runtime_s")


def _canonical(data) -> str:
    """Canonical JSON used for digests: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def dataset_label(entry: dict) -> str:
    """Human-readable name of a dataset entry (synthetic or edge-list)."""
    if "name" in entry:
        return str(entry["name"])
    if "path" in entry:
        return os.path.splitext(os.path.basename(str(entry["path"])))[0]
    raise SpecError(f"dataset entry needs a 'name' or 'path' key: {entry!r}")


@dataclass(frozen=True)
class GridCell:
    """One point of the scenario matrix (a single algorithm run)."""

    dataset: dict
    algorithm: str
    h: int | None
    budget: float | None
    cpe: float | None
    incentive_model: str
    alpha: float
    window: int | None

    def params(self) -> dict:
        """The cell's axis values as a flat JSON-able dict."""
        return {
            "dataset": dataset_label(self.dataset),
            "dataset_spec": dict(self.dataset),
            "algorithm": self.algorithm,
            "h": self.h,
            "budget": self.budget,
            "cpe": self.cpe,
            "incentives": self.incentive_model,
            "alpha": self.alpha,
            "window": self.window,
        }

    @property
    def cell_id(self) -> str:
        """Digest of the cell parameters — stable across spec reordering."""
        return hashlib.sha256(_canonical(self.params()).encode()).hexdigest()[:16]

    def seed(self, root_seed: int) -> int:
        """The cell's RNG seed, a pure function of (root seed, cell id)."""
        digest = int.from_bytes(
            hashlib.sha256(self.cell_id.encode()).digest()[:8], "big"
        )
        sequence = np.random.SeedSequence([int(root_seed), digest])
        return int(sequence.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class GridSpec:
    """A declarative scenario matrix (see the module docstring).

    ``None`` entries on the ``h`` / ``budgets`` / ``cpes`` / ``windows``
    axes mean "dataset default" (no override / full window).
    """

    name: str
    datasets: tuple
    algorithms: tuple = ("TI-CSRM",)
    h: tuple = (None,)
    budgets: tuple = (None,)
    cpes: tuple = (None,)
    incentive_models: tuple = ("linear",)
    alphas: tuple = (1.0,)
    windows: tuple = (None,)
    seed: int = 7
    config: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.datasets:
            raise SpecError("spec needs at least one dataset entry")
        for entry in self.datasets:
            dataset_label(entry)  # validates the entry shape
        for algorithm in self.algorithms:
            # Validated against the live registry, so user-registered
            # algorithms are first-class grid citizens.
            if algorithm not in algorithm_names():
                raise SpecError(
                    f"unknown algorithm {algorithm!r}; "
                    f"options: {list(algorithm_names())}"
                )
        for model in self.incentive_models:
            if model not in INCENTIVE_MODELS:
                raise SpecError(
                    f"unknown incentive model {model!r}; "
                    f"options: {sorted(INCENTIVE_MODELS)}"
                )
        unknown = set(self.config) - {f.name for f in _config_fields()}
        if unknown:
            raise SpecError(f"unknown config keys: {sorted(unknown)}")

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "GridSpec":
        """Build a spec from a plain dict (e.g. parsed JSON)."""
        known = {f.name for f in _spec_fields()}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown spec keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in data:
            raise SpecError("spec needs a 'name'")
        kwargs = dict(data)
        for key in ("datasets", "algorithms", "h", "budgets", "cpes",
                    "incentive_models", "alphas", "windows"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, path: str) -> "GridSpec":
        """Load a spec from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            raise SpecError(f"cannot read spec {path!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON in spec {path!r}: {exc}") from None
        if not isinstance(data, dict):
            raise SpecError(f"spec {path!r} must hold a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """The spec as a JSON-able dict (inverse of :meth:`from_dict`)."""
        data = asdict(self)
        for key, value in data.items():
            if isinstance(value, tuple):
                data[key] = list(value)
        data["datasets"] = [dict(entry) for entry in self.datasets]
        return data

    def spec_key(self) -> str:
        """Digest pinning the full spec (axes + root seed)."""
        return hashlib.sha256(_canonical(self.to_dict()).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # The matrix
    # ------------------------------------------------------------------
    def cells(self) -> list[GridCell]:
        """The cross product of all axes, in deterministic order."""
        out: list[GridCell] = []
        for entry in self.datasets:
            for algorithm in self.algorithms:
                for model in self.incentive_models:
                    for alpha in self.alphas:
                        for h in self.h:
                            for budget in self.budgets:
                                for cpe in self.cpes:
                                    for window in self.windows:
                                        out.append(
                                            GridCell(
                                                dataset=dict(entry),
                                                algorithm=algorithm,
                                                h=h,
                                                budget=budget,
                                                cpe=cpe,
                                                incentive_model=model,
                                                alpha=alpha,
                                                window=window,
                                            )
                                        )
        return out

    def experiment_config(self, **overrides) -> ExperimentConfig:
        """The estimator config for every cell (spec block + overrides)."""
        merged = {**self.config, **overrides}
        merged.setdefault("seed", self.seed)
        return ExperimentConfig(**merged)


def _spec_fields():
    import dataclasses

    return dataclasses.fields(GridSpec)


def _config_fields():
    import dataclasses

    return dataclasses.fields(ExperimentConfig)


def _configs_compatible(previous: dict | None, current: dict) -> bool:
    """Whether a manifest written under *previous* can resume under *current*.

    Keys present in both must match exactly.  Keys only in *current*
    (config fields added after the manifest was written) are compatible
    iff the current value equals the field's declared default — the old
    cells ran identical effective settings, so mixing is safe.  Keys
    only in *previous* (fields since removed) stay incomparable.
    """
    if not isinstance(previous, dict):
        return False
    defaults = {
        f.name: f.default for f in _config_fields() if f.default is not MISSING
    }
    for key in set(previous) | set(current):
        if key in previous and key in current:
            if previous[key] != current[key]:
                return False
        elif key in current:
            if key not in defaults or current[key] != defaults[key]:
                return False
        else:
            return False
    return True


# ----------------------------------------------------------------------
# Dataset memo (edge-list builds are expensive; synthetic builds are
# already cached by build_dataset)
# ----------------------------------------------------------------------
_DATASET_MEMO: dict[str, Dataset] = {}


def _cell_dataset(entry: dict) -> Dataset:
    key = _canonical(entry)
    if key not in _DATASET_MEMO:
        kwargs = dict(entry)
        if "path" in kwargs:
            _DATASET_MEMO[key] = build_edge_list_dataset(kwargs.pop("path"), **kwargs)
        else:
            _DATASET_MEMO[key] = build_dataset(kwargs.pop("name"), **kwargs)
    return _DATASET_MEMO[key]


def clear_grid_caches() -> None:
    """Drop the grid runner's dataset memo (tests use this for isolation)."""
    _DATASET_MEMO.clear()


# ----------------------------------------------------------------------
# Running cells and manifests
# ----------------------------------------------------------------------
def run_cell(spec: GridSpec, cell: GridCell, config: ExperimentConfig) -> dict:
    """Run one cell; returns its manifest row."""
    dataset = _cell_dataset(cell.dataset)
    instance = dataset.build_instance(
        incentive_model=cell.incentive_model,
        alpha=cell.alpha,
        h=cell.h,
        budget_override=cell.budget,
        cpe_override=cell.cpe,
    )
    seed = cell.seed(spec.seed)
    result = run_algorithm(
        cell.algorithm, dataset, instance, config, window=cell.window, seed=seed
    )
    row = {"kind": "cell", "cell_id": cell.cell_id, "cell_seed": seed}
    row.update(cell.params())
    row.update(
        revenue=result.total_revenue,
        seed_cost=result.total_seeding_cost,
        seeds=result.total_seeds,
        runtime_s=result.runtime_seconds,
        # Full provenance: the resolved EngineSpec the cell actually ran
        # with (theta_cap, opt_lower, seed policy, backend, ...).
        engine_spec=result.extras.get("engine_spec"),
    )
    return row


def default_manifest_path(spec: GridSpec) -> str:
    """Where :func:`run_grid` writes the manifest when not told otherwise."""
    return os.path.join(results_dir(), f"grid_{spec.name}.jsonl")


def _manifest_header(spec: GridSpec, config: ExperimentConfig) -> dict:
    return {
        "kind": "header",
        "manifest_version": MANIFEST_VERSION,
        "spec_name": spec.name,
        "spec_key": spec.spec_key(),
        "root_seed": spec.seed,
        "config": asdict(config),
        "total_cells": len(spec.cells()),
    }


def load_manifest(path: str) -> tuple[dict | None, list[dict]]:
    """Read a JSONL manifest into ``(header, cell_rows)``.

    Truncated trailing lines (a run killed mid-write) are dropped rather
    than failing, so interrupted manifests stay resumable.
    """
    header: dict | None = None
    rows: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("kind") == "header" and header is None:
                header = record
            elif record.get("kind") == "cell":
                rows.append(record)
    return header, rows


def run_grid(
    spec: GridSpec,
    manifest_path: str | None = None,
    *,
    resume: bool = True,
    config_overrides: dict | None = None,
    progress=None,
) -> list[dict]:
    """Run every cell of *spec*, resuming from *manifest_path* if present.

    Returns one row per cell (completed rows loaded from the manifest,
    fresh rows appended to it as they finish — the manifest is valid
    after every cell, so an interrupted run resumes where it stopped).
    *progress*, when given, is called with ``(done, total, row)`` after
    each cell.
    """
    manifest_path = manifest_path or default_manifest_path(spec)
    config = spec.experiment_config(**(config_overrides or {}))
    header = _manifest_header(spec, config)
    completed: dict[str, dict] = {}
    resuming = (
        resume
        and os.path.exists(manifest_path)
        and os.path.getsize(manifest_path) > 0
    )
    if resuming:
        previous, rows = load_manifest(manifest_path)
        if previous is None:
            # A manifest without a readable header cannot be checked
            # against the spec/config — resuming it could silently mix
            # incomparable cells, the exact failure the header prevents.
            raise SpecError(
                f"manifest {manifest_path!r} has no readable header; "
                "cannot verify it matches this spec — use a new manifest "
                "or pass resume=False"
            )
        if previous.get("spec_key") != header["spec_key"]:
            raise SpecError(
                f"manifest {manifest_path!r} was written for spec key "
                f"{previous.get('spec_key')!r} but the current spec hashes "
                f"to {header['spec_key']!r} — the spec changed; use a new "
                "manifest or pass resume=False"
            )
        if not _configs_compatible(previous.get("config"), header["config"]):
            raise SpecError(
                f"manifest {manifest_path!r} was run with a different "
                "estimator config; resuming would mix incomparable cells"
            )
        completed = {row["cell_id"]: row for row in rows}
    else:
        directory = os.path.dirname(manifest_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(manifest_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
    cells = spec.cells()
    out: list[dict] = []
    with open(manifest_path, "a", encoding="utf-8") as fh:
        for done, cell in enumerate(cells, start=1):
            row = completed.get(cell.cell_id)
            if row is None:
                row = run_cell(spec, cell, config)
                fh.write(json.dumps(row, sort_keys=True) + "\n")
                fh.flush()
            out.append(row)
            if progress is not None:
                progress(done, len(cells), row)
    return out


def grid_table_rows(rows: list[dict]) -> list[dict]:
    """Flatten manifest rows for :func:`repro.experiments.reporting.format_table`.

    Keeps the scalar axis columns plus the result fields; drops manifest
    bookkeeping (``kind``, digests, nested dataset specs).
    """
    columns = (
        "dataset", "algorithm", "incentives", "alpha",
        "h", "budget", "cpe", "window",
    ) + CELL_RESULT_FIELDS
    out = []
    for row in rows:
        out.append({
            col: ("-" if row.get(col) is None else row.get(col)) for col in columns
        })
    return out
