"""Declarative scenario grids over the Section-5 experiment space.

A :class:`GridSpec` names the axes of a scenario matrix — datasets
(synthetic analogs *or* ingested edge lists), algorithms, advertiser
counts ``h``, budgets, CPEs, incentive models, α values and TI-CSRM
windows — and :func:`run_grid` runs the full cross product:

* **Deterministic per-cell seeds.**  Every cell derives its RNG seed from
  the spec's root seed and the cell's parameter digest via
  ``numpy.random.SeedSequence``, so a cell's result depends only on
  ``(spec, root seed)`` — never on execution order, resume history, or
  which other cells exist.

* **Resumable JSONL manifests.**  Each completed cell is appended to a
  manifest file as one JSON line; re-running the same spec skips
  completed cells and finishes the rest.  The manifest header pins the
  spec digest and the estimator config, so resuming against an edited
  spec or different config fails loudly instead of mixing results.

* **Backend threading.**  The spec's ``config`` block (or CLI
  ``--workers``) selects the serial / shared-memory-parallel RR sampling
  backend for every cell, exactly as in single runs.

* **Execution modes (docs/ARCHITECTURE.md §10).**  The optional
  ``execution`` block selects how cells are driven:

  - ``{"mode": "cold"}`` (the default) solves every cell from scratch —
    results are a pure function of ``(spec, root seed)``, independent
    of execution order and resume history;
  - ``{"mode": "warm_per_dataset"}`` groups cells by dataset entry and
    drives each group through one
    :class:`~repro.api.session.AllocationSession`, so cells after the
    first adopt the group's already-drawn RR stores (the paper's
    evaluation shape — many solves over one graph — typically re-solves
    several times faster warm; see ``BENCH_grid.json``).  Reuse trades
    order-independence for speed: each cell's manifest row carries a
    ``session`` provenance block (group key, solve index, per-cell
    sampler-call / store-hit deltas), and the manifest header pins the
    execution mode so cold and warm rows can never silently mix.

* **Cell retry and quarantine (docs/ARCHITECTURE.md §11).**  The
  ``execution`` block's ``cell_timeout_s`` / ``max_retries`` /
  ``retry_backoff_s`` knobs bound each cell's wall clock and retry
  failing cells with exponential backoff; a cell that exhausts its
  attempts is *quarantined* — written to the manifest as a typed
  ``"cell_error"`` row — instead of aborting the grid, and resume
  re-attempts quarantined cells.  In warm mode a failing cell's
  session group is torn down (pool included) before the retry, so a
  poisoned :class:`~repro.api.session.AllocationSession` is never
  reused and never leaks.

Specs are plain JSON (see ``specs/`` at the repo root)::

    {
      "name": "smoke",
      "datasets": [{"name": "epinions_syn", "n": 150, "h": 3}],
      "algorithms": ["TI-CSRM", "TI-CARM"],
      "alphas": [0.5, 1.0],
      "execution": {"mode": "warm_per_dataset"},
      "config": {"eps": 1.0, "theta_cap": 200}
    }

Dataset entries with a ``"path"`` key are ingested edge lists routed
through :func:`repro.experiments.datasets.build_edge_list_dataset`; all
other keys in the entry are builder keyword arguments.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import MISSING, asdict, dataclass, field

import numpy as np

from repro import faults as _faults
from repro.errors import CellTimeoutError, FaultInjectedError, SpecError
from repro.api.registry import algorithm_names, get_algorithm
from repro.api.session import AllocationSession
from repro.core.instance import RMInstance
from repro.graph.updates import (
    UPDATE_OPS,
    compile_updates,
    random_update_schedule,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import (
    Dataset,
    build_dataset,
    build_edge_list_dataset,
)
from repro.experiments.harness import run_algorithm
from repro.experiments.reporting import results_dir
from repro.incentives.models import INCENTIVE_MODELS

MANIFEST_VERSION = 1

#: Manifest/table columns every cell row carries (besides the axes).
CELL_RESULT_FIELDS = ("revenue", "seed_cost", "seeds", "runtime_s")

#: How run_grid drives the cells of a spec (docs/ARCHITECTURE.md §10).
EXECUTION_MODES = ("cold", "warm_per_dataset")

#: Execution-block keys beyond ``mode``: the fault-tolerance knobs
#: (docs/ARCHITECTURE.md §11).  They change *how* cells are driven,
#: never which cells exist or what a successful cell computes, so —
#: like ``mode`` — they stay outside :meth:`GridSpec.spec_key`.
EXECUTION_FAULT_KEYS = ("cell_timeout_s", "max_retries", "retry_backoff_s")

#: Default exponential-backoff base between cell retry attempts.
DEFAULT_RETRY_BACKOFF_S = 0.25


def _canonical(data) -> str:
    """Canonical JSON used for digests: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def dataset_label(entry: dict) -> str:
    """Human-readable name of a dataset entry (synthetic or edge-list)."""
    if "name" in entry:
        return str(entry["name"])
    if "path" in entry:
        return os.path.splitext(os.path.basename(str(entry["path"])))[0]
    raise SpecError(f"dataset entry needs a 'name' or 'path' key: {entry!r}")


@dataclass(frozen=True)
class GridCell:
    """One point of the scenario matrix (a single algorithm run)."""

    dataset: dict
    algorithm: str
    h: int | None
    budget: float | None
    cpe: float | None
    incentive_model: str
    alpha: float
    window: int | None

    def params(self) -> dict:
        """The cell's axis values as a flat JSON-able dict."""
        return {
            "dataset": dataset_label(self.dataset),
            "dataset_spec": dict(self.dataset),
            "algorithm": self.algorithm,
            "h": self.h,
            "budget": self.budget,
            "cpe": self.cpe,
            "incentives": self.incentive_model,
            "alpha": self.alpha,
            "window": self.window,
        }

    @property
    def cell_id(self) -> str:
        """Digest of the cell parameters — stable across spec reordering."""
        return hashlib.sha256(_canonical(self.params()).encode()).hexdigest()[:16]

    def seed(self, root_seed: int) -> int:
        """The cell's RNG seed, a pure function of (root seed, cell id)."""
        digest = int.from_bytes(
            hashlib.sha256(self.cell_id.encode()).digest()[:8], "big"
        )
        sequence = np.random.SeedSequence([int(root_seed), digest])
        return int(sequence.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class GridSpec:
    """A declarative scenario matrix (see the module docstring).

    ``None`` entries on the ``h`` / ``budgets`` / ``cpes`` / ``windows``
    axes mean "dataset default" (no override / full window).  The
    ``execution`` block (``{"mode": "cold" | "warm_per_dataset"}``,
    default cold) selects how :func:`run_grid` drives the cells; it
    changes *how* results are computed, never *which* cells exist, so
    it does not enter :meth:`spec_key`.
    """

    name: str
    datasets: tuple
    algorithms: tuple = ("TI-CSRM",)
    h: tuple = (None,)
    budgets: tuple = (None,)
    cpes: tuple = (None,)
    incentive_models: tuple = ("linear",)
    alphas: tuple = (1.0,)
    windows: tuple = (None,)
    seed: int = 7
    config: dict = field(default_factory=dict)
    execution: dict = field(default_factory=dict)
    #: Streaming axis (docs/ARCHITECTURE.md §14): a non-empty block
    #: (``batches`` / ``edges_per_batch`` / ``ops`` / ``prob``) turns
    #: every cell dynamic — a deterministic edge-update schedule keyed
    #: off the per-cell seed mutates the graph before the measured
    #: solve.  Unlike ``execution`` it changes *what* cells compute, so
    #: a non-empty block enters :meth:`spec_key`.
    mutations: dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.execution, dict):
            raise SpecError(
                "execution must be an object like "
                '{"mode": "warm_per_dataset"}, got '
                f"{self.execution!r}"
            )
        unknown = set(self.execution) - {"mode", *EXECUTION_FAULT_KEYS}
        if unknown:
            raise SpecError(f"unknown execution keys: {sorted(unknown)}")
        mode = self.execution.get("mode", "cold")
        if mode not in EXECUTION_MODES:
            raise SpecError(
                f"unknown execution mode {mode!r}; options: {EXECUTION_MODES}"
            )
        normalized = {"mode": mode}
        timeout = self.execution.get("cell_timeout_s")
        if timeout is not None:
            if not isinstance(timeout, (int, float)) or timeout <= 0:
                raise SpecError(
                    f"cell_timeout_s must be a positive number, got {timeout!r}"
                )
            normalized["cell_timeout_s"] = float(timeout)
        retries = self.execution.get("max_retries")
        if retries is not None:
            if not isinstance(retries, int) or retries < 0:
                raise SpecError(
                    f"max_retries must be a non-negative integer, got {retries!r}"
                )
            normalized["max_retries"] = retries
        backoff = self.execution.get("retry_backoff_s")
        if backoff is not None:
            if not isinstance(backoff, (int, float)) or backoff < 0:
                raise SpecError(
                    f"retry_backoff_s must be a non-negative number, got {backoff!r}"
                )
            normalized["retry_backoff_s"] = float(backoff)
        object.__setattr__(self, "execution", normalized)
        if not self.datasets:
            raise SpecError("spec needs at least one dataset entry")
        for entry in self.datasets:
            dataset_label(entry)  # validates the entry shape
        for algorithm in self.algorithms:
            # Validated against the live registry, so user-registered
            # algorithms are first-class grid citizens.
            if algorithm not in algorithm_names():
                raise SpecError(
                    f"unknown algorithm {algorithm!r}; "
                    f"options: {list(algorithm_names())}"
                )
        for model in self.incentive_models:
            if model not in INCENTIVE_MODELS:
                raise SpecError(
                    f"unknown incentive model {model!r}; "
                    f"options: {sorted(INCENTIVE_MODELS)}"
                )
        unknown = set(self.config) - {f.name for f in _config_fields()}
        if unknown:
            raise SpecError(f"unknown config keys: {sorted(unknown)}")
        if not isinstance(self.mutations, dict):
            raise SpecError(
                'mutations must be an object like {"batches": 2, '
                f'"edges_per_batch": 10}}, got {self.mutations!r}'
            )
        if self.mutations:
            unknown = set(self.mutations) - {
                "batches", "edges_per_batch", "ops", "prob"
            }
            if unknown:
                raise SpecError(f"unknown mutations keys: {sorted(unknown)}")
            batches = self.mutations.get("batches", 1)
            edges = self.mutations.get("edges_per_batch", 1)
            for label, value in (("batches", batches), ("edges_per_batch", edges)):
                if not isinstance(value, int) or value < 1:
                    raise SpecError(
                        f"mutations.{label} must be a positive integer, "
                        f"got {value!r}"
                    )
            ops = tuple(self.mutations.get("ops", UPDATE_OPS))
            if not ops or any(op not in UPDATE_OPS for op in ops):
                raise SpecError(
                    f"mutations.ops must be a non-empty subset of "
                    f"{list(UPDATE_OPS)}, got {list(ops)}"
                )
            prob = self.mutations.get("prob", 0.1)
            if not isinstance(prob, (int, float)) or not 0.0 <= prob <= 1.0:
                raise SpecError(
                    f"mutations.prob must be a number in [0, 1], got {prob!r}"
                )
            object.__setattr__(
                self,
                "mutations",
                {
                    "batches": batches,
                    "edges_per_batch": edges,
                    "ops": list(ops),
                    "prob": float(prob),
                },
            )

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "GridSpec":
        """Build a spec from a plain dict (e.g. parsed JSON)."""
        known = {f.name for f in _spec_fields()}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown spec keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in data:
            raise SpecError("spec needs a 'name'")
        kwargs = dict(data)
        for key in ("datasets", "algorithms", "h", "budgets", "cpes",
                    "incentive_models", "alphas", "windows"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, path: str) -> "GridSpec":
        """Load a spec from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            raise SpecError(f"cannot read spec {path!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON in spec {path!r}: {exc}") from None
        if not isinstance(data, dict):
            raise SpecError(f"spec {path!r} must hold a JSON object")
        return cls.from_dict(data)

    @property
    def execution_mode(self) -> str:
        """The normalized execution mode (``"cold"`` when unspecified)."""
        return self.execution["mode"]

    @property
    def cell_timeout_s(self) -> float | None:
        """Per-cell wall-clock timeout; ``None`` means unbounded."""
        return self.execution.get("cell_timeout_s")

    @property
    def max_retries(self) -> int:
        """Retry attempts after a cell's first failure (0 = quarantine at once)."""
        return self.execution.get("max_retries", 0)

    @property
    def retry_backoff_s(self) -> float:
        """Base of the exponential backoff between cell retry attempts."""
        return self.execution.get("retry_backoff_s", DEFAULT_RETRY_BACKOFF_S)

    def to_dict(self) -> dict:
        """The spec as a JSON-able dict (inverse of :meth:`from_dict`).

        A default (cold) ``execution`` block is omitted, so the
        canonical form — and therefore :meth:`spec_key` — of every
        pre-execution-mode spec is byte-identical to what it always was.
        """
        data = asdict(self)
        for key, value in data.items():
            if isinstance(value, tuple):
                data[key] = list(value)
        data["datasets"] = [dict(entry) for entry in self.datasets]
        if data["execution"] == {"mode": "cold"}:
            del data["execution"]
        # An empty mutations block (the static default) is omitted the
        # same way, keeping pre-dynamic spec keys byte-identical; a
        # non-empty block stays — it changes every cell's result, so it
        # must enter spec_key().
        if not data["mutations"]:
            del data["mutations"]
        return data

    def spec_key(self) -> str:
        """Digest pinning the spec's *matrix* (axes + root seed).

        The ``execution`` block is excluded: warm and cold runs of one
        spec compute the same cells, so they share a key — the manifest
        header pins the execution mode separately (and resume rejects a
        mode mismatch with its own, clearer error).
        """
        data = self.to_dict()
        data.pop("execution", None)
        return hashlib.sha256(_canonical(data).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # The matrix
    # ------------------------------------------------------------------
    def cells(self) -> list[GridCell]:
        """The cross product of all axes, in deterministic order."""
        out: list[GridCell] = []
        for entry in self.datasets:
            for algorithm in self.algorithms:
                for model in self.incentive_models:
                    for alpha in self.alphas:
                        for h in self.h:
                            for budget in self.budgets:
                                for cpe in self.cpes:
                                    for window in self.windows:
                                        out.append(
                                            GridCell(
                                                dataset=dict(entry),
                                                algorithm=algorithm,
                                                h=h,
                                                budget=budget,
                                                cpe=cpe,
                                                incentive_model=model,
                                                alpha=alpha,
                                                window=window,
                                            )
                                        )
        return out

    def experiment_config(self, **overrides) -> ExperimentConfig:
        """The estimator config for every cell (spec block + overrides)."""
        merged = {**self.config, **overrides}
        merged.setdefault("seed", self.seed)
        return ExperimentConfig(**merged)


def _spec_fields():
    import dataclasses

    return dataclasses.fields(GridSpec)


def _config_fields():
    import dataclasses

    return dataclasses.fields(ExperimentConfig)


def _configs_compatible(previous: dict | None, current: dict) -> bool:
    """Whether a manifest written under *previous* can resume under *current*.

    Keys present in both must match exactly.  Keys only in *current*
    (config fields added after the manifest was written) are compatible
    iff the current value equals the field's declared default — the old
    cells ran identical effective settings, so mixing is safe.  Keys
    only in *previous* (fields since removed) stay incomparable.
    """
    if not isinstance(previous, dict):
        return False
    defaults = {
        f.name: f.default for f in _config_fields() if f.default is not MISSING
    }
    for key in sorted(set(previous) | set(current)):
        if key in previous and key in current:
            if previous[key] != current[key]:
                return False
        elif key in current:
            if key not in defaults or current[key] != defaults[key]:
                return False
        else:
            return False
    return True


# ----------------------------------------------------------------------
# Dataset memo (edge-list builds are expensive; synthetic builds are
# already cached by build_dataset)
# ----------------------------------------------------------------------
# Fallback memo for direct run_cell callers only.  run_grid passes its
# own per-invocation memo instead, so repeated grid runs cannot pile
# ingested edge-list datasets (graphs + spread arrays) up in module
# state for the life of the process.
_DATASET_MEMO: dict[str, Dataset] = {}


def _cell_dataset(entry: dict, memo: dict | None = None) -> Dataset:
    if memo is None:
        memo = _DATASET_MEMO
    key = _canonical(entry)
    if key not in memo:
        kwargs = dict(entry)
        if "path" in kwargs:
            memo[key] = build_edge_list_dataset(kwargs.pop("path"), **kwargs)
        else:
            memo[key] = build_dataset(kwargs.pop("name"), **kwargs)
    return memo[key]


def clear_grid_caches() -> None:
    """Drop the grid runner's dataset memo (tests use this for isolation)."""
    _DATASET_MEMO.clear()


# ----------------------------------------------------------------------
# Warm execution: session groups
# ----------------------------------------------------------------------
def session_group_key(cell: GridCell) -> str:
    """The warm-session group a cell belongs to, as a provenance string.

    Cells share an :class:`~repro.api.session.AllocationSession` iff
    they share a *dataset entry* — the entry (name/path plus every
    builder option, probability model included) fully determines the
    graph and the probability family, which is exactly the state a
    session keeps warm.  Budgets, CPEs, incentives, ``h``, α and the
    algorithm all vary freely within a group.  The key is
    human-readable (the dataset label) plus a digest of the full entry,
    so two entries with the same label but different builder options
    land in different groups.
    """
    digest = hashlib.sha256(_canonical(cell.dataset).encode()).hexdigest()[:8]
    return f"{dataset_label(cell.dataset)}@{digest}"


class WarmSessionGroups:
    """Lifecycle owner of one ``run_grid`` call's warm sessions.

    Sessions are opened lazily (a resumed run whose remaining cells
    touch one dataset opens one session, a fully resumed run opens
    none), keyed by :func:`session_group_key`, and every session is
    closed when the instance exits — including on a crashed cell, so an
    aborted warm run never orphans a
    :class:`~repro.rrset.backend.SharedGraphPool` or its shared-memory
    blocks.  ``run_grid`` additionally closes each group as soon as its
    last pending cell finishes, bounding peak memory to one dataset's
    stores at a time.

    The *dataset_memo* must be the same mapping the cells are built
    from: a session is bound to its graph by identity, so the session's
    graph and the cells' instances have to come from one
    :class:`Dataset` object.
    """

    def __init__(self, config: ExperimentConfig, dataset_memo: dict) -> None:
        self._config = config
        self._memo = dataset_memo
        self._sessions: dict[str, AllocationSession] = {}

    def session_for(self, cell: GridCell) -> AllocationSession:
        """The (lazily opened) session of *cell*'s group."""
        key = session_group_key(cell)
        session = self._sessions.get(key)
        if session is None:
            dataset = _cell_dataset(cell.dataset, self._memo)
            # The config pins backend/workers for the whole group (an
            # AllocationSession never lets per-solve specs flip them).
            session = AllocationSession(
                dataset.graph, spec=self._config.engine_spec(opt_lower="kpt")
            )
            self._sessions[key] = session
        return session

    def close_group(self, key: str) -> None:
        """Close and drop one group's session (no-op if never opened)."""
        session = self._sessions.pop(key, None)
        if session is not None:
            session.close()

    def close(self) -> None:
        """Close every remaining session (idempotent)."""
        for key in list(self._sessions):
            self.close_group(key)

    def __enter__(self) -> "WarmSessionGroups":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Running cells and manifests
# ----------------------------------------------------------------------
def run_cell(
    spec: GridSpec,
    cell: GridCell,
    config: ExperimentConfig,
    *,
    session: AllocationSession | None = None,
    dataset_memo: dict | None = None,
) -> dict:
    """Run one cell; returns its manifest row.

    *session*, when given, threads an
    :class:`~repro.api.session.AllocationSession` through the solve
    (warm execution; the caller owns the session's lifecycle and
    provenance recording).  *dataset_memo* scopes the dataset cache to
    the caller; ``None`` falls back to the module-level memo.
    """
    dataset = _cell_dataset(cell.dataset, dataset_memo)
    instance = dataset.build_instance(
        incentive_model=cell.incentive_model,
        alpha=cell.alpha,
        h=cell.h,
        budget_override=cell.budget,
        cpe_override=cell.cpe,
    )
    seed = cell.seed(spec.seed)
    result = run_algorithm(
        cell.algorithm,
        dataset,
        instance,
        config,
        window=cell.window,
        seed=seed,
        session=session,
    )
    row = {"kind": "cell", "cell_id": cell.cell_id, "cell_seed": seed}
    row.update(cell.params())
    row.update(
        revenue=result.total_revenue,
        seed_cost=result.total_seeding_cost,
        seeds=result.total_seeds,
        runtime_s=result.runtime_seconds,
        # Full provenance: the resolved EngineSpec the cell actually ran
        # with (theta_cap, opt_lower, seed policy, backend, ...).
        engine_spec=result.extras.get("engine_spec"),
        # Measured storage accounting (store_bytes / peak_store_bytes /
        # bytes_per_rr_set / spilled_stores / rr_bytes_budget).
        memory=result.extras.get("memory"),
    )
    return row


def _run_warm_cell(
    spec: GridSpec,
    cell: GridCell,
    config: ExperimentConfig,
    groups: WarmSessionGroups,
    memo: dict,
) -> dict:
    """Run one cell through its group session; row gains a ``session`` block.

    The block records the reuse this cell actually saw, as deltas of
    the session counters around the solve:

    * ``group`` — the cell's :func:`session_group_key`;
    * ``solve_index`` — 0-based position within the group's session
      (an uninterrupted run numbers the group's cells 0, 1, …);
    * ``warm_resolve`` — the session was already warm when this cell
      ran (``solve_index > 0``: it could adopt earlier cells' RR sets);
    * ``sample_batches`` / ``sets_sampled`` — sampler work *this* cell
      performed (0 sets for a fully store-served re-solve);
    * ``store_hits`` / ``store_misses`` — per distinct probability
      vector, whether this cell found an existing store or created one;
    * ``stored_sets`` — the group store total after this cell.
    """
    session = groups.session_for(cell)
    before = session.stats
    row = run_cell(spec, cell, config, session=session, dataset_memo=memo)
    after = session.stats
    row["session"] = {
        "group": session_group_key(cell),
        "solve_index": after["solves"] - 1,
        "warm_resolve": after["solves"] > 1,
        "sample_batches": after["sample_batches"] - before["sample_batches"],
        "sets_sampled": after["sets_sampled"] - before["sets_sampled"],
        "store_hits": after["store_hits"] - before["store_hits"],
        "store_misses": after["store_misses"] - before["store_misses"],
        "stored_sets": after["stored_sets"],
        # Memory accounting of the warm stores after this cell.
        "store_bytes": after["store_bytes"],
        "peak_store_bytes": after["peak_store_bytes"],
        "bytes_per_rr_set": after["bytes_per_rr_set"],
        "spilled_stores": after["spilled_stores"],
    }
    return row


def cell_update_schedule(spec: GridSpec, cell: GridCell, graph) -> list:
    """The cell's deterministic edge-update schedule (empty when static).

    A pure function of ``(spec.mutations, cell seed, graph)`` — batch
    ``k`` is generated against the graph as already evolved by batches
    ``0..k-1`` — so every run (and both execution modes, and the
    differential tests) replays the exact same mutation stream.
    """
    mut = spec.mutations
    if not mut:
        return []
    return random_update_schedule(
        graph,
        cell.seed(spec.seed),
        batches=mut["batches"],
        edges_per_batch=mut["edges_per_batch"],
        ops=tuple(mut["ops"]),
        prob=mut["prob"],
    )


def _run_dynamic_cell(
    spec: GridSpec,
    cell: GridCell,
    config: ExperimentConfig,
    *,
    memo: dict | None,
    warm: bool,
) -> dict:
    """Run one *dynamic* cell: mutate the graph, solve the final market.

    The measured solve runs on the graph after the cell's full
    :func:`cell_update_schedule`:

    * cold mode recompiles the schedule into a fresh graph and
      probability vectors and solves from scratch — the differential
      baseline;
    * warm mode opens a *private* session (never a shared group session
      — mutating one would poison every later cell of the group),
      primes its RR stores with a solve on the pre-mutation graph, then
      applies each batch through
      :meth:`~repro.api.session.AllocationSession.apply_edge_updates`
      so the measured solve reuses every surviving RR set.  The row's
      ``mutations`` block carries the per-batch invalidation reports
      and the session's cumulative ``invalidated_sets`` /
      ``invalidation_rate`` / ``resample_batches`` counters.

    Dynamic cells price ``OPT_s`` with KPT on the post-update graph:
    the dataset's precomputed singleton bounds describe the
    pre-mutation graph and could exceed true post-deletion spreads.
    """
    from repro.api.solve import solve

    dataset = _cell_dataset(cell.dataset, memo)
    instance = dataset.build_instance(
        incentive_model=cell.incentive_model,
        alpha=cell.alpha,
        h=cell.h,
        budget_override=cell.budget,
        cpe_override=cell.cpe,
    )
    seed = cell.seed(spec.seed)
    schedule = cell_update_schedule(spec, cell, dataset.graph)
    engine_spec = config.engine_spec(
        opt_lower="kpt", window=cell.window, seed=seed
    )
    definition = get_algorithm(cell.algorithm)
    graph = dataset.graph
    probs = [np.asarray(p, dtype=np.float64) for p in instance.ad_probs]
    reports: list[dict] = []
    session_block = None
    if warm:
        session = AllocationSession(graph, spec=config.engine_spec(opt_lower="kpt"))
        try:
            # Prime the warm stores on the pre-mutation graph, then
            # maintain them incrementally through every batch.
            session.solve(instance, definition, engine_spec)
            for batch in schedule:
                update_plan = compile_updates(graph, batch)
                reports.append(session.apply_edge_updates(batch))
                graph = session.graph
                probs = [update_plan.apply_probs(p) for p in probs]
            final = RMInstance(
                graph, instance.advertisers, probs, instance.incentives
            )
            start = time.perf_counter()
            result = session.solve(final, definition, engine_spec)
            runtime = time.perf_counter() - start
            stats = session.stats
            session_block = {
                key: stats[key]
                for key in (
                    "mutations",
                    "invalidated_sets",
                    "mutation_checked_sets",
                    "invalidation_rate",
                    "resample_batches",
                    "graph_epoch",
                    "sample_batches",
                    "sets_sampled",
                )
            }
        finally:
            session.close()
    else:
        for batch in schedule:
            update_plan = compile_updates(graph, batch)
            graph = update_plan.new_graph
            probs = [update_plan.apply_probs(p) for p in probs]
            reports.append({**update_plan.summary(), "mode": "cold"})
        final = RMInstance(
            graph, instance.advertisers, probs, instance.incentives
        )
        start = time.perf_counter()
        result = solve(final, definition, engine_spec)
        runtime = time.perf_counter() - start
    row = {"kind": "cell", "cell_id": cell.cell_id, "cell_seed": seed}
    row.update(cell.params())
    row.update(
        revenue=result.total_revenue,
        seed_cost=result.total_seeding_cost,
        seeds=result.total_seeds,
        runtime_s=runtime,
        engine_spec=result.extras.get("engine_spec"),
        memory=result.extras.get("memory"),
    )
    row["mutations"] = {
        **spec.mutations,
        "applied": reports,
        "warm_incremental": warm,
    }
    if session_block is not None:
        row["session"] = session_block
    return row


# ----------------------------------------------------------------------
# Fault tolerance: per-cell timeout, retries, quarantine rows
# ----------------------------------------------------------------------
@contextmanager
def _cell_deadline(seconds: float | None):
    """Bound a cell's wall-clock via ``SIGALRM``; raises CellTimeoutError.

    Preempting arbitrary Python needs a signal, so the deadline is only
    enforceable on the main thread of a POSIX process; elsewhere (or
    with *seconds* unset) the block runs unbounded — retry/quarantine
    still applies to ordinary exceptions either way.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(f"cell exceeded its {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _error_row(spec: GridSpec, cell: GridCell, exc: BaseException, attempts: int) -> dict:
    """The typed quarantine row a failed cell leaves in the manifest.

    Carries the full cell axes (so reports can still group it), the
    exception class and message, and the attempt count; ``quarantined``
    marks it for resume, which re-attempts quarantined cells instead of
    treating them as done.
    """
    row = {
        "kind": "cell_error",
        "cell_id": cell.cell_id,
        "cell_seed": cell.seed(spec.seed),
        "quarantined": True,
        "attempts": attempts,
        "error_type": type(exc).__name__,
        "error": str(exc)[:500],
    }
    row.update(cell.params())
    return row


def _run_cell_with_retries(
    spec: GridSpec,
    cell: GridCell,
    config: ExperimentConfig,
    *,
    warm: bool,
    groups: "WarmSessionGroups",
    memo: dict,
    cell_timeout: float | None,
    max_retries: int,
    retry_backoff: float,
    sleep=time.sleep,
) -> dict:
    """Run one cell under the fault-tolerance contract.

    Each attempt runs under the per-cell deadline; a failing attempt in
    warm mode first tears down the cell's session group (closing its
    :class:`~repro.api.session.AllocationSession` and worker pool — a
    poisoned session is never reused and never orphans its pool), then
    backs off exponentially and retries.  After ``1 + max_retries``
    failed attempts the cell is quarantined: a typed error row is
    returned (and written to the manifest) instead of aborting the
    grid.  The ``cell.raise`` / ``cell.delay`` seams of
    :mod:`repro.faults` fire here, keyed by ``cell_id``, so chaos tests
    can fail exactly one chosen cell.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            with _cell_deadline(cell_timeout):
                plan = _faults.active_fault_plan()
                if plan is not None:
                    rule = plan.fire("cell.delay", key=cell.cell_id)
                    if rule is not None and rule.delay_s:
                        time.sleep(rule.delay_s)
                    plan.maybe_raise("cell.raise", key=cell.cell_id)
                if spec.mutations:
                    # Dynamic cells never touch a shared group session
                    # (mutating it would poison the group's later
                    # cells); warm mode means "maintain a private
                    # session incrementally" instead.
                    row = _run_dynamic_cell(
                        spec, cell, config, memo=memo, warm=warm
                    )
                elif warm:
                    row = _run_warm_cell(spec, cell, config, groups, memo)
                else:
                    row = run_cell(spec, cell, config, dataset_memo=memo)
        except Exception as exc:
            if warm:
                # The group's session state is unknown after a failure
                # (a timeout can interrupt a solve anywhere): tear it
                # down now; the next attempt — or the group's next cell
                # — reopens a fresh session lazily.
                groups.close_group(session_group_key(cell))
            if attempts > max_retries:
                return _error_row(spec, cell, exc, attempts)
            if retry_backoff:
                sleep(retry_backoff * (2 ** (attempts - 1)))
            continue
        if attempts > 1:
            row["attempts"] = attempts
        return row


def default_manifest_path(spec: GridSpec) -> str:
    """Where :func:`run_grid` writes the manifest when not told otherwise."""
    return os.path.join(results_dir(), f"grid_{spec.name}.jsonl")


def _manifest_header(spec: GridSpec, config: ExperimentConfig, mode: str) -> dict:
    header = {
        "kind": "header",
        "manifest_version": MANIFEST_VERSION,
        "spec_name": spec.name,
        "spec_key": spec.spec_key(),
        "root_seed": spec.seed,
        "config": asdict(config),
        "total_cells": len(spec.cells()),
    }
    # Cold headers stay byte-identical to pre-execution-mode manifests
    # (which were all cold), so they remain mutually resumable.
    if mode != "cold":
        header["execution_mode"] = mode
    return header


def load_manifest(path: str) -> tuple[dict | None, list[dict]]:
    """Read a JSONL manifest into ``(header, cell_rows)``.

    *cell_rows* holds both completed ``"cell"`` rows and quarantined
    ``"cell_error"`` rows (distinguish on ``row["kind"]``); a cell that
    was quarantined and later succeeded on resume appears once per
    attempt's final outcome, latest last.  Truncated trailing lines (a
    run killed mid-write) are dropped rather than failing, so
    interrupted manifests stay resumable.
    """
    header: dict | None = None
    rows: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("kind") == "header" and header is None:
                header = record
            elif record.get("kind") in ("cell", "cell_error"):
                rows.append(record)
    return header, rows


def run_grid(
    spec: GridSpec,
    manifest_path: str | None = None,
    *,
    resume: bool = True,
    config_overrides: dict | None = None,
    progress=None,
    execution: str | None = None,
    cell_timeout: float | None = None,
    max_retries: int | None = None,
    retry_backoff: float | None = None,
    sleep=time.sleep,
) -> list[dict]:
    """Run every cell of *spec*, resuming from *manifest_path* if present.

    Returns one row per cell, in :meth:`GridSpec.cells` order
    (completed rows loaded from the manifest, fresh rows appended to it
    as they finish — the manifest is valid after every cell, so an
    interrupted run resumes where it stopped).  *progress*, when given,
    is called with ``(done, total, row)`` after each cell, in
    *execution* order.

    **Fault tolerance (docs/ARCHITECTURE.md §11).**  Each cell runs
    under *cell_timeout* seconds of wall clock (``None`` = unbounded)
    and up to *max_retries* retries with exponential backoff (base
    *retry_backoff* seconds, doubling per attempt); the three knobs
    default to the spec's ``execution`` block (``cell_timeout_s`` /
    ``max_retries`` / ``retry_backoff_s``).  A cell that still fails is
    *quarantined*: a typed ``"cell_error"`` row — attempt count,
    exception class, truncated message, plus the full cell axes — is
    appended to the manifest and returned in the cell's slot, and the
    grid keeps going.  Resume treats only ``"cell"`` rows as done, so
    re-running the same manifest re-attempts every quarantined cell;
    their error rows stay in the file as history (readers take the
    latest row per ``cell_id``).  *sleep* is injectable for tests.

    *execution* overrides the spec's ``execution`` block (CLI
    ``--execution``).  In ``warm_per_dataset`` mode cells are executed
    group-contiguously (groups ordered by first appearance, cells in
    spec order within a group), each group solving through one
    :class:`~repro.api.session.AllocationSession` whose lifecycle is
    owned by this call — sessions close when their group finishes, and
    unconditionally on any error.  The manifest header pins the mode;
    resuming a manifest under a different mode raises
    :class:`~repro.errors.SpecError`.  Warm runs are deterministic for
    a fixed ``(spec, root seed)`` but — unlike cold runs — a *resumed*
    warm run re-opens sessions, so cells completed after an
    interruption may differ from an uninterrupted run's (statistically
    equivalent either way; the per-row ``session`` block records what
    each cell actually reused).
    """
    manifest_path = manifest_path or default_manifest_path(spec)
    mode = spec.execution_mode if execution is None else str(execution)
    if mode not in EXECUTION_MODES:
        raise SpecError(
            f"unknown execution mode {mode!r}; options: {EXECUTION_MODES}"
        )
    if cell_timeout is None:
        cell_timeout = spec.cell_timeout_s
    if max_retries is None:
        max_retries = spec.max_retries
    if retry_backoff is None:
        retry_backoff = spec.retry_backoff_s
    config = spec.experiment_config(**(config_overrides or {}))
    header = _manifest_header(spec, config, mode)
    completed: dict[str, dict] = {}
    quarantined: dict[str, dict] = {}
    resuming = (
        resume
        and os.path.exists(manifest_path)
        and os.path.getsize(manifest_path) > 0
    )
    if resuming:
        previous, rows = load_manifest(manifest_path)
        if previous is None:
            # A manifest without a readable header cannot be checked
            # against the spec/config — resuming it could silently mix
            # incomparable cells, the exact failure the header prevents.
            raise SpecError(
                f"manifest {manifest_path!r} has no readable header; "
                "cannot verify it matches this spec — use a new manifest "
                "or pass resume=False"
            )
        if previous.get("spec_key") != header["spec_key"]:
            raise SpecError(
                f"manifest {manifest_path!r} was written for spec key "
                f"{previous.get('spec_key')!r} but the current spec hashes "
                f"to {header['spec_key']!r} — the spec changed; use a new "
                "manifest or pass resume=False"
            )
        previous_mode = previous.get("execution_mode", "cold")
        if previous_mode != mode:
            raise SpecError(
                f"manifest {manifest_path!r} was written under execution "
                f"mode {previous_mode!r} but this run uses {mode!r} — warm "
                "session reuse draws different (equally valid) RR samples "
                "than cold solves, so mixing modes would mix incomparable "
                "cells; use a new manifest or pass resume=False"
            )
        if not _configs_compatible(previous.get("config"), header["config"]):
            raise SpecError(
                f"manifest {manifest_path!r} was run with a different "
                "estimator config; resuming would mix incomparable cells"
            )
        # Only successful rows count as done; a cell whose latest row
        # is a quarantine error is re-attempted by this run.
        latest = {row["cell_id"]: row for row in rows}
        completed = {
            cid: row for cid, row in latest.items() if row.get("kind") == "cell"
        }
        quarantined = {
            cid: row for cid, row in latest.items() if cid not in completed
        }
    else:
        directory = os.path.dirname(manifest_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(manifest_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
    cells = spec.cells()
    warm = mode == "warm_per_dataset"
    order = list(range(len(cells)))
    keys: list[str] = []
    if warm:
        # Group-contiguous execution: one session opens, serves all of
        # its group's pending cells, and closes before the next group.
        keys = [session_group_key(cell) for cell in cells]
        first_seen: dict[str, int] = {}
        for index, key in enumerate(keys):
            first_seen.setdefault(key, index)
        order.sort(key=lambda index: (first_seen[keys[index]], index))
    memo: dict[str, Dataset] = {}
    rows_by_id: dict[str, dict] = {**quarantined, **completed}
    with open(manifest_path, "a", encoding="utf-8") as fh, WarmSessionGroups(
        config, memo
    ) as groups:
        for done, index in enumerate(order, start=1):
            cell = cells[index]
            row = completed.get(cell.cell_id)
            if row is None:
                row = _run_cell_with_retries(
                    spec,
                    cell,
                    config,
                    warm=warm,
                    groups=groups,
                    memo=memo,
                    cell_timeout=cell_timeout,
                    max_retries=max_retries,
                    retry_backoff=retry_backoff,
                    sleep=sleep,
                )
                fh.write(json.dumps(row, sort_keys=True) + "\n")
                fh.flush()
                rows_by_id[cell.cell_id] = row
            if warm and (
                done == len(order) or keys[order[done]] != keys[index]
            ):
                groups.close_group(keys[index])
            if progress is not None:
                progress(done, len(cells), row)
    return [rows_by_id[cell.cell_id] for cell in cells]


def grid_table_rows(rows: list[dict]) -> list[dict]:
    """Flatten manifest rows for :func:`repro.experiments.reporting.format_table`.

    Keeps the scalar axis columns plus the result fields; drops manifest
    bookkeeping (``kind``, digests, nested dataset specs).
    """
    columns = (
        "dataset", "algorithm", "incentives", "alpha",
        "h", "budget", "cpe", "window",
    ) + CELL_RESULT_FIELDS
    out = []
    for row in rows:
        out.append({
            col: ("-" if row.get(col) is None else row.get(col)) for col in columns
        })
    return out
