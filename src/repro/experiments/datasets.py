"""Datasets: synthetic analogs of the paper's four graphs, plus real
edge-list ingestion.

Real FLIXSTER/EPINIONS/DBLP/LIVEJOURNAL crawls are unavailable offline,
so each builder synthesizes a scaled-down graph from the same structural
family and attaches the same probability model the paper used on the
original (DESIGN.md §4 discusses why this preserves the comparisons).
When a real SNAP-format crawl *is* available, :func:`build_edge_list_dataset`
ingests it through :mod:`repro.graph.io` and attaches one of the same
probability models by name (``wc`` / ``tic`` / ``trivalency``), and
:func:`register_edge_list_dataset` makes it a first-class named dataset
next to the analogs:

==================  ===========================  =======================
analog              generator                    probabilities
==================  ===========================  =======================
flixster_syn        power-law configuration      learned-style TIC, L=10
epinions_syn        power-law configuration      Weighted Cascade, L=1
dblp_syn            preferential attachment,     Weighted Cascade
                    bidirected (undirected)
livejournal_syn     R-MAT / Kronecker            Weighted Cascade
==================  ===========================  =======================

Budgets and CPEs follow Table 2's regime rescaled to the analog's spread
magnitudes: CPEs in {1, 1.5, 2} for the quality datasets, 1 for the
scalability datasets; budgets drawn so every ad seats tens of seeds and
the total seed count stays well below ``n``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro._rng import as_generator
from repro.errors import InstanceError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    kronecker_like,
    powerlaw_configuration,
    preferential_attachment,
)
from repro.diffusion.montecarlo import degree_proxy_spreads, estimate_singleton_spreads_rr
from repro.incentives.models import compute_incentives
from repro.topics.distribution import TopicDistribution, pure_competition_ads, single_topic
from repro.topics.edge_probs import random_tic_model, trivalency, weighted_cascade_capped
from repro.core.ads import Advertiser
from repro.core.instance import RMInstance


@dataclass
class Dataset:
    """A built analog: graph, per-ad probabilities, prices and spreads."""

    name: str
    graph: DiGraph
    graph_type: str
    gammas: list[TopicDistribution]
    ad_probs: list[np.ndarray]
    cpes: list[float]
    budgets: list[float]
    # singleton_spreads[i][u] ≈ σ_i({u}); shared arrays for ads with
    # identical probability vectors.
    singleton_spreads: list[np.ndarray]
    spread_source: str
    meta: dict = field(default_factory=dict)

    @property
    def h(self) -> int:
        """Number of advertisers in the marketplace."""
        return len(self.cpes)

    def build_instance(
        self,
        incentive_model: str = "linear",
        alpha: float = 0.2,
        h: int | None = None,
        budget_override: float | None = None,
        cpe_override: float | None = None,
    ) -> RMInstance:
        """Materialize an :class:`RMInstance` for one experimental cell.

        *h* truncates/extends the marketplace by cycling the built ads
        (the Fig. 5 sweep varies ``h`` with everything else fixed);
        *budget_override* pins every budget (the Fig. 5 budget sweep);
        *cpe_override* pins every cost-per-engagement (the grid runner's
        CPE axis).
        """
        h = self.h if h is None else int(h)
        if h < 1:
            raise InstanceError(f"h must be >= 1, got {h}")
        advertisers: list[Advertiser] = []
        probs: list[np.ndarray] = []
        incentives: list[np.ndarray] = []
        for i in range(h):
            src = i % self.h
            budget = budget_override if budget_override is not None else self.budgets[src]
            cpe = cpe_override if cpe_override is not None else self.cpes[src]
            advertisers.append(
                Advertiser(index=i, cpe=float(cpe), budget=float(budget))
            )
            probs.append(self.ad_probs[src])
            incentives.append(
                compute_incentives(self.singleton_spreads[src], incentive_model, alpha)
            )
        return RMInstance(self.graph, advertisers, probs, incentives)

    def max_singleton_spread(self, i: int) -> float:
        """``max_u σ_i({u})`` — a free lower bound for ``OPT_s`` (s ≥ 1)."""
        return float(self.singleton_spreads[i % self.h].max())

    def opt_lower_bounds(self, h: int | None = None) -> list[float]:
        """Per-ad OPT lower bounds for the TI engines."""
        h = self.h if h is None else int(h)
        return [self.max_singleton_spread(i) for i in range(h)]


def _payment_scaled_budgets(
    spreads: list[np.ndarray],
    cpes: list[float],
    rng: np.random.Generator,
    lo: float,
    hi: float,
) -> list[float]:
    """Budgets a few multiples of the top singleton payment:
    ``B_i = cpe_i · max_u σ_i({u}) · U[lo, hi]``.

    This reproduces the paper's *relative* regime — budgets comfortably
    exceed any single seed's payment (no advertiser is priced out of its
    best influencer, the non-degeneracy assumption of Section 2) yet bind
    after tens of seeds, well before the seed pool is exhausted (the
    Table 2 regime: "total seeds required for all ads to meet their
    budgets is less than n").  The U[lo, hi] multiplier reproduces
    Table 2's ~2–3× budget spread across advertisers.
    """
    return [
        round(cpe * float(spread.max()) * rng.uniform(lo, hi), 1)
        for spread, cpe in zip(spreads, cpes)
    ]


def build_flixster_syn(
    n: int = 2_000,
    h: int = 10,
    n_topics: int = 10,
    seed: int = 101,
    singleton_rr_samples: int = 8_000,
) -> Dataset:
    """FLIXSTER analog: heavy-tailed digraph + learned-style TIC (L=10).

    Ads come in pure-competition pairs (h=10 from 5 distributions, each
    0.91 on one topic and 0.01 on the rest) exactly as in Section 5.
    """
    rng = as_generator(seed)
    graph = powerlaw_configuration(n, mean_degree=8.0, exponent=2.1, seed=rng)
    tic = random_tic_model(
        graph, n_topics, seed=rng, levels=(0.5, 0.2, 0.05), affinity_concentration=0.15
    )
    gammas = pure_competition_ads(h, n_topics, seed=rng)
    unique: dict[TopicDistribution, tuple[np.ndarray, np.ndarray]] = {}
    ad_probs: list[np.ndarray] = []
    spreads: list[np.ndarray] = []
    for gamma in gammas:
        if gamma not in unique:
            probs = tic.ad_probabilities(gamma)
            spread = estimate_singleton_spreads_rr(
                graph, probs, n_samples=singleton_rr_samples, rng=rng
            )
            unique[gamma] = (probs, spread)
        probs, spread = unique[gamma]
        ad_probs.append(probs)
        spreads.append(spread)
    cpes = [float(rng.choice([1.0, 1.5, 2.0])) for _ in range(h)]
    budgets = _payment_scaled_budgets(spreads, cpes, rng, lo=3.0, hi=8.0)
    return Dataset(
        name="flixster_syn",
        graph=graph,
        graph_type="directed",
        gammas=gammas,
        ad_probs=ad_probs,
        cpes=cpes,
        budgets=budgets,
        singleton_spreads=spreads,
        spread_source=f"rr({singleton_rr_samples})",
        meta={"n_topics": n_topics, "paper_counterpart": "FLIXSTER 30K/425K"},
    )


def build_epinions_syn(
    n: int = 3_000,
    h: int = 10,
    seed: int = 202,
    singleton_rr_samples: int = 8_000,
) -> Dataset:
    """EPINIONS analog: trust-graph shape + Weighted Cascade (L=1).

    All ads share the WC probabilities, i.e. full pure competition.
    """
    rng = as_generator(seed)
    graph = powerlaw_configuration(n, mean_degree=6.7, exponent=2.2, seed=rng)
    probs = weighted_cascade_capped(graph, cap=0.2)
    spread = estimate_singleton_spreads_rr(
        graph, probs, n_samples=singleton_rr_samples, rng=rng
    )
    gammas = [single_topic(1, 0) for _ in range(h)]
    cpes = [float(rng.choice([1.0, 1.5, 2.0])) for _ in range(h)]
    spreads = [spread] * h
    budgets = _payment_scaled_budgets(spreads, cpes, rng, lo=3.0, hi=8.0)
    return Dataset(
        name="epinions_syn",
        graph=graph,
        graph_type="directed",
        gammas=gammas,
        ad_probs=[probs] * h,
        cpes=cpes,
        budgets=budgets,
        singleton_spreads=spreads,
        spread_source=f"rr({singleton_rr_samples})",
        meta={"paper_counterpart": "EPINIONS 76K/509K"},
    )


def build_dblp_syn(n: int = 6_000, h: int = 20, seed: int = 303) -> Dataset:
    """DBLP analog: bidirected preferential attachment + WC; degree-proxy
    spreads (the paper's choice for the scalability datasets)."""
    rng = as_generator(seed)
    graph = preferential_attachment(n, m_per_node=3, seed=rng).to_bidirected()
    probs = weighted_cascade_capped(graph, cap=0.3)
    spread = degree_proxy_spreads(graph)
    gammas = [single_topic(1, 0) for _ in range(h)]
    cpes = [1.0] * h
    spreads = [spread] * h
    budgets = _payment_scaled_budgets(spreads, cpes, rng, lo=2.5, hi=6.0)
    return Dataset(
        name="dblp_syn",
        graph=graph,
        graph_type="undirected",
        gammas=gammas,
        ad_probs=[probs] * h,
        cpes=cpes,
        budgets=budgets,
        singleton_spreads=spreads,
        spread_source="out-degree proxy",
        meta={"paper_counterpart": "DBLP 317K/1.05M"},
    )


def build_livejournal_syn(scale: int = 13, h: int = 20, seed: int = 404) -> Dataset:
    """LIVEJOURNAL analog: R-MAT digraph + WC; degree-proxy spreads."""
    rng = as_generator(seed)
    graph = kronecker_like(scale, edge_factor=7, seed=rng)
    probs = weighted_cascade_capped(graph, cap=0.3)
    spread = degree_proxy_spreads(graph)
    gammas = [single_topic(1, 0) for _ in range(h)]
    cpes = [1.0] * h
    spreads = [spread] * h
    budgets = _payment_scaled_budgets(spreads, cpes, rng, lo=2.5, hi=6.0)
    return Dataset(
        name="livejournal_syn",
        graph=graph,
        graph_type="directed",
        gammas=gammas,
        ad_probs=[probs] * h,
        cpes=cpes,
        budgets=budgets,
        singleton_spreads=spreads,
        spread_source="out-degree proxy",
        meta={"paper_counterpart": "LIVEJOURNAL 4.8M/69M"},
    )


def build_edge_list_dataset(
    path: str,
    *,
    name: str | None = None,
    prob_model: str = "wc",
    h: int = 10,
    seed: int = 707,
    wc_cap: float = 0.3,
    n_topics: int = 10,
    trivalency_levels: tuple[float, ...] = (0.1, 0.01, 0.001),
    cpe_choices: tuple[float, ...] = (1.0,),
    spread_mode: str = "degree",
    singleton_rr_samples: int = 4_000,
    budget_lo: float = 2.5,
    budget_hi: float = 6.0,
    bidirect: bool = False,
    cache: bool | str = False,
    n: int | None = None,
    remap_ids: bool = True,
    drop_self_loops: bool = True,
    dedupe: bool = True,
) -> Dataset:
    """Build a :class:`Dataset` from a real (SNAP-style) edge-list file.

    This is the ingestion path for the paper's actual crawls: the file is
    streamed through :func:`repro.graph.io.ingest_edge_list` (non-contiguous
    ids remapped, self-loops dropped, duplicates collapsed; ``cache=True``
    adds an ``.npz`` parse cache next to the file), then one of the
    paper's probability models is attached by name:

    * ``"wc"`` — Weighted Cascade capped at *wc_cap* (EPINIONS/DBLP/
      LIVEJOURNAL treatment; all ads in pure competition);
    * ``"tic"`` — a synthesized TIC tensor with *n_topics* topics and
      pure-competition topic distributions (FLIXSTER treatment);
    * ``"trivalency"`` — uniform draws from *trivalency_levels*.

    *spread_mode* prices singleton spreads by ``"degree"`` proxy (cheap,
    the paper's choice for scalability datasets) or ``"rr"`` estimation;
    *bidirect* mirrors every arc first (the paper's DBLP treatment).
    Budgets follow the same payment-scaled regime as the synthetic
    analogs.
    """
    from repro.graph.io import ingest_cached, ingest_edge_list

    if prob_model not in PROB_MODELS:
        raise InstanceError(
            f"unknown prob_model {prob_model!r}; options: {sorted(PROB_MODELS)}"
        )
    if spread_mode not in ("degree", "rr"):
        raise InstanceError(
            f"unknown spread_mode {spread_mode!r}; options: ['degree', 'rr']"
        )
    rng = as_generator(seed)
    ingest_kwargs = dict(
        n=n, remap_ids=remap_ids, drop_self_loops=drop_self_loops, dedupe=dedupe
    )
    if cache:
        cache_path = cache if isinstance(cache, str) else None
        result = ingest_cached(path, cache_path, **ingest_kwargs)
    else:
        result = ingest_edge_list(path, **ingest_kwargs)
    graph = result.graph
    graph_type = "directed"
    if bidirect:
        graph = graph.to_bidirected()
        graph_type = "undirected"

    def _spread(probs: np.ndarray) -> np.ndarray:
        if spread_mode == "rr":
            return estimate_singleton_spreads_rr(
                graph, probs, n_samples=singleton_rr_samples, rng=rng
            )
        return degree_proxy_spreads(graph)

    if prob_model == "tic":
        tic = random_tic_model(graph, n_topics, seed=rng)
        gammas = pure_competition_ads(h, n_topics, seed=rng)
        unique: dict[TopicDistribution, tuple[np.ndarray, np.ndarray]] = {}
        ad_probs, spreads = [], []
        for gamma in gammas:
            if gamma not in unique:
                probs = tic.ad_probabilities(gamma)
                unique[gamma] = (probs, _spread(probs))
            probs, spread = unique[gamma]
            ad_probs.append(probs)
            spreads.append(spread)
    else:
        if prob_model == "wc":
            probs = weighted_cascade_capped(graph, cap=wc_cap)
        else:  # trivalency
            probs = trivalency(graph, seed=rng, levels=trivalency_levels)
        spread = _spread(probs)
        gammas = [single_topic(1, 0) for _ in range(h)]
        ad_probs = [probs] * h
        spreads = [spread] * h
    cpes = [float(rng.choice(list(cpe_choices))) for _ in range(h)]
    budgets = _payment_scaled_budgets(spreads, cpes, rng, lo=budget_lo, hi=budget_hi)
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    return Dataset(
        name=name,
        graph=graph,
        graph_type=graph_type,
        gammas=gammas,
        ad_probs=ad_probs,
        cpes=cpes,
        budgets=budgets,
        singleton_spreads=spreads,
        spread_source=(
            f"rr({singleton_rr_samples})" if spread_mode == "rr" else "out-degree proxy"
        ),
        meta={
            "source": path,
            "prob_model": prob_model,
            "raw_edges": result.raw_edges,
            "self_loops_dropped": result.self_loops_dropped,
            "duplicates_dropped": result.duplicates_dropped,
            "remapped": result.original_ids is not None,
        },
    )


#: Probability models attachable to ingested edge lists, by name.
PROB_MODELS = ("wc", "tic", "trivalency")

DATASET_BUILDERS: dict[str, Callable[..., Dataset]] = {
    "flixster_syn": build_flixster_syn,
    "epinions_syn": build_epinions_syn,
    "dblp_syn": build_dblp_syn,
    "livejournal_syn": build_livejournal_syn,
}

#: The always-available synthetic analogs (never unregisterable).
_BUILTIN_DATASETS = frozenset(DATASET_BUILDERS)


def register_edge_list_dataset(name: str, path: str, **defaults) -> None:
    """Register an ingested edge-list file as a first-class named dataset.

    Afterwards ``build_dataset(name, ...)`` (and therefore the CLI and the
    grid runner) builds it exactly like a synthetic analog; call-site
    keyword arguments override *defaults*.  Re-registering an existing
    name replaces it, except the built-in synthetic analogs, which are
    protected.
    """
    if name in _BUILTIN_DATASETS:
        raise InstanceError(f"cannot shadow built-in dataset {name!r}")

    def _builder(**kwargs) -> Dataset:
        merged = {**defaults, **kwargs}
        merged.setdefault("name", name)
        return build_edge_list_dataset(path, **merged)

    DATASET_BUILDERS[name] = _builder


def unregister_dataset(name: str) -> None:
    """Remove a registered edge-list dataset (built-ins are protected)."""
    if name in _BUILTIN_DATASETS:
        raise InstanceError(f"cannot unregister built-in dataset {name!r}")
    DATASET_BUILDERS.pop(name, None)
    for key in [k for k in _CACHE if k[0] == name]:
        del _CACHE[key]


_CACHE: dict[tuple, Dataset] = {}


def build_dataset(name: str, **kwargs) -> Dataset:
    """Build (or fetch from the in-process cache) a named analog dataset."""
    if name not in DATASET_BUILDERS:
        raise InstanceError(
            f"unknown dataset {name!r}; options: {sorted(DATASET_BUILDERS)}"
        )
    key = (name, tuple(sorted(kwargs.items())))
    if key not in _CACHE:
        _CACHE[key] = DATASET_BUILDERS[name](**kwargs)
    return _CACHE[key]


def clear_dataset_cache() -> None:
    """Drop all cached datasets (tests use this for isolation)."""
    _CACHE.clear()
