"""Per-figure experiment runners (Figures 2–5 and in-text diagnostics).

Each runner returns plain dict-rows that the benchmark files render with
:mod:`repro.experiments.reporting`.  Figures 2 and 3 come from the same
sweep (revenue and seeding cost of the same runs), so
:func:`run_alpha_sweep` produces both.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import Dataset
from repro.experiments.harness import ALGORITHMS, run_algorithm


def run_alpha_sweep(
    dataset: Dataset,
    config: ExperimentConfig,
    incentive_models: tuple[str, ...] = ("linear", "constant", "sublinear", "superlinear"),
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> list[dict]:
    """The Figure 2 / Figure 3 grid for one dataset.

    One row per (incentive model, α, algorithm): total revenue, total
    seeding cost, seed count, runtime.
    """
    rows: list[dict] = []
    for model in incentive_models:
        for alpha in config.alphas(model, dataset.name):
            instance = dataset.build_instance(incentive_model=model, alpha=alpha)
            for algorithm in algorithms:
                result = run_algorithm(algorithm, dataset, instance, config)
                rows.append(
                    {
                        "dataset": dataset.name,
                        "incentives": model,
                        "alpha": alpha,
                        "algorithm": algorithm,
                        "revenue": result.total_revenue,
                        "seed_cost": result.total_seeding_cost,
                        "seeds": result.total_seeds,
                        "runtime_s": result.runtime_seconds,
                    }
                )
    return rows


def run_figure4(
    dataset: Dataset,
    config: ExperimentConfig,
    alphas: tuple[float, ...] = (1.0, 2.0),
    windows: tuple = (1, 50, 100, 250, 500, None),
) -> list[dict]:
    """Revenue vs running time for TI-CSRM window sizes (Figure 4).

    ``None`` stands for the full window ``w = n``; ``w = 1`` inspects only
    the maximum-marginal-revenue node, i.e. TI-CARM's choice.
    Linear incentives, as in the paper; the α values are the analog-grid
    counterparts of the paper's {0.2, 0.5} (see ANALOG_ALPHA_GRIDS).
    """
    rows: list[dict] = []
    for alpha in alphas:
        instance = dataset.build_instance(incentive_model="linear", alpha=alpha)
        for window in windows:
            result = run_algorithm(
                "TI-CSRM", dataset, instance, config, window=window
            )
            rows.append(
                {
                    "dataset": dataset.name,
                    "alpha": alpha,
                    "window": "n" if window is None else window,
                    "revenue": result.total_revenue,
                    "runtime_s": result.runtime_seconds,
                    "seeds": result.total_seeds,
                }
            )
    return rows


def run_figure5_advertisers(
    dataset: Dataset,
    config: ExperimentConfig,
    h_values: tuple[int, ...] = (1, 5, 10, 15, 20),
    budget: float | None = None,
    alpha: float = 0.5,
) -> list[dict]:
    """Running time (and memory, Table 3) vs number of advertisers.

    Fixed budget across ads, WC probabilities, linear incentives with
    α = 0.2, window = ``config.scalability_window`` — the Fig. 5(a,b)
    setting scaled down.
    """
    if budget is None:
        budget = float(np.median(dataset.budgets))
    rows: list[dict] = []
    for h in h_values:
        instance = dataset.build_instance(
            incentive_model="linear", alpha=alpha, h=h, budget_override=budget
        )
        for algorithm, window in (
            ("TI-CSRM", config.scalability_window),
            ("TI-CARM", None),
        ):
            result = run_algorithm(
                algorithm, dataset, instance, config, window=window
            )
            rows.append(
                {
                    "dataset": dataset.name,
                    "h": h,
                    "algorithm": algorithm,
                    "runtime_s": result.runtime_seconds,
                    "memory_mb": result.extras["memory_bytes"] / 1e6,
                    "seeds": result.total_seeds,
                    "revenue": result.total_revenue,
                }
            )
    return rows


def run_figure5_budgets(
    dataset: Dataset,
    config: ExperimentConfig,
    budgets: tuple[float, ...],
    h: int = 5,
    alpha: float = 0.5,
) -> list[dict]:
    """Running time vs per-ad budget at fixed h (Figure 5(c,d))."""
    rows: list[dict] = []
    for budget in budgets:
        instance = dataset.build_instance(
            incentive_model="linear", alpha=alpha, h=h, budget_override=budget
        )
        for algorithm, window in (
            ("TI-CSRM", config.scalability_window),
            ("TI-CARM", None),
        ):
            result = run_algorithm(
                algorithm, dataset, instance, config, window=window
            )
            rows.append(
                {
                    "dataset": dataset.name,
                    "budget": budget,
                    "algorithm": algorithm,
                    "runtime_s": result.runtime_seconds,
                    "seeds": result.total_seeds,
                    "revenue": result.total_revenue,
                }
            )
    return rows


def figure5_grid_spec(
    dataset: str = "dblp_syn",
    n: int | None = 2_000,
    h_values: tuple[int, ...] = (1, 5, 10, 15, 20),
    budget: float = 60.0,
    alpha: float = 0.5,
    window: int = 500,
    seed: int = 7,
) -> dict:
    """The Figure 5(a,b) scaling sweep as a :class:`GridSpec` dict.

    Running time vs number of advertisers at a fixed budget — the same
    cells :func:`run_figure5_advertisers` iterates by hand, expressed
    declaratively so ``python -m repro grid --spec specs/fig5.json``
    reproduces the whole figure with a resumable manifest.  The committed
    ``specs/fig5.json`` is this function's output with defaults.  The
    window axis only affects TI-CSRM (TI-CARM has no windowed rule), so a
    single ``windows=[window]`` entry covers both algorithms.
    """
    entry: dict = {"name": dataset}
    if n is not None:
        entry["n"] = n
    return {
        "name": "fig5",
        "datasets": [entry],
        "algorithms": ["TI-CSRM", "TI-CARM"],
        "h": list(h_values),
        "budgets": [budget],
        "incentive_models": ["linear"],
        "alphas": [alpha],
        "windows": [window],
        "seed": seed,
        "config": {"eps": 0.5, "theta_cap": 2_000},
    }


def run_diagnostics(
    dataset: Dataset,
    config: ExperimentConfig,
    alpha: float = 1.5,
) -> list[dict]:
    """In-text diagnostics of Section 5 (FLIXSTER, linear incentives).

    Per algorithm: average marginal revenue per selected seed, average
    seed cost, and average revenue-per-cost rate — the numbers behind the
    paper's explanation of why PageRank heuristics sometimes beat
    TI-CARM ("many cheap seeds mimic cost-sensitivity").
    """
    instance = dataset.build_instance(incentive_model="linear", alpha=alpha)
    rows: list[dict] = []
    for algorithm in ALGORITHMS:
        result = run_algorithm(algorithm, dataset, instance, config)
        seeds = result.total_seeds
        if seeds == 0:
            continue
        avg_rev = result.total_revenue / seeds
        avg_cost = result.total_seeding_cost / seeds
        rows.append(
            {
                "dataset": dataset.name,
                "algorithm": algorithm,
                "seeds": seeds,
                "avg_marginal_revenue": avg_rev,
                "avg_seed_cost": avg_cost,
                "avg_rate": avg_rev / avg_cost if avg_cost > 0 else float("inf"),
                "revenue": result.total_revenue,
            }
        )
    return rows


def run_ablation_epsilon(
    dataset: Dataset,
    config: ExperimentConfig,
    eps_values: tuple[float, ...] = (0.1, 0.3, 0.5, 1.0),
    alpha: float = 1.0,
    theta_cap: int = 20_000,
) -> list[dict]:
    """Design-choice ablation: estimator accuracy ε vs revenue/θ/time.

    Theorem 4 predicts revenue degrades additively in ε while θ (hence
    memory and time) shrinks quadratically — this sweep measures both
    sides of that trade on one instance.  The sweep raises the θ cap to
    *theta_cap* (per ad) so that ε, not the cap, determines the sample
    sizes being compared.
    """
    from dataclasses import replace

    from repro.experiments.harness import evaluate_allocation_mc

    instance = dataset.build_instance(incentive_model="linear", alpha=alpha)
    rows: list[dict] = []
    for eps in eps_values:
        cfg = replace(config, eps=eps, theta_cap=theta_cap)
        result = run_algorithm("TI-CSRM", dataset, instance, cfg)
        rows.append(
            {
                "dataset": dataset.name,
                "eps": eps,
                # The engine's own estimate inflates as theta shrinks
                # (adaptive winner's curse); the MC column re-prices the
                # same allocation with an independent estimator.
                "revenue_estimate": result.total_revenue,
                "revenue_mc": evaluate_allocation_mc(
                    instance, result, n_runs=120, seed=config.seed
                ),
                "theta_total": sum(result.extras["theta_per_ad"]),
                "runtime_s": result.runtime_seconds,
                "memory_mb": result.extras["memory_bytes"] / 1e6,
            }
        )
    return rows
