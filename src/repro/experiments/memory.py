"""Memory accounting helpers (Table 3).

The paper reports process-level GB on 264 GB hardware; the reproduction
tracks the dominant term — RR-set storage — analytically via
:meth:`repro.rrset.collection.RRCollection.memory_bytes` and converts it
here.  The claim under test is the *shape*: memory grows linearly with
the number of advertisers and TI-CSRM needs 20–40% more than TI-CARM
(it certifies larger seed-set sizes, hence more RR sets).
"""

from __future__ import annotations

from repro.core.allocation import AllocationResult


def megabytes(n_bytes: int) -> float:
    """Bytes → MB (10^6, as used in the reports)."""
    return n_bytes / 1e6


def result_memory_mb(result: AllocationResult) -> float:
    """RR-collection memory of one TI run, in MB."""
    return megabytes(result.extras.get("memory_bytes", 0))


def memory_ratio(csrm: AllocationResult, carm: AllocationResult) -> float:
    """TI-CSRM : TI-CARM memory ratio (paper: ≈ 1.2–1.4 on LIVEJOURNAL)."""
    carm_mb = result_memory_mb(carm)
    if carm_mb <= 0:
        return float("inf")
    return result_memory_mb(csrm) / carm_mb
