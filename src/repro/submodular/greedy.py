"""Reference greedy maximization over an independence system.

Conforti & Cornuéjols' analysis (the source of Theorem 2's bound) is for
the plain greedy on an arbitrary independence system: repeatedly add the
feasible element of maximum marginal value.  This module implements that
algorithm — and its cost-ratio variant — against *abstract* oracles, as a
cross-check for the specialized RM implementations in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.submodular.functions import SetFunction


def greedy_independence_system(
    f: SetFunction,
    is_independent: Callable[[frozenset], bool],
    *,
    ratio_denominator: SetFunction | None = None,
    tie_break: Callable[[int], float] | None = None,
) -> tuple[frozenset, list[int]]:
    """Greedy maximization of *f* subject to an independence oracle.

    Parameters
    ----------
    f:
        Monotone objective.
    is_independent:
        Feasibility oracle over subsets of ``f.ground_set``; must accept
        the empty set and be downward-closed for the classic guarantees
        to apply (not enforced here).
    ratio_denominator:
        When given, elements are ranked by ``f(x|S) / g(x|S)`` (the
        cost-sensitive rule of CS-GREEDY) instead of raw marginals.
    tie_break:
        Optional secondary key; larger wins among equal primaries.

    Returns
    -------
    (solution, order):
        The greedy set and the order elements were added in.

    Infeasible elements are removed from the candidate pool permanently,
    mirroring lines 11–12 of Algorithm 1.
    """
    solution: frozenset = frozenset()
    order: list[int] = []
    candidates = set(f.ground_set)
    while candidates:
        best_x = None
        best_key: tuple[float, float] | None = None
        for x in sorted(candidates):
            gain = f.marginal(x, solution)
            if ratio_denominator is not None:
                denom = ratio_denominator.marginal(x, solution)
                primary = gain / denom if denom > 0 else float("inf")
            else:
                primary = gain
            secondary = tie_break(x) if tie_break is not None else 0.0
            key = (primary, secondary)
            if best_key is None or key > best_key:
                best_key = key
                best_x = x
        assert best_x is not None
        if is_independent(solution | {best_x}):
            solution = solution | {best_x}
            order.append(best_x)
        candidates.discard(best_x)
    return solution, order


def exhaustive_maximum(
    f: SetFunction,
    is_independent: Callable[[frozenset], bool],
    elements: Iterable[int] | None = None,
) -> tuple[frozenset, float]:
    """Brute-force optimum over all independent subsets (tiny ground sets)."""
    import itertools

    pool = sorted(elements if elements is not None else f.ground_set)
    if len(pool) > 20:
        raise ValueError(f"{len(pool)} elements is too many for exhaustive search")
    best_set: frozenset = frozenset()
    best_val = f(frozenset())
    for r in range(1, len(pool) + 1):
        for combo in itertools.combinations(pool, r):
            subset = frozenset(combo)
            if not is_independent(subset):
                continue
            val = f(subset)
            if val > best_val:
                best_val = val
                best_set = subset
    return best_set, best_val
