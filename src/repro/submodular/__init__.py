"""Generic submodular-function toolkit: functions, checks, curvature, greedy."""

from repro.submodular.functions import (
    SetFunction,
    ModularFunction,
    CoverageFunction,
    WeightedCoverageFunction,
    ScaledFunction,
    SumFunction,
)
from repro.submodular.checks import (
    is_monotone,
    is_submodular,
    total_curvature,
    set_curvature,
    average_curvature,
)
from repro.submodular.greedy import greedy_independence_system

__all__ = [
    "SetFunction",
    "ModularFunction",
    "CoverageFunction",
    "WeightedCoverageFunction",
    "ScaledFunction",
    "SumFunction",
    "is_monotone",
    "is_submodular",
    "total_curvature",
    "set_curvature",
    "average_curvature",
    "greedy_independence_system",
]
