"""Structural checks and curvature computations (Definition 4; Iyer et al.).

The approximation guarantees of Theorems 2 and 3 are stated in terms of
curvature — the deviation of a monotone submodular function from
modularity:

* total curvature       ``κ_f = 1 − min_j f(j | V∖{j}) / f({j})``
* curvature w.r.t. S    ``κ_f(S) = 1 − min_{j∈S} f(j | S∖{j}) / f({j})``
* average curvature     ``κ̂_f(S) = 1 − Σ_{j∈S} f(j|S∖{j}) / Σ_{j∈S} f({j})``

with the chain ``0 ≤ κ̂_f(S) ≤ κ_f(S) ≤ κ_f(V) = κ_f ≤ 1`` (Iyer et al.,
reproduced as a property test).  Monotonicity/submodularity checkers are
exhaustive on small ground sets and sampled otherwise.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro._rng import as_generator
from repro.submodular.functions import SetFunction

_EXHAUSTIVE_LIMIT = 12
_TOL = 1e-9


def _subsets(ground: frozenset):
    elements = sorted(ground)
    for r in range(len(elements) + 1):
        for combo in itertools.combinations(elements, r):
            yield frozenset(combo)


def is_monotone(f: SetFunction, n_samples: int = 200, rng=None) -> bool:
    """Check ``S ⊆ T ⇒ f(S) ≤ f(T)``.

    Exhaustive when ``|ground| ≤ 12`` (checks every set against every
    single-element extension, which implies full monotonicity); sampled
    chains otherwise.
    """
    ground = f.ground_set
    if len(ground) <= _EXHAUSTIVE_LIMIT:
        for subset in _subsets(ground):
            base = f(subset)
            for x in sorted(ground - subset):
                if f(subset | {x}) < base - _TOL:
                    return False
        return True
    rng = as_generator(rng)
    elements = sorted(ground)
    for _ in range(n_samples):
        size = int(rng.integers(0, len(elements)))
        subset = frozenset(rng.choice(elements, size=size, replace=False).tolist())
        extra = [x for x in elements if x not in subset]
        x = extra[int(rng.integers(0, len(extra)))]
        if f(subset | {x}) < f(subset) - _TOL:
            return False
    return True


def is_submodular(f: SetFunction, n_samples: int = 200, rng=None) -> bool:
    """Check diminishing returns ``f(x|T) ≤ f(x|S)`` for ``S ⊆ T``.

    Exhaustive over the equivalent pairwise condition
    ``f(x | S ∪ {y}) ≤ f(x | S)`` when the ground set is small.
    """
    ground = f.ground_set
    if len(ground) <= _EXHAUSTIVE_LIMIT:
        for subset in _subsets(ground):
            rest = sorted(ground - subset)
            for x, y in itertools.permutations(rest, 2):
                if f.marginal(x, subset | {y}) > f.marginal(x, subset) + _TOL:
                    return False
        return True
    rng = as_generator(rng)
    elements = sorted(ground)
    for _ in range(n_samples):
        size = int(rng.integers(0, len(elements) - 1))
        subset = frozenset(rng.choice(elements, size=size, replace=False).tolist())
        rest = [e for e in elements if e not in subset]
        x, y = rng.choice(rest, size=2, replace=False).tolist()
        if f.marginal(x, subset | {y}) > f.marginal(x, subset) + _TOL:
            return False
    return True


def total_curvature(f: SetFunction) -> float:
    """``κ_f`` over the whole ground set (Definition 4)."""
    return set_curvature(f, f.ground_set)


def set_curvature(f: SetFunction, subset) -> float:
    """``κ_f(S)``; elements with ``f({j}) = 0`` are skipped (0/0 → modular)."""
    subset = frozenset(int(x) for x in subset)
    if not subset:
        return 0.0
    worst = 1.0
    seen_any = False
    for j in sorted(subset):
        singleton = f(frozenset({j}))
        if singleton <= _TOL:
            continue
        seen_any = True
        ratio = f.marginal(j, subset - {j}) / singleton
        worst = min(worst, ratio)
    if not seen_any:
        return 0.0
    return float(np.clip(1.0 - worst, 0.0, 1.0))


def average_curvature(f: SetFunction, subset) -> float:
    """``κ̂_f(S)`` (Iyer et al.)."""
    subset = frozenset(int(x) for x in subset)
    if not subset:
        return 0.0
    marginal_sum = sum(f.marginal(j, subset - {j}) for j in sorted(subset))
    singleton_sum = sum(f(frozenset({j})) for j in sorted(subset))
    if singleton_sum <= _TOL:
        return 0.0
    return float(np.clip(1.0 - marginal_sum / singleton_sum, 0.0, 1.0))
