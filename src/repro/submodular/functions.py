"""Set functions used across the theory layer.

Everything in the RM problem is built from monotone submodular pieces:
the spread ``σ_i`` (equivalently a coverage expectation over RR sets),
the revenue ``π_i = cpe(i)·σ_i``, the seeding cost ``c_i`` (modular), and
the payment ``ρ_i = π_i + c_i``.  The classes here give those pieces a
common interface — ``f(S)`` on any iterable of elements plus cached
marginals — so curvature computations, bound evaluations, and property
tests can be written once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from repro._rng import as_generator


class SetFunction(ABC):
    """A real-valued function on subsets of a finite ground set."""

    def __init__(self, ground_set: Iterable[int]) -> None:
        self.ground_set = frozenset(int(x) for x in ground_set)

    @abstractmethod
    def evaluate(self, subset: frozenset) -> float:
        """Value of the function on *subset* (guaranteed ⊆ ground set)."""

    def __call__(self, subset) -> float:
        subset = frozenset(int(x) for x in subset)
        extra = subset - self.ground_set
        if extra:
            raise ValueError(f"elements {sorted(extra)} outside the ground set")
        return self.evaluate(subset)

    def marginal(self, element: int, subset) -> float:
        """``f(element | subset) = f(subset ∪ {element}) − f(subset)``."""
        subset = frozenset(int(x) for x in subset)
        element = int(element)
        if element in subset:
            return 0.0
        return self(subset | {element}) - self(subset)


class ModularFunction(SetFunction):
    """``f(S) = Σ_{x∈S} w_x`` — curvature 0; models seeding costs ``c_i``."""

    def __init__(self, weights: dict[int, float]) -> None:
        super().__init__(weights.keys())
        self.weights = {int(k): float(v) for k, v in weights.items()}

    def evaluate(self, subset: frozenset) -> float:
        return sum(self.weights[x] for x in subset)


class CoverageFunction(SetFunction):
    """``f(S) = |∪_{x∈S} cover(x)|`` — the canonical monotone submodular function.

    RR-set coverage (and hence estimated spread) is exactly this shape,
    which is why it anchors the property-test suite.
    """

    def __init__(self, cover: dict[int, Iterable[int]]) -> None:
        super().__init__(cover.keys())
        self.cover = {int(k): frozenset(v) for k, v in cover.items()}

    def evaluate(self, subset: frozenset) -> float:
        covered: set = set()
        for x in subset:
            covered |= self.cover[x]
        return float(len(covered))


class WeightedCoverageFunction(SetFunction):
    """Coverage with per-universe-item weights."""

    def __init__(self, cover: dict[int, Iterable[int]], item_weights: dict[int, float]) -> None:
        super().__init__(cover.keys())
        self.cover = {int(k): frozenset(v) for k, v in cover.items()}
        self.item_weights = {int(k): float(v) for k, v in item_weights.items()}

    def evaluate(self, subset: frozenset) -> float:
        covered: set = set()
        for x in subset:
            covered |= self.cover[x]
        return sum(self.item_weights.get(item, 0.0) for item in sorted(covered))


class ScaledFunction(SetFunction):
    """``(a·f)(S)`` — e.g. revenue as cpe × spread."""

    def __init__(self, base: SetFunction, scale: float) -> None:
        super().__init__(base.ground_set)
        self.base = base
        self.scale = float(scale)

    def evaluate(self, subset: frozenset) -> float:
        return self.scale * self.base.evaluate(subset)


class SumFunction(SetFunction):
    """``(f + g)(S)`` — e.g. payment ``ρ_i = π_i + c_i``."""

    def __init__(self, parts: Sequence[SetFunction]) -> None:
        if not parts:
            raise ValueError("SumFunction needs at least one part")
        ground = frozenset(parts[0].ground_set)
        for part in parts[1:]:
            if frozenset(part.ground_set) != ground:
                raise ValueError("all parts must share the same ground set")
        super().__init__(ground)
        self.parts = list(parts)

    def evaluate(self, subset: frozenset) -> float:
        return sum(part.evaluate(subset) for part in self.parts)


def random_coverage_function(
    n_elements: int,
    n_items: int,
    density: float = 0.3,
    rng: np.random.Generator | None = None,
) -> CoverageFunction:
    """Random coverage instance for tests; element *x* always covers item *x mod n_items*
    so every element has non-zero value (needed by curvature ratios)."""
    rng = as_generator(rng)
    cover: dict[int, set[int]] = {}
    for x in range(n_elements):
        items = set(np.flatnonzero(rng.random(n_items) < density).tolist())
        items.add(x % n_items)
        cover[x] = items
    return CoverageFunction(cover)
