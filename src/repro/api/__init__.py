"""The unified public solver API.

Three pieces turn the four Section-5 algorithms (and any user-defined
variant) into one surface:

* :class:`~repro.api.spec.EngineSpec` — a frozen, validated bundle of
  every engine knob with a JSON-able ``to_dict`` / ``from_dict``
  round-trip.  ``ExperimentConfig``, grid-spec ``config`` blocks and
  CLI flags all compile down to it instead of carrying parallel copies.
* the **algorithm registry** — :func:`~repro.api.registry.register_algorithm`
  turns a ``(candidate rule, selector)`` pair (built-in string rules or
  user callables) into a named algorithm the whole stack — harness,
  grids, CLI — can run.
* :func:`~repro.api.solve.solve` — the one-call entrypoint
  ``repro.solve(instance, "TI-CSRM", spec)``, plus
  :class:`~repro.api.session.AllocationSession` which keeps RR samples,
  pagerank orders and the shared-memory worker pool warm across
  repeated solves over the same graph and probability family.

See docs/ARCHITECTURE.md §9 for the full contract.
"""

from repro.api.spec import EngineSpec
from repro.api.registry import (
    AlgorithmDef,
    BUILTIN_ALGORITHMS,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.solve import solve
from repro.api.session import AllocationSession

__all__ = [
    "EngineSpec",
    "AlgorithmDef",
    "BUILTIN_ALGORITHMS",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "unregister_algorithm",
    "solve",
    "AllocationSession",
]
