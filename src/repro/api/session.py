"""`AllocationSession`: warm repeated solves over one graph + prob family.

The ROADMAP's production framing — and the follow-up literature (Han et
al. 2021; Tang & Yuan 2021) — is about *re-solving* the same social
graph under varying budgets, CPEs and incentive schedules.  A bare
``repro.solve`` restarts everything per call: RR sampling from set 0,
KPT estimation from scratch, pagerank rankings, and (for the parallel
backend) a fresh shared-memory worker pool.  An
:class:`AllocationSession` is bound to one graph and keeps all of that
warm across solves:

* **Prob-keyed RR stores.**  RR sets depend only on ``(graph, probs)``
  — never on budgets, CPEs or incentives — so sets drawn for one solve
  are a valid i.i.d. sample for every later solve over the same
  probability vector.  The session stores them in
  :class:`~repro.rrset.collection.SharedRRStore` objects keyed by
  probability content; a warm solve *adopts* the stored prefix and
  samples only if it needs more sets than any previous solve did
  (continuing the store's persisted RNG stream).
* **KPT estimators** (cached width samples and per-``s`` bounds) and
  **pagerank orders** are cached per probability vector the same way.
* **One `SharedGraphPool`.**  The first parallel solve creates the
  worker pool; every later solve reuses it.  The engine never tears a
  session's pool down — :meth:`close` (or the context manager) does.

Reuse and invalidation rules (docs/ARCHITECTURE.md §9): a new
probability vector simply creates a new store (the "family" grows);
nothing a solve can change — budgets, CPEs, incentives, ``blocked``
masks, algorithm, ``eps``/``theta_cap`` — ever invalidates a store.
The sampler backend and worker count are pinned at session
construction (stores hold live backends), so per-solve specs cannot
flip them mid-session.  Sessions are not thread-safe (one solve at a
time), matching the engine.

Observability: :attr:`stats` counts solves, sampler batch calls and
sets drawn, so tests (and benchmarks) can assert that a warm re-solve
really skipped sampling.
"""

from __future__ import annotations

import time

import numpy as np

from repro import faults as _faults
from repro.errors import AllocationError, WorkerCrashError
from repro.api.spec import EngineSpec
from repro.api.registry import AlgorithmDef
from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.core.ti_engine import EngineWarmState
from repro.graph.digraph import DiGraph
from repro.graph.updates import compile_updates, normalize_updates
from repro.rrset.backend import (
    SamplerBackend,
    SharedGraphPool,
    make_backend,
    resolve_backend,
)


class _CountingBackend(SamplerBackend):
    """Delegating proxy that counts batch draws for session stats."""

    def __init__(self, inner: SamplerBackend, stats: dict) -> None:
        self._inner = inner
        self._stats = stats
        self.graph = inner.graph
        self.probs = inner.probs

    def sample_batch_flat(self, count: int, rng=None, *, roots=None):
        self._stats["sample_batches"] += 1
        self._stats["sets_sampled"] += int(count)
        return self._inner.sample_batch_flat(count, rng, roots=roots)

    @property
    def degraded(self) -> bool:
        """Whether the wrapped backend fell back to in-process sampling."""
        return bool(getattr(self._inner, "degraded", False))

    def close(self) -> None:
        self._inner.close()


class AllocationSession:
    """Reusable solving context bound to one graph (see module docstring).

    Parameters
    ----------
    graph:
        The :class:`DiGraph` every solve's instance must be built on
        (identity is checked — sessions never silently mix graphs).
    spec:
        The session's base :class:`EngineSpec`.  Per-solve specs /
        overrides are applied on top of it, except ``sampler_backend``
        and ``workers``, which the session pins (live sampler backends
        persist inside the stores).
    """

    def __init__(self, graph: DiGraph, *, spec: EngineSpec | None = None) -> None:
        if not isinstance(graph, DiGraph):
            raise AllocationError(
                f"AllocationSession binds to a DiGraph, got {type(graph).__name__}"
            )
        self.graph = graph
        self.spec = spec or EngineSpec()
        self._warm = EngineWarmState()
        self._closed = False
        #: Monotone mutation counter: 0 for a session still on the graph
        #: it was opened with, +1 per :meth:`apply_edge_updates` batch.
        #: Pool owners (``repro serve``) use it to detect stale sessions.
        self.graph_epoch = 0
        self._stats = {
            "solves": 0,
            "sample_batches": 0,
            "sets_sampled": 0,
            "mutations": 0,
            "invalidated_sets": 0,
            "mutation_checked_sets": 0,
            "resample_batches": 0,
        }
        self._warm.wrap_sampler = lambda sampler: _CountingBackend(
            sampler, self._stats
        )

    @classmethod
    def for_instance(
        cls, instance: RMInstance, *, spec: EngineSpec | None = None
    ) -> "AllocationSession":
        """A session bound to *instance*'s graph."""
        return cls(instance.graph, spec=spec)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        instance: RMInstance,
        algorithm: str | AlgorithmDef = "TI-CSRM",
        spec: EngineSpec | None = None,
        *,
        blocked=None,
        **overrides,
    ) -> AllocationResult:
        """Run one algorithm on *instance*, reusing this session's caches.

        *instance* must be built on the session's graph; its budgets,
        CPEs, incentives and probability vectors are free to differ
        between calls.  *spec* defaults to the session's base spec;
        keyword *overrides* apply on top (backend/workers stay pinned).
        Identical queries re-solve bit-identically to their first run —
        without re-sampling, which :attr:`stats` makes observable.
        """
        from repro.api.solve import solve as _solve

        return _solve(
            instance,
            algorithm,
            spec or self.spec,
            blocked=blocked,
            session=self,
            **overrides,
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (docs/ARCHITECTURE.md §14)
    # ------------------------------------------------------------------
    def apply_edge_updates(self, updates) -> dict:
        """Mutate the session's graph in place of a cold restart.

        *updates* is one timestamped batch of edge insertions, deletions
        and probability changes (anything
        :func:`repro.graph.updates.normalize_updates` accepts).  The
        session compiles them into a new immutable
        :class:`~repro.graph.digraph.DiGraph`, then repairs every warm
        RR store *incrementally*:

        * **Invalidation is edge-precise.**  The level-synchronous
          reverse BFS flips coins on exactly the in-arcs of a set's
          members, so the sets whose recorded traversal could have
          touched a changed edge ``u → v`` are exactly
          ``sets_containing(v)`` — the store's membership CSR *is* the
          per-set touched-edge record, and
          :meth:`~repro.rrset.collection.SharedRRStore.sets_touching`
          over the changed heads recovers the invalid ids without any
          extra bookkeeping.  For a ``set_prob`` whose family value did
          not actually move, nothing is invalidated.
        * **Resampling is root-preserving.**  Each invalidated slot is
          redrawn on the new graph from its recorded root (the pinned
          ``roots`` path through the kernel seam), continuing the
          store's persisted RNG stream; surviving slots are untouched.
          The root marginal therefore stays exactly uniform, and
          survivors are exact draws from the new RR distribution (their
          traversals flipped no changed coin).  For pure
          probability-*decrease* batches the surviving slots are
          bit-identical in membership to a same-seed cold store on the
          pre-update graph — the differential tests pin both claims.
        * **Everything graph-shaped rolls over.**  The worker pool
          (whose shared-memory CSR describes the old graph) is closed
          and rebuilt, per-family samplers are rebuilt on the new
          graph, KPT estimators and pagerank orders are dropped, and
          stores are re-keyed by their updated probability vectors.

        Returns a JSON-able report (update counts, per-batch
        invalidation, resample provenance); cumulative counters appear
        in :attr:`stats` and :attr:`graph_epoch` increments by one.
        Instances built on the pre-mutation graph are rejected by later
        :meth:`solve` calls — rebuild them on :attr:`graph`.
        """
        if self._closed:
            raise AllocationError("session is closed")
        batch = normalize_updates(updates)
        plan = compile_updates(self.graph, batch)
        warm = self._warm
        backend, workers = resolve_backend(
            self.spec.sampler_backend, self.spec.workers
        )

        # The old pool's shared-memory CSR blocks describe the old
        # graph; nothing on the new graph can reuse them.
        if warm.pool is not None:
            warm.pool.close()
            warm.pool = None
        if (
            backend == "parallel"
            and (workers or 0) > 1
            and warm.stores
            and not warm.pool_failed
        ):
            try:
                warm.pool = SharedGraphPool(
                    plan.new_graph,
                    workers,
                    counters=warm.counters,
                    kernel=self.spec.kernel,
                )
            except WorkerCrashError:
                warm.pool_failed = True
                warm.counters["pool_degraded"] += 1

        checked = 0
        invalidated = 0
        resample_batches = 0
        new_stores: dict[bytes, object] = {}
        for key, group in warm.stores.items():
            old_probs = np.frombuffer(key, dtype=np.float64)
            new_probs = plan.apply_probs(old_probs)
            heads = plan.changed_heads(old_probs)
            invalid = group.store.sets_touching(heads)
            roots = group.store.roots()[invalid] if invalid.size else None
            checked += int(group.store.size)
            invalidated += int(invalid.size)
            group.sampler.close()
            sampler = make_backend(
                plan.new_graph,
                new_probs,
                backend,
                workers=workers,
                pool=warm.pool,
                counters=warm.counters,
                degraded=warm.pool_failed,
                kernel=self.spec.kernel,
            )
            if warm.wrap_sampler is not None:
                sampler = warm.wrap_sampler(sampler)
            group.sampler = sampler
            # Cached KPT bounds and widths were measured on the old
            # graph; the next solve rebuilds them (same RNG stream).
            group.kpt = None
            group.kpt_params = None
            if invalid.size:
                rule = _faults.fire("mutate.delay")
                if rule is not None:
                    time.sleep(float(rule.delay_s))
                members, indptr = sampler.sample_batch_flat(
                    int(invalid.size), group.rng, roots=roots
                )
                group.store.replace_sets(invalid, members, indptr)
                resample_batches += 1
            new_key = new_probs.tobytes()
            if new_key in new_stores:
                # Two probability families collapsed onto one vector
                # (a set_prob made them identical): keep the first —
                # iteration order is insertion order, so this is
                # deterministic — and drop the duplicate.
                sampler.close()
                group.store.close()
            else:
                new_stores[new_key] = group
        warm.stores.clear()
        warm.stores.update(new_stores)
        warm.pagerank_orders.clear()
        self.graph = plan.new_graph
        self.graph_epoch += 1
        self._stats["mutations"] += 1
        self._stats["invalidated_sets"] += invalidated
        self._stats["mutation_checked_sets"] += checked
        self._stats["resample_batches"] += resample_batches
        return {
            "graph_epoch": int(self.graph_epoch),
            **plan.summary(),
            "checked_sets": checked,
            "invalidated_sets": invalidated,
            "invalidation_rate": (
                invalidated / checked if checked else 0.0
            ),
            "resample_batches": resample_batches,
            "stores": len(warm.stores),
        }

    # -- hooks used by repro.api.solve ---------------------------------
    def _warm_state_for(self, instance: RMInstance) -> EngineWarmState:
        if self._closed:
            raise AllocationError("session is closed")
        if instance.graph is not self.graph:
            raise AllocationError(
                "instance is built on a different graph than this session; "
                "sessions are bound to one graph (open a new session)"
            )
        return self._warm

    def _pin_spec(self, spec: EngineSpec) -> EngineSpec:
        # Live backends (sampler_backend/workers/kernel) and live stores
        # (rr_bytes_budget) persist inside the warm state, so a per-solve
        # spec cannot flip them mid-session.
        if (
            spec.sampler_backend != self.spec.sampler_backend
            or spec.workers != self.spec.workers
            or spec.kernel != self.spec.kernel
            or spec.rr_bytes_budget != self.spec.rr_bytes_budget
        ):
            spec = spec.override(
                sampler_backend=self.spec.sampler_backend,
                workers=self.spec.workers,
                kernel=self.spec.kernel,
                rr_bytes_budget=self.spec.rr_bytes_budget,
            )
        return spec

    def _record_solve(self, result: AllocationResult) -> None:
        self._stats["solves"] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run (a closed session refuses solves).

        Pool owners (the serve layer's
        :class:`~repro.serve.pool.SessionPool`, the grid runner's
        :class:`~repro.experiments.grid.WarmSessionGroups`) key eviction
        and teardown decisions on this flag instead of poking at
        private state.
        """
        return self._closed

    @property
    def stats(self) -> dict:
        """Counters + store sizes: what the session has drawn and kept.

        ``sample_batches`` / ``sets_sampled`` count actual sampler
        draws across all solves — a warm re-solve that fully reuses the
        stores leaves them unchanged.  ``store_hits`` / ``store_misses``
        count, per solve and per *distinct* probability vector, whether
        the solve found an existing RR store or had to create one (see
        :class:`~repro.core.ti_engine.EngineWarmState`); the grid
        runner's warm mode snapshots these around each cell to record
        reuse provenance in its manifest rows.

        The warm counters also carry the fault-tolerance provenance
        (docs/ARCHITECTURE.md §11): ``worker_respawns`` and
        ``shards_recovered`` count supervised recoveries inside this
        session's :class:`~repro.rrset.backend.SharedGraphPool`, and
        ``pool_degraded`` counts backends that fell back to in-process
        sampling after the pool proved unrecoverable —
        ``pool_degraded_state`` reports whether the session is
        currently in that degraded mode.
        """
        stores = list(self._warm.stores.values())
        stored_sets = int(sum(int(g.store.size) for g in stores))
        store_bytes = int(
            sum(
                int(g.store.member_bytes) + int(g.store.indptr.nbytes)
                for g in stores
            )
        )
        # Every value is a plain int/float/bool: the serve layer's
        # /stats endpoint and the grid manifest serialize this dict with
        # json.dumps, which rejects numpy scalars (store sizes arrive as
        # np.int64 from array bookkeeping).
        checked = self._stats["mutation_checked_sets"]
        return {
            **{key: int(value) for key, value in self._stats.items()},
            **{key: int(value) for key, value in self._warm.counters.items()},
            # Incremental-maintenance provenance (§14): cumulative
            # fraction of checked sets that mutations invalidated.
            "invalidation_rate": float(
                self._stats["invalidated_sets"] / checked if checked else 0.0
            ),
            "graph_epoch": int(self.graph_epoch),
            "stores": len(stores),
            "stored_sets": stored_sets,
            "stored_members": int(sum(int(g.store.member_total) for g in stores)),
            # Measured memory accounting (docs/ARCHITECTURE.md §2):
            # narrowed/spilled member storage across all warm stores.
            "store_bytes": store_bytes,
            "peak_store_bytes": int(sum(int(g.store.peak_bytes) for g in stores)),
            "bytes_per_rr_set": float(
                store_bytes / stored_sets if stored_sets else 0.0
            ),
            "spilled_stores": sum(1 for g in stores if g.store.spilled),
            "pagerank_orders": len(self._warm.pagerank_orders),
            "pool_active": bool(
                self._warm.pool is not None and not self._warm.pool.failed
            ),
            "pool_degraded_state": bool(self._warm.pool_failed),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool and drop all cached stores (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for group in self._warm.stores.values():
            group.sampler.close()
            if group.store is not None:
                group.store.close()  # drops memmap spill files, if any
        if self._warm.pool is not None:
            self._warm.pool.close()
            self._warm.pool = None
        self._warm.stores.clear()
        self._warm.pagerank_orders.clear()

    def __enter__(self) -> "AllocationSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"AllocationSession(n={self.graph.n}, solves={s['solves']}, "
            f"stores={s['stores']}, stored_sets={s['stored_sets']})"
        )
