"""`EngineSpec`: one validated bundle of every TI-engine knob.

Before this class existed the ~12 engine parameters (``eps``, ``ell``,
``window``, ``theta_cap``, ``opt_lower``, ``kpt_max_samples``,
``share_samples``, ``lazy_candidates``, ``sampler_backend``,
``workers``, ``seed``) were re-threaded by hand through four wrapper
functions, :class:`~repro.experiments.config.ExperimentConfig`, the
grid runner and the CLI — with visible drift (knobs reachable from one
layer but not another).  An :class:`EngineSpec` is the single compiled
form all of those surfaces produce and every solve consumes:

* **frozen** — a spec never mutates; derive variants with
  :meth:`override` (or :func:`dataclasses.replace`), which re-validates;
* **validated** — every constraint the engine would reject is rejected
  at construction, with :class:`~repro.errors.SpecError`;
* **JSON round-trip** — ``EngineSpec.from_dict(spec.to_dict())``
  equals ``spec`` and ``to_dict()`` is ``json.dumps``-able (per-ad
  ``opt_lower`` arrays become lists; tuples normalize back on load).
  CI checks this invariant on every committed ``specs/*.json``.

The field set intentionally mirrors :class:`~repro.core.ti_engine.TIEngine`'s
keyword surface minus the two algorithm-defining rules (candidate rule
and selector come from the :mod:`~repro.api.registry`) and per-call
data such as ``blocked`` masks, which describe the query, not the
engine configuration.

Four fields are special inside an
:class:`~repro.api.session.AllocationSession` (and therefore inside
the grid runner's ``warm_per_dataset`` execution mode, which drives
every cell of a dataset through one session): ``sampler_backend``,
``workers``, ``kernel`` and ``rr_bytes_budget`` are pinned by the
session's base spec — live sampler backends and RR stores persist
inside the warm state, so per-solve specs cannot flip them
mid-session.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError
from repro.rrset.backend import BACKENDS
from repro.rrset.kernels import KERNELS
from repro.rrset.tim import DEFAULT_THETA_CAP

#: Fields whose values already serialize to JSON scalars unchanged.
_SCALAR_FIELDS = (
    "eps",
    "ell",
    "window",
    "theta_cap",
    "kpt_max_samples",
    "share_samples",
    "lazy_candidates",
    "sampler_backend",
    "workers",
    "kernel",
    "rr_bytes_budget",
    "seed",
)


@dataclass(frozen=True)
class EngineSpec:
    """Every engine knob of one solve, frozen and validated.

    Defaults equal :class:`~repro.core.ti_engine.TIEngine`'s, so
    ``EngineSpec()`` configures exactly the engine's out-of-the-box
    behavior.  ``opt_lower`` is ``"kpt"`` (run TIM's estimator), a
    non-negative number (one lower bound for every ad), or a sequence
    of per-ad lower bounds (stored as a tuple for hashability); the
    engine floors every numeric bound at 1.0, so zeros are legal.
    """

    eps: float = 0.1
    ell: float = 1.0
    window: int | None = None
    theta_cap: int | None = DEFAULT_THETA_CAP
    opt_lower: object = "kpt"
    kpt_max_samples: int = 5_000
    share_samples: bool = False
    lazy_candidates: bool = True
    sampler_backend: str = "serial"
    workers: int | None = None
    kernel: str = "auto"
    rr_bytes_budget: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.eps > 0:
            raise SpecError(f"eps must be positive, got {self.eps}")
        if not self.ell > 0:
            raise SpecError(f"ell must be positive, got {self.ell}")
        self._set_int("window", minimum=1, optional=True)
        self._set_int("theta_cap", minimum=1, optional=True)
        self._set_int("kpt_max_samples", minimum=1)
        if self.sampler_backend not in BACKENDS:
            raise SpecError(
                f"unknown sampler_backend {self.sampler_backend!r}; "
                f"options: {BACKENDS}"
            )
        self._set_int("workers", minimum=0, optional=True)
        if self.kernel not in KERNELS:
            raise SpecError(
                f"unknown kernel {self.kernel!r}; options: {KERNELS}"
            )
        self._set_int("rr_bytes_budget", minimum=1, optional=True)
        # numpy's default_rng rejects negative seeds; fail here, not mid-solve.
        self._set_int("seed", minimum=0, optional=True)
        object.__setattr__(self, "opt_lower", self._normalize_opt_lower(self.opt_lower))

    def _set_int(self, name: str, *, minimum: int, optional: bool = False) -> None:
        """Coerce an integral field in place; reject fractions and bad types.

        Catches hand-edited JSON like ``"window": 1.5`` at construction
        (the class contract) instead of as a numpy TypeError mid-solve.
        """
        value = getattr(self, name)
        if value is None:
            if optional:
                return
            raise SpecError(f"{name} must be an integer, got None")
        if isinstance(value, bool) or not isinstance(
            value, (int, np.integer, float)
        ):
            raise SpecError(f"{name} must be an integer, got {value!r}")
        if isinstance(value, float) and not value.is_integer():
            raise SpecError(f"{name} must be an integer, got {value!r}")
        value = int(value)
        if value < minimum:
            raise SpecError(f"{name} must be >= {minimum}, got {value}")
        object.__setattr__(self, name, value)

    @staticmethod
    def _normalize_opt_lower(value):
        # Zero is allowed: the engine documents a floor of 1.0 on every
        # bound (legacy wrappers always accepted clamped zeros), so only
        # negatives and non-finite values are genuine spec errors.
        if isinstance(value, str):
            if value != "kpt":
                raise SpecError(f"unknown opt_lower spec {value!r}; options: 'kpt'")
            return value
        if isinstance(value, (list, tuple, np.ndarray)):
            bounds = tuple(float(v) for v in value)
            if not bounds:
                raise SpecError("opt_lower sequence must be non-empty")
            if any(b < 0 or not math.isfinite(b) for b in bounds):
                raise SpecError("opt_lower bounds must all be finite and >= 0")
            return bounds
        try:
            scalar = float(value)
        except (TypeError, ValueError):
            raise SpecError(
                f"opt_lower must be 'kpt', a number, or a sequence of "
                f"per-ad bounds; got {value!r}"
            ) from None
        if scalar < 0 or not math.isfinite(scalar):
            raise SpecError(f"opt_lower must be finite and >= 0, got {scalar}")
        return scalar

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The spec as a JSON-able dict (inverse of :meth:`from_dict`)."""
        data = {name: getattr(self, name) for name in _SCALAR_FIELDS}
        opt_lower = self.opt_lower
        data["opt_lower"] = list(opt_lower) if isinstance(opt_lower, tuple) else opt_lower
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EngineSpec":
        """Build a spec from a plain dict (e.g. parsed JSON); validates keys."""
        if not isinstance(data, dict):
            raise SpecError(f"engine spec must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown engine-spec keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, path: str) -> "EngineSpec":
        """Load a spec from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            raise SpecError(f"cannot read engine spec {path!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON in engine spec {path!r}: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation / compilation
    # ------------------------------------------------------------------
    def override(self, **changes) -> "EngineSpec":
        """A copy with *changes* applied (validation re-runs); no-op → self."""
        if not changes:
            return self
        unknown = set(changes) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise SpecError(f"unknown engine-spec keys: {sorted(unknown)}")
        return dataclasses.replace(self, **changes)

    def engine_kwargs(self) -> dict:
        """The spec as :class:`~repro.core.ti_engine.TIEngine` keyword args."""
        opt_lower = self.opt_lower
        return dict(
            eps=self.eps,
            ell=self.ell,
            window=self.window,
            theta_cap=self.theta_cap,
            opt_lower=list(opt_lower) if isinstance(opt_lower, tuple) else opt_lower,
            kpt_max_samples=self.kpt_max_samples,
            share_samples=self.share_samples,
            lazy_candidates=self.lazy_candidates,
            sampler_backend=self.sampler_backend,
            workers=self.workers,
            kernel=self.kernel,
            rr_bytes_budget=self.rr_bytes_budget,
            seed=self.seed,
        )
