"""``repro.solve`` — the one-call solving entrypoint.

Every way of running a Section-5 algorithm in this codebase — the
legacy ``ti_carm``/``ti_csrm``/``pagerank_*`` wrappers, the experiment
harness, the grid runner, the CLI, adaptive campaigns and
:class:`~repro.api.session.AllocationSession` — funnels through
:func:`solve`: resolve the algorithm in the registry, resolve the
:class:`~repro.api.spec.EngineSpec`, build one
:class:`~repro.core.ti_engine.TIEngine`, run it, and stamp the fully
resolved spec into ``AllocationResult.extras["engine_spec"]`` so every
result (and every grid manifest row) carries complete provenance.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import AlgorithmDef, get_algorithm
from repro.api.spec import EngineSpec
from repro.core.allocation import AllocationResult
from repro.core.instance import RMInstance
from repro.core.ti_engine import TIEngine


def resolve_spec(
    algorithm: str | AlgorithmDef,
    spec: EngineSpec | None = None,
    **overrides,
) -> tuple[AlgorithmDef, EngineSpec]:
    """Resolve ``(algorithm, spec, overrides)`` to the spec a solve runs.

    Resolution order (later wins): engine defaults → *spec* → keyword
    *overrides* → the algorithm's registered ``spec_overrides`` (those
    define the algorithm, so nothing may undo them).  Algorithms whose
    candidate rule has no windowed form get ``window`` cleared —
    exactly what the legacy harness did by passing ``window`` only to
    ``ti_csrm`` — so a shared grid axis never silently degrades another
    algorithm's lazy caching.
    """
    definition = get_algorithm(algorithm)
    resolved = (spec or EngineSpec()).override(**overrides)
    if definition.spec_overrides:
        resolved = resolved.override(**definition.spec_overrides)
    if not definition.supports_window and resolved.window is not None:
        resolved = resolved.override(window=None)
    return definition, resolved


def solve(
    instance: RMInstance,
    algorithm: str | AlgorithmDef = "TI-CSRM",
    spec: EngineSpec | None = None,
    *,
    blocked=None,
    session=None,
    rng=None,
    **overrides,
) -> AllocationResult:
    """Run one registered *algorithm* on *instance* under *spec*.

    Parameters
    ----------
    instance:
        The :class:`RMInstance` to allocate.
    algorithm:
        A registered algorithm name (``"TI-CSRM"``, ``"TI-CARM"``,
        ``"PageRank-GR"``, ``"PageRank-RR"``, or anything added via
        :func:`~repro.api.registry.register_algorithm`) or an
        :class:`AlgorithmDef` directly.
    spec:
        An :class:`EngineSpec`; ``None`` means engine defaults.  Extra
        keyword *overrides* (e.g. ``seed=3``, ``eps=0.5``) are applied
        on top, so quick calls don't need to build a spec by hand.
    blocked:
        Optional boolean node mask of pre-assigned users (never
        candidates for any ad) — per-query data, not part of the spec.
    session:
        An :class:`~repro.api.session.AllocationSession` to solve
        through; its warm caches (RR stores, pagerank orders, worker
        pool) are used and extended.  Prefer calling
        ``session.solve(...)``, which validates the instance binding.
    rng:
        A pre-seeded generator (anything ``repro._rng.as_generator``
        accepts) overriding ``spec.seed`` for this call.  Specs carry
        only JSON-able integer seeds; this is the escape hatch for
        callers that thread live generators.

    For the same seed this is bit-identical to the legacy wrapper of
    the same algorithm (``ti_csrm(...)`` etc.) — the wrappers are now
    shims over this function.  The fully resolved spec is echoed into
    ``result.extras["engine_spec"]``.
    """
    definition, resolved = resolve_spec(algorithm, spec, **overrides)
    warm = None
    if session is not None:
        warm = session._warm_state_for(instance)
        resolved = session._pin_spec(resolved)
    engine_kwargs = resolved.engine_kwargs()
    if rng is not None:
        engine_kwargs["seed"] = rng
        # A live generator ran, not the spec's integer seed — the echo
        # must not claim a reproducible seed that wasn't used.
        resolved = resolved.override(seed=None)
    engine = TIEngine(
        instance,
        candidate_rule=definition.candidate_rule,
        selector=definition.selector,
        blocked=blocked,
        algorithm_name=definition.display(resolved),
        warm=warm,
        **engine_kwargs,
    )
    result = engine.run()
    if warm is not None:
        # Warm mode stores every ad's sets in shared, prob-keyed stores
        # (see TIEngine); echo what actually ran, not what was asked.
        resolved = resolved.override(share_samples=True)
    result.extras["engine_spec"] = resolved.to_dict()
    if session is not None:
        session._record_solve(result)
    return result


def legacy_solve(
    instance: RMInstance,
    algorithm: str,
    seed,
    *,
    blocked=None,
    **spec_fields,
) -> AllocationResult:
    """Shared body of the legacy ``ti_*``/``pagerank_*`` wrappers.

    Compiles keyword knobs into an :class:`EngineSpec` and delegates to
    :func:`solve`.  *seed* keeps the wrappers' historical contract:
    integers (and ``None``) become the spec's JSON-able seed; live
    generators ride the ``rng`` escape hatch (the echoed spec then
    records ``seed: null`` — a generator's state is not serializable).
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        spec = EngineSpec(seed=None if seed is None else int(seed), **spec_fields)
        return solve(instance, algorithm, spec, blocked=blocked)
    return solve(instance, algorithm, EngineSpec(**spec_fields), blocked=blocked, rng=seed)
