"""The algorithm registry: named ``(candidate rule, selector)`` pairs.

The paper's four Section-5 algorithms differ in exactly two lines of
Algorithm 2 — how each ad's candidate node is chosen (line 7) and how
the winning (node, ad) pair is selected among the candidates (line 9).
The registry makes that observation the architecture: an algorithm *is*
an :class:`AlgorithmDef` data entry naming its two rules, and the four
paper algorithms are pre-registered entries rather than hand-copied
wrapper functions.

Rules may be the engine's built-in strings (candidate rules
``"ca"``/``"cs"``/``"pagerank"``, selectors
``"revenue"``/``"rate"``/``"round_robin"``) **or** user callables, so
new variants plug in without touching :class:`~repro.core.ti_engine.TIEngine`:

* a candidate rule callable has signature ``rule(engine, ad) -> node | None``
  (return the candidate node id for *ad*, or ``None`` when the ad has no
  candidate; it may set ``engine._states[ad].done``);
* a selector callable has signature
  ``select(engine, candidates) -> candidate | None`` where *candidates*
  is a list of ``(ad, node, marginal_revenue, marginal_payment)``
  tuples and the return value must be one of them (or ``None`` to stop).

Lazy candidate caching is automatically disabled for callable candidate
rules (the engine cannot prove the CELF invalidation argument for
arbitrary rules), matching the windowed-CS treatment.

Registered names are shared state for the whole process: the harness,
the grid runner and the CLI all resolve algorithms here, so a custom
registration is immediately runnable from a grid spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AllocationError
from repro.api.spec import EngineSpec
from repro.core.ti_engine import validate_rules


@dataclass(frozen=True)
class AlgorithmDef:
    """One registered algorithm: a name plus its two Algorithm-2 rules.

    ``spec_overrides`` are engine-spec fields the algorithm pins on
    every solve (applied *over* the caller's spec — they define the
    algorithm, e.g. a fixed window).  ``supports_window`` gates whether
    a caller-supplied ``window`` reaches the engine; the built-in
    ``"ca"``/``"pagerank"`` rules ignore windows, so passing one would
    only disable lazy caching for no behavioral change — the resolver
    clears it instead, mirroring the legacy harness.  ``label`` maps the
    resolved spec to the display name stamped on results (TI-CSRM
    appends its window).
    """

    name: str
    candidate_rule: str | Callable
    selector: str | Callable
    spec_overrides: dict = field(default_factory=dict)
    supports_window: bool = False
    label: Callable[[EngineSpec], str] | None = None

    def display(self, spec: EngineSpec) -> str:
        """The result label for a run under *spec*."""
        if self.label is not None:
            return self.label(spec)
        return self.name


_REGISTRY: dict[str, AlgorithmDef] = {}


def register_algorithm(
    name: str,
    candidate_rule: str | Callable,
    selector: str | Callable,
    *,
    spec_overrides: dict | None = None,
    supports_window: bool | None = None,
    label: Callable[[EngineSpec], str] | None = None,
    replace: bool = False,
) -> AlgorithmDef:
    """Register (and return) a named algorithm.

    *candidate_rule* / *selector* are built-in rule strings or callables
    (see the module docstring for callable signatures).
    *spec_overrides* is validated against :class:`EngineSpec`'s fields
    immediately, so a typo fails at registration, not at first solve.
    *supports_window* defaults to ``True`` for the ``"cs"`` rule and for
    callables, ``False`` otherwise.  Re-registering an existing name
    requires ``replace=True``; the built-in paper algorithms cannot be
    replaced or unregistered.
    """
    if not name or not isinstance(name, str):
        raise AllocationError(f"algorithm name must be a non-empty string, got {name!r}")
    validate_rules(candidate_rule, selector)
    if name in _REGISTRY and not replace:
        raise AllocationError(
            f"algorithm {name!r} is already registered; pass replace=True to override"
        )
    if name in BUILTIN_ALGORITHMS and name in _REGISTRY:
        raise AllocationError(f"cannot replace built-in algorithm {name!r}")
    overrides = dict(spec_overrides or {})
    if overrides:
        # Validate eagerly: applying them to a default spec exercises the
        # same key/value checks every solve will.
        try:
            EngineSpec().override(**overrides)
        except Exception as exc:
            raise AllocationError(
                f"invalid spec_overrides for algorithm {name!r}: {exc}"
            ) from None
    if supports_window is None:
        supports_window = candidate_rule == "cs" or callable(candidate_rule)
    definition = AlgorithmDef(
        name=name,
        candidate_rule=candidate_rule,
        selector=selector,
        spec_overrides=overrides,
        supports_window=bool(supports_window),
        label=label,
    )
    _REGISTRY[name] = definition
    return definition


def get_algorithm(algorithm: str | AlgorithmDef) -> AlgorithmDef:
    """Resolve an algorithm by name (or pass an :class:`AlgorithmDef` through)."""
    if isinstance(algorithm, AlgorithmDef):
        return algorithm
    try:
        return _REGISTRY[algorithm]
    except KeyError:
        raise AllocationError(
            f"unknown algorithm {algorithm!r}; registered: {list(_REGISTRY)}"
        ) from None


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names, built-ins first, in registration order."""
    return tuple(_REGISTRY)


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (the paper's built-ins are protected)."""
    if name in BUILTIN_ALGORITHMS:
        raise AllocationError(f"cannot unregister built-in algorithm {name!r}")
    _REGISTRY.pop(name, None)


#: The paper's four Section-5 algorithms, always registered.
BUILTIN_ALGORITHMS = ("TI-CSRM", "TI-CARM", "PageRank-GR", "PageRank-RR")


def _ticsrm_label(spec: EngineSpec) -> str:
    return "TI-CSRM" if spec.window is None else f"TI-CSRM({spec.window})"


register_algorithm("TI-CSRM", "cs", "rate", label=_ticsrm_label)
register_algorithm("TI-CARM", "ca", "revenue")
register_algorithm("PageRank-GR", "pagerank", "revenue")
register_algorithm("PageRank-RR", "pagerank", "round_robin")
