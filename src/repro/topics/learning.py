"""Estimating TIC parameters from cascade logs.

The paper's FLIXSTER probabilities come from Barbieri et al.'s MLE fit of
the TIC model to movie-rating logs.  Those logs are unavailable offline,
so the experiments use a synthetic ground-truth tensor — but the learning
pipeline itself is part of the substrate the paper depends on, so this
module provides it end-to-end: :func:`generate_cascade_log` produces
timestamped propagation traces under a known model, and
:func:`estimate_tic_model` fits per-topic arc probabilities back out of
them with a credit-assignment estimator (a single M-step of the MLE with
responsibilities fixed to the item's topic distribution; Jaccard-style
counting in the spirit of Goyal et al. / Barbieri et al.).

For an arc ``(u, v)`` and topic ``z`` the estimator is

    ``p̂^z_{u,v} = Σ_casc γ^z · 1[u activated v] / Σ_casc γ^z · 1[u exposed v]``

where "u exposed v" means *u* became active while *v* was inactive (one
IC trial happened on the arc), and "u activated v" credits each of the
possibly-multiple step-``t`` in-neighbors of a step-``t+1`` activation
with a fractional success.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import as_generator
from repro.errors import TopicModelError
from repro.graph.digraph import DiGraph
from repro.diffusion.simulate import simulate_cascade_with_steps
from repro.topics.distribution import TopicDistribution
from repro.topics.edge_probs import TICModel


@dataclass
class CascadeLog:
    """A batch of cascades: items (topic mixtures) and activation traces."""

    graph: DiGraph
    items: list[TopicDistribution] = field(default_factory=list)
    # traces[k] is the per-node activation step vector of cascade k;
    # item_of[k] indexes into items.
    traces: list[np.ndarray] = field(default_factory=list)
    item_of: list[int] = field(default_factory=list)

    def add(self, item_index: int, steps: np.ndarray) -> None:
        """Record one cascade trace for item *item_index*."""
        if not 0 <= item_index < len(self.items):
            raise TopicModelError(f"item index {item_index} out of range")
        if steps.shape != (self.graph.n,):
            raise TopicModelError("trace must have one step entry per node")
        self.traces.append(np.asarray(steps, dtype=np.int64))
        self.item_of.append(int(item_index))

    def __len__(self) -> int:
        return len(self.traces)


def generate_cascade_log(
    graph: DiGraph,
    model: TICModel,
    items: list[TopicDistribution],
    cascades_per_item: int = 20,
    seeds_per_cascade: int = 3,
    rng=None,
) -> CascadeLog:
    """Simulate a training log under a ground-truth :class:`TICModel`."""
    if cascades_per_item < 1:
        raise TopicModelError(f"cascades_per_item must be >= 1, got {cascades_per_item}")
    if not 1 <= seeds_per_cascade <= graph.n:
        raise TopicModelError(
            f"seeds_per_cascade must be in [1, {graph.n}], got {seeds_per_cascade}"
        )
    rng = as_generator(rng)
    log = CascadeLog(graph, items=list(items))
    for item_index, item in enumerate(log.items):
        probs = model.ad_probabilities(item)
        for _ in range(cascades_per_item):
            starters = rng.choice(graph.n, size=seeds_per_cascade, replace=False)
            steps = simulate_cascade_with_steps(graph, probs, starters, rng)
            log.add(item_index, steps)
    return log


def estimate_tic_model(
    log: CascadeLog,
    n_topics: int,
    smoothing: float = 1.0,
) -> TICModel:
    """Fit per-topic arc probabilities from *log* by weighted counting.

    *smoothing* adds Laplace pseudo-trials so unexposed arcs shrink toward
    zero rather than being undefined.  Returns a :class:`TICModel` on the
    log's graph.
    """
    graph = log.graph
    if n_topics < 1:
        raise TopicModelError(f"need at least one topic, got {n_topics}")
    for item in log.items:
        if item.n_topics != n_topics:
            raise TopicModelError("log items use a different number of topics")
    successes = np.zeros((n_topics, graph.m), dtype=np.float64)
    exposures = np.zeros((n_topics, graph.m), dtype=np.float64)

    indptr = graph.out_indptr
    heads = graph.out_heads
    for trace, item_index in zip(log.traces, log.item_of):
        gamma = log.items[item_index].gamma
        for u in range(graph.n):
            t_u = trace[u]
            if t_u < 0:
                continue
            lo, hi = indptr[u], indptr[u + 1]
            for k in range(lo, hi):
                v = heads[k]
                t_v = trace[v]
                # u's activation exposes v iff v was not already active
                # when u fired: exactly one IC coin flip on arc (u, v).
                if t_v < 0 or t_v > t_u:
                    exposures[:, k] += gamma
                    if t_v == t_u + 1:
                        # Fractional credit: v may have several step-t_u
                        # parents; each earns 1/#parents of the success.
                        parents = 0
                        for w in graph.in_neighbors(v):
                            if trace[w] == t_u:
                                parents += 1
                        successes[:, k] += gamma / max(parents, 1)
    tensor = successes / (exposures + smoothing)
    return TICModel(graph, np.clip(tensor, 0.0, 1.0))
