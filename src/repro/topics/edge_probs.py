"""Topic-aware influence probabilities on graph edges.

Under the TIC model (Barbieri et al.) every arc ``(u, v)`` carries one
probability per latent topic, ``p^z_{u,v}``, and an ad with topic
distribution ``γ⃗_i`` propagates along the arc with the mixture

    ``p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}``            (Eq. 1)

:class:`TICModel` stores the ``L × m`` tensor and evaluates the mixture;
the module-level factories build the standard single-topic probability
assignments used in the paper's experiments (Weighted Cascade for
EPINIONS/DBLP/LIVEJOURNAL; trivalency and uniform as common variants).
All per-edge arrays are indexed by the graph's canonical edge ids.
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import TopicModelError
from repro.graph.digraph import DiGraph
from repro.topics.distribution import TopicDistribution


class TICModel:
    """Per-topic edge probabilities plus Eq. 1 mixing.

    Parameters
    ----------
    graph:
        The social graph the tensor is defined on.
    tensor:
        Array of shape ``(L, m)``; ``tensor[z, e]`` is ``p^z`` for edge *e*
        in canonical order.  Values must lie in ``[0, 1]``.
    """

    __slots__ = ("graph", "tensor")

    def __init__(self, graph: DiGraph, tensor) -> None:
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.ndim != 2 or tensor.shape[1] != graph.m:
            raise TopicModelError(
                f"tensor must have shape (L, {graph.m}), got {tensor.shape}"
            )
        if tensor.size and (tensor.min() < 0.0 or tensor.max() > 1.0):
            raise TopicModelError("edge probabilities must lie in [0, 1]")
        self.graph = graph
        self.tensor = tensor

    @property
    def n_topics(self) -> int:
        """Number of latent topics ``L``."""
        return int(self.tensor.shape[0])

    def ad_probabilities(self, distribution: TopicDistribution) -> np.ndarray:
        """Ad-specific edge probabilities ``p^i`` via Eq. 1 (length ``m``)."""
        if distribution.n_topics != self.n_topics:
            raise TopicModelError(
                f"ad has {distribution.n_topics} topics, model has {self.n_topics}"
            )
        return distribution.gamma @ self.tensor

    def topic_probabilities(self, topic: int) -> np.ndarray:
        """The raw probability vector of one latent topic."""
        if not 0 <= topic < self.n_topics:
            raise TopicModelError(f"topic {topic} out of range [0, {self.n_topics})")
        return self.tensor[topic].copy()


def weighted_cascade(graph: DiGraph) -> np.ndarray:
    """Weighted-Cascade probabilities ``p_{u,v} = 1 / indegree(v)`` [24].

    Used by the paper for EPINIONS, DBLP and LIVEJOURNAL (all ads share
    these probabilities, i.e. ``L = 1`` and every pair of ads is in pure
    competition).
    """
    indeg = graph.in_degrees().astype(np.float64)
    _, heads = graph.edge_array()
    return 1.0 / indeg[heads]


def weighted_cascade_capped(graph: DiGraph, cap: float = 0.2) -> np.ndarray:
    """Weighted Cascade with probabilities capped at *cap*.

    Pure WC assigns probability 1 to arcs into indegree-1 nodes, which on
    *small* graphs chains into a near-deterministic giant core: the top
    singleton spread reaches 15–20% of ``n``, a finite-size artifact the
    paper's 76K–4.8M-node graphs do not exhibit in relative terms.
    Capping the arc probability restores the paper's regime (top spreads
    of a few percent of ``n``) while preserving WC's degree-driven
    heterogeneity.  Used by the synthetic analog datasets (DESIGN.md §4).
    """
    if not 0.0 < cap <= 1.0:
        raise TopicModelError(f"cap must be in (0, 1], got {cap}")
    return np.minimum(weighted_cascade(graph), cap)


def uniform_probabilities(graph: DiGraph, p: float) -> np.ndarray:
    """Constant probability *p* on every arc."""
    if not 0.0 <= p <= 1.0:
        raise TopicModelError(f"probability must be in [0, 1], got {p}")
    return np.full(graph.m, p, dtype=np.float64)


def trivalency(graph: DiGraph, seed=None, levels=(0.1, 0.01, 0.001)) -> np.ndarray:
    """Trivalency model: each arc draws uniformly from *levels*."""
    rng = as_generator(seed)
    levels = np.asarray(levels, dtype=np.float64)
    if levels.min() < 0.0 or levels.max() > 1.0:
        raise TopicModelError("trivalency levels must lie in [0, 1]")
    return levels[rng.integers(0, levels.size, size=graph.m)]


def random_tic_model(
    graph: DiGraph,
    n_topics: int,
    seed=None,
    levels=(0.1, 0.01, 0.001),
    affinity_concentration: float = 0.3,
) -> TICModel:
    """Ground-truth TIC tensor standing in for MLE-learned probabilities.

    The paper uses probabilities learned from Flixster logs with ``L = 10``
    topics.  Offline we synthesize a comparable tensor: every edge gets a
    Dirichlet *topic affinity* (sparse, so most edges are influential in
    few topics) which scales a trivalency-style base probability.  High
    affinity concentrates influence in a topic, reproducing the
    topic-specific influencer structure the incentive model keys on.
    """
    if n_topics < 1:
        raise TopicModelError(f"need at least one topic, got {n_topics}")
    rng = as_generator(seed)
    base = trivalency(graph, rng, levels)
    # Edge-topic affinities: sparse Dirichlet rows, scaled so the peak
    # affinity maps to the full base probability.
    affinities = rng.dirichlet(
        np.full(n_topics, affinity_concentration), size=graph.m
    ).T  # (L, m)
    if graph.m:
        peak = affinities.max(axis=0)
        peak[peak <= 0] = 1.0
        tensor = np.clip(affinities / peak * base, 0.0, 1.0)
    else:
        tensor = np.zeros((n_topics, 0))
    return TICModel(graph, tensor)
