"""Topic model: ad topic distributions and topic-aware edge probabilities."""

from repro.topics.distribution import (
    TopicDistribution,
    uniform_distribution,
    single_topic,
    random_distribution,
    pure_competition_ads,
)
from repro.topics.edge_probs import (
    TICModel,
    weighted_cascade,
    uniform_probabilities,
    trivalency,
    random_tic_model,
)
from repro.topics.learning import (
    CascadeLog,
    generate_cascade_log,
    estimate_tic_model,
)

__all__ = [
    "TopicDistribution",
    "uniform_distribution",
    "single_topic",
    "random_distribution",
    "pure_competition_ads",
    "TICModel",
    "weighted_cascade",
    "uniform_probabilities",
    "trivalency",
    "random_tic_model",
    "CascadeLog",
    "generate_cascade_log",
    "estimate_tic_model",
]
