"""Ad topic distributions over the latent topic space.

The host maps each ad ``i`` to a distribution ``γ⃗_i`` with
``γ^z_i = Pr(Z = z | i)`` and ``Σ_z γ^z_i = 1`` (Section 2).  The
experiment setup in Section 5 arranges ads in *pure competition* pairs:
two ads share a distribution putting 0.91 on one latent topic and 0.01 on
each of the other nine (for L = 10), so every pair fights over the same
influencers while distinct pairs live in disjoint topical markets.
:func:`pure_competition_ads` reproduces that construction for any ``L``.
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import TopicModelError


class TopicDistribution:
    """A validated probability vector over ``L`` latent topics."""

    __slots__ = ("gamma",)

    def __init__(self, gamma) -> None:
        gamma = np.asarray(gamma, dtype=np.float64)
        if gamma.ndim != 1 or gamma.size == 0:
            raise TopicModelError("topic distribution must be a non-empty 1-D vector")
        if np.any(gamma < -1e-12):
            raise TopicModelError("topic probabilities must be non-negative")
        total = gamma.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise TopicModelError(f"topic probabilities must sum to 1, got {total:.6f}")
        self.gamma = np.clip(gamma, 0.0, None)
        self.gamma = self.gamma / self.gamma.sum()

    @property
    def n_topics(self) -> int:
        """Number of latent topics ``L``."""
        return int(self.gamma.size)

    def dominant_topic(self) -> int:
        """Index of the highest-probability topic."""
        return int(np.argmax(self.gamma))

    def overlap(self, other: "TopicDistribution") -> float:
        """Bhattacharyya-style overlap in ``[0, 1]``; 1 means identical support use."""
        if self.n_topics != other.n_topics:
            raise TopicModelError("cannot compare distributions over different L")
        return float(np.sqrt(self.gamma * other.gamma).sum())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopicDistribution):
            return NotImplemented
        return np.allclose(self.gamma, other.gamma)

    def __hash__(self) -> int:
        return hash(np.round(self.gamma, 12).tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TopicDistribution({np.array2string(self.gamma, precision=3)})"


def uniform_distribution(n_topics: int) -> TopicDistribution:
    """The uniform distribution over ``n_topics`` topics."""
    if n_topics < 1:
        raise TopicModelError(f"need at least one topic, got {n_topics}")
    return TopicDistribution(np.full(n_topics, 1.0 / n_topics))


def single_topic(n_topics: int, topic: int) -> TopicDistribution:
    """A point mass on *topic* (reduces TIC to per-topic IC)."""
    if not 0 <= topic < n_topics:
        raise TopicModelError(f"topic {topic} out of range [0, {n_topics})")
    gamma = np.zeros(n_topics)
    gamma[topic] = 1.0
    return TopicDistribution(gamma)


def random_distribution(n_topics: int, seed=None, concentration: float = 1.0) -> TopicDistribution:
    """A Dirichlet(*concentration*) draw over ``n_topics`` topics."""
    rng = as_generator(seed)
    return TopicDistribution(rng.dirichlet(np.full(n_topics, concentration)))


def peaked_distribution(n_topics: int, topic: int, peak: float = 0.91) -> TopicDistribution:
    """Put *peak* mass on *topic* and spread the rest evenly (paper's 0.91/0.01)."""
    if not 0 <= topic < n_topics:
        raise TopicModelError(f"topic {topic} out of range [0, {n_topics})")
    if not 0.0 < peak <= 1.0:
        raise TopicModelError(f"peak must be in (0, 1], got {peak}")
    if n_topics == 1:
        return single_topic(1, 0)
    gamma = np.full(n_topics, (1.0 - peak) / (n_topics - 1))
    gamma[topic] = peak
    return TopicDistribution(gamma)


def pure_competition_ads(
    n_ads: int,
    n_topics: int = 10,
    peak: float = 0.91,
    seed=None,
) -> list[TopicDistribution]:
    """Topic distributions for *n_ads* ads arranged in pure-competition pairs.

    Consecutive ads share a peaked distribution on a randomly chosen topic,
    and distinct pairs use distinct topics (Section 5's FLIXSTER setup:
    h = 10 ads from 5 distributions, every two ads in pure competition).
    When ``n_ads`` is odd the final ad gets its own topic.
    """
    if n_ads < 1:
        raise TopicModelError(f"need at least one ad, got {n_ads}")
    n_pairs = (n_ads + 1) // 2
    if n_pairs > n_topics:
        raise TopicModelError(
            f"{n_ads} ads need {n_pairs} distinct topics but only {n_topics} exist"
        )
    rng = as_generator(seed)
    topics = rng.choice(n_topics, size=n_pairs, replace=False)
    ads: list[TopicDistribution] = []
    for pair_index in range(n_pairs):
        dist = peaked_distribution(n_topics, int(topics[pair_index]), peak)
        ads.append(dist)
        if len(ads) < n_ads:
            ads.append(dist)
    return ads
