"""Random-number-generation helpers.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None`` (non-deterministic), an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
forms so modules never construct generators ad hoc, which keeps experiments
reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` / ``SeedSequence`` for a
        deterministic stream, or a ``Generator`` which is returned as-is
        (allowing callers to thread one stream through many components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split *rng* into *count* independent child generators.

    Used when per-advertiser sampling must be statistically independent
    (e.g. one RR-set stream per ad) while remaining reproducible from a
    single top-level seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
