"""Pluggable RR sampling backends: serial and shared-memory parallel.

Every consumer of RR sets — :class:`~repro.core.ti_engine.TIEngine`,
TIM's KPT estimator, the static RR oracle, the singleton-spread pricer,
the benchmark harness — draws batches through one seam, a
:class:`SamplerBackend`, instead of touching :class:`RRSampler`
directly.  Two implementations exist:

* :class:`SerialBackend` — a thin delegate around :class:`RRSampler`.
  Bit-identical to calling the sampler yourself: same RNG stream, same
  arrays.
* :class:`ParallelBackend` — fans :func:`sample_batch_flat_kernel` out
  over a persistent pool of worker processes.  The graph's reverse CSR
  (``in_indptr``, ``in_tails``) and each registered probability vector
  (already permuted to in-CSR slot order) live in
  :mod:`multiprocessing.shared_memory` blocks created once per pool;
  workers attach by name and never copy them.  A batch of ``count``
  sets is split into one shard per worker (balanced, a pure function of
  ``(count, workers)``); each shard samples under its own
  :class:`numpy.random.SeedSequence`-spawned generator, and the shards
  are merged back into a single CSR pair in shard order.

RNG-stream contract (docs/ARCHITECTURE.md §RNG):

* ``workers == 1`` executes in-process with the caller's generator —
  **bit-identical** to :class:`SerialBackend` (and hence to
  :meth:`RRSampler.sample_batch_flat`).
* ``workers >= 2`` consumes exactly **one** ``rng.integers`` draw from
  the caller's generator per batch, to derive a root
  :class:`~numpy.random.SeedSequence`; shard ``k`` samples with
  ``default_rng(root.spawn(shards)[k])``.  The output is a valid
  i.i.d. RR sample from the same distribution, deterministic for a
  fixed ``(seed, workers)`` pair, but *different* from the serial
  stream — the same trade the flat batch sampler already made against
  the legacy per-set sampler.

One pool (one set of worker processes + shared-memory segments) can
serve many ads: probability vectors are registered with
:meth:`SharedGraphPool.register_probs`, which dedups by content, so a
fully competitive marketplace shares one block.  Pools must be
:meth:`closed <SharedGraphPool.close>` (or used as context managers) to
release the shared memory; backends that own their pool close it with
themselves, and a single module-level :mod:`atexit` guard closes any
pool still alive at interpreter exit.

Fault tolerance (docs/ARCHITECTURE.md §11):

* :meth:`SharedGraphPool.sample_shards` *supervises* the batch — it
  polls worker liveness while collecting results, respawns crashed
  workers and terminate-respawns hung ones (no result within
  ``heartbeat_s``), and re-dispatches exactly the missing shards.
  Because every shard carries its own :class:`~numpy.random.SeedSequence`,
  a re-executed shard reproduces the lost result bit for bit, so
  recovery never changes the ``(seed, workers)`` output contract.
* Respawns are bounded (``max_respawns``); past the budget the pool
  closes itself and raises :class:`~repro.errors.PoolDegradedError`.
  :class:`ParallelBackend` catches that — and pool/shared-memory
  construction failures (:class:`~repro.errors.WorkerCrashError`) —
  and **degrades** to in-process serial execution of the *same shard
  plan*: still bit-identical per ``(seed, workers)``, just without
  process parallelism.  Degradation is recorded in the backend's
  ``fault_counters`` (``pool_degraded``) and its ``degraded`` flag, so
  provenance survives into session stats and manifests.
* Shared-memory segments are named ``repro_<pid>_...``; the first pool
  a process creates runs :func:`reap_orphan_shm`, unlinking segments
  left behind by dead processes (a crashed run cannot permanently leak
  ``/dev/shm``).
* Faults for chaos tests are injected deterministically via
  :mod:`repro.faults` (seams ``worker.kill``, ``shard.delay``,
  ``shm.attach``); with no plan installed the seams are no-ops.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing as mp
import os
import queue as _queue
import re
import secrets
import sys
import time
import weakref
from abc import ABC, abstractmethod
from multiprocessing import shared_memory

import numpy as np

from repro import faults as _faults
from repro._rng import as_generator
from repro.errors import EstimationError, PoolDegradedError, WorkerCrashError
from repro.graph.digraph import DiGraph
from repro.rrset.kernels import resolve_batch_kernel, resolve_kernel
from repro.rrset.sampler import (
    DEFAULT_CHUNK_BYTES,
    RRSampler,
    batch_widths,
    sample_batch_flat_kernel,
    validate_edge_probs,
)

BACKENDS = ("serial", "parallel")

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Counter keys every pool/backend fault-counters dict carries.
FAULT_COUNTER_KEYS = ("worker_respawns", "shards_recovered", "pool_degraded")


def new_fault_counters() -> dict:
    """A zeroed recovery/degradation counter dict (see FAULT_COUNTER_KEYS)."""
    return {key: 0 for key in FAULT_COUNTER_KEYS}


def default_workers() -> int:
    """Worker count used when a parallel backend is requested without one."""
    return max(os.cpu_count() or 1, 1)


def resolve_backend(backend: str, workers: int | None) -> tuple[str, int | None]:
    """Normalize a ``(backend, workers)`` spec to its effective form.

    The one place the selection rule lives (engine, oracle, factory and
    CLI all call it): ``workers`` > 1 upgrades ``"serial"`` to
    ``"parallel"``; a parallel spec with ``workers`` of ``None``/0
    resolves to :func:`default_workers`.  Returns the effective
    ``(backend, workers)`` — ``workers`` is a positive ``int`` for
    parallel, ``None`` for serial.
    """
    if backend not in BACKENDS:
        raise EstimationError(f"unknown backend {backend!r}; options: {BACKENDS}")
    if workers is not None and workers < 0:
        raise EstimationError(f"workers must be non-negative, got {workers}")
    if backend == "serial" and (workers or 0) > 1:
        backend = "parallel"
    if backend == "parallel":
        return backend, int(workers) if workers else default_workers()
    return "serial", None


def shard_counts(count: int, shards: int) -> list[int]:
    """Balanced shard sizes for a *count*-set batch: a pure function of
    ``(count, shards)`` so parallel streams are reproducible.

    The first ``count % shards`` shards get one extra set; zero-size
    shards are dropped, so fewer than *shards* entries may be returned.
    """
    if shards < 1:
        raise EstimationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(count, shards)
    sizes = [base + (1 if k < extra else 0) for k in range(shards)]
    return [s for s in sizes if s > 0]


def merge_shards(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-shard ``(members, indptr)`` CSR pairs in order.

    Pure offset arithmetic — the set contents are never re-split, so the
    result can be handed to :meth:`RRCollection.add_sets_flat` /
    :meth:`SharedRRStore.extend_flat` as one batch.
    """
    if not parts:
        return _EMPTY_I64.copy(), np.zeros(1, dtype=np.int64)
    members = np.concatenate([m for m, _ in parts])
    offsets = np.cumsum([0] + [int(m.size) for m, _ in parts])
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64)]
        + [p[1:] + off for (_, p), off in zip(parts, offsets)]
    ).astype(np.int64)
    return members, indptr


class SamplerBackend(ABC):
    """Batch RR-set sampling seam shared by all consumers.

    Implementations expose the same surface as the flat half of
    :class:`RRSampler` — :meth:`sample_batch_flat`,
    :meth:`sample_batch`, :meth:`sample_batch_widths` — plus a
    :meth:`close` for backends holding OS resources.  ``graph`` and
    ``probs`` (canonical edge order, ``float64[m]``) are readable
    attributes on every backend.
    """

    graph: DiGraph
    probs: np.ndarray

    @abstractmethod
    def sample_batch_flat(
        self, count: int, rng=None, *, roots=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw *count* RR sets as one flat ``(members, indptr)`` CSR pair.

        Same output contract as :meth:`RRSampler.sample_batch_flat`:
        both arrays ``int64``, freshly allocated, owned by the caller.
        *roots*, when given (``int64[count]``), pins each set's root and
        skips the root draw — the incremental-maintenance resample path
        (docs/ARCHITECTURE.md §14); the RNG then starts directly at the
        first coin-flip vector.
        """

    def sample_batch(self, count: int, rng=None) -> list[np.ndarray]:
        """Draw *count* RR sets as a list of member arrays (convenience)."""
        members, indptr = self.sample_batch_flat(count, rng)
        return [members[indptr[k] : indptr[k + 1]].copy() for k in range(count)]

    def sample_batch_widths(self, count: int, rng=None) -> np.ndarray:
        """Widths (in-arc counts into members) of *count* fresh RR sets."""
        members, indptr = self.sample_batch_flat(count, rng)
        return batch_widths(self.graph.in_indptr, members, indptr)

    def close(self) -> None:
        """Release backend resources (idempotent; no-op for serial)."""

    def __enter__(self) -> "SamplerBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(SamplerBackend):
    """In-process backend delegating to one :class:`RRSampler`.

    Bit-identical to the bare sampler for every method and RNG stream
    (the width computation is the shared :func:`batch_widths` on both
    sides); exists so code written against the seam pays nothing for it.
    The ``kernel`` seam (:mod:`repro.rrset.kernels`) passes straight
    through to the sampler; both kernels are bit-identical per seed.
    """

    def __init__(self, graph: DiGraph, probs, *, kernel: str = "auto") -> None:
        self._sampler = RRSampler(graph, probs, kernel=kernel)
        self.kernel = self._sampler.kernel
        self.graph = graph
        self.probs = np.asarray(probs, dtype=np.float64)

    def sample_batch_flat(
        self, count: int, rng=None, *, roots=None
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._sampler.sample_batch_flat(count, rng, roots=roots)


# ----------------------------------------------------------------------
# Shared-memory worker pool
# ----------------------------------------------------------------------
def _preferred_start_method() -> str:
    """``fork`` on Linux (cheap, tracker-safe), else ``spawn``.

    Fork is restricted to Linux deliberately: on macOS a forked child
    touching the Objective-C runtime (numpy/Accelerate) can abort —
    CPython itself switched the macOS default to spawn in 3.8.
    """
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without re-registering it for cleanup.

    Python 3.13+ supports ``track=False``; older versions fall back to
    plain attach, which is safe under the ``fork`` start method (one
    resource tracker, the creator unregisters on unlink).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _worker_main(
    task_queue,
    result_queue,
    topo: tuple[str, str, int, int],
    chunk_bytes: int,
    kernel: str = "numpy",
) -> None:  # pragma: no cover - runs in child processes
    """Worker loop: attach shared CSR views, sample shards until told to stop.

    Tasks are ``(task_id, prob_shm_name, count, seed_seq, roots, fault)``;
    results are ``(task_id, members, indptr)`` (or ``(task_id, exc)`` on
    failure).  A ``None`` task shuts the worker down.  ``roots`` is
    ``None`` for fresh sampling or an ``int64[count]`` array pinning the
    shard's roots (the incremental-resample path).  ``fault`` is
    ``None`` in production; chaos tests inject ``("kill",)`` (the worker
    exits mid-batch without answering) or ``("delay", seconds)`` (the
    worker sleeps before sampling, simulating a hang).

    *kernel* arrives pre-resolved (``"numpy"``/``"numba"``) from the
    pool; the implementation function is looked up once here, so a numba
    worker JIT-compiles at most once per process, on its first shard.
    """
    indptr_name, tails_name, n, m = topo
    kernel_fn = resolve_batch_kernel(kernel)
    segments = []
    try:
        indptr_shm = _attach_shm(indptr_name)
        tails_shm = _attach_shm(tails_name)
        segments += [indptr_shm, tails_shm]
        in_indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=indptr_shm.buf)
        in_tails = np.ndarray((m,), dtype=np.int64, buffer=tails_shm.buf)
        probs_cache: dict[str, np.ndarray] = {}
        while True:
            task = task_queue.get()
            if task is None:
                break
            task_id, prob_name, count, seed_seq, roots, fault = task
            try:
                if fault is not None:
                    if fault[0] == "kill":
                        os._exit(17)  # simulate a crash: no result, no cleanup
                    elif fault[0] == "delay":
                        time.sleep(float(fault[1]))
                if prob_name not in probs_cache:
                    shm = _attach_shm(prob_name)
                    segments.append(shm)
                    probs_cache[prob_name] = np.ndarray(
                        (m,), dtype=np.float64, buffer=shm.buf
                    )
                members, indptr = kernel_fn(
                    n,
                    in_indptr,
                    in_tails,
                    probs_cache[prob_name],
                    count,
                    as_generator(seed_seq),
                    chunk_bytes,
                    roots,
                )
                result_queue.put((task_id, members, indptr))
            except Exception as exc:  # surface, don't hang the parent
                result_queue.put((task_id, exc))
    finally:
        for shm in segments:
            try:
                shm.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Segment naming, the orphan reaper and the atexit safety net
# ----------------------------------------------------------------------
SHM_PREFIX = "repro"

_SHM_SEQ = itertools.count()
_SHM_NAME_RE = re.compile(rf"^{SHM_PREFIX}_(\d+)_\d+_[0-9a-f]+$")


def _shm_name() -> str:
    """A fresh ``repro_<pid>_<seq>_<rand>`` segment name.

    Embedding the creator's pid is what makes orphans *identifiable*:
    :func:`reap_orphan_shm` unlinks any repro-tagged segment whose
    creator is no longer alive.
    """
    return f"{SHM_PREFIX}_{os.getpid()}_{next(_SHM_SEQ)}_{secrets.token_hex(4)}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists (owned by someone else) — leave it alone
    return True


def reap_orphan_shm(directory: str = "/dev/shm") -> list[str]:
    """Unlink ``repro``-tagged shared-memory segments of dead processes.

    Scans *directory* (the Linux tmpfs backing POSIX shared memory) for
    ``repro_<pid>_...`` segments whose creating pid no longer exists and
    removes them; returns the reaped names.  Safe to call anytime — live
    processes' segments (including this one's) are never touched, and a
    missing directory (non-Linux) is a no-op.  The first
    :class:`SharedGraphPool` a process creates runs this automatically,
    so a crashed earlier run cannot permanently leak ``/dev/shm``.
    """
    reaped: list[str] = []
    if not os.path.isdir(directory):
        return reaped
    try:
        entries = os.listdir(directory)
    except OSError:  # pragma: no cover - unreadable tmpfs
        return reaped
    for name in entries:
        match = _SHM_NAME_RE.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            reaped.append(name)
        except OSError:  # pragma: no cover - raced with another reaper
            pass
    return reaped


_REAPED_ONCE = False

# All not-yet-closed pools, for the atexit safety net.  A WeakSet so the
# net never pins a pool (or its graph) in memory: a pool that is closed
# and dropped disappears from here on its own.
_LIVE_POOLS: "weakref.WeakSet[SharedGraphPool]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_live_pools() -> None:  # pragma: no cover - interpreter exit
    """atexit safety net: close every pool still alive (idempotent)."""
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


def _track_pool(pool: "SharedGraphPool") -> None:
    global _ATEXIT_REGISTERED, _REAPED_ONCE
    if not _REAPED_ONCE:
        _REAPED_ONCE = True
        reap_orphan_shm()
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(_close_live_pools)
    _LIVE_POOLS.add(pool)


class SharedGraphPool:
    """Persistent worker pool over one graph's shared-memory reverse CSR.

    Created once per (graph, worker count); serves any number of
    probability vectors via :meth:`register_probs` and any number of
    batches via :meth:`sample_shards`.  The topology blocks
    (``in_indptr``, ``in_tails``) are written exactly once; workers map
    them read-only-by-convention.  Not thread-safe: one dispatcher at a
    time (matching the engine's single-threaded loop).

    Supervision parameters
    ----------------------
    heartbeat_s:
        With shards outstanding and *no* result arriving for this many
        seconds, all workers are presumed hung: they are terminated,
        respawned, and the missing shards re-dispatched.  Generous by
        default — a slow-but-alive worker produces results well within
        it for realistic shard sizes.
    max_respawns:
        Total worker respawns (crash or hang) the pool tolerates over
        its lifetime before declaring itself unrecoverable — it then
        closes and raises :class:`~repro.errors.PoolDegradedError`
        (default ``max(2, workers)``).
    counters:
        Optional shared mutable dict to record recovery events in
        (``worker_respawns`` / ``shards_recovered`` /
        ``pool_degraded``); sessions pass their
        :class:`~repro.core.ti_engine.EngineWarmState` counters here so
        recovery is visible in ``session.stats``.  Defaults to a
        pool-private dict, always readable as :attr:`counters`.
    faults:
        Optional :class:`repro.faults.FaultPlan` consulted at the
        ``worker.kill`` / ``shard.delay`` / ``shm.attach`` seams; when
        ``None`` the globally installed plan (usually none) applies.
    kernel:
        Batch-kernel seam (:mod:`repro.rrset.kernels`), resolved once
        here and handed to every worker at spawn, so a numba pool
        compiles once per worker process.  Kernels are bit-identical,
        so recovery (respawn/re-dispatch) never changes output either
        way.
    """

    def __init__(
        self,
        graph: DiGraph,
        workers: int,
        *,
        start_method: str | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        heartbeat_s: float = 30.0,
        max_respawns: int | None = None,
        poll_s: float = 0.25,
        counters: dict | None = None,
        faults=None,
        kernel: str = "auto",
    ) -> None:
        if workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        if graph.n == 0:
            raise EstimationError("cannot sample RR sets from an empty graph")
        self.graph = graph
        self.workers = int(workers)
        self.kernel = resolve_kernel(kernel)
        self.chunk_bytes = int(chunk_bytes)
        self.heartbeat_s = float(heartbeat_s)
        self.max_respawns = (
            max(2, self.workers) if max_respawns is None else int(max_respawns)
        )
        self.poll_s = float(poll_s)
        self.counters = counters if counters is not None else new_fault_counters()
        for key in FAULT_COUNTER_KEYS:
            self.counters.setdefault(key, 0)
        self._faults = faults
        self._ctx = mp.get_context(start_method or _preferred_start_method())
        self._segments: list[shared_memory.SharedMemory] = []
        self._prob_blocks: dict[bytes, str] = {}
        self._procs: list = []
        self._task_counter = 0
        self._respawns_used = 0
        self._closed = False
        self._failed = False

        _track_pool(self)
        try:
            indptr_shm = self._create_block(graph.in_indptr)
            tails_shm = self._create_block(graph.in_tails)
            self._topo = (indptr_shm, tails_shm, graph.n, graph.m)
            self._task_queue = self._ctx.Queue()
            self._result_queue = self._ctx.Queue()
            for _ in range(self.workers):
                self._spawn_worker()
        except BaseException:
            # Never leak partially created segments/processes: a pool
            # that fails to construct cleans up after itself first.
            self.close()
            raise

    @property
    def failed(self) -> bool:
        """True once the pool declared itself unrecoverable and shut down."""
        return self._failed

    def _spawn_worker(self) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self._task_queue,
                self._result_queue,
                self._topo,
                self.chunk_bytes,
                self.kernel,
            ),
            daemon=True,
        )
        proc.start()
        self._procs.append(proc)

    # -- shared-memory bookkeeping -------------------------------------
    def _create_block(self, array: np.ndarray) -> str:
        rule = _faults.fire("shm.attach", plan=self._faults_plan())
        if rule is not None:
            raise WorkerCrashError(f"[fault:shm.attach] {rule.message}")
        array = np.ascontiguousarray(array)
        shm = None
        for _ in range(8):  # retry on (astronomically unlikely) name clash
            try:
                shm = shared_memory.SharedMemory(
                    create=True, name=_shm_name(), size=max(array.nbytes, 1)
                )
                break
            except FileExistsError:  # pragma: no cover - name collision
                continue
            except OSError as exc:
                raise WorkerCrashError(
                    f"cannot create shared-memory block ({array.nbytes} bytes): {exc}"
                ) from exc
        if shm is None:  # pragma: no cover - eight collisions in a row
            raise WorkerCrashError("cannot allocate a shared-memory block name")
        if array.nbytes:
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[:] = array
        self._segments.append(shm)
        return shm.name

    def _faults_plan(self):
        return self._faults if self._faults is not None else _faults.active_fault_plan()

    def register_probs(self, probs: np.ndarray) -> str:
        """Publish an ad's arc probabilities; returns the block name.

        *probs* is in canonical edge order; it is permuted to in-CSR
        slot order here (once, in the parent) so workers index it
        directly with in-CSR arc slots.  Content-identical vectors share
        one block — a fully competitive marketplace registers once.
        """
        probs = np.asarray(probs, dtype=np.float64)
        if probs.shape != (self.graph.m,):
            raise EstimationError(
                f"edge probabilities must have shape ({self.graph.m},), got {probs.shape}"
            )
        # Content key: a cryptographic digest keeps the "no accidental
        # sharing" guarantee of comparing raw bytes (collisions are
        # cryptographically negligible, unlike hash()) without pinning
        # an 8·m-byte copy per distinct vector for the pool's lifetime.
        key = hashlib.sha256(probs.tobytes()).digest()
        if key not in self._prob_blocks:
            probs_in = np.ascontiguousarray(probs[self.graph.in_edge_ids])
            self._prob_blocks[key] = self._create_block(probs_in)
        return self._prob_blocks[key]

    # -- dispatch ------------------------------------------------------
    def sample_shards(
        self,
        prob_name: str,
        counts: list[int],
        seed_seqs: list[np.random.SeedSequence],
        roots: list | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Sample ``len(counts)`` shards concurrently; results in shard order.

        Shard ``k`` draws ``counts[k]`` sets under
        ``default_rng(seed_seqs[k])`` running the exact serial kernel, so
        concatenating the returned pairs equals a single-process run of
        the same shard plan (the parity tests assert this).  *roots*,
        when given, is one ``int64[counts[k]]`` array per shard pinning
        that shard's roots (the incremental-resample path); recovery
        re-dispatches a shard with its original roots, so pinned-root
        batches survive worker crashes bit-identically too.

        Collection is *supervised*: crashed workers are respawned and
        their shards re-dispatched (same seed sequence → bit-identical
        result), a silent pool (no result within ``heartbeat_s``) is
        treated as hung and recovered the same way, and a pool past its
        respawn budget closes itself and raises
        :class:`~repro.errors.PoolDegradedError` so the backend can
        degrade instead of blocking forever.
        """
        if self._failed:
            raise PoolDegradedError(
                "worker pool is unrecoverable (respawn budget exhausted)"
            )
        if self._closed:
            raise EstimationError("pool is closed")
        if len(counts) != len(seed_seqs):
            raise EstimationError("counts and seed_seqs must have equal length")
        if roots is not None and len(roots) != len(counts):
            raise EstimationError("roots must have one entry per shard")
        plan = self._faults_plan()
        id_to_shard: dict[int, int] = {}

        def dispatch(shard: int) -> None:
            task_id = self._task_counter
            self._task_counter += 1
            id_to_shard[task_id] = shard
            fault = None
            rule = _faults.fire("worker.kill", plan=plan)
            if rule is not None:
                fault = ("kill",)
            else:
                rule = _faults.fire("shard.delay", plan=plan)
                if rule is not None:
                    fault = ("delay", float(rule.delay_s))
            self._task_queue.put(
                (
                    task_id,
                    prob_name,
                    int(counts[shard]),
                    seed_seqs[shard],
                    None if roots is None else roots[shard],
                    fault,
                )
            )

        for k in range(len(counts)):
            dispatch(k)
        results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        last_progress = time.monotonic()
        while len(results) < len(counts):
            try:
                payload = self._result_queue.get(timeout=self.poll_s)
            except _queue.Empty:
                missing = [k for k in range(len(counts)) if k not in results]
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    self._recover(dead, missing, dispatch, reason="crashed")
                    last_progress = time.monotonic()
                elif time.monotonic() - last_progress > self.heartbeat_s:
                    # No worker died, yet nothing arrived for a full
                    # heartbeat window: presume the pool is hung.  We
                    # cannot tell which worker holds the stuck shard, so
                    # all are replaced; duplicated results are deduped
                    # below (and identical anyway — same seed sequence).
                    self._recover(
                        list(self._procs), missing, dispatch, reason="hung"
                    )
                    last_progress = time.monotonic()
                continue
            last_progress = time.monotonic()
            shard = id_to_shard.pop(payload[0], None)
            if shard is None or shard in results:
                continue  # stale/duplicate result of an aborted dispatch
            if len(payload) == 2 and isinstance(payload[1], Exception):
                raise payload[1]
            _, members, indptr = payload
            results[shard] = (
                np.asarray(members, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            )
        return [results[k] for k in range(len(counts))]

    def _recover(self, procs, missing_shards, dispatch, reason: str) -> None:
        """Replace *procs* and re-dispatch *missing_shards* (bounded).

        Raises :class:`~repro.errors.PoolDegradedError` — after closing
        the pool — once the lifetime respawn budget is exhausted.
        """
        needed = len(procs)
        if self._respawns_used + needed > self.max_respawns:
            self._fail(
                f"{reason} worker(s) would need {needed} more respawn(s), "
                f"budget {self.max_respawns} already spent {self._respawns_used}"
            )
        self._respawns_used += needed
        self.counters["worker_respawns"] += needed
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2.0)
            self._procs.remove(proc)
        if not self._procs:
            # Every worker is being replaced, so nothing references the
            # old queues — restart the transport too.  A process
            # terminated inside queue.get()/put() can die holding the
            # queue's shared lock, which would stall the respawned
            # workers forever (and trip the heartbeat into burning the
            # whole respawn budget).  Outstanding tasks/results are
            # dropped with the queues; the caller re-dispatches every
            # missing shard below.
            for q in (self._task_queue, self._result_queue):
                try:
                    q.cancel_join_thread()
                    q.close()
                except (OSError, ValueError):  # pragma: no cover - defensive
                    pass
            self._task_queue = self._ctx.Queue()
            self._result_queue = self._ctx.Queue()
        for _ in range(needed):
            self._spawn_worker()
        self.counters["shards_recovered"] += len(missing_shards)
        for shard in missing_shards:
            dispatch(shard)

    def _fail(self, detail: str) -> None:
        """Declare the pool unrecoverable: shut down, then raise."""
        self._failed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self.close()
        raise PoolDegradedError(f"worker pool unrecoverable: {detail}")

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink all shared-memory blocks.

        Idempotent by construction: every teardown step tolerates
        already-released resources (double unlink of a shared-memory
        segment would otherwise raise ``FileNotFoundError``), so
        explicit close, context-manager exit, the atexit safety net and
        failure-path closes can overlap freely.
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for proc in self._procs:
            try:
                self._task_queue.put(None)
            except (AttributeError, OSError, ValueError):
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        for q in (getattr(self, "_task_queue", None), getattr(self, "_result_queue", None)):
            if q is None:
                continue
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        for shm in self._segments:
            try:
                shm.close()
            except OSError:  # pragma: no cover - defensive
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedGraphPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelBackend(SamplerBackend):
    """Process-parallel batch sampler over a :class:`SharedGraphPool`.

    Parameters
    ----------
    graph, probs:
        As for :class:`RRSampler` (*probs* in canonical edge order).
    workers:
        Worker process count; defaults to :func:`default_workers`.
        ``workers == 1`` short-circuits to in-process execution with the
        caller's generator — bit-identical to :class:`SerialBackend`.
    pool:
        An existing pool over the same graph to share (e.g. one pool for
        all ads of an engine run).  When omitted the backend creates and
        owns one, closing it in :meth:`close`.
    counters:
        Optional shared fault-counter dict (see
        :class:`SharedGraphPool`); defaults to the pool's when sharing
        one, else to a private dict.  Always readable as
        :attr:`fault_counters`.
    degraded:
        Start directly in degraded (in-process) mode — used by the
        engine when an earlier pool for the same run already proved
        unrecoverable.

    Degradation: when the pool cannot be created
    (:class:`~repro.errors.WorkerCrashError`) or declares itself
    unrecoverable mid-batch (:class:`~repro.errors.PoolDegradedError`),
    the backend runs the *same shard plan* in-process — one
    :func:`sample_batch_flat_kernel` call per shard under that shard's
    seed sequence — so output stays bit-identical per
    ``(seed, workers)``.  The switch is recorded in
    ``fault_counters["pool_degraded"]`` and :attr:`degraded`.
    """

    def __init__(
        self,
        graph: DiGraph,
        probs,
        *,
        workers: int | None = None,
        pool: SharedGraphPool | None = None,
        counters: dict | None = None,
        degraded: bool = False,
        faults=None,
        kernel: str = "auto",
    ) -> None:
        if graph.n == 0:
            raise EstimationError("cannot sample RR sets from an empty graph")
        self.graph = graph
        self.probs = validate_edge_probs(graph, probs)
        self.kernel = resolve_kernel(kernel)
        self._probs_in: np.ndarray | None = None  # lazy in-CSR permutation
        self._degraded = bool(degraded)
        self._closed = False
        self._prob_name = None
        self._serial = None
        if pool is not None:
            if pool.graph is not graph:
                raise EstimationError("pool was built over a different graph")
            if pool.kernel != self.kernel:
                raise EstimationError(
                    f"pool runs kernel {pool.kernel!r}, backend wants "
                    f"{self.kernel!r}; share pools only across one kernel"
                )
            self.workers = pool.workers
            self._pool = pool
            self._owns_pool = False
            self.fault_counters = counters if counters is not None else pool.counters
            for key in FAULT_COUNTER_KEYS:
                self.fault_counters.setdefault(key, 0)
            if pool.failed:
                self._note_degraded()
        else:
            _, self.workers = resolve_backend("parallel", workers)
            self.fault_counters = (
                counters if counters is not None else new_fault_counters()
            )
            for key in FAULT_COUNTER_KEYS:
                self.fault_counters.setdefault(key, 0)
            self._pool = None
            self._owns_pool = False
            if self.workers > 1 and not self._degraded:
                try:
                    self._pool = SharedGraphPool(
                        graph,
                        self.workers,
                        counters=self.fault_counters,
                        faults=faults,
                        kernel=self.kernel,
                    )
                    self._owns_pool = True
                except WorkerCrashError:
                    # Pool infrastructure (worker spawn / shared memory)
                    # failed: degrade to in-process shard execution.
                    self._note_degraded()
        if self._pool is not None and not self._degraded:
            try:
                # The pool's shared block (registered here) is the only
                # probs copy the workers need; no in-process delegate.
                self._prob_name = self._pool.register_probs(self.probs)
            except WorkerCrashError:
                self._note_degraded()
        elif self.workers == 1 and not self._degraded:
            # workers == 1: all sampling happens in-process through this
            # delegate, bit-identically to SerialBackend.  (A *degraded*
            # backend instead keeps the shard-plan streams, staying
            # bit-identical to the pooled output it replaces.)
            self._serial = RRSampler(graph, self.probs, kernel=self.kernel)

    @property
    def degraded(self) -> bool:
        """True once the backend fell back to in-process shard execution."""
        return self._degraded

    def _note_degraded(self) -> None:
        """Switch to in-process shard execution (recording provenance)."""
        if self._owns_pool and self._pool is not None:
            try:
                self._pool.close()
            finally:
                self._owns_pool = False
        # A shared pool is the creator's to close (and closed itself if
        # it failed); either way this backend stops using it.
        self._pool = None
        self._degraded = True
        self.fault_counters["pool_degraded"] += 1

    def _sample_shards_inproc(
        self, counts: list[int], seqs, shard_roots=None
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Run the shard plan in-process — the degraded-mode executor.

        Exactly what the workers would have computed: the configured
        kernel over the in-CSR arrays with each shard's own generator
        (and, on the incremental-resample path, each shard's pinned
        roots).
        """
        if self._probs_in is None:
            self._probs_in = np.ascontiguousarray(
                self.probs[self.graph.in_edge_ids]
            )
        kernel_fn = resolve_batch_kernel(self.kernel)
        g = self.graph
        if shard_roots is None:
            shard_roots = [None] * len(counts)
        return [
            kernel_fn(
                g.n,
                g.in_indptr,
                g.in_tails,
                self._probs_in,
                int(count),
                as_generator(seq),
                DEFAULT_CHUNK_BYTES,
                sroots,
            )
            for count, seq, sroots in zip(counts, seqs, shard_roots)
        ]

    def sample_batch_flat(
        self, count: int, rng=None, *, roots=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw *count* RR sets across the pool; one merged CSR pair.

        See the module docstring for the RNG-stream contract.  Batches
        smaller than the shard count still produce one shard per
        non-empty share, preserving the ``(seed, workers)``
        determinism guarantee — which also survives worker recovery and
        pool degradation (the shard plan, not the process topology,
        defines the streams).
        """
        if self._closed:
            raise EstimationError("backend is closed")
        if count < 0:
            raise EstimationError(f"count must be non-negative, got {count}")
        rng = as_generator(rng)
        if count == 0:
            # Stream-neutral on every backend: no RNG draw is consumed.
            return _EMPTY_I64.copy(), np.zeros(1, dtype=np.int64)
        if self._serial is not None:
            # workers == 1 without a pool: in-process, caller's stream,
            # bit-identical to SerialBackend.
            return self._serial.sample_batch_flat(count, rng, roots=roots)
        counts = shard_counts(count, self.workers)
        root = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
        seqs = root.spawn(len(counts))
        shard_roots = None
        if roots is not None:
            # Split pinned roots along the shard plan: shard k samples
            # sets [offset_k, offset_k + counts[k]), and merge_shards
            # concatenates in shard order, so output set i keeps root i.
            roots = np.ascontiguousarray(roots, dtype=np.int64)
            if roots.shape != (count,):
                raise EstimationError(
                    f"roots must have shape ({count},), got {roots.shape}"
                )
            offsets = np.cumsum([0] + counts)
            shard_roots = [
                roots[offsets[k] : offsets[k + 1]] for k in range(len(counts))
            ]
        if self._pool is not None and not self._degraded:
            try:
                parts = self._pool.sample_shards(
                    self._prob_name, counts, seqs, shard_roots
                )
                return merge_shards(parts)
            except PoolDegradedError:
                self._note_degraded()
        return merge_shards(self._sample_shards_inproc(counts, seqs, shard_roots))

    def close(self) -> None:
        """Close this backend; further sampling raises.

        An owned pool is shut down here; a shared pool stays up (it is
        the creator's to close).  Closing is idempotent — including
        after degradation, after the pool closed itself, and on double
        close — and applies to ``workers == 1`` backends too, so the
        lifecycle is uniform: a closed parallel backend never silently
        degrades to a different (serial) RNG stream.
        """
        if self._owns_pool and self._pool is not None:
            try:
                self._pool.close()
            finally:
                self._owns_pool = False
                self._pool = None
        self._pool = None
        self._closed = True


def make_backend(
    graph: DiGraph,
    probs,
    backend: str = "serial",
    *,
    workers: int | None = None,
    pool: SharedGraphPool | None = None,
    counters: dict | None = None,
    degraded: bool = False,
    faults=None,
    kernel: str = "auto",
) -> SamplerBackend:
    """Build a :class:`SamplerBackend` from a spec string.

    ``backend`` is ``"serial"`` or ``"parallel"``; *workers* / *pool*
    apply to the parallel backend only.  The spec is normalized by
    :func:`resolve_backend` — ``workers`` > 1 upgrades ``"serial"`` to
    parallel (this is what lets a single ``--workers`` CLI flag select
    the backend), and a parallel spec without a worker count uses
    :func:`default_workers`.  Passing an existing *pool* implies
    parallel regardless of the spec.  *kernel* selects the batch-kernel
    implementation (:mod:`repro.rrset.kernels`) on either backend;
    kernels are bit-identical, so it never changes results.
    """
    backend, workers = resolve_backend(backend, workers)
    if backend == "serial" and pool is None:
        return SerialBackend(graph, probs, kernel=kernel)
    return ParallelBackend(
        graph,
        probs,
        workers=workers,
        pool=pool,
        counters=counters,
        degraded=degraded,
        faults=faults,
        kernel=kernel,
    )
