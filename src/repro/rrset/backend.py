"""Pluggable RR sampling backends: serial and shared-memory parallel.

Every consumer of RR sets — :class:`~repro.core.ti_engine.TIEngine`,
TIM's KPT estimator, the static RR oracle, the singleton-spread pricer,
the benchmark harness — draws batches through one seam, a
:class:`SamplerBackend`, instead of touching :class:`RRSampler`
directly.  Two implementations exist:

* :class:`SerialBackend` — a thin delegate around :class:`RRSampler`.
  Bit-identical to calling the sampler yourself: same RNG stream, same
  arrays.
* :class:`ParallelBackend` — fans :func:`sample_batch_flat_kernel` out
  over a persistent pool of worker processes.  The graph's reverse CSR
  (``in_indptr``, ``in_tails``) and each registered probability vector
  (already permuted to in-CSR slot order) live in
  :mod:`multiprocessing.shared_memory` blocks created once per pool;
  workers attach by name and never copy them.  A batch of ``count``
  sets is split into one shard per worker (balanced, a pure function of
  ``(count, workers)``); each shard samples under its own
  :class:`numpy.random.SeedSequence`-spawned generator, and the shards
  are merged back into a single CSR pair in shard order.

RNG-stream contract (docs/ARCHITECTURE.md §RNG):

* ``workers == 1`` executes in-process with the caller's generator —
  **bit-identical** to :class:`SerialBackend` (and hence to
  :meth:`RRSampler.sample_batch_flat`).
* ``workers >= 2`` consumes exactly **one** ``rng.integers`` draw from
  the caller's generator per batch, to derive a root
  :class:`~numpy.random.SeedSequence`; shard ``k`` samples with
  ``default_rng(root.spawn(shards)[k])``.  The output is a valid
  i.i.d. RR sample from the same distribution, deterministic for a
  fixed ``(seed, workers)`` pair, but *different* from the serial
  stream — the same trade the flat batch sampler already made against
  the legacy per-set sampler.

One pool (one set of worker processes + shared-memory segments) can
serve many ads: probability vectors are registered with
:meth:`SharedGraphPool.register_probs`, which dedups by content, so a
fully competitive marketplace shares one block.  Pools must be
:meth:`closed <SharedGraphPool.close>` (or used as context managers) to
release the shared memory; backends that own their pool close it with
themselves, and every pool also registers an :mod:`atexit` guard.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import sys
from abc import ABC, abstractmethod
from multiprocessing import shared_memory

import numpy as np

from repro._rng import as_generator
from repro.errors import EstimationError
from repro.graph.digraph import DiGraph
from repro.rrset.sampler import (
    DEFAULT_CHUNK_BYTES,
    RRSampler,
    batch_widths,
    sample_batch_flat_kernel,
    validate_edge_probs,
)

BACKENDS = ("serial", "parallel")

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def default_workers() -> int:
    """Worker count used when a parallel backend is requested without one."""
    return max(os.cpu_count() or 1, 1)


def resolve_backend(backend: str, workers: int | None) -> tuple[str, int | None]:
    """Normalize a ``(backend, workers)`` spec to its effective form.

    The one place the selection rule lives (engine, oracle, factory and
    CLI all call it): ``workers`` > 1 upgrades ``"serial"`` to
    ``"parallel"``; a parallel spec with ``workers`` of ``None``/0
    resolves to :func:`default_workers`.  Returns the effective
    ``(backend, workers)`` — ``workers`` is a positive ``int`` for
    parallel, ``None`` for serial.
    """
    if backend not in BACKENDS:
        raise EstimationError(f"unknown backend {backend!r}; options: {BACKENDS}")
    if workers is not None and workers < 0:
        raise EstimationError(f"workers must be non-negative, got {workers}")
    if backend == "serial" and (workers or 0) > 1:
        backend = "parallel"
    if backend == "parallel":
        return backend, int(workers) if workers else default_workers()
    return "serial", None


def shard_counts(count: int, shards: int) -> list[int]:
    """Balanced shard sizes for a *count*-set batch: a pure function of
    ``(count, shards)`` so parallel streams are reproducible.

    The first ``count % shards`` shards get one extra set; zero-size
    shards are dropped, so fewer than *shards* entries may be returned.
    """
    if shards < 1:
        raise EstimationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(count, shards)
    sizes = [base + (1 if k < extra else 0) for k in range(shards)]
    return [s for s in sizes if s > 0]


def merge_shards(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-shard ``(members, indptr)`` CSR pairs in order.

    Pure offset arithmetic — the set contents are never re-split, so the
    result can be handed to :meth:`RRCollection.add_sets_flat` /
    :meth:`SharedRRStore.extend_flat` as one batch.
    """
    if not parts:
        return _EMPTY_I64.copy(), np.zeros(1, dtype=np.int64)
    members = np.concatenate([m for m, _ in parts])
    offsets = np.cumsum([0] + [int(m.size) for m, _ in parts])
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64)]
        + [p[1:] + off for (_, p), off in zip(parts, offsets)]
    ).astype(np.int64)
    return members, indptr


class SamplerBackend(ABC):
    """Batch RR-set sampling seam shared by all consumers.

    Implementations expose the same surface as the flat half of
    :class:`RRSampler` — :meth:`sample_batch_flat`,
    :meth:`sample_batch`, :meth:`sample_batch_widths` — plus a
    :meth:`close` for backends holding OS resources.  ``graph`` and
    ``probs`` (canonical edge order, ``float64[m]``) are readable
    attributes on every backend.
    """

    graph: DiGraph
    probs: np.ndarray

    @abstractmethod
    def sample_batch_flat(self, count: int, rng=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw *count* RR sets as one flat ``(members, indptr)`` CSR pair.

        Same output contract as :meth:`RRSampler.sample_batch_flat`:
        both arrays ``int64``, freshly allocated, owned by the caller.
        """

    def sample_batch(self, count: int, rng=None) -> list[np.ndarray]:
        """Draw *count* RR sets as a list of member arrays (convenience)."""
        members, indptr = self.sample_batch_flat(count, rng)
        return [members[indptr[k] : indptr[k + 1]].copy() for k in range(count)]

    def sample_batch_widths(self, count: int, rng=None) -> np.ndarray:
        """Widths (in-arc counts into members) of *count* fresh RR sets."""
        members, indptr = self.sample_batch_flat(count, rng)
        return batch_widths(self.graph.in_indptr, members, indptr)

    def close(self) -> None:
        """Release backend resources (idempotent; no-op for serial)."""

    def __enter__(self) -> "SamplerBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(SamplerBackend):
    """In-process backend delegating to one :class:`RRSampler`.

    Bit-identical to the bare sampler for every method and RNG stream
    (the width computation is the shared :func:`batch_widths` on both
    sides); exists so code written against the seam pays nothing for it.
    """

    def __init__(self, graph: DiGraph, probs) -> None:
        self._sampler = RRSampler(graph, probs)
        self.graph = graph
        self.probs = np.asarray(probs, dtype=np.float64)

    def sample_batch_flat(self, count: int, rng=None) -> tuple[np.ndarray, np.ndarray]:
        return self._sampler.sample_batch_flat(count, rng)


# ----------------------------------------------------------------------
# Shared-memory worker pool
# ----------------------------------------------------------------------
def _preferred_start_method() -> str:
    """``fork`` on Linux (cheap, tracker-safe), else ``spawn``.

    Fork is restricted to Linux deliberately: on macOS a forked child
    touching the Objective-C runtime (numpy/Accelerate) can abort —
    CPython itself switched the macOS default to spawn in 3.8.
    """
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without re-registering it for cleanup.

    Python 3.13+ supports ``track=False``; older versions fall back to
    plain attach, which is safe under the ``fork`` start method (one
    resource tracker, the creator unregisters on unlink).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _worker_main(
    task_queue,
    result_queue,
    topo: tuple[str, str, int, int],
    chunk_bytes: int,
) -> None:  # pragma: no cover - runs in child processes
    """Worker loop: attach shared CSR views, sample shards until told to stop.

    Tasks are ``(task_id, prob_shm_name, count, seed_seq)``; results are
    ``(task_id, members, indptr)`` (or ``(task_id, exc)`` on failure).
    A ``None`` task shuts the worker down.
    """
    indptr_name, tails_name, n, m = topo
    segments = []
    try:
        indptr_shm = _attach_shm(indptr_name)
        tails_shm = _attach_shm(tails_name)
        segments += [indptr_shm, tails_shm]
        in_indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=indptr_shm.buf)
        in_tails = np.ndarray((m,), dtype=np.int64, buffer=tails_shm.buf)
        probs_cache: dict[str, np.ndarray] = {}
        while True:
            task = task_queue.get()
            if task is None:
                break
            task_id, prob_name, count, seed_seq = task
            try:
                if prob_name not in probs_cache:
                    shm = _attach_shm(prob_name)
                    segments.append(shm)
                    probs_cache[prob_name] = np.ndarray(
                        (m,), dtype=np.float64, buffer=shm.buf
                    )
                members, indptr = sample_batch_flat_kernel(
                    n,
                    in_indptr,
                    in_tails,
                    probs_cache[prob_name],
                    count,
                    np.random.default_rng(seed_seq),
                    chunk_bytes,
                )
                result_queue.put((task_id, members, indptr))
            except Exception as exc:  # surface, don't hang the parent
                result_queue.put((task_id, exc))
    finally:
        for shm in segments:
            try:
                shm.close()
            except OSError:
                pass


class SharedGraphPool:
    """Persistent worker pool over one graph's shared-memory reverse CSR.

    Created once per (graph, worker count); serves any number of
    probability vectors via :meth:`register_probs` and any number of
    batches via :meth:`sample_shards`.  The topology blocks
    (``in_indptr``, ``in_tails``) are written exactly once; workers map
    them read-only-by-convention.  Not thread-safe: one dispatcher at a
    time (matching the engine's single-threaded loop).
    """

    def __init__(
        self,
        graph: DiGraph,
        workers: int,
        *,
        start_method: str | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        if graph.n == 0:
            raise EstimationError("cannot sample RR sets from an empty graph")
        self.graph = graph
        self.workers = int(workers)
        self.chunk_bytes = int(chunk_bytes)
        self._ctx = mp.get_context(start_method or _preferred_start_method())
        self._segments: list[shared_memory.SharedMemory] = []
        self._prob_blocks: dict[bytes, str] = {}
        self._procs: list = []
        self._task_counter = 0
        self._closed = False

        indptr_shm = self._create_block(graph.in_indptr)
        tails_shm = self._create_block(graph.in_tails)
        self._topo = (indptr_shm, tails_shm, graph.n, graph.m)
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        for _ in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue, self._topo, self.chunk_bytes),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        atexit.register(self.close)

    # -- shared-memory bookkeeping -------------------------------------
    def _create_block(self, array: np.ndarray) -> str:
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        if array.nbytes:
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[:] = array
        self._segments.append(shm)
        return shm.name

    def register_probs(self, probs: np.ndarray) -> str:
        """Publish an ad's arc probabilities; returns the block name.

        *probs* is in canonical edge order; it is permuted to in-CSR
        slot order here (once, in the parent) so workers index it
        directly with in-CSR arc slots.  Content-identical vectors share
        one block — a fully competitive marketplace registers once.
        """
        probs = np.asarray(probs, dtype=np.float64)
        if probs.shape != (self.graph.m,):
            raise EstimationError(
                f"edge probabilities must have shape ({self.graph.m},), got {probs.shape}"
            )
        # Content key: a cryptographic digest keeps the "no accidental
        # sharing" guarantee of comparing raw bytes (collisions are
        # cryptographically negligible, unlike hash()) without pinning
        # an 8·m-byte copy per distinct vector for the pool's lifetime.
        key = hashlib.sha256(probs.tobytes()).digest()
        if key not in self._prob_blocks:
            probs_in = np.ascontiguousarray(probs[self.graph.in_edge_ids])
            self._prob_blocks[key] = self._create_block(probs_in)
        return self._prob_blocks[key]

    # -- dispatch ------------------------------------------------------
    def sample_shards(
        self,
        prob_name: str,
        counts: list[int],
        seed_seqs: list[np.random.SeedSequence],
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Sample ``len(counts)`` shards concurrently; results in shard order.

        Shard ``k`` draws ``counts[k]`` sets under
        ``default_rng(seed_seqs[k])`` running the exact serial kernel, so
        concatenating the returned pairs equals a single-process run of
        the same shard plan (the parity tests assert this).
        """
        if self._closed:
            raise EstimationError("pool is closed")
        if len(counts) != len(seed_seqs):
            raise EstimationError("counts and seed_seqs must have equal length")
        base = self._task_counter
        self._task_counter += len(counts)
        for k, (count, seq) in enumerate(zip(counts, seed_seqs)):
            self._task_queue.put((base + k, prob_name, int(count), seq))
        results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        while len(results) < len(counts):
            try:
                payload = self._result_queue.get(timeout=10.0)
            except Exception:
                # A crashed worker (OOM kill, segfault) takes its shard
                # with it; the batch can never complete, so fail fast
                # rather than wait on the surviving idle workers.
                if not all(p.is_alive() for p in self._procs):
                    raise EstimationError(
                        "a sampler worker died before completing the batch"
                    ) from None
                continue
            if payload[0] < base:
                continue  # stale result of an earlier aborted batch
            if len(payload) == 2 and isinstance(payload[1], Exception):
                raise payload[1]
            task_id, members, indptr = payload
            results[task_id - base] = (
                np.asarray(members, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            )
        return [results[k] for k in range(len(counts))]

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink all shared-memory blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for queue in (self._task_queue, self._result_queue):
            try:
                queue.close()
                queue.join_thread()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._segments.clear()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "SharedGraphPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelBackend(SamplerBackend):
    """Process-parallel batch sampler over a :class:`SharedGraphPool`.

    Parameters
    ----------
    graph, probs:
        As for :class:`RRSampler` (*probs* in canonical edge order).
    workers:
        Worker process count; defaults to :func:`default_workers`.
        ``workers == 1`` short-circuits to in-process execution with the
        caller's generator — bit-identical to :class:`SerialBackend`.
    pool:
        An existing pool over the same graph to share (e.g. one pool for
        all ads of an engine run).  When omitted the backend creates and
        owns one, closing it in :meth:`close`.
    """

    def __init__(
        self,
        graph: DiGraph,
        probs,
        *,
        workers: int | None = None,
        pool: SharedGraphPool | None = None,
    ) -> None:
        if graph.n == 0:
            raise EstimationError("cannot sample RR sets from an empty graph")
        self.graph = graph
        self.probs = validate_edge_probs(graph, probs)
        if pool is not None:
            if pool.graph is not graph:
                raise EstimationError("pool was built over a different graph")
            self.workers = pool.workers
            self._pool = pool
            self._owns_pool = False
        else:
            _, self.workers = resolve_backend("parallel", workers)
            self._pool = (
                SharedGraphPool(graph, self.workers) if self.workers > 1 else None
            )
            self._owns_pool = self._pool is not None
        self._closed = False
        if self._pool is not None:
            # The pool's shared block (registered above) is the only
            # probs copy the workers need; no in-process delegate.
            self._prob_name = self._pool.register_probs(self.probs)
            self._serial = None
        else:
            # workers == 1: all sampling happens in-process through this
            # delegate, bit-identically to SerialBackend.
            self._prob_name = None
            self._serial = RRSampler(graph, self.probs)

    def sample_batch_flat(self, count: int, rng=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw *count* RR sets across the pool; one merged CSR pair.

        See the module docstring for the RNG-stream contract.  Batches
        smaller than the shard count still produce one shard per
        non-empty share, preserving the ``(seed, workers)``
        determinism guarantee.
        """
        if self._closed:
            raise EstimationError("backend is closed")
        if count < 0:
            raise EstimationError(f"count must be non-negative, got {count}")
        rng = as_generator(rng)
        if count == 0:
            # Stream-neutral on every backend: no RNG draw is consumed.
            return _EMPTY_I64.copy(), np.zeros(1, dtype=np.int64)
        if self._pool is None:
            # workers == 1: in-process, caller's stream, bit-identical
            # to SerialBackend.
            return self._serial.sample_batch_flat(count, rng)
        counts = shard_counts(count, self.workers)
        root = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
        seqs = root.spawn(len(counts))
        parts = self._pool.sample_shards(self._prob_name, counts, seqs)
        return merge_shards(parts)

    def close(self) -> None:
        """Close this backend; further sampling raises.

        An owned pool is shut down here; a shared pool stays up (it is
        the creator's to close).  Closing is idempotent, and applies to
        ``workers == 1`` backends too, so the lifecycle is uniform — a
        closed parallel backend never silently degrades to a different
        (serial) RNG stream.
        """
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
        self._closed = True


def make_backend(
    graph: DiGraph,
    probs,
    backend: str = "serial",
    *,
    workers: int | None = None,
    pool: SharedGraphPool | None = None,
) -> SamplerBackend:
    """Build a :class:`SamplerBackend` from a spec string.

    ``backend`` is ``"serial"`` or ``"parallel"``; *workers* / *pool*
    apply to the parallel backend only.  The spec is normalized by
    :func:`resolve_backend` — ``workers`` > 1 upgrades ``"serial"`` to
    parallel (this is what lets a single ``--workers`` CLI flag select
    the backend), and a parallel spec without a worker count uses
    :func:`default_workers`.  Passing an existing *pool* implies
    parallel regardless of the spec.
    """
    backend, workers = resolve_backend(backend, workers)
    if backend == "serial" and pool is None:
        return SerialBackend(graph, probs)
    return ParallelBackend(graph, probs, workers=workers, pool=pool)
