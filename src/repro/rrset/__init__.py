"""Reverse-reachable set machinery (Borgs et al.; Tang et al. TIM)."""

from repro.rrset.sampler import RRSampler
from repro.rrset.collection import (
    RRCollection,
    SharedRRCollection,
    SharedRRStore,
    estimate_spread_flat,
    estimate_spread_from_sets,
)
from repro.rrset.tim import (
    log_binomial,
    sample_size,
    KPTEstimator,
)

__all__ = [
    "RRSampler",
    "RRCollection",
    "SharedRRCollection",
    "SharedRRStore",
    "estimate_spread_flat",
    "estimate_spread_from_sets",
    "log_binomial",
    "sample_size",
    "KPTEstimator",
]
