"""Reverse-reachable set machinery (Borgs et al.; Tang et al. TIM)."""

from repro.rrset.sampler import RRSampler, sample_batch_flat_kernel
from repro.rrset.kernels import (
    KERNELS,
    NUMBA_AVAILABLE,
    resolve_kernel,
    sample_batch_flat_kernel_numba,
)
from repro.rrset.backend import (
    BACKENDS,
    ParallelBackend,
    SamplerBackend,
    SerialBackend,
    SharedGraphPool,
    make_backend,
    resolve_backend,
)
from repro.rrset.collection import (
    RRCollection,
    SharedRRCollection,
    SharedRRStore,
    estimate_spread_flat,
    estimate_spread_from_sets,
    member_dtype_for,
)
from repro.rrset.tim import (
    log_binomial,
    sample_size,
    KPTEstimator,
)

__all__ = [
    "RRSampler",
    "sample_batch_flat_kernel",
    "sample_batch_flat_kernel_numba",
    "KERNELS",
    "NUMBA_AVAILABLE",
    "resolve_kernel",
    "BACKENDS",
    "SamplerBackend",
    "SerialBackend",
    "ParallelBackend",
    "SharedGraphPool",
    "make_backend",
    "resolve_backend",
    "RRCollection",
    "SharedRRCollection",
    "SharedRRStore",
    "estimate_spread_flat",
    "estimate_spread_from_sets",
    "member_dtype_for",
    "log_binomial",
    "sample_size",
    "KPTEstimator",
]
