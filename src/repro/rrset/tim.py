"""TIM-style sample-size determination (Tang et al. [34], adapted).

Equation 8 of the paper fixes, for seed-set size ``s`` and accuracy
``ε``, the number of RR sets

    ``L(s, ε) = (8 + 2ε) · n · (ℓ·ln n + ln C(n, s) + ln 2) / (OPT_s · ε²)``

after which ``|n·F_R(S) − σ(S)| < (ε/2)·OPT_s`` holds w.p. at least
``1 − n^{−ℓ} / C(n, s)`` for *every* ``|S| ≤ s`` — the oracle property
TI-CARM/TI-CSRM rely on, which IMM/SSA samples are too small to provide.

``OPT_s`` is unknown; TIM lower-bounds it with the KPT estimation
algorithm, reproduced here as :class:`KPTEstimator`.  Two pragmatic
adaptations (documented in DESIGN.md §4):

* sampled widths are cached and reused when ``s`` changes — the
  ``κ(R) = 1 − (1 − w(R)/m)^s`` statistic is recomputable from stored
  widths, so growing ``s`` (Eq. 10) does not resample;
* a hard ``theta_cap`` bounds the sample size so pure-Python runs stay
  tractable; the cap widens confidence intervals but never alters the
  algorithms' control flow.
"""

from __future__ import annotations

import math

import numpy as np

from repro._rng import as_generator
from repro.errors import EstimationError
from repro.rrset.sampler import RRSampler

DEFAULT_THETA_CAP = 200_000


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` computed stably via ``lgamma``."""
    if k < 0 or k > n:
        raise EstimationError(f"binomial coefficient C({n}, {k}) undefined")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def sample_size(
    n: int,
    s: int,
    eps: float,
    ell: float,
    opt_lower: float,
    theta_cap: int | None = DEFAULT_THETA_CAP,
) -> int:
    """Evaluate Eq. 8, ``L(s, ε)``, with ``OPT_s ≥ opt_lower``.

    Returns at least 1; *theta_cap* truncates (``None`` disables the cap).
    """
    if n < 1:
        raise EstimationError(f"n must be positive, got {n}")
    if not 1 <= s <= n:
        raise EstimationError(f"seed size s must be in [1, {n}], got {s}")
    if eps <= 0:
        raise EstimationError(f"eps must be positive, got {eps}")
    if opt_lower <= 0:
        raise EstimationError(f"opt_lower must be positive, got {opt_lower}")
    numerator = (8.0 + 2.0 * eps) * n * (ell * math.log(n) + log_binomial(n, s) + math.log(2.0))
    theta = int(math.ceil(numerator / (opt_lower * eps * eps)))
    theta = max(theta, 1)
    if theta_cap is not None:
        theta = min(theta, int(theta_cap))
    return theta


class KPTEstimator:
    """Lower bound on ``OPT_s`` via TIM's KPT estimation (Alg. 2 of [34]).

    Repeatedly samples RR sets and evaluates the width statistic
    ``κ(R) = 1 − (1 − w(R)/m)^s``; at stage ``i`` it checks whether the
    mean over ``c_i ∝ 2^i`` samples exceeds ``2^{-i}``, in which case
    ``n · mean / 2`` is, w.h.p., a lower bound on ``OPT_s``.  The sampled
    widths are retained so :meth:`estimate` for a *different* ``s``
    re-evaluates the statistic without fresh samples.
    """

    def __init__(
        self,
        sampler,
        ell: float = 1.0,
        rng=None,
        max_samples: int = 20_000,
    ) -> None:
        """*sampler* is an :class:`RRSampler` or any
        :class:`~repro.rrset.backend.SamplerBackend` — only
        ``sample_batch_widths`` and the ``graph`` attribute are used, so
        KPT estimation transparently inherits the engine's backend
        (serial width streams are bit-identical through the seam)."""
        self.sampler = sampler
        self.ell = float(ell)
        self.rng = as_generator(rng)
        self.max_samples = int(max_samples)
        self._widths: list[int] = []
        self._cache: dict[int, float] = {}

    def _ensure_samples(self, count: int) -> None:
        count = min(count, self.max_samples)
        deficit = count - len(self._widths)
        if deficit > 0:
            # One flat batch per stage: roots are drawn vectorized and the
            # member ids are discarded, only widths are retained.
            widths = self.sampler.sample_batch_widths(deficit, self.rng)
            self._widths.extend(int(w) for w in widths)

    def estimate(self, s: int) -> float:
        """Lower bound for ``OPT_s`` (at least 1.0, since any seed reaches itself)."""
        if s in self._cache:
            return self._cache[s]
        n = self.sampler.graph.n
        m = self.sampler.graph.m
        if m == 0 or n < 2:
            self._cache[s] = 1.0
            return 1.0
        log2n = max(math.log2(n), 1.0)
        base = 6.0 * self.ell * math.log(n) + 6.0 * math.log(log2n)
        result = 1.0
        max_stage = max(int(math.ceil(log2n)) - 1, 1)
        for stage in range(1, max_stage + 1):
            c_i = int(math.ceil(base * (2 ** stage)))
            self._ensure_samples(c_i)
            widths = np.asarray(self._widths[: min(c_i, len(self._widths))], dtype=np.float64)
            if widths.size == 0:
                break
            kappa = 1.0 - np.power(1.0 - widths / m, s)
            mean = float(kappa.mean())
            if mean > 1.0 / (2 ** stage):
                result = max(1.0, n * mean / 2.0)
                break
            if len(self._widths) >= self.max_samples and c_i > self.max_samples:
                # Sampling budget exhausted before the threshold test could
                # trigger; fall back on the best certified bound so far.
                result = max(1.0, n * mean / 2.0)
                break
        self._cache[s] = result
        return result
