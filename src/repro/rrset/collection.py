"""Coverage-indexed collections of RR sets.

:class:`RRCollection` is the workhorse behind TI-CARM / TI-CSRM
(Algorithm 2).  It maintains, for one ad:

* the sampled RR sets (``θ_i`` of them, growing as the latent seed-set
  size estimate grows),
* a *residual* coverage count per node — how many not-yet-covered sets
  the node belongs to, which is exactly the marginal-coverage quantity
  ``cov_i(v)`` the selection rules in Algorithms 4 and 5 maximize,
* the running number of covered sets, from which the revenue estimate
  ``π̂_i(S_i) = cpe(i) · n · covered / θ_i`` follows.

"Covered" sets are removed lazily (flagged, with member counts
decremented) which implements line 14 of Algorithm 2; newly sampled sets
that already contain a seed are absorbed directly into the covered count,
implementing the coverage refresh of ``UpdateEstimates`` (Algorithm 3).

The collection also reports its memory footprint analytically, backing
the Table 3 reproduction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import EstimationError


class RRCollection:
    """Mutable, coverage-indexed RR-set store for one ad."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise EstimationError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.sets: list[np.ndarray] = []
        self.covered: list[bool] = []
        self.covered_total = 0
        self.counts = np.zeros(n_nodes, dtype=np.int64)
        self._cover_lists: list[list[int]] = [[] for _ in range(n_nodes)]
        self._member_total = 0

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def add_sets(self, new_sets: Iterable[np.ndarray], seeds: Sequence[int] = ()) -> int:
        """Append RR sets; sets already hit by *seeds* count as covered.

        Returns the number of newly added sets that were immediately
        covered (the ``cov'`` refresh of Algorithm 3).
        """
        seed_mask = np.zeros(self.n_nodes, dtype=bool)
        for s in seeds:
            seed_mask[int(s)] = True
        absorbed = 0
        for members in new_sets:
            members = np.asarray(members, dtype=np.int64)
            if members.size and (members.min() < 0 or members.max() >= self.n_nodes):
                raise EstimationError("RR set contains out-of-range node ids")
            sid = len(self.sets)
            self.sets.append(members)
            self._member_total += int(members.size)
            if members.size and seed_mask[members].any():
                self.covered.append(True)
                self.covered_total += 1
                absorbed += 1
                # Covered sets are dead for marginal-gain purposes; they
                # are neither indexed nor counted.
                continue
            self.covered.append(False)
            for v in members:
                self._cover_lists[v].append(sid)
            self.counts[members] += 1
        return absorbed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def theta(self) -> int:
        """Total number of sampled RR sets (covered included)."""
        return len(self.sets)

    def residual_count(self, node: int) -> int:
        """Number of uncovered sets containing *node* (``cov_i(node)``)."""
        return int(self.counts[node])

    def best_node(self, allowed: np.ndarray) -> int | None:
        """Unassigned node with maximum residual coverage (Algorithm 4).

        *allowed* is a boolean mask over nodes; returns ``None`` when no
        allowed node covers anything... except that a zero-coverage node is
        still a legal (zero-marginal-revenue) candidate, so the argmax is
        returned whenever any node is allowed.
        """
        if not allowed.any():
            return None
        masked = np.where(allowed, self.counts, -1)
        node = int(masked.argmax())
        if masked[node] < 0:
            return None
        return node

    def best_node_by_ratio(
        self,
        costs: np.ndarray,
        allowed: np.ndarray,
        window: int | None = None,
    ) -> int | None:
        """Node maximizing coverage-to-incentive-cost ratio (Algorithm 5).

        With *window* = ``w`` the argmax is restricted to the ``w`` allowed
        nodes of highest residual coverage — the trade-off knob studied in
        Figure 4 (``w = 1`` reduces to the cost-agnostic choice, ``w = n``
        is the full cost-sensitive rule).  Zero costs are floored at a tiny
        epsilon for the division only, making free influencers maximally
        attractive without numeric warnings.
        """
        if not allowed.any():
            return None
        candidate_idx = np.flatnonzero(allowed)
        if window is not None and window < candidate_idx.size:
            cand_counts = self.counts[candidate_idx]
            top = np.argpartition(-cand_counts, window - 1)[:window]
            candidate_idx = candidate_idx[top]
        safe_costs = np.maximum(costs[candidate_idx], 1e-12)
        ratios = self.counts[candidate_idx] / safe_costs
        best = int(np.argmax(ratios))
        return int(candidate_idx[best])

    def max_residual_fraction(self, allowed: np.ndarray) -> float:
        """``F^max_{R_i}``: the largest residual coverage fraction (Eq. 10)."""
        if self.theta == 0 or not allowed.any():
            return 0.0
        return float(np.where(allowed, self.counts, 0).max()) / self.theta

    def spread_estimate(self, node_or_set, n_nodes: int | None = None) -> float:
        """Static spread estimate ``n · F_R(S)`` over *all* sampled sets.

        Unlike the residual counts this intentionally includes covered
        sets, matching the unbiased-estimator definition.
        """
        if self.theta == 0:
            raise EstimationError("cannot estimate spread from an empty collection")
        n = self.n_nodes if n_nodes is None else n_nodes
        members = np.zeros(self.n_nodes, dtype=bool)
        if np.isscalar(node_or_set):
            members[int(node_or_set)] = True
        else:
            for v in node_or_set:
                members[int(v)] = True
        hit = sum(1 for s in self.sets if s.size and members[s].any())
        return n * hit / self.theta

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mark_covered_by(self, node: int) -> int:
        """Cover every uncovered set containing *node* (Alg. 2, line 14).

        Member counts of the covered sets are decremented so residual
        counts stay equal to marginal coverages.  Returns the number of
        sets newly covered (the selected seed's ``cov_i``).
        """
        newly = 0
        for sid in self._cover_lists[node]:
            if self.covered[sid]:
                continue
            self.covered[sid] = True
            self.covered_total += 1
            newly += 1
            self.counts[self.sets[sid]] -= 1
        self._cover_lists[node] = []
        return newly

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Analytic footprint of the stored sets and indexes (Table 3)."""
        set_bytes = self._member_total * 8
        index_bytes = self._member_total * 8
        flags = len(self.covered)
        counts_bytes = self.counts.nbytes
        return set_bytes + index_bytes + flags + counts_bytes


class SharedRRStore:
    """Append-only RR-set storage shared by several advertisers.

    Addresses the paper's open question (i) — "whether TI-CSRM can be
    made more memory efficient".  In the fully competitive marketplaces
    of Section 5 every ad uses the *same* arc probabilities (L = 1 or
    pure-competition pairs), so their RR sets are i.i.d. from the same
    distribution; the sets themselves (and the node → set inverted
    index) can therefore be stored once and shared, with each ad keeping
    only its private residual state (covered flags + counts) in
    :class:`SharedRRCollection`.  Storage drops from ``O(h · θ · |R|)``
    to ``O(θ · |R| + h · (θ + n))``.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise EstimationError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.sets: list[np.ndarray] = []
        self.cover_lists: list[list[int]] = [[] for _ in range(n_nodes)]
        self.member_total = 0

    def extend(self, new_sets: Iterable[np.ndarray]) -> None:
        """Append sets (validated) and index their members."""
        for members in new_sets:
            members = np.asarray(members, dtype=np.int64)
            if members.size and (members.min() < 0 or members.max() >= self.n_nodes):
                raise EstimationError("RR set contains out-of-range node ids")
            sid = len(self.sets)
            self.sets.append(members)
            self.member_total += int(members.size)
            for v in members:
                self.cover_lists[v].append(sid)

    @property
    def size(self) -> int:
        """Number of stored sets."""
        return len(self.sets)

    def memory_bytes(self) -> int:
        """Footprint of the shared sets + inverted index."""
        return self.member_total * 8 * 2


class SharedRRCollection:
    """One ad's residual view over a :class:`SharedRRStore`.

    Implements the same interface surface the TI engine uses on
    :class:`RRCollection` (residual counts, covering, Eq.-10 fractions,
    Alg.-3 absorption), but stores only ``covered`` flags and the count
    vector privately.  ``theta`` is the number of store sets this ad has
    *adopted*; adopting more sets (after an Eq.-10 growth step) indexes
    the new suffix of the shared store.
    """

    def __init__(self, store: SharedRRStore) -> None:
        self.store = store
        self.n_nodes = store.n_nodes
        self.covered: list[bool] = []
        self.covered_total = 0
        self.counts = np.zeros(store.n_nodes, dtype=np.int64)
        self._adopted = 0

    @property
    def theta(self) -> int:
        """Number of store sets adopted by this ad."""
        return self._adopted

    def adopt(self, upto: int, seeds: Sequence[int] = ()) -> int:
        """Adopt store sets ``[adopted, upto)``; seed-hit sets absorb as covered.

        Mirrors :meth:`RRCollection.add_sets` semantics (Algorithm 3's
        refresh); returns the number of newly absorbed covered sets.
        """
        if upto > self.store.size:
            raise EstimationError(
                f"cannot adopt {upto} sets; store only holds {self.store.size}"
            )
        seed_mask = np.zeros(self.n_nodes, dtype=bool)
        for s in seeds:
            seed_mask[int(s)] = True
        absorbed = 0
        for sid in range(self._adopted, upto):
            members = self.store.sets[sid]
            if members.size and seed_mask[members].any():
                self.covered.append(True)
                self.covered_total += 1
                absorbed += 1
                continue
            self.covered.append(False)
            self.counts[members] += 1
        self._adopted = max(self._adopted, upto)
        return absorbed

    def residual_count(self, node: int) -> int:
        """``cov_i(node)`` over this ad's uncovered adopted sets."""
        return int(self.counts[node])

    def best_node(self, allowed: np.ndarray) -> int | None:
        """Same selection rule as :meth:`RRCollection.best_node`."""
        if not allowed.any():
            return None
        masked = np.where(allowed, self.counts, -1)
        node = int(masked.argmax())
        return None if masked[node] < 0 else node

    def best_node_by_ratio(
        self, costs: np.ndarray, allowed: np.ndarray, window: int | None = None
    ) -> int | None:
        """Same selection rule as :meth:`RRCollection.best_node_by_ratio`."""
        if not allowed.any():
            return None
        candidate_idx = np.flatnonzero(allowed)
        if window is not None and window < candidate_idx.size:
            cand_counts = self.counts[candidate_idx]
            top = np.argpartition(-cand_counts, window - 1)[:window]
            candidate_idx = candidate_idx[top]
        safe_costs = np.maximum(costs[candidate_idx], 1e-12)
        ratios = self.counts[candidate_idx] / safe_costs
        return int(candidate_idx[int(np.argmax(ratios))])

    def max_residual_fraction(self, allowed: np.ndarray) -> float:
        """``F^max_{R_i}`` over this ad's residual view (Eq. 10)."""
        if self._adopted == 0 or not allowed.any():
            return 0.0
        return float(np.where(allowed, self.counts, 0).max()) / self._adopted

    def mark_covered_by(self, node: int) -> int:
        """Cover this ad's uncovered adopted sets containing *node*."""
        newly = 0
        for sid in self.store.cover_lists[node]:
            if sid >= self._adopted or self.covered[sid]:
                continue
            self.covered[sid] = True
            self.covered_total += 1
            newly += 1
            self.counts[self.store.sets[sid]] -= 1
        return newly

    def memory_bytes(self) -> int:
        """Private overlay only; the shared store is accounted once."""
        return len(self.covered) + self.counts.nbytes


def estimate_spread_from_sets(sets: Sequence[np.ndarray], seed_set, n_nodes: int) -> float:
    """Unbiased spread estimate ``n · F_R(S)`` from a static RR sample."""
    if not sets:
        raise EstimationError("cannot estimate spread from an empty sample")
    members = set(int(v) for v in seed_set)
    hit = 0
    for rr in sets:
        if any(int(v) in members for v in rr):
            hit += 1
    return n_nodes * hit / len(sets)
