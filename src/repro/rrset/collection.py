"""Coverage-indexed collections of RR sets on a flat CSR backend.

:class:`RRCollection` is the workhorse behind TI-CARM / TI-CSRM
(Algorithm 2).  It maintains, for one ad:

* the sampled RR sets (``θ_i`` of them, growing as the latent seed-set
  size estimate grows),
* a *residual* coverage count per node — how many not-yet-covered sets
  the node belongs to, which is exactly the marginal-coverage quantity
  ``cov_i(v)`` the selection rules in Algorithms 4 and 5 maximize,
* the running number of covered sets, from which the revenue estimate
  ``π̂_i(S_i) = cpe(i) · n · covered / θ_i`` follows.

Storage layout (identical estimator semantics to the original
list-of-arrays implementation, but every hot operation is a numpy
kernel):

* ``members`` / ``indptr`` — one CSR pair over all sampled sets: set
  ``k`` occupies ``members[indptr[k]:indptr[k+1]]``.  O(total members)
  memory, appended in O(batch) per :meth:`RRCollection.add_sets_flat`.
* ``covered`` — one boolean flag per set; "covered" sets are removed
  lazily (flagged, member counts decremented), implementing line 14 of
  Algorithm 2.
* a node → set-ids inverted index, itself a CSR pair, built lazily with
  ``np.bincount`` + stable ``np.argsort`` over the uncovered sets'
  members (O(M) per rebuild, triggered once per growth batch — never
  per member).  Stale entries of later-covered sets are filtered by the
  ``covered`` flag at query time.

:meth:`RRCollection.mark_covered_by` is fully vectorized: the node's set
ids come from one inverted-index slice, and the residual-count
decrement gathers all member slices of the newly covered sets with one
ragged gather + ``np.bincount`` subtraction.  Newly sampled sets that
already contain a seed are absorbed directly into the covered count,
implementing the coverage refresh of ``UpdateEstimates`` (Algorithm 3).

The collection also reports its memory footprint analytically, backing
the Table 3 reproduction.

Memory bounding (ISSUE 7)
-------------------------
Stores are *memory-bounded* for real-crawl scale:

* ``members`` is kept in the smallest sufficient signed dtype for the
  graph (:func:`member_dtype_for`) — ``int16`` under 32k nodes,
  ``int32`` up to 2**31-1, ``int64`` beyond — cutting the dominant
  array 4x on every dataset in the paper.  Incoming ``int64`` sampler
  batches are range-validated first, then cast, so the narrowing is
  lossless by construction.
* ``indptr`` starts as ``int32`` and upcasts to ``int64`` the first
  time total membership would exceed :data:`INDPTR_NARROW_MAX`
  (module-level so tests can shrink it to force the upcast path).
* :class:`SharedRRStore` optionally takes a ``bytes_budget``: once the
  member array would exceed it, the store spills ``members`` to a
  temp-file-backed ``np.memmap`` (appends grow the file and re-map),
  keeping RAM usage bounded while every read path — CSR views,
  inverted index, adoption — keeps working unchanged.  Spill files are
  removed by :meth:`SharedRRStore.close` or a ``weakref.finalize``
  safety net.
* Measured accounting — ``member_bytes``, ``peak_bytes``,
  :meth:`~SharedRRStore.bytes_per_rr_set` — feeds the engine's
  ``memory`` extras block, session stats and grid manifest rows.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EstimationError

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Largest total-membership offset kept in an ``int32`` indptr; one
#: entry past it upcasts the whole offset array to ``int64``.  Module
#: level (not per-store) so tests can shrink it to exercise the upcast.
INDPTR_NARROW_MAX = 2**31 - 1


def member_dtype_for(n_nodes: int) -> np.dtype:
    """Smallest *signed* dtype holding node ids of an *n_nodes* graph.

    Signed, with the bound set at the dtype's own maximum, because
    consumers index ``in_indptr[members + 1]``
    (:func:`repro.rrset.sampler.batch_widths`): ids reach
    ``n_nodes - 1``, so ``members + 1`` reaches ``n_nodes``, which must
    still be representable without overflow.
    """
    if n_nodes <= 2**15 - 1:
        return np.dtype(np.int16)
    if n_nodes <= 2**31 - 1:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def _append_indptr(indptr: np.ndarray, tail: np.ndarray) -> np.ndarray:
    """Append absolute offsets *tail* (int64) to *indptr*, upcasting past
    :data:`INDPTR_NARROW_MAX`; returns the new offset array."""
    if tail.size and int(tail[-1]) > INDPTR_NARROW_MAX and indptr.dtype != np.int64:
        indptr = indptr.astype(np.int64)
    return np.concatenate([indptr, tail.astype(indptr.dtype)])


def _remove_spill_file(path: str) -> None:
    """Best-effort unlink of a spill file (finalizer/close target)."""
    try:
        os.unlink(path)
    except OSError:
        pass


def _flatten_sets(
    new_sets: Iterable[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate an iterable of member arrays into a CSR pair."""
    arrays = [np.asarray(s, dtype=np.int64) for s in new_sets]
    lens = np.asarray([a.size for a in arrays], dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(lens)))
    members = np.concatenate(arrays) if arrays else _EMPTY_I64
    return members, indptr


def _segment_counts(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-set sums of a per-member array (robust to empty sets)."""
    csum = np.concatenate(([0], np.cumsum(values, dtype=np.int64)))
    return csum[indptr[1:]] - csum[indptr[:-1]]


def _segment_index(indptr: np.ndarray, sids: np.ndarray) -> np.ndarray:
    """Flat indices of ``indptr[s]:indptr[s+1]`` for each s in *sids*."""
    starts = indptr[sids]
    lens = indptr[sids + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return _EMPTY_I64
    ends = np.cumsum(lens)
    return np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - lens), lens)


def _gather_segments(
    members: np.ndarray, indptr: np.ndarray, sids: np.ndarray
) -> np.ndarray:
    """Concatenate ``members[indptr[s]:indptr[s+1]]`` for each s in *sids*."""
    idx = _segment_index(indptr, sids)
    if idx.size == 0:
        return _EMPTY_I64
    return members[idx]


def build_inverted_index(
    nodes: np.ndarray, sids: np.ndarray, n_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR (node → set ids) index: one stable argsort + one bincount.

    Set ids stay ascending within each node's slice because ``sids`` is
    non-decreasing and the sort is stable.
    """
    order = np.argsort(nodes, kind="stable")
    inv_sets = np.ascontiguousarray(sids[order])
    inv_indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(nodes, minlength=n_nodes)))
    ).astype(np.int64)
    return inv_indptr, inv_sets


def _validate_flat(members: np.ndarray, indptr: np.ndarray, n_nodes: int) -> None:
    if indptr.ndim != 1 or indptr.size < 1 or indptr[0] != 0:
        raise EstimationError("indptr must be 1-D and start at 0")
    if np.any(np.diff(indptr) < 0) or indptr[-1] != members.size:
        raise EstimationError("indptr must be non-decreasing and end at members.size")
    if members.size and (members.min() < 0 or members.max() >= n_nodes):
        raise EstimationError("RR set contains out-of-range node ids")


def _seed_mask(n_nodes: int, seeds: Sequence[int]) -> np.ndarray:
    mask = np.zeros(n_nodes, dtype=bool)
    for s in seeds:
        mask[int(s)] = True
    return mask


class RRCollection:
    """Mutable, coverage-indexed RR-set store for one ad (flat CSR)."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise EstimationError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.member_dtype = member_dtype_for(self.n_nodes)
        self.members = np.empty(0, dtype=self.member_dtype)
        self.indptr = np.zeros(1, dtype=np.int32)
        self.covered = np.zeros(0, dtype=bool)
        self.covered_total = 0
        self.counts = np.zeros(n_nodes, dtype=np.int64)
        self._inv_indptr: np.ndarray | None = None
        self._inv_sets: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def add_sets_flat(
        self, members: np.ndarray, indptr: np.ndarray, seeds: Sequence[int] = ()
    ) -> int:
        """Append a flat CSR batch of RR sets (the sampler's output form).

        Parameters
        ----------
        members, indptr:
            A CSR pair as produced by
            :meth:`RRSampler.sample_batch_flat` or
            :func:`repro.rrset.backend.merge_shards`: ``members`` is
            ``int64[total]`` with node ids in ``[0, n_nodes)``;
            ``indptr`` is ``int64[k + 1]``, non-decreasing, starting at
            0 and ending at ``members.size``.  Both are **copied** into
            the collection's own arrays — the caller keeps ownership of
            (and may freely reuse) the inputs, and no view into them is
            retained.
        seeds:
            Already-selected seed nodes; sets hit by any of them count
            as covered immediately — they are neither indexed nor
            counted (Algorithm 3's ``cov'`` refresh).

        Returns the number of newly absorbed covered sets.
        """
        members = np.ascontiguousarray(members, dtype=np.int64)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        _validate_flat(members, indptr, self.n_nodes)
        k = indptr.size - 1
        if k == 0:
            return 0
        lens = np.diff(indptr)
        if seeds is not None and len(seeds):
            hits = _segment_counts(_seed_mask(self.n_nodes, seeds)[members], indptr)
            covered_new = hits > 0
        else:
            covered_new = np.zeros(k, dtype=bool)
        absorbed = int(covered_new.sum())
        live_members = members[np.repeat(~covered_new, lens)]
        if live_members.size:
            self.counts += np.bincount(live_members, minlength=self.n_nodes)
        # Range-validated above, so the narrowing cast is lossless; an
        # explicit astype keeps concatenate from promoting back to int64.
        self.members = np.concatenate(
            [self.members, members.astype(self.member_dtype)]
        )
        self.indptr = _append_indptr(self.indptr, self.indptr[-1] + indptr[1:])
        self.covered = np.concatenate([self.covered, covered_new])
        self.covered_total += absorbed
        self._inv_indptr = self._inv_sets = None  # rebuilt lazily
        return absorbed

    def add_sets(self, new_sets: Iterable[np.ndarray], seeds: Sequence[int] = ()) -> int:
        """List-of-arrays convenience wrapper over :meth:`add_sets_flat`."""
        members, indptr = _flatten_sets(new_sets)
        return self.add_sets_flat(members, indptr, seeds=seeds)

    def _inverted(self) -> tuple[np.ndarray, np.ndarray]:
        """The node → uncovered-set-ids index, rebuilt after growth."""
        if self._inv_indptr is None:
            lens = np.diff(self.indptr)
            live = np.repeat(~self.covered, lens)
            sids = np.repeat(np.arange(self.theta, dtype=np.int64), lens)[live]
            self._inv_indptr, self._inv_sets = build_inverted_index(
                self.members[live], sids, self.n_nodes
            )
        return self._inv_indptr, self._inv_sets

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def theta(self) -> int:
        """Total number of sampled RR sets (covered included)."""
        return self.indptr.size - 1

    def set_members(self, sid: int) -> np.ndarray:
        """Member ids of set *sid* (a CSR slice view)."""
        return self.members[self.indptr[sid] : self.indptr[sid + 1]]

    def residual_count(self, node: int) -> int:
        """Number of uncovered sets containing *node* (``cov_i(node)``)."""
        return int(self.counts[node])

    def best_node(self, allowed: np.ndarray) -> int | None:
        """Unassigned node with maximum residual coverage (Algorithm 4).

        *allowed* is a boolean mask over nodes; returns ``None`` when no
        allowed node covers anything... except that a zero-coverage node is
        still a legal (zero-marginal-revenue) candidate, so the argmax is
        returned whenever any node is allowed.
        """
        if not allowed.any():
            return None
        masked = np.where(allowed, self.counts, -1)
        node = int(masked.argmax())
        if masked[node] < 0:
            return None
        return node

    def best_node_by_ratio(
        self,
        costs: np.ndarray,
        allowed: np.ndarray,
        window: int | None = None,
    ) -> int | None:
        """Node maximizing coverage-to-incentive-cost ratio (Algorithm 5).

        With *window* = ``w`` the argmax is restricted to the ``w`` allowed
        nodes of highest residual coverage — the trade-off knob studied in
        Figure 4 (``w = 1`` reduces to the cost-agnostic choice, ``w = n``
        is the full cost-sensitive rule).  Zero costs are floored at a tiny
        epsilon for the division only, making free influencers maximally
        attractive without numeric warnings.
        """
        return _best_by_ratio(self.counts, costs, allowed, window)

    def max_residual_fraction(self, allowed: np.ndarray) -> float:
        """``F^max_{R_i}``: the largest residual coverage fraction (Eq. 10)."""
        if self.theta == 0 or not allowed.any():
            return 0.0
        return float(np.where(allowed, self.counts, 0).max()) / self.theta

    def spread_estimate(self, node_or_set, n_nodes: int | None = None) -> float:
        """Static spread estimate ``n · F_R(S)`` over *all* sampled sets.

        *node_or_set* is a scalar node id or an iterable of node ids
        (each in ``[0, n_nodes)``); *n_nodes* overrides the population
        size ``n`` in the estimator (defaults to the collection's own).
        Unlike the residual counts this intentionally includes covered
        sets, matching the unbiased-estimator definition.  One membership
        mask lookup over the flat member array plus a segmented
        reduction; read-only — no collection state is touched.
        """
        if self.theta == 0:
            raise EstimationError("cannot estimate spread from an empty collection")
        n = self.n_nodes if n_nodes is None else n_nodes
        mask = np.zeros(self.n_nodes, dtype=bool)
        if np.isscalar(node_or_set):
            mask[int(node_or_set)] = True
        else:
            for v in node_or_set:
                mask[int(v)] = True
        hit = int((_segment_counts(mask[self.members], self.indptr) > 0).sum())
        return n * hit / self.theta

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mark_covered_by(self, node: int) -> int:
        """Cover every uncovered set containing *node* (Alg. 2, line 14).

        Member counts of the covered sets are decremented (one ragged
        gather + ``np.bincount`` over ``counts``, an ``int64[n_nodes]``
        vector mutated in place) so residual counts stay equal to
        marginal coverages.  Triggers a lazy inverted-index rebuild if
        sets were added since the last query.  Returns the number of
        sets newly covered (the selected seed's ``cov_i``).
        """
        inv_indptr, inv_sets = self._inverted()
        ids = inv_sets[inv_indptr[node] : inv_indptr[node + 1]]
        fresh = ids[~self.covered[ids]]
        if not fresh.size:
            return 0
        self.covered[fresh] = True
        self.covered_total += int(fresh.size)
        dead = _gather_segments(self.members, self.indptr, fresh)
        self.counts -= np.bincount(dead, minlength=self.n_nodes)
        return int(fresh.size)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Analytic footprint of the stored sets and indexes (Table 3).

        Members are counted at their actual (narrowed) width; the
        node → set-id inverted index is counted at one ``int64`` entry
        per member whether or not it is currently materialized, keeping
        the figure deterministic across lazy rebuilds.
        """
        set_bytes = int(self.members.nbytes)
        index_bytes = self.members.size * 8
        flags = self.theta
        counts_bytes = self.counts.nbytes
        return set_bytes + index_bytes + flags + counts_bytes

    def bytes_per_rr_set(self) -> float:
        """Measured storage bytes per sampled set (members + offsets)."""
        if self.theta == 0:
            return 0.0
        return (int(self.members.nbytes) + int(self.indptr.nbytes)) / self.theta


def _best_by_ratio(
    counts: np.ndarray,
    costs: np.ndarray,
    allowed: np.ndarray,
    window: int | None,
) -> int | None:
    """Shared Algorithm-5 argmax over residual counts / incentive costs."""
    if not allowed.any():
        return None
    candidate_idx = np.flatnonzero(allowed)
    if window is not None and window < candidate_idx.size:
        cand_counts = counts[candidate_idx]
        top = np.argpartition(-cand_counts, window - 1)[:window]
        candidate_idx = candidate_idx[top]
    safe_costs = np.maximum(costs[candidate_idx], 1e-12)
    ratios = counts[candidate_idx] / safe_costs
    return int(candidate_idx[int(np.argmax(ratios))])


class SharedRRStore:
    """Append-only flat RR-set storage shared by several advertisers.

    Addresses the paper's open question (i) — "whether TI-CSRM can be
    made more memory efficient".  In the fully competitive marketplaces
    of Section 5 every ad uses the *same* arc probabilities (L = 1 or
    pure-competition pairs), so their RR sets are i.i.d. from the same
    distribution; the sets themselves (one CSR pair) and the node → set
    inverted index (a second CSR pair, rebuilt lazily per extension
    batch) are stored once and shared, with each ad keeping only its
    private residual state (covered flags + counts) in
    :class:`SharedRRCollection`.  Storage drops from ``O(h · θ · |R|)``
    to ``O(θ · |R| + h · (θ + n))``.

    Memory bounding: ``members`` uses the narrowest sufficient dtype
    (:func:`member_dtype_for`), and an optional *bytes_budget* caps its
    RAM residency — past the budget the array spills to a temp-file
    ``np.memmap`` (in *spill_dir*, default the system temp directory)
    and appends grow the file in place.  Every read path returns the
    same values either way; only :meth:`memory_bytes` (RAM) and
    :attr:`spilled` change.  Call :meth:`close` (sessions do) to drop
    the mapping and unlink the file; a ``weakref.finalize`` net removes
    it at GC/interpreter exit otherwise.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        bytes_budget: int | None = None,
        spill_dir: str | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise EstimationError(f"n_nodes must be positive, got {n_nodes}")
        if bytes_budget is not None and bytes_budget < 0:
            raise EstimationError(
                f"bytes_budget must be non-negative, got {bytes_budget}"
            )
        self.n_nodes = int(n_nodes)
        self.member_dtype = member_dtype_for(self.n_nodes)
        self.bytes_budget = int(bytes_budget) if bytes_budget else None
        self.peak_bytes = 0
        self.members = np.empty(0, dtype=self.member_dtype)
        self.indptr = np.zeros(1, dtype=np.int32)
        self._spill_dir = spill_dir
        self._spill_path: str | None = None
        self._spill_finalizer = None
        self._closed = False
        self._inv_indptr: np.ndarray | None = None
        self._inv_sets: np.ndarray | None = None

    @property
    def spilled(self) -> bool:
        """True once ``members`` lives in a memmap-backed spill file."""
        return self._spill_path is not None

    def _spill_map(self, size: int) -> np.memmap:
        """(Re)size the spill file for *size* members and map it r+."""
        if self._spill_path is None:
            fd, path = tempfile.mkstemp(
                prefix="repro_rrspill_", suffix=".bin", dir=self._spill_dir
            )
            os.close(fd)
            self._spill_path = path
            self._spill_finalizer = weakref.finalize(
                self, _remove_spill_file, path
            )
        itemsize = self.member_dtype.itemsize
        with open(self._spill_path, "r+b") as f:
            f.truncate(max(size, 1) * itemsize)
        return np.memmap(
            self._spill_path, dtype=self.member_dtype, mode="r+", shape=(size,)
        )

    def extend_flat(self, members: np.ndarray, indptr: np.ndarray) -> None:
        """Append a flat CSR batch of sets (the sampler's output form).

        Range-validates first, then narrows to :attr:`member_dtype`.
        When a *bytes_budget* is configured and the grown member array
        would exceed it (or the store has already spilled), the batch
        lands in the memmap spill file instead of RAM.
        """
        if self._closed:
            raise EstimationError("store is closed")
        members = np.ascontiguousarray(members, dtype=np.int64)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        _validate_flat(members, indptr, self.n_nodes)
        if indptr.size == 1:
            return
        batch = members.astype(self.member_dtype)
        old_size = int(self.members.size)
        new_size = old_size + int(batch.size)
        over_budget = (
            self.bytes_budget is not None
            and new_size * self.member_dtype.itemsize > self.bytes_budget
        )
        if self.spilled or over_budget:
            mapped = self._spill_map(new_size)
            if old_size and not isinstance(self.members, np.memmap):
                mapped[:old_size] = self.members  # first spill: move RAM out
            if batch.size:
                mapped[old_size:] = batch
            mapped.flush()
            self.members = mapped
        else:
            self.members = np.concatenate([self.members, batch])
        self.indptr = _append_indptr(self.indptr, self.indptr[-1] + indptr[1:])
        self._inv_indptr = self._inv_sets = None
        self.peak_bytes = max(self.peak_bytes, self.memory_bytes())

    def close(self) -> None:
        """Drop the memmap (if any) and unlink the spill file (idempotent).

        The store must not be extended afterwards; in-RAM stores are
        unaffected apart from refusing further growth.
        """
        if self._closed:
            return
        self._closed = True
        if self._spill_path is not None:
            self.members = np.empty(0, dtype=self.member_dtype)
            self.indptr = np.zeros(1, dtype=np.int32)
            self._inv_indptr = self._inv_sets = None
            if self._spill_finalizer is not None:
                self._spill_finalizer()  # unlinks; detaches the finalizer
            self._spill_path = None

    def extend(self, new_sets: Iterable[np.ndarray]) -> None:
        """List-of-arrays convenience wrapper over :meth:`extend_flat`."""
        members, indptr = _flatten_sets(new_sets)
        self.extend_flat(members, indptr)

    def _inverted(self) -> tuple[np.ndarray, np.ndarray]:
        """The full-store node → set-ids index, rebuilt lazily.

        Reads the member array exactly once per (re)build — spilled
        stores pay one sequential pass over the memmap, and the index
        itself always lives in RAM — and is dropped by every mutation
        (:meth:`extend_flat`, :meth:`replace_sets`), so queries never
        see ids for members that were since rewritten.
        """
        if self._inv_indptr is None:
            lens = np.diff(self.indptr)
            sids = np.repeat(np.arange(self.size, dtype=np.int64), lens)
            self._inv_indptr, self._inv_sets = build_inverted_index(
                np.asarray(self.members, dtype=np.int64), sids, self.n_nodes
            )
        return self._inv_indptr, self._inv_sets

    def sets_containing(self, node: int) -> np.ndarray:
        """Ids (ascending) of all stored sets that contain *node*."""
        inv_indptr, inv_sets = self._inverted()
        return inv_sets[inv_indptr[node] : inv_indptr[node + 1]]

    def roots(self) -> np.ndarray:
        """The recorded root of every stored set (``int64[size]``).

        A sampled RR set's first member is its root (the batch kernels
        emit the root first, then each level's fresh members;
        docs/ARCHITECTURE.md §14) and sets are never empty, so the roots
        are exactly ``members[indptr[:-1]]``.  This *is* the per-set
        traversal record: together with membership it reproduces the
        reverse BFS, because every member's full in-arc slice — and no
        other edge — had its coin flipped.
        """
        return np.asarray(self.members[self.indptr[:-1]], dtype=np.int64)

    def sets_touching(self, nodes) -> np.ndarray:
        """Ids (ascending, unique) of sets whose traversal flipped a coin
        on an in-arc of any node in *nodes*.

        The edge-level invalidation query: a stored set's reverse BFS
        flipped the coins of exactly the in-arcs of its members, so the
        sets that could have observed a change to edge ``u -> v`` are
        precisely the sets containing ``v`` — pass the *heads* of the
        changed edges (:meth:`repro.graph.updates.UpdatePlan.changed_heads`).
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size == 0 or self.size == 0:
            return _EMPTY_I64
        if nodes[0] < 0 or nodes[-1] >= self.n_nodes:
            raise EstimationError(
                f"node ids must lie in [0, {self.n_nodes}), got range "
                f"[{nodes[0]}, {nodes[-1]}]"
            )
        inv_indptr, inv_sets = self._inverted()
        hits = _gather_segments(inv_sets, inv_indptr, nodes)
        return np.unique(hits)

    def replace_sets(
        self, sids: np.ndarray, members: np.ndarray, indptr: np.ndarray
    ) -> None:
        """Rewrite the member lists of the sets *sids* in place.

        *members*/*indptr* is a flat CSR batch with exactly
        ``len(sids)`` sets: batch set ``j`` becomes the new content of
        store set ``sids[j]``.  The store keeps its size; untouched sets
        keep their ids and content.  This is the invalidation-resample
        write path (docs/ARCHITECTURE.md §14): the session resamples the
        invalidated ids from their recorded roots and swaps the results
        in here.

        Spill safety: a spilled store's surviving members are gathered
        to RAM and the live memmap reference is dropped *before* the
        spill file is resized — resizing a file under a live ``mmap``
        risks ``SIGBUS`` on a later access — then the rewritten array is
        flushed back and remapped.  The inverted index is always
        invalidated, so :meth:`sets_containing` / :meth:`sets_touching`
        after a replace rebuild against the rewritten members.
        """
        if self._closed:
            raise EstimationError("store is closed")
        sids = np.asarray(sids, dtype=np.int64)
        members = np.ascontiguousarray(members, dtype=np.int64)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        _validate_flat(members, indptr, self.n_nodes)
        if sids.ndim != 1 or indptr.size != sids.size + 1:
            raise EstimationError(
                f"got {sids.size} set ids but {indptr.size - 1} replacement sets"
            )
        if sids.size == 0:
            return
        if np.any(np.diff(sids) <= 0):
            raise EstimationError("set ids must be strictly increasing")
        if sids[0] < 0 or sids[-1] >= self.size:
            raise EstimationError(
                f"set ids must lie in [0, {self.size}), got range "
                f"[{sids[0]}, {sids[-1]}]"
            )
        if np.any(np.diff(indptr) < 1):
            raise EstimationError("replacement RR sets must be non-empty")

        old_indptr = self.indptr.astype(np.int64)
        # Gather to RAM up front: on a spilled store the source memmap
        # must not be read after (or truncated under) the rewrite below.
        old_members = (
            np.array(self.members) if self.spilled else self.members
        )
        new_lens = np.diff(old_indptr)
        new_lens[sids] = np.diff(indptr)
        new_indptr64 = np.concatenate(
            ([0], np.cumsum(new_lens, dtype=np.int64))
        )
        total = int(new_indptr64[-1])

        out = np.empty(total, dtype=self.member_dtype)
        replaced = np.zeros(self.size, dtype=bool)
        replaced[sids] = True
        kept_ids = np.flatnonzero(~replaced)
        if kept_ids.size:
            dest = _segment_index(new_indptr64, kept_ids)
            out[dest] = _gather_segments(old_members, old_indptr, kept_ids)
        dest = _segment_index(new_indptr64, sids)
        out[dest] = members.astype(self.member_dtype)

        indptr_dtype = (
            np.int64 if total > INDPTR_NARROW_MAX else self.indptr.dtype
        )
        if self.spilled:
            self.members = np.empty(0, dtype=self.member_dtype)
            mapped = self._spill_map(total)
            mapped[:] = out
            mapped.flush()
            self.members = mapped
        elif (
            self.bytes_budget is not None
            and total * self.member_dtype.itemsize > self.bytes_budget
        ):
            mapped = self._spill_map(total)
            mapped[:] = out
            mapped.flush()
            self.members = mapped
        else:
            self.members = out
        self.indptr = new_indptr64.astype(indptr_dtype)
        self._inv_indptr = self._inv_sets = None
        self.peak_bytes = max(self.peak_bytes, self.memory_bytes())

    def set_members(self, sid: int) -> np.ndarray:
        """Member ids of set *sid* (a CSR slice view)."""
        return self.members[self.indptr[sid] : self.indptr[sid + 1]]

    @property
    def size(self) -> int:
        """Number of stored sets."""
        return self.indptr.size - 1

    @property
    def member_total(self) -> int:
        """Total stored member entries across all sets."""
        return int(self.members.size)

    @property
    def member_bytes(self) -> int:
        """Bytes held by the member array (RAM or spill file)."""
        return int(self.members.nbytes)

    def bytes_per_rr_set(self) -> float:
        """Measured storage bytes per stored set (members + offsets)."""
        if self.size == 0:
            return 0.0
        return (self.member_bytes + int(self.indptr.nbytes)) / self.size

    def memory_bytes(self) -> int:
        """RAM footprint of the shared sets + inverted index.

        Members count at their narrowed width — or zero once spilled to
        disk — plus one ``int64`` inverted-index entry per member
        (deterministic across lazy rebuilds, as in
        :meth:`RRCollection.memory_bytes`).
        """
        set_bytes = 0 if self.spilled else self.member_bytes
        return set_bytes + self.member_total * 8


class SharedRRCollection:
    """One ad's residual view over a :class:`SharedRRStore`.

    Implements the same interface surface the TI engine uses on
    :class:`RRCollection` (residual counts, covering, Eq.-10 fractions,
    Alg.-3 absorption), but stores only ``covered`` flags and the count
    vector privately.  ``theta`` is the number of store sets this ad has
    *adopted*; adopting more sets (after an Eq.-10 growth step) counts
    the new suffix of the shared store with one ``np.bincount``.
    """

    def __init__(self, store: SharedRRStore) -> None:
        self.store = store
        self.n_nodes = store.n_nodes
        self.covered = np.zeros(0, dtype=bool)
        self.covered_total = 0
        self.counts = np.zeros(store.n_nodes, dtype=np.int64)
        self._adopted = 0

    @property
    def theta(self) -> int:
        """Number of store sets adopted by this ad."""
        return self._adopted

    def adopt(self, upto: int, seeds: Sequence[int] = ()) -> int:
        """Adopt store sets ``[adopted, upto)``; seed-hit sets absorb as covered.

        *upto* is an exclusive store index (``<= store.size``); adoption
        is monotone — calls with ``upto <= theta`` are no-ops returning
        0.  The adopted suffix is read as CSR *views* into the shared
        store (never copied); only this ad's private overlay — the
        ``covered`` ``bool[theta]`` flags and the ``int64[n_nodes]``
        residual ``counts`` — is (re)allocated here.  Mirrors
        :meth:`RRCollection.add_sets_flat` semantics (Algorithm 3's
        refresh); returns the number of newly absorbed covered sets.
        """
        if upto > self.store.size:
            raise EstimationError(
                f"cannot adopt {upto} sets; store only holds {self.store.size}"
            )
        if upto <= self._adopted:
            return 0
        store = self.store
        lo, hi = store.indptr[self._adopted], store.indptr[upto]
        members = store.members[lo:hi]
        indptr = store.indptr[self._adopted : upto + 1] - lo
        lens = np.diff(indptr)
        if seeds is not None and len(seeds):
            hits = _segment_counts(_seed_mask(self.n_nodes, seeds)[members], indptr)
            covered_new = hits > 0
        else:
            covered_new = np.zeros(upto - self._adopted, dtype=bool)
        absorbed = int(covered_new.sum())
        live_members = members[np.repeat(~covered_new, lens)]
        if live_members.size:
            self.counts += np.bincount(live_members, minlength=self.n_nodes)
        self.covered = np.concatenate([self.covered, covered_new])
        self.covered_total += absorbed
        self._adopted = upto
        return absorbed

    def residual_count(self, node: int) -> int:
        """``cov_i(node)`` over this ad's uncovered adopted sets."""
        return int(self.counts[node])

    def best_node(self, allowed: np.ndarray) -> int | None:
        """Same selection rule as :meth:`RRCollection.best_node`."""
        if not allowed.any():
            return None
        masked = np.where(allowed, self.counts, -1)
        node = int(masked.argmax())
        return None if masked[node] < 0 else node

    def best_node_by_ratio(
        self, costs: np.ndarray, allowed: np.ndarray, window: int | None = None
    ) -> int | None:
        """Same selection rule as :meth:`RRCollection.best_node_by_ratio`."""
        return _best_by_ratio(self.counts, costs, allowed, window)

    def max_residual_fraction(self, allowed: np.ndarray) -> float:
        """``F^max_{R_i}`` over this ad's residual view (Eq. 10)."""
        if self._adopted == 0 or not allowed.any():
            return 0.0
        return float(np.where(allowed, self.counts, 0).max()) / self._adopted

    def mark_covered_by(self, node: int) -> int:
        """Cover this ad's uncovered adopted sets containing *node*."""
        ids = self.store.sets_containing(node)
        ids = ids[ids < self._adopted]
        fresh = ids[~self.covered[ids]]
        if not fresh.size:
            return 0
        self.covered[fresh] = True
        self.covered_total += int(fresh.size)
        dead = _gather_segments(self.store.members, self.store.indptr, fresh)
        self.counts -= np.bincount(dead, minlength=self.n_nodes)
        return int(fresh.size)

    def memory_bytes(self) -> int:
        """Private overlay only; the shared store is accounted once."""
        return self.covered.size + self.counts.nbytes


def estimate_spread_flat(
    members: np.ndarray, indptr: np.ndarray, seed_set, n_nodes: int
) -> float:
    """Unbiased spread estimate ``n · F_R(S)`` from a flat CSR RR sample."""
    n_sets = indptr.size - 1
    if n_sets < 1:
        raise EstimationError("cannot estimate spread from an empty sample")
    seeds = np.asarray(sorted(set(int(v) for v in seed_set)), dtype=np.int64)
    hit_members = np.isin(members, seeds)
    hit = int((_segment_counts(hit_members, indptr) > 0).sum())
    return n_nodes * hit / n_sets


def estimate_spread_from_sets(sets: Sequence[np.ndarray], seed_set, n_nodes: int) -> float:
    """Unbiased spread estimate ``n · F_R(S)`` from a static RR sample."""
    if not sets:
        raise EstimationError("cannot estimate spread from an empty sample")
    members, indptr = _flatten_sets(sets)
    return estimate_spread_flat(members, indptr, seed_set, n_nodes)
