"""Kernel seam for the batch RR-set sampler: numpy vs. numba-JIT.

The level-synchronous reverse BFS of
:func:`repro.rrset.sampler.sample_batch_flat_kernel` spends its time in
two per-level stages: the ragged gather of every frontier node's in-arc
probability slice, and the dedup/advance of the next frontier.  Both are
memory-bound numpy expressions with O(level) Python overhead; on real
crawls (Epinions and up) that overhead caps throughput.  This module
provides a drop-in numba implementation of the same kernel behind a
string seam::

    kernel="numpy"   always available; the parity reference
    kernel="numba"   JIT-compiled per-level loops (falls back to the
                     same loops interpreted when numba is not
                     installed — bit-identical, just slow)
    kernel="auto"    "numba" when importable, else "numpy"

Bit-identity contract
---------------------
The numba kernel consumes the *exact same RNG stream* as the numpy
kernel and returns bit-identical ``(members, indptr)`` arrays.  This
holds because every stochastic step stays in Python on the caller's
:class:`numpy.random.Generator`:

* the single ``rng.integers(0, n, count)`` roots draw (skipped by both
  kernels identically when pinned ``roots`` are passed — the
  incremental-maintenance resample path);
* one ``rng.random(E)`` draw per chunk per BFS level, where ``E`` is
  the frontier's total in-degree — identical between kernels because
  the frontier itself is identical.

Only the deterministic stages are compiled: :func:`_gather_level_probs`
reproduces the numpy ragged gather's arc order (frontier positions
ascending, each node's in-CSR slice contiguous), and
:func:`_advance_frontier` replaces ``np.unique`` + visited-mask
filtering with a first-touch mark over the same flat ``set*n + node``
key space, then sorts the fresh keys — provably the same set in the
same (ascending) order, with the same final ``visited`` state.  The
numpy kernel's two post-draw ``break`` conditions (no surviving arc /
no fresh pair) collapse into one here; both end the chunk after the
same final draw, so streams cannot diverge.

Numba is an *optional* dependency: importing this module (and the whole
``repro`` package) must work without it.  When absent, ``@njit``
degrades to a no-op decorator so ``kernel="numba"`` still runs —
interpreted, for parity testing — and ``kernel="auto"`` resolves to
``"numpy"``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError

try:  # pragma: no cover - exercised via tests with/without numba
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover

    def njit(*args, **kwargs):
        """No-op ``@njit`` stand-in: the decorated function runs as-is."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    NUMBA_AVAILABLE = False

#: The kernel seam's legal spellings, in documentation order.
KERNELS = ("numpy", "numba", "auto")


def resolve_kernel(kernel: str | None) -> str:
    """Resolve a seam spelling to the concrete kernel to run.

    ``None`` means ``"auto"``.  ``"auto"`` picks ``"numba"`` when the
    import succeeded and ``"numpy"`` otherwise; explicit names pass
    through (``"numba"`` without numba installed runs the interpreted
    fallback — bit-identical, slow — so parity suites exercise the
    numba code path on any machine).
    """
    if kernel is None:
        kernel = "auto"
    if kernel not in KERNELS:
        raise EstimationError(
            f"unknown kernel {kernel!r}; options: {list(KERNELS)}"
        )
    if kernel == "auto":
        return "numba" if NUMBA_AVAILABLE else "numpy"
    return kernel


def resolve_batch_kernel(kernel: str | None):
    """Return the ``sample_batch_flat_kernel``-shaped callable for *kernel*.

    The returned function has the exact signature and RNG contract of
    :func:`repro.rrset.sampler.sample_batch_flat_kernel`; callers hold
    onto it so per-call dispatch costs nothing.
    """
    if resolve_kernel(kernel) == "numba":
        return sample_batch_flat_kernel_numba
    from repro.rrset.sampler import sample_batch_flat_kernel

    return sample_batch_flat_kernel


@njit(cache=True)
def _gather_level_probs(in_indptr, probs_in, fnodes):  # pragma: no cover
    """Arc probabilities of one BFS level, in the numpy kernel's order.

    Concatenates ``probs_in[in_indptr[v]:in_indptr[v+1]]`` over frontier
    nodes ``v`` in position order — the same layout the numpy kernel's
    ``eidx`` ragged gather produces — so a single ``rng.random(total)``
    draw compares element-for-element identically.
    """
    total = 0
    for i in range(fnodes.size):
        v = fnodes[i]
        total += in_indptr[v + 1] - in_indptr[v]
    out = np.empty(total, np.float64)
    pos = 0
    for i in range(fnodes.size):
        v = fnodes[i]
        for e in range(in_indptr[v], in_indptr[v + 1]):
            out[pos] = probs_in[e]
            pos += 1
    return out


@njit(cache=True)
def _advance_frontier(
    n, in_indptr, in_tails, fnodes, fsets, flips, visited
):  # pragma: no cover
    """Advance one BFS level: first-touch dedup over ``set*n + node`` keys.

    Walks the level's arcs in the same order as ``flips`` was drawn,
    marking each surviving ``(set, tail)`` pair's flat key on first
    touch and collecting it.  First-touch marking yields exactly the
    numpy kernel's ``unique(cand_keys)`` minus already-visited keys
    (later duplicates see ``visited`` already set), and the final sort
    restores ``np.unique``'s ascending order — so the returned keys and
    the mutated ``visited`` bitmap are bit-identical to the numpy path.
    """
    buf = np.empty(flips.size, np.int64)
    cnt = 0
    pos = 0
    for i in range(fnodes.size):
        v = fnodes[i]
        base = fsets[i] * n
        for e in range(in_indptr[v], in_indptr[v + 1]):
            if flips[pos]:
                key = base + in_tails[e]
                if not visited[key]:
                    visited[key] = True
                    buf[cnt] = key
                    cnt += 1
            pos += 1
    return np.sort(buf[:cnt])


def sample_batch_flat_kernel_numba(
    n: int,
    in_indptr: np.ndarray,
    in_tails: np.ndarray,
    probs_in: np.ndarray,
    count: int,
    rng: np.random.Generator,
    chunk_bytes: int | None = None,
    roots: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Numba-backed twin of :func:`~repro.rrset.sampler.sample_batch_flat_kernel`.

    Same signature, same RNG stream, bit-identical ``(members, indptr)``
    output (see the module docstring for the argument).  RNG draws stay
    on the Python side; the compiled helpers handle the per-level gather
    and frontier advance.  *roots*, when given, pins the per-set roots
    and skips the root draw — exactly as in the numpy kernel, so the
    bit-identity contract extends to the pinned-root resample path.
    JIT compilation happens once per process on first use
    (``cache=True`` persists it across processes sharing a
    ``__pycache__``), which is how :class:`SharedGraphPool` workers pick
    the kernel up: each worker resolves the seam once at startup.
    """
    from repro.rrset.sampler import DEFAULT_CHUNK_BYTES, batch_chunk_size

    if chunk_bytes is None:
        chunk_bytes = DEFAULT_CHUNK_BYTES
    if count == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    if roots is None:
        roots = rng.integers(0, n, size=count).astype(np.int64)
    else:
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        if roots.shape != (count,):
            raise EstimationError(
                f"roots must have shape ({count},), got {roots.shape}"
            )
        if roots.size and (roots.min() < 0 or roots.max() >= n):
            raise EstimationError(f"roots must lie in [0, {n})")

    chunk = batch_chunk_size(n, count, chunk_bytes)
    member_sets: list[np.ndarray] = []
    member_nodes: list[np.ndarray] = []
    for c0 in range(0, count, chunk):
        c1 = min(c0 + chunk, count)
        csize = c1 - c0
        visited = np.zeros(csize * n, dtype=np.bool_)
        fsets = np.arange(csize, dtype=np.int64)
        fnodes = np.ascontiguousarray(roots[c0:c1])
        visited[fsets * n + fnodes] = True
        member_sets.append(fsets + c0)
        member_nodes.append(fnodes.copy())
        while fnodes.size:
            level_probs = _gather_level_probs(in_indptr, probs_in, fnodes)
            if level_probs.size == 0:
                break
            flips = rng.random(level_probs.size) < level_probs
            keys = _advance_frontier(
                n, in_indptr, in_tails, fnodes, fsets, flips, visited
            )
            if not keys.size:
                break
            fsets = keys // n
            fnodes = keys % n
            member_sets.append(fsets + c0)
            member_nodes.append(fnodes)

    all_sets = np.concatenate(member_sets)
    all_nodes = np.concatenate(member_nodes)
    order = np.argsort(all_sets, kind="stable")
    members = np.ascontiguousarray(all_nodes[order])
    indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(all_sets, minlength=count)))
    ).astype(np.int64)
    return members, indptr
