"""Graph substrate: CSR digraph, generators, IO, PageRank, statistics."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    erdos_renyi,
    kronecker_like,
    powerlaw_configuration,
    preferential_attachment,
    star,
    path,
    complete,
)
from repro.graph.io import (
    IngestResult,
    ingest_cached,
    ingest_edge_list,
    load_edge_list,
    load_npz,
    read_edge_array,
    save_edge_list,
    save_npz,
)
from repro.graph.pagerank import pagerank
from repro.graph.updates import (
    EdgeUpdate,
    UpdatePlan,
    compile_updates,
    normalize_updates,
    random_update_batch,
    random_update_schedule,
)
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "DiGraph",
    "erdos_renyi",
    "kronecker_like",
    "powerlaw_configuration",
    "preferential_attachment",
    "star",
    "path",
    "complete",
    "IngestResult",
    "ingest_cached",
    "ingest_edge_list",
    "load_edge_list",
    "read_edge_array",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "pagerank",
    "EdgeUpdate",
    "UpdatePlan",
    "compile_updates",
    "normalize_updates",
    "random_update_batch",
    "random_update_schedule",
    "GraphStats",
    "compute_stats",
]
