"""Edge-list persistence for :class:`~repro.graph.digraph.DiGraph`.

Two formats are supported: whitespace-separated text edge lists (the
format SNAP distributes EPINIONS/DBLP/LIVEJOURNAL in, so real crawls drop
straight in when available) and compressed ``.npz`` archives for fast
round-tripping of synthetic analogs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def save_edge_list(graph: DiGraph, path: str) -> None:
    """Write ``tail head`` lines, one arc per line, with a header comment."""
    tails, heads = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# DiGraph n={graph.n} m={graph.m}\n")
        for t, h in zip(tails, heads):
            fh.write(f"{t} {h}\n")


def load_edge_list(path: str, n: int | None = None, **kwargs) -> DiGraph:
    """Read a text edge list; ``#``-prefixed lines are comments.

    A ``n=<count>`` token in a comment fixes the node count (preserving
    isolated trailing nodes); otherwise it is inferred from the data.
    """
    tails: list[int] = []
    heads: list[int] = []
    declared_n = n
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if declared_n is None and "n=" in line:
                    token = line.split("n=")[1].split()[0]
                    try:
                        declared_n = int(token)
                    except ValueError:
                        pass
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"malformed edge line in {path!r}: {line!r}")
            tails.append(int(parts[0]))
            heads.append(int(parts[1]))
    if declared_n is None:
        declared_n = max(max(tails, default=-1), max(heads, default=-1)) + 1
    return DiGraph(declared_n, tails, heads, **kwargs)


def save_npz(graph: DiGraph, path: str) -> None:
    """Persist to a compressed numpy archive."""
    tails, heads = graph.edge_array()
    np.savez_compressed(path, n=np.int64(graph.n), tails=tails, heads=heads)


def load_npz(path: str) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`."""
    if not os.path.exists(path):
        raise GraphError(f"no such graph archive: {path!r}")
    with np.load(path) as data:
        return DiGraph(int(data["n"]), data["tails"], data["heads"], dedupe=False)
