"""Edge-list persistence and streaming ingestion for :class:`~repro.graph.digraph.DiGraph`.

Two families of entry points:

* **Round-trip persistence** — :func:`save_edge_list` / :func:`load_edge_list`
  and :func:`save_npz` / :func:`load_npz` write and read graphs this library
  built itself.  The text header records the constructor options
  (``dedupe``, ``loops``) so a reloaded graph has identical semantics —
  in particular a ``dedupe=False`` multigraph does not come back
  deduplicated with a different ``m``.

* **Ingestion** — :func:`ingest_edge_list` (and its cache-aware wrapper
  :func:`ingest_cached`) reads *foreign* edge lists: the whitespace-separated
  text format SNAP distributes EPINIONS/DBLP/LIVEJOURNAL in.  Real crawls
  have ``#``/``%`` comments, blank lines, duplicate arcs, self-loops and
  non-contiguous node ids; ingestion handles all of these, remaps ids to a
  dense ``0..n-1`` range, and reports what it dropped.

Both paths share :func:`read_edge_array`, a chunked reader that parses
fixed-size byte blocks with one vectorized ``numpy`` conversion per block
instead of a Python loop per line, so multi-million-arc crawls ingest in
seconds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from zipfile import BadZipFile

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

#: Size of the byte blocks :func:`read_edge_array` parses at a time.  A
#: pure function of the file content — never of free memory — so parsing
#: is reproducible; exposed for tests that force chunk-boundary splits.
DEFAULT_CHUNK_BYTES = 1 << 20

_COMMENT_PREFIXES = (b"#", b"%")


# ----------------------------------------------------------------------
# Low-level chunked parsing
# ----------------------------------------------------------------------
def _parse_header_tokens(line: bytes, header: dict) -> None:
    """Collect ``key=value`` integer tokens from a comment line.

    Only the first occurrence of each key wins, so a stray ``n=`` deep in
    the file cannot override the real header.
    """
    for token in line.split():
        key, sep, value = token.partition(b"=")
        if not sep or not key:
            continue
        name = key.decode("ascii", "replace").lower()
        if name in header:
            continue
        try:
            header[name] = int(value)
        except ValueError:
            continue


def _parse_data_lines(lines: list[bytes], path: str) -> np.ndarray:
    """Parse complete data lines into an ``(k, 2) int64`` array.

    Fast path: when every line has exactly two tokens (the overwhelmingly
    common case), the token stream is converted with a single vectorized
    ``np.array`` call.  Lines with extra columns (edge weights,
    timestamps) fall back to a per-line loop that keeps the first two
    tokens, and short or non-integer lines raise :class:`GraphError`.
    """
    split_lines = [line.split() for line in lines]
    if all(len(parts) == 2 for parts in split_lines):
        try:
            flat = [token for parts in split_lines for token in parts]
            return np.array(flat, dtype=np.int64).reshape(-1, 2)
        except (ValueError, OverflowError):
            pass  # a non-integer token somewhere: diagnose line by line
    pairs = np.empty((len(lines), 2), dtype=np.int64)
    for k, parts in enumerate(split_lines):
        if len(parts) < 2:
            raise GraphError(
                f"malformed edge line in {path!r}: "
                f"{lines[k].decode('ascii', 'replace')!r}"
            )
        try:
            pairs[k, 0] = int(parts[0])
            pairs[k, 1] = int(parts[1])
        except ValueError as exc:
            raise GraphError(
                f"malformed edge line in {path!r}: "
                f"{lines[k].decode('ascii', 'replace')!r} ({exc})"
            ) from None
    return pairs


def _split_block(block: bytes) -> tuple[list[bytes], list[bytes]]:
    """Split a block of complete lines into (data_lines, comment_lines)."""
    data: list[bytes] = []
    comments: list[bytes] = []
    for raw in block.split(b"\n"):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(_COMMENT_PREFIXES):
            comments.append(line)
        else:
            data.append(line)
    return data, comments


def read_edge_array(
    path: str, *, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Stream a text edge list into ``(tails, heads, header)`` arrays.

    The file is read in fixed-size byte chunks; the trailing partial line
    of each chunk is carried into the next, so results are independent of
    *chunk_bytes*.  ``#``/``%`` lines are comments; ``key=value`` integer
    tokens found in them (``n=``, ``dedupe=``, ``loops=``) are returned in
    *header*.  Data lines need at least two integer columns (``tail
    head``); extra columns are ignored.
    """
    if chunk_bytes < 1:
        raise GraphError(f"chunk_bytes must be positive, got {chunk_bytes}")
    header: dict = {}
    blocks: list[np.ndarray] = []
    carry = b""
    with open(path, "rb") as fh:
        while True:
            data = fh.read(chunk_bytes)
            if not data:
                break
            buf = carry + data
            cut = buf.rfind(b"\n")
            if cut < 0:
                carry = buf
                continue
            carry = buf[cut + 1 :]
            data_lines, comment_lines = _split_block(buf[:cut])
            for line in comment_lines:
                _parse_header_tokens(line, header)
            if data_lines:
                blocks.append(_parse_data_lines(data_lines, path))
    if carry.strip():
        data_lines, comment_lines = _split_block(carry)
        for line in comment_lines:
            _parse_header_tokens(line, header)
        if data_lines:
            blocks.append(_parse_data_lines(data_lines, path))
    if blocks:
        pairs = np.concatenate(blocks, axis=0)
        tails = np.ascontiguousarray(pairs[:, 0])
        heads = np.ascontiguousarray(pairs[:, 1])
    else:
        tails = np.empty(0, dtype=np.int64)
        heads = np.empty(0, dtype=np.int64)
    return tails, heads, header


def _resolve_declared_n(
    tails: np.ndarray, heads: np.ndarray, n: int | None, header: dict, path: str
) -> int:
    """Resolve the node count: explicit *n* wins over the header, which
    wins over max-id inference; explicit/header counts are validated
    against the data."""
    declared_n = n
    declared = "the caller"
    if declared_n is None and "n" in header:
        declared_n = int(header["n"])
        declared = "the file header"
    if declared_n is None:
        return int(max(tails.max(initial=-1), heads.max(initial=-1)) + 1)
    _validate_node_range(tails, heads, declared_n, path, declared)
    return int(declared_n)


def _validate_node_range(
    tails: np.ndarray, heads: np.ndarray, n: int, path: str, declared: str
) -> None:
    """Reject arcs whose endpoints fall outside ``[0, n)``.

    Feeding out-of-range ids downstream corrupts every CSR consumer, so a
    declared node count smaller than the data (a stale header after graph
    edits, or a wrong explicit ``n=``) fails loudly here.
    """
    if not tails.size:
        return
    lo = int(min(tails.min(), heads.min()))
    hi = int(max(tails.max(), heads.max()))
    if lo < 0:
        raise GraphError(f"negative node id {lo} in {path!r}")
    if hi >= n:
        raise GraphError(
            f"{path!r} contains node id {hi} but {declared} declares only "
            f"n={n} nodes (stale header after edits, or a wrong explicit "
            f"n=?); pass the true node count or remap ids via ingest_edge_list"
        )


# ----------------------------------------------------------------------
# Round-trip persistence (graphs this library built)
# ----------------------------------------------------------------------
def save_edge_list(graph: DiGraph, path: str) -> None:
    """Write ``tail head`` lines with a header recording constructor options.

    The ``dedupe=``/``loops=`` header tokens let :func:`load_edge_list`
    rebuild the graph with the same semantics it was constructed with.
    """
    tails, heads = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            f"# DiGraph n={graph.n} m={graph.m} "
            f"dedupe={int(graph.deduped)} loops={int(graph.allows_self_loops)}\n"
        )
        np.savetxt(fh, np.column_stack([tails, heads]), fmt="%d")


def load_edge_list(
    path: str,
    n: int | None = None,
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    **kwargs,
) -> DiGraph:
    """Read a text edge list; ``#``/``%``-prefixed lines are comments.

    An ``n=<count>`` token in a comment fixes the node count (preserving
    isolated trailing nodes); an explicit *n* argument wins over the
    header.  Ids are validated against the node count *before*
    construction: a count smaller than the data raises :class:`GraphError`
    instead of producing out-of-range arcs downstream.  Header
    ``dedupe=``/``loops=`` tokens written by :func:`save_edge_list`
    restore the original constructor options unless overridden via
    keyword arguments.
    """
    tails, heads, header = read_edge_array(path, chunk_bytes=chunk_bytes)
    declared_n = _resolve_declared_n(tails, heads, n, header, path)
    if "dedupe" not in kwargs and "dedupe" in header:
        kwargs["dedupe"] = bool(header["dedupe"])
    if "allow_self_loops" not in kwargs and "loops" in header:
        kwargs["allow_self_loops"] = bool(header["loops"])
    return DiGraph(declared_n, tails, heads, **kwargs)


def save_npz(graph: DiGraph, path: str) -> None:
    """Persist to a compressed numpy archive (constructor options included)."""
    tails, heads = graph.edge_array()
    np.savez_compressed(
        path,
        n=np.int64(graph.n),
        tails=tails,
        heads=heads,
        deduped=np.int64(graph.deduped),
        loops=np.int64(graph.allows_self_loops),
    )


def load_npz(path: str) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`.

    Archives written before constructor options were persisted load with
    ``dedupe=False`` (the saved arcs are the graph's exact arc multiset).
    """
    if not os.path.exists(path):
        raise GraphError(f"no such graph archive: {path!r}")
    with np.load(path) as data:
        loops = bool(data["loops"]) if "loops" in data else False
        return DiGraph(
            int(data["n"]),
            data["tails"],
            data["heads"],
            dedupe=False,
            allow_self_loops=loops,
        )


# ----------------------------------------------------------------------
# Ingestion of foreign (SNAP-style) edge lists
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestResult:
    """A graph ingested from a foreign edge list, plus what happened to it.

    ``original_ids[new_id] = raw_id`` maps the dense node ids back to the
    file's ids (``None`` when ``remap_ids=False``); the ``*_dropped``
    counters account for every raw arc: ``raw_edges = graph.m +
    self_loops_dropped + duplicates_dropped``.
    """

    graph: DiGraph
    source: str
    original_ids: np.ndarray | None
    raw_edges: int
    self_loops_dropped: int
    duplicates_dropped: int

    def stats_row(self) -> dict:
        """One reporting row for the CLI / tables."""
        return {
            "source": self.source,
            "nodes": self.graph.n,
            "arcs": self.graph.m,
            "raw arcs": self.raw_edges,
            "self-loops dropped": self.self_loops_dropped,
            "duplicates dropped": self.duplicates_dropped,
            "remapped": self.original_ids is not None,
        }


def ingest_edge_list(
    path: str,
    *,
    n: int | None = None,
    remap_ids: bool = True,
    drop_self_loops: bool = True,
    dedupe: bool = True,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> IngestResult:
    """Ingest a SNAP-style text edge list into a dense :class:`DiGraph`.

    With ``remap_ids=True`` (the default) node ids may be arbitrary
    non-negative integers — non-contiguous SNAP crawls ingest into the
    same allocation as a pre-remapped equivalent, with ``original_ids``
    recording the inverse mapping.  With ``remap_ids=False`` ids must
    already be dense and are validated against *n* (or the file header,
    or the max id).  Self-loops are meaningless under independent-cascade
    semantics and dropped by default; duplicate arcs are collapsed when
    *dedupe* is set.
    """
    tails, heads, header = read_edge_array(path, chunk_bytes=chunk_bytes)
    raw_edges = int(tails.size)
    original_ids: np.ndarray | None = None
    if remap_ids:
        if raw_edges and int(min(tails.min(), heads.min())) < 0:
            raise GraphError(f"negative node id in {path!r}")
        original_ids, inverse = np.unique(
            np.concatenate([tails, heads]), return_inverse=True
        )
        tails = np.ascontiguousarray(inverse[:raw_edges])
        heads = np.ascontiguousarray(inverse[raw_edges:])
        n_nodes = int(original_ids.size)
        if n is not None and n_nodes > n:
            raise GraphError(
                f"{path!r} has {n_nodes} distinct node ids but n={n} was declared"
            )
    else:
        n_nodes = _resolve_declared_n(tails, heads, n, header, path)
    if drop_self_loops:
        loops = tails == heads
        n_loops = int(np.count_nonzero(loops))
        if n_loops:
            keep = ~loops
            tails = tails[keep]
            heads = heads[keep]
    else:
        n_loops = 0
    kept = int(tails.size)
    graph = DiGraph(
        n_nodes,
        tails,
        heads,
        dedupe=dedupe,
        allow_self_loops=not drop_self_loops,
    )
    return IngestResult(
        graph=graph,
        source=path,
        original_ids=original_ids,
        raw_edges=raw_edges,
        self_loops_dropped=n_loops,
        duplicates_dropped=kept - graph.m,
    )


def _source_signature(path: str) -> str:
    """Cheap change-detection key for a source file: size + mtime."""
    stat = os.stat(path)
    return f"{stat.st_size}:{stat.st_mtime_ns}"


def _options_signature(**options) -> str:
    return ",".join(f"{key}={options[key]}" for key in sorted(options))


def ingest_cached(
    path: str,
    cache_path: str | None = None,
    *,
    refresh: bool = False,
    n: int | None = None,
    remap_ids: bool = True,
    drop_self_loops: bool = True,
    dedupe: bool = True,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> IngestResult:
    """:func:`ingest_edge_list` with a ``.npz`` parse cache.

    The first ingestion of *path* writes the parsed graph (plus the id
    map and drop counters) to *cache_path* (default ``<path>.ingest.npz``);
    later calls with the same source file and ingest options load the
    archive instead of re-parsing the text.  The cache keys on the source
    size + mtime and the option set, so edits and option changes re-ingest
    automatically; ``refresh=True`` forces it.
    """
    if cache_path is None:
        cache_path = path + ".ingest.npz"
    src_sig = _source_signature(path)
    opt_sig = _options_signature(
        n=n, remap_ids=remap_ids, drop_self_loops=drop_self_loops, dedupe=dedupe
    )
    if not refresh and os.path.exists(cache_path):
        try:
            with np.load(cache_path, allow_pickle=False) as data:
                if (
                    str(data["src_sig"]) == src_sig
                    and str(data["opt_sig"]) == opt_sig
                ):
                    original_ids = (
                        np.asarray(data["original_ids"])
                        if bool(data["remapped"])
                        else None
                    )
                    graph = DiGraph(
                        int(data["n"]),
                        data["tails"],
                        data["heads"],
                        dedupe=False,
                        allow_self_loops=not drop_self_loops,
                    )
                    return IngestResult(
                        graph=graph,
                        source=path,
                        original_ids=original_ids,
                        raw_edges=int(data["raw_edges"]),
                        self_loops_dropped=int(data["self_loops_dropped"]),
                        duplicates_dropped=int(data["duplicates_dropped"]),
                    )
        except (OSError, ValueError, KeyError, BadZipFile):
            pass  # unreadable/stale cache: fall through to re-ingest
    result = ingest_edge_list(
        path,
        n=n,
        remap_ids=remap_ids,
        drop_self_loops=drop_self_loops,
        dedupe=dedupe,
        chunk_bytes=chunk_bytes,
    )
    tails, heads = result.graph.edge_array()
    np.savez_compressed(
        cache_path,
        src_sig=src_sig,
        opt_sig=opt_sig,
        n=np.int64(result.graph.n),
        tails=tails,
        heads=heads,
        remapped=np.bool_(result.original_ids is not None),
        original_ids=(
            result.original_ids
            if result.original_ids is not None
            else np.empty(0, dtype=np.int64)
        ),
        raw_edges=np.int64(result.raw_edges),
        self_loops_dropped=np.int64(result.self_loops_dropped),
        duplicates_dropped=np.int64(result.duplicates_dropped),
    )
    return result
