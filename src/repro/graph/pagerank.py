"""Weighted PageRank by power iteration.

The PageRank-GR / PageRank-RR baselines in Section 5 rank candidate seeds
by *ad-specific* PageRank: the random surfer walks arcs in the influence
direction with transition mass proportional to the ad-specific influence
probability ``p^i_{u,v}`` (Eq. 1).  Passing ``weights=None`` gives the
classic unweighted variant.

The implementation is a dangling-aware power iteration on the CSR arrays;
it is cross-validated against ``networkx.pagerank`` in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph


def pagerank(
    graph: DiGraph,
    weights: np.ndarray | None = None,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """Return the PageRank vector (sums to 1) of *graph*.

    Parameters
    ----------
    graph:
        The social graph; rank flows along arc direction.
    weights:
        Optional per-edge non-negative weights in canonical edge order
        (e.g. ad-specific influence probabilities).  Out-edges of a node
        are normalized by their weight sum; zero-weight-sum nodes are
        treated as dangling.
    damping:
        Teleportation parameter in ``(0, 1)``.
    tol:
        L1 convergence threshold.
    max_iter:
        Iteration budget; :class:`~repro.errors.ConvergenceError` is
        raised when exceeded.
    """
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")

    tails, heads = graph.edge_array()
    if weights is None:
        w = np.ones(graph.m, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (graph.m,):
            raise ValueError(f"weights must have shape ({graph.m},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")

    out_sum = np.zeros(n, dtype=np.float64)
    np.add.at(out_sum, tails, w)
    dangling = out_sum <= 0.0
    safe_out = np.where(dangling, 1.0, out_sum)
    transition = w / safe_out[tails]

    rank = np.full(n, 1.0 / n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum()
        new = np.full(n, teleport + damping * dangling_mass / n, dtype=np.float64)
        np.add.at(new, heads, damping * transition * rank[tails])
        delta = np.abs(new - rank).sum()
        rank = new
        if delta < tol:
            return rank
    raise ConvergenceError(
        f"PageRank did not converge within {max_iter} iterations (delta={delta:.3e})"
    )


def pagerank_order(
    graph: DiGraph,
    weights: np.ndarray | None = None,
    damping: float = 0.85,
) -> np.ndarray:
    """Node ids sorted by descending PageRank (ties by node id)."""
    scores = pagerank(graph, weights=weights, damping=damping)
    # Stable sort on negated scores -> deterministic tie-breaking by id.
    return np.argsort(-scores, kind="stable")
