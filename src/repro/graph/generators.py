"""Synthetic graph generators.

The paper's evaluation uses four crawled social networks (FLIXSTER,
EPINIONS, DBLP, LIVEJOURNAL).  Those crawls are not redistributable and
are unavailable offline, so the experiment suite builds *synthetic
analogs* from the generators in this module (see DESIGN.md §4).  The two
properties the algorithms are actually sensitive to are

* heavy-tailed degree distributions (they create the influence
  heterogeneity that separates cost-sensitive from cost-agnostic seeding),
  produced here by :func:`powerlaw_configuration` and
  :func:`preferential_attachment`; and
* enough edge density for cascades to spread a few hops.

Small canned graphs (:func:`star`, :func:`path`, :func:`complete`) back
the exact-oracle tests.
"""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator
from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def erdos_renyi(n: int, p: float, seed=None) -> DiGraph:
    """G(n, p) digraph: each ordered pair becomes an arc with prob. *p*."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    # Sample the number of arcs then place them uniformly; avoids the
    # O(n^2) dense mask for sparse regimes.
    total_pairs = n * (n - 1)
    m = rng.binomial(total_pairs, p) if total_pairs else 0
    codes = rng.choice(total_pairs, size=m, replace=False) if m else np.empty(0, dtype=np.int64)
    tails = codes // (n - 1) if n > 1 else np.empty(0, dtype=np.int64)
    offset = codes % (n - 1) if n > 1 else np.empty(0, dtype=np.int64)
    heads = offset + (offset >= tails)  # skip the diagonal
    return DiGraph(n, tails, heads, dedupe=False)


def powerlaw_configuration(
    n: int,
    mean_degree: float,
    exponent: float = 2.3,
    seed=None,
    max_degree: int | None = None,
) -> DiGraph:
    """Directed configuration-model graph with power-law out-degrees.

    Out-degrees follow a discrete power law with the given *exponent*
    (rescaled to hit *mean_degree*); heads are drawn preferentially with
    weight proportional to a second power-law sequence so in-degrees are
    heavy-tailed too, mimicking follower counts in social networks.
    """
    if n <= 1:
        raise GraphError("powerlaw_configuration needs at least 2 nodes")
    if mean_degree <= 0:
        raise GraphError(f"mean_degree must be positive, got {mean_degree}")
    rng = as_generator(seed)
    if max_degree is None:
        max_degree = max(2, int(np.sqrt(n) * 10))

    ranks = np.arange(1, n + 1, dtype=np.float64)
    raw = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(raw)

    out_weights = raw / raw.sum()
    target_m = int(round(mean_degree * n))
    out_deg = rng.multinomial(target_m, out_weights)
    out_deg = np.minimum(out_deg, max_degree)

    # In-degree attractiveness: an independent heavy-tailed sequence.
    in_raw = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(in_raw)
    in_weights = in_raw / in_raw.sum()

    tails = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    heads = rng.choice(n, size=tails.size, p=in_weights)
    keep = tails != heads
    return DiGraph(n, tails[keep], heads[keep], dedupe=True)


def preferential_attachment(n: int, m_per_node: int = 2, seed=None) -> DiGraph:
    """Barabási–Albert-style digraph; each new node links to *m_per_node* hubs.

    Arcs point from the existing (endorsing) node to the new follower and
    vice versa with equal probability, producing correlated in/out
    heavy tails similar to co-follow graphs.
    """
    if n < 2:
        raise GraphError("preferential_attachment needs at least 2 nodes")
    if m_per_node < 1:
        raise GraphError(f"m_per_node must be >= 1, got {m_per_node}")
    rng = as_generator(seed)
    tails: list[int] = []
    heads: list[int] = []
    # Repeated-nodes trick: sampling uniformly from the endpoint multiset
    # implements degree-proportional attachment.
    endpoint_pool: list[int] = [0, 1]
    tails.append(0)
    heads.append(1)
    for v in range(2, n):
        chosen: set[int] = set()
        while len(chosen) < min(m_per_node, v):
            u = endpoint_pool[rng.integers(0, len(endpoint_pool))]
            chosen.add(u)
        for u in sorted(chosen):
            if rng.random() < 0.5:
                tails.append(u)
                heads.append(v)
            else:
                tails.append(v)
                heads.append(u)
            endpoint_pool.extend((u, v))
    return DiGraph(n, tails, heads, dedupe=True)


def kronecker_like(scale: int, edge_factor: int = 8, seed=None) -> DiGraph:
    """R-MAT / Kronecker-style generator (used for the LIVEJOURNAL analog).

    Produces ``2**scale`` nodes and roughly ``edge_factor * n`` arcs with
    the skewed joint degree distribution characteristic of large social
    graphs.  Standard R-MAT quadrant probabilities (0.57, 0.19, 0.19, 0.05).
    """
    if scale < 1:
        raise GraphError(f"scale must be >= 1, got {scale}")
    rng = as_generator(seed)
    n = 1 << scale
    m = edge_factor * n
    a, b, c = 0.57, 0.19, 0.19
    tails = np.zeros(m, dtype=np.int64)
    heads = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        bit_t = ((r >= a + b) & (r < a + b + c)) | (r >= a + b + c)
        bit_h = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        tails |= bit_t.astype(np.int64) << level
        heads |= bit_h.astype(np.int64) << level
    keep = tails != heads
    return DiGraph(n, tails[keep], heads[keep], dedupe=True)


def star(n_leaves: int, outward: bool = True) -> DiGraph:
    """Star with center 0; arcs point center->leaves when *outward*."""
    if n_leaves < 0:
        raise GraphError(f"n_leaves must be non-negative, got {n_leaves}")
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    center = np.zeros(n_leaves, dtype=np.int64)
    if outward:
        return DiGraph(n_leaves + 1, center, leaves, dedupe=False)
    return DiGraph(n_leaves + 1, leaves, center, dedupe=False)


def path(n: int) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    if n < 1:
        raise GraphError(f"path needs at least 1 node, got {n}")
    idx = np.arange(n - 1, dtype=np.int64)
    return DiGraph(n, idx, idx + 1, dedupe=False)


def complete(n: int) -> DiGraph:
    """Complete digraph on *n* nodes (both arc directions, no loops)."""
    if n < 1:
        raise GraphError(f"complete needs at least 1 node, got {n}")
    tails, heads = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    tails = tails.ravel()
    heads = heads.ravel()
    keep = tails != heads
    return DiGraph(n, tails[keep], heads[keep], dedupe=False)
