"""Graph statistics used by Table 1 of the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary row matching Table 1 plus degree diagnostics."""

    name: str
    n_nodes: int
    n_edges: int
    graph_type: str
    mean_out_degree: float
    max_out_degree: int
    mean_in_degree: float
    max_in_degree: int

    def as_row(self) -> dict[str, object]:
        """Dictionary form for tabular reporting."""
        return {
            "dataset": self.name,
            "#nodes": self.n_nodes,
            "#edges": self.n_edges,
            "type": self.graph_type,
            "avg out-deg": round(self.mean_out_degree, 2),
            "max out-deg": self.max_out_degree,
        }


def is_symmetric(graph: DiGraph) -> bool:
    """Whether every arc has its reverse (an undirected graph bidirected)."""
    tails, heads = graph.edge_array()
    forward = set(zip(tails.tolist(), heads.tolist()))
    return all((h, t) in forward for t, h in forward)


def compute_stats(graph: DiGraph, name: str = "graph", graph_type: str | None = None) -> GraphStats:
    """Compute the Table-1 style statistics row for *graph*."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    if graph_type is None:
        graph_type = "undirected" if graph.m and is_symmetric(graph) else "directed"
    return GraphStats(
        name=name,
        n_nodes=graph.n,
        n_edges=graph.m,
        graph_type=graph_type,
        mean_out_degree=float(out_deg.mean()) if graph.n else 0.0,
        max_out_degree=int(out_deg.max()) if graph.n else 0,
        mean_in_degree=float(in_deg.mean()) if graph.n else 0.0,
        max_in_degree=int(in_deg.max()) if graph.n else 0,
    )
