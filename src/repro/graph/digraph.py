"""Compressed-sparse-row directed graph.

The social network in the paper is a directed graph ``G = (V, E)`` where an
arc ``(u, v)`` means *v follows u*: posts by ``u`` appear in ``v``'s feed,
so influence travels along the arc direction.  The two hot operations are

* forward adjacency scans (cascade simulation walks out-neighbors), and
* reverse adjacency scans (RR-set sampling walks in-neighbors),

so :class:`DiGraph` stores both CSR directions.  Edges have a *canonical
id*: their position in the out-CSR ordering (sorted by tail).  Per-edge
attributes (influence probabilities, above all) are plain numpy arrays
indexed by canonical id; ``in_edge_ids`` maps each in-CSR slot back to the
canonical id so reverse scans can look up the same attribute arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError


class DiGraph:
    """Immutable directed graph in dual-CSR form.

    Parameters
    ----------
    n:
        Number of nodes; nodes are the integers ``0 .. n-1``.
    tails, heads:
        Parallel integer arrays defining the arcs ``tails[k] -> heads[k]``.
    dedupe:
        Drop duplicate arcs (keeping one copy) when ``True``.
    allow_self_loops:
        Self loops are rejected by default: they are meaningless under the
        independent-cascade semantics used throughout the paper.
    """

    __slots__ = (
        "n",
        "m",
        "out_indptr",
        "out_heads",
        "in_indptr",
        "in_tails",
        "in_edge_ids",
        "_edge_tails",
        "deduped",
        "allows_self_loops",
    )

    def __init__(
        self,
        n: int,
        tails: Sequence[int],
        heads: Sequence[int],
        *,
        dedupe: bool = True,
        allow_self_loops: bool = False,
    ) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        if tails.shape != heads.shape or tails.ndim != 1:
            raise GraphError("tails and heads must be 1-D arrays of equal length")
        if tails.size:
            lo = min(tails.min(), heads.min())
            hi = max(tails.max(), heads.max())
            if lo < 0 or hi >= n:
                raise GraphError(
                    f"edge endpoints must lie in [0, {n}), got range [{lo}, {hi}]"
                )
        if not allow_self_loops and tails.size and np.any(tails == heads):
            raise GraphError("self loops are not allowed (pass allow_self_loops=True)")

        # Constructor options are retained so persistence layers
        # (graph/io.py) can round-trip a graph with identical semantics:
        # a dedupe=False multigraph must not come back deduplicated.
        self.deduped = bool(dedupe)
        self.allows_self_loops = bool(allow_self_loops)

        if dedupe and tails.size:
            keys = tails * n + heads
            _, keep = np.unique(keys, return_index=True)
            keep.sort()
            tails = tails[keep]
            heads = heads[keep]

        # Canonical order: stable sort by tail, ties kept in input order.
        order = np.argsort(tails, kind="stable")
        tails = tails[order]
        heads = heads[order]

        self.n = int(n)
        self.m = int(tails.size)
        self.out_heads = np.ascontiguousarray(heads)
        self._edge_tails = np.ascontiguousarray(tails)
        self.out_indptr = np.zeros(n + 1, dtype=np.int64)
        if self.m:
            np.add.at(self.out_indptr, tails + 1, 1)
        np.cumsum(self.out_indptr, out=self.out_indptr)

        # In-CSR: group canonical edge ids by head.
        in_order = np.argsort(heads, kind="stable")
        self.in_edge_ids = np.ascontiguousarray(in_order)
        self.in_tails = np.ascontiguousarray(tails[in_order])
        self.in_indptr = np.zeros(n + 1, dtype=np.int64)
        if self.m:
            np.add.at(self.in_indptr, heads + 1, 1)
        np.cumsum(self.in_indptr, out=self.in_indptr)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edges: Iterable[tuple[int, int]], n: int | None = None, **kwargs) -> "DiGraph":
        """Build a graph from ``(tail, head)`` pairs.

        When *n* is omitted it is inferred as ``max endpoint + 1``.
        """
        pairs = list(edges)
        if pairs:
            arr = np.asarray(pairs, dtype=np.int64)
            tails, heads = arr[:, 0], arr[:, 1]
        else:
            tails = heads = np.empty(0, dtype=np.int64)
        if n is None:
            n = int(max(tails.max(initial=-1), heads.max(initial=-1)) + 1)
        return cls(n, tails, heads, **kwargs)

    @classmethod
    def from_adjacency(cls, adjacency: dict[int, Iterable[int]], n: int | None = None, **kwargs) -> "DiGraph":
        """Build a graph from a ``{tail: [heads...]}`` mapping."""
        tails: list[int] = []
        heads: list[int] = []
        for u, vs in adjacency.items():
            for v in vs:
                tails.append(u)
                heads.append(v)
        if n is None:
            candidates = list(adjacency.keys()) + heads
            n = max(candidates) + 1 if candidates else 0
        return cls(n, tails, heads, **kwargs)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> np.ndarray:
        """Heads of arcs leaving *u* (the followers u can influence)."""
        return self.out_heads[self.out_indptr[u]:self.out_indptr[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Tails of arcs entering *v* (the users who can influence v)."""
        return self.in_tails[self.in_indptr[v]:self.in_indptr[v + 1]]

    def out_edge_ids(self, u: int) -> np.ndarray:
        """Canonical ids of arcs leaving *u* (a contiguous range)."""
        return np.arange(self.out_indptr[u], self.out_indptr[u + 1], dtype=np.int64)

    def in_edge_ids_of(self, v: int) -> np.ndarray:
        """Canonical ids of arcs entering *v*."""
        return self.in_edge_ids[self.in_indptr[v]:self.in_indptr[v + 1]]

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees (audience size of each user)."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees (number of followees of each user)."""
        return np.diff(self.in_indptr)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(tails, heads)`` in canonical edge order."""
        return self._edge_tails.copy(), self.out_heads.copy()

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate over arcs as ``(tail, head)`` pairs in canonical order."""
        for k in range(self.m):
            yield int(self._edge_tails[k]), int(self.out_heads[k])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` exists."""
        return bool(np.any(self.out_neighbors(u) == v))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """Return the graph with every arc flipped."""
        tails, heads = self.edge_array()
        return DiGraph(
            self.n, heads, tails, dedupe=False, allow_self_loops=self.allows_self_loops
        )

    def to_bidirected(self) -> "DiGraph":
        """Direct every arc both ways (paper's treatment of DBLP)."""
        tails, heads = self.edge_array()
        return DiGraph(
            self.n,
            np.concatenate([tails, heads]),
            np.concatenate([heads, tails]),
            dedupe=True,
            allow_self_loops=self.allows_self_loops,
        )

    def subgraph(self, nodes: Sequence[int]) -> "DiGraph":
        """Induced subgraph on *nodes*, relabelled to ``0..len(nodes)-1``."""
        nodes = np.asarray(sorted(set(int(x) for x in nodes)), dtype=np.int64)
        relabel = -np.ones(self.n, dtype=np.int64)
        relabel[nodes] = np.arange(nodes.size)
        tails, heads = self.edge_array()
        keep = (relabel[tails] >= 0) & (relabel[heads] >= 0)
        return DiGraph(
            int(nodes.size),
            relabel[tails[keep]],
            relabel[heads[keep]],
            dedupe=False,
            allow_self_loops=self.allows_self_loops,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self._edge_tails, other._edge_tails)
            and np.array_equal(self.out_heads, other.out_heads)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self._edge_tails.tobytes(), self.out_heads.tobytes()))
