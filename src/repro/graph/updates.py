"""Timestamped edge-update batches over an immutable :class:`DiGraph`.

:class:`~repro.graph.digraph.DiGraph` is immutable by design (dual-CSR
arrays, canonical edge ids), so "mutating" a graph means compiling a
batch of updates into a *new* graph plus the bookkeeping the warm-session
layer needs to keep its RR stores correct (docs/ARCHITECTURE.md §14):

* an **old→new canonical edge id map** so per-edge attribute arrays
  (influence probabilities, above all) carry over without re-deriving
  them from scratch;
* a **probability transform** (:meth:`UpdatePlan.apply_probs`) applying
  the kept-edge copy, inserted-edge fill and ``set_prob`` overrides to
  any probability family over the old graph;
* the **changed-edge heads** (:meth:`UpdatePlan.changed_heads`) — the
  exact set of nodes whose in-arc coin flips an RR set must have made to
  be affected by the batch, which is what
  :meth:`repro.rrset.collection.SharedRRStore.sets_touching` consumes to
  invalidate only the RR sets that could have observed a change.

The three ops:

``insert``
    Add the arc ``tail -> head`` with probability ``prob`` (the value
    every probability family gets for the new edge).  The arc must not
    already exist.
``delete``
    Remove the existing arc ``tail -> head``; ``prob`` must be ``None``.
``set_prob``
    Re-weight the existing arc ``tail -> head`` to ``prob`` (applied
    uniformly across probability families).  A family whose old value
    already equals ``prob`` is untouched *for that family's
    invalidation* — :meth:`UpdatePlan.changed_heads` refines per family.

Updates carry an integer timestamp ``ts``; a batch is applied as one
atomic transaction in ``ts`` order (stable for ties).  Two updates
targeting the same ``(tail, head)`` arc within one batch are rejected —
"insert then delete" style sequences belong in separate batches, where
their intermediate states are observable.

:func:`random_update_schedule` generates deterministic batch schedules
from a seed — the grid runner's ``mutations`` block and the dynamic
property tests both key their schedules off per-cell seeds through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._rng import as_generator
from repro.errors import GraphUpdateError
from repro.graph.digraph import DiGraph

#: The edge-update operations understood by :func:`compile_updates`.
UPDATE_OPS = ("insert", "delete", "set_prob")


@dataclass(frozen=True)
class EdgeUpdate:
    """One timestamped edge operation (see the module docstring)."""

    op: str
    tail: int
    head: int
    prob: float | None = None
    ts: int = 0

    def __post_init__(self):
        if self.op not in UPDATE_OPS:
            raise GraphUpdateError(
                f"unknown edge-update op {self.op!r}; options: {UPDATE_OPS}"
            )
        object.__setattr__(self, "tail", int(self.tail))
        object.__setattr__(self, "head", int(self.head))
        object.__setattr__(self, "ts", int(self.ts))
        if self.op == "delete":
            if self.prob is not None:
                raise GraphUpdateError(
                    f"delete {self.tail}->{self.head} must not carry a prob"
                )
        else:
            if self.prob is None:
                raise GraphUpdateError(
                    f"{self.op} {self.tail}->{self.head} needs a prob"
                )
            prob = float(self.prob)
            if not 0.0 <= prob <= 1.0:
                raise GraphUpdateError(
                    f"{self.op} {self.tail}->{self.head}: prob must lie in "
                    f"[0, 1], got {prob}"
                )
            object.__setattr__(self, "prob", prob)

    def to_dict(self) -> dict:
        """The update as a JSON-able dict (inverse of :func:`as_update`)."""
        data = {"op": self.op, "tail": self.tail, "head": self.head, "ts": self.ts}
        if self.prob is not None:
            data["prob"] = self.prob
        return data


def as_update(item) -> EdgeUpdate:
    """Coerce *item* (EdgeUpdate / mapping / op-tail-head[-prob] tuple)."""
    if isinstance(item, EdgeUpdate):
        return item
    if isinstance(item, dict):
        unknown = set(item) - {"op", "tail", "head", "prob", "ts"}
        if unknown:
            raise GraphUpdateError(
                f"unknown edge-update keys: {sorted(unknown)}"
            )
        return EdgeUpdate(**item)
    if isinstance(item, (tuple, list)) and len(item) in (3, 4):
        op, tail, head = item[0], item[1], item[2]
        prob = item[3] if len(item) == 4 else None
        return EdgeUpdate(op=op, tail=tail, head=head, prob=prob)
    raise GraphUpdateError(
        f"cannot interpret {item!r} as an edge update; pass an EdgeUpdate, "
        "a dict, or an (op, tail, head[, prob]) tuple"
    )


def normalize_updates(updates: Iterable) -> tuple[EdgeUpdate, ...]:
    """Coerce and order a batch: stable sort by ``ts``, reject conflicts."""
    batch = [as_update(item) for item in updates]
    batch.sort(key=lambda update: update.ts)  # list.sort is stable
    seen: dict[tuple[int, int], EdgeUpdate] = {}
    for update in batch:
        arc = (update.tail, update.head)
        if arc in seen:
            raise GraphUpdateError(
                f"conflicting updates to arc {update.tail}->{update.head} "
                f"in one batch ({seen[arc].op!r} then {update.op!r}); "
                "split them into separate batches"
            )
        seen[arc] = update
    return tuple(batch)


class UpdatePlan:
    """A compiled update batch: the new graph plus carry-over bookkeeping.

    Built by :func:`compile_updates`; see the module docstring for the
    contract each attribute serves.
    """

    __slots__ = (
        "old_graph",
        "new_graph",
        "updates",
        "edge_map",
        "inserted_edge_ids",
        "inserted_probs",
        "_set_prob_old_ids",
        "_set_prob_values",
        "_structural_heads",
    )

    def __init__(
        self,
        old_graph: DiGraph,
        new_graph: DiGraph,
        updates: tuple[EdgeUpdate, ...],
        edge_map: np.ndarray,
        inserted_edge_ids: np.ndarray,
        inserted_probs: np.ndarray,
        set_prob_old_ids: np.ndarray,
        set_prob_values: np.ndarray,
        structural_heads: np.ndarray,
    ) -> None:
        self.old_graph = old_graph
        self.new_graph = new_graph
        self.updates = updates
        #: ``edge_map[old_id]`` = new canonical id of a kept edge, -1 if deleted.
        self.edge_map = edge_map
        self.inserted_edge_ids = inserted_edge_ids
        self.inserted_probs = inserted_probs
        self._set_prob_old_ids = set_prob_old_ids
        self._set_prob_values = set_prob_values
        self._structural_heads = structural_heads

    def apply_probs(self, old_probs: np.ndarray) -> np.ndarray:
        """Transform one probability family from the old graph to the new.

        Kept edges copy through :attr:`edge_map`; inserted edges take the
        insert's ``prob``; ``set_prob`` targets take the override — all
        uniformly across families (the documented contract for updates
        that do not know about per-advertiser probabilities).
        """
        old_probs = np.asarray(old_probs, dtype=np.float64)
        if old_probs.shape != (self.old_graph.m,):
            raise GraphUpdateError(
                f"probability family has shape {old_probs.shape}, expected "
                f"({self.old_graph.m},)"
            )
        new_probs = np.empty(self.new_graph.m, dtype=np.float64)
        kept = self.edge_map >= 0
        new_probs[self.edge_map[kept]] = old_probs[kept]
        new_probs[self.inserted_edge_ids] = self.inserted_probs
        if self._set_prob_old_ids.size:
            new_probs[self.edge_map[self._set_prob_old_ids]] = (
                self._set_prob_values
            )
        return new_probs

    def changed_heads(self, old_probs: np.ndarray | None = None) -> np.ndarray:
        """Unique heads of the edges this batch actually changed.

        Inserted and deleted edges always count.  ``set_prob`` targets
        count only when *old_probs* (one probability family over the old
        graph) shows the value really moved for that family; with
        *old_probs* omitted every ``set_prob`` target counts.  An RR set
        is affected by the batch iff it contains one of these heads —
        its reverse BFS flipped a coin on every in-arc of every member,
        and on no other edge (docs/ARCHITECTURE.md §14).
        """
        heads = [self._structural_heads]
        if self._set_prob_old_ids.size:
            if old_probs is None:
                moved = np.ones(self._set_prob_old_ids.size, dtype=bool)
            else:
                old_probs = np.asarray(old_probs, dtype=np.float64)
                moved = (
                    old_probs[self._set_prob_old_ids] != self._set_prob_values
                )
            _, old_heads = self.old_graph.edge_array()
            heads.append(old_heads[self._set_prob_old_ids[moved]])
        return np.unique(np.concatenate(heads).astype(np.int64))

    def summary(self) -> dict:
        """JSON-able provenance block (manifest rows, session reports)."""
        ops = {"insert": 0, "delete": 0, "set_prob": 0}
        for update in self.updates:
            ops[update.op] += 1
        return {
            "updates": len(self.updates),
            "ops": ops,
            "old_m": self.old_graph.m,
            "new_m": self.new_graph.m,
        }


def _edge_lookup(graph: DiGraph):
    """Vectorizable ``(tail, head) -> canonical id`` lookup over *graph*."""
    tails, heads = graph.edge_array()
    keys = tails * graph.n + heads
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]

    def lookup(query_keys: np.ndarray) -> np.ndarray:
        """Canonical ids for *query_keys*; -1 where the arc is absent."""
        if not sorted_keys.size:
            return -np.ones(query_keys.size, dtype=np.int64)
        pos = np.searchsorted(sorted_keys, query_keys)
        pos = np.minimum(pos, sorted_keys.size - 1)
        found = sorted_keys[pos] == query_keys
        out = -np.ones(query_keys.size, dtype=np.int64)
        out[found] = order[pos[found]]
        return out

    return lookup


def compile_updates(graph: DiGraph, updates: Iterable) -> UpdatePlan:
    """Compile an update batch against *graph* into an :class:`UpdatePlan`.

    Validates every update against the current graph (endpoints in
    range, no self loops unless the graph allows them, delete/set_prob
    targets exist, insert targets do not), then builds the new
    :class:`DiGraph` and the old→new bookkeeping in one pass.  The input
    graph is untouched.  Only deduplicated graphs are supported — on a
    multigraph ``(tail, head)`` does not name a unique edge, so updates
    would be ambiguous.
    """
    if not graph.deduped:
        # ``deduped`` records that the constructor *ran* dedupe; graphs
        # built with ``dedupe=False`` (the generators) may still have
        # unique arcs, which is all that updates actually need.
        tails, heads = graph.edge_array()
        keys = tails * graph.n + heads
        if np.unique(keys).size != keys.size:
            raise GraphUpdateError(
                "edge updates require a deduplicated graph; (tail, head) "
                "is ambiguous on a multigraph"
            )
    batch = normalize_updates(updates)
    n = graph.n
    for update in batch:
        if not (0 <= update.tail < n and 0 <= update.head < n):
            raise GraphUpdateError(
                f"{update.op} {update.tail}->{update.head}: endpoints must "
                f"lie in [0, {n})"
            )
        if update.tail == update.head and not graph.allows_self_loops:
            raise GraphUpdateError(
                f"{update.op} {update.tail}->{update.head}: self loops are "
                "not allowed on this graph"
            )

    lookup = _edge_lookup(graph)
    arc_keys = np.asarray(
        [update.tail * n + update.head for update in batch], dtype=np.int64
    )
    existing = lookup(arc_keys) if batch else np.empty(0, dtype=np.int64)

    deleted_ids: list[int] = []
    inserted_tails: list[int] = []
    inserted_heads: list[int] = []
    inserted_prob_values: list[float] = []
    set_prob_ids: list[int] = []
    set_prob_values: list[float] = []
    for update, old_id in zip(batch, existing):
        old_id = int(old_id)
        if update.op == "insert":
            if old_id >= 0:
                raise GraphUpdateError(
                    f"insert {update.tail}->{update.head}: arc already exists "
                    "(use set_prob to re-weight it)"
                )
            inserted_tails.append(update.tail)
            inserted_heads.append(update.head)
            inserted_prob_values.append(float(update.prob))
        elif old_id < 0:
            raise GraphUpdateError(
                f"{update.op} {update.tail}->{update.head}: no such arc"
            )
        elif update.op == "delete":
            deleted_ids.append(old_id)
        else:  # set_prob
            set_prob_ids.append(old_id)
            set_prob_values.append(float(update.prob))

    old_tails, old_heads = graph.edge_array()
    keep = np.ones(graph.m, dtype=bool)
    if deleted_ids:
        keep[np.asarray(deleted_ids, dtype=np.int64)] = False
    new_input_tails = np.concatenate(
        [old_tails[keep], np.asarray(inserted_tails, dtype=np.int64)]
    )
    new_input_heads = np.concatenate(
        [old_heads[keep], np.asarray(inserted_heads, dtype=np.int64)]
    )
    new_graph = DiGraph(
        n,
        new_input_tails,
        new_input_heads,
        dedupe=True,
        allow_self_loops=graph.allows_self_loops,
    )

    # Old→new id map by arc key: keys are unique on both sides (deduped),
    # so the match is exact regardless of canonical-order internals.
    new_lookup = _edge_lookup(new_graph)
    edge_map = -np.ones(graph.m, dtype=np.int64)
    if keep.any():
        kept_ids = np.flatnonzero(keep)
        edge_map[kept_ids] = new_lookup(old_tails[kept_ids] * n + old_heads[kept_ids])
    if inserted_tails:
        ins_tails = np.asarray(inserted_tails, dtype=np.int64)
        ins_heads = np.asarray(inserted_heads, dtype=np.int64)
        inserted_edge_ids = new_lookup(ins_tails * n + ins_heads)
        structural_heads = np.concatenate(
            [old_heads[np.asarray(deleted_ids, dtype=np.int64)], ins_heads]
        )
    else:
        inserted_edge_ids = np.empty(0, dtype=np.int64)
        structural_heads = old_heads[np.asarray(deleted_ids, dtype=np.int64)]

    return UpdatePlan(
        old_graph=graph,
        new_graph=new_graph,
        updates=batch,
        edge_map=edge_map,
        inserted_edge_ids=inserted_edge_ids,
        inserted_probs=np.asarray(inserted_prob_values, dtype=np.float64),
        set_prob_old_ids=np.asarray(set_prob_ids, dtype=np.int64),
        set_prob_values=np.asarray(set_prob_values, dtype=np.float64),
        structural_heads=np.unique(structural_heads.astype(np.int64)),
    )


# ----------------------------------------------------------------------
# Deterministic schedules (the grid runner's ``mutations`` axis)
# ----------------------------------------------------------------------
def random_update_batch(
    graph: DiGraph,
    rng,
    size: int,
    *,
    ops: Sequence[str] = UPDATE_OPS,
    prob: float = 0.1,
    ts: int = 0,
) -> tuple[EdgeUpdate, ...]:
    """One random, valid batch of *size* updates against *graph*.

    Draws each update's op uniformly from *ops*: delete/set_prob pick a
    uniform existing arc, insert picks a uniform absent non-self-loop
    arc (rejection sampling).  Inserted arcs get probability *prob*;
    ``set_prob`` draws uniformly from ``[0, prob]``.  Deterministic for
    a fixed generator state; every drawn arc is distinct, so the batch
    always passes :func:`normalize_updates`.
    """
    rng = as_generator(rng)
    ops = tuple(ops)
    for op in ops:
        if op not in UPDATE_OPS:
            raise GraphUpdateError(
                f"unknown edge-update op {op!r}; options: {UPDATE_OPS}"
            )
    if size < 0:
        raise GraphUpdateError(f"batch size must be non-negative, got {size}")
    tails, heads = graph.edge_array()
    lookup = _edge_lookup(graph)
    used: set[tuple[int, int]] = set()
    batch: list[EdgeUpdate] = []
    for index in range(size):
        op = ops[int(rng.integers(0, len(ops)))]
        if op == "insert":
            arc = None
            for _ in range(64 * graph.n + 64):
                tail = int(rng.integers(0, graph.n))
                head = int(rng.integers(0, graph.n))
                if tail == head and not graph.allows_self_loops:
                    continue
                if (tail, head) in used:
                    continue
                if int(lookup(np.asarray([tail * graph.n + head]))[0]) >= 0:
                    continue
                arc = (tail, head)
                break
            if arc is None:
                raise GraphUpdateError(
                    "could not find an absent arc to insert (graph nearly "
                    "complete?)"
                )
            batch.append(
                EdgeUpdate("insert", arc[0], arc[1], prob=prob, ts=ts)
            )
            used.add(arc)
        else:
            candidates = [
                eid
                for eid in range(graph.m)
                if (int(tails[eid]), int(heads[eid])) not in used
            ]
            if not candidates:
                raise GraphUpdateError(
                    f"graph has no remaining arcs for a {op!r} update"
                )
            eid = candidates[int(rng.integers(0, len(candidates)))]
            arc = (int(tails[eid]), int(heads[eid]))
            value = None if op == "delete" else float(rng.random() * prob)
            batch.append(EdgeUpdate(op, arc[0], arc[1], prob=value, ts=ts))
            used.add(arc)
    return tuple(batch)


def random_update_schedule(
    graph: DiGraph,
    seed,
    *,
    batches: int,
    edges_per_batch: int,
    ops: Sequence[str] = UPDATE_OPS,
    prob: float = 0.1,
) -> list[tuple[EdgeUpdate, ...]]:
    """A deterministic schedule of *batches* sequential update batches.

    Batch ``k`` is generated against the graph state *after* batches
    ``0..k-1`` were applied (so deletes never target already-deleted
    arcs) and carries ``ts=k``.  A pure function of ``(graph, seed)`` —
    the grid runner keys *seed* off the per-cell seed so a cell's
    mutation stream depends only on ``(spec, root seed)``.
    """
    rng = as_generator(seed)
    schedule: list[tuple[EdgeUpdate, ...]] = []
    current = graph
    for index in range(int(batches)):
        batch = random_update_batch(
            current, rng, int(edges_per_batch), ops=ops, prob=prob, ts=index
        )
        schedule.append(batch)
        current = compile_updates(current, batch).new_graph
    return schedule


__all__ = [
    "UPDATE_OPS",
    "EdgeUpdate",
    "UpdatePlan",
    "as_update",
    "normalize_updates",
    "compile_updates",
    "random_update_batch",
    "random_update_schedule",
]
