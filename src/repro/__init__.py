"""repro — Revenue Maximization in Incentivized Social Advertising.

A complete reproduction of Aslay, Bonchi, Lakshmanan & Lu (VLDB 2017):
the RM problem (monotone submodular maximization under a partition
matroid plus submodular knapsacks), the CA-GREEDY / CS-GREEDY reference
algorithms with their curvature-based guarantees, the scalable RR-set
realizations TI-CARM / TI-CSRM, the PageRank baselines, and every
substrate they stand on (CSR graphs, the TIC propagation model, RR-set
sampling with TIM sample sizes, incentive models, synthetic analog
datasets, and the experiment harness for all tables and figures).

Quickstart — one spec, one call::

    import repro

    dataset = repro.build_dataset("flixster_syn", n=1000)
    instance = dataset.build_instance(incentive_model="linear", alpha=0.2)
    spec = repro.EngineSpec(eps=0.5, theta_cap=2000,
                            opt_lower=dataset.opt_lower_bounds(), seed=1)
    result = repro.solve(instance, "TI-CSRM", spec)
    print(result.summary())

Repeated solves over the same graph (varying budgets, CPEs or
incentives) should go through a session, which keeps RR samples and
the worker pool warm::

    with repro.AllocationSession(dataset.graph, spec=spec) as session:
        for budget in (40.0, 60.0, 80.0):
            inst = dataset.build_instance(budget_override=budget)
            print(session.solve(inst, "TI-CSRM").summary())

The legacy wrappers (``repro.ti_csrm(...)`` etc.) remain as thin,
bit-identical shims over ``repro.solve``.
"""

from repro.errors import (
    ReproError,
    GraphError,
    TopicModelError,
    InstanceError,
    AllocationError,
    SpecError,
    EstimationError,
    ConvergenceError,
    WorkerCrashError,
    PoolDegradedError,
    CellTimeoutError,
    FaultInjectedError,
    ServeError,
)
from repro.faults import FaultPlan, FaultRule, fault_plan
from repro.graph import (
    DiGraph,
    pagerank,
    compute_stats,
    ingest_cached,
    ingest_edge_list,
    load_edge_list,
    save_edge_list,
)
from repro.topics import (
    TopicDistribution,
    TICModel,
    weighted_cascade,
    random_tic_model,
    pure_competition_ads,
)
from repro.diffusion import (
    simulate_cascade,
    simulate_competitive_cascades,
    estimate_competitive_revenue,
    estimate_spread,
    estimate_singleton_spreads,
    estimate_singleton_spreads_rr,
    exact_spread,
)
from repro.rrset import (
    RRSampler,
    RRCollection,
    sample_size,
    KPTEstimator,
    KERNELS,
    NUMBA_AVAILABLE,
    resolve_kernel,
    SamplerBackend,
    SerialBackend,
    ParallelBackend,
    SharedGraphPool,
    make_backend,
)
from repro.incentives import INCENTIVE_MODELS, compute_incentives
from repro.core import (
    Advertiser,
    RMInstance,
    Allocation,
    AllocationResult,
    ExactOracle,
    MonteCarloOracle,
    RRStaticOracle,
    ca_greedy,
    cs_greedy,
    exhaustive_optimum,
    TIEngine,
    ti_carm,
    ti_csrm,
    pagerank_gr,
    pagerank_rr,
    run_adaptive_campaign,
    theorem2_bound,
    theorem3_bound,
    tightness_instance,
)
from repro.api import (
    EngineSpec,
    AlgorithmDef,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
    solve,
    AllocationSession,
)
from repro.experiments import (
    ExperimentConfig,
    GridSpec,
    build_dataset,
    build_edge_list_dataset,
    register_edge_list_dataset,
    run_grid,
)

__version__ = "1.2.0"

__all__ = [
    "ReproError",
    "GraphError",
    "TopicModelError",
    "InstanceError",
    "AllocationError",
    "SpecError",
    "EstimationError",
    "ConvergenceError",
    "WorkerCrashError",
    "PoolDegradedError",
    "CellTimeoutError",
    "FaultInjectedError",
    "ServeError",
    "FaultPlan",
    "FaultRule",
    "fault_plan",
    "DiGraph",
    "pagerank",
    "compute_stats",
    "ingest_cached",
    "ingest_edge_list",
    "load_edge_list",
    "save_edge_list",
    "TopicDistribution",
    "TICModel",
    "weighted_cascade",
    "random_tic_model",
    "pure_competition_ads",
    "simulate_cascade",
    "simulate_competitive_cascades",
    "estimate_competitive_revenue",
    "estimate_spread",
    "estimate_singleton_spreads",
    "estimate_singleton_spreads_rr",
    "exact_spread",
    "RRSampler",
    "RRCollection",
    "sample_size",
    "KPTEstimator",
    "KERNELS",
    "NUMBA_AVAILABLE",
    "resolve_kernel",
    "SamplerBackend",
    "SerialBackend",
    "ParallelBackend",
    "SharedGraphPool",
    "make_backend",
    "INCENTIVE_MODELS",
    "compute_incentives",
    "Advertiser",
    "RMInstance",
    "Allocation",
    "AllocationResult",
    "ExactOracle",
    "MonteCarloOracle",
    "RRStaticOracle",
    "ca_greedy",
    "cs_greedy",
    "exhaustive_optimum",
    "TIEngine",
    "ti_carm",
    "ti_csrm",
    "pagerank_gr",
    "pagerank_rr",
    "run_adaptive_campaign",
    "theorem2_bound",
    "theorem3_bound",
    "tightness_instance",
    "EngineSpec",
    "AlgorithmDef",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "unregister_algorithm",
    "solve",
    "AllocationSession",
    "ExperimentConfig",
    "GridSpec",
    "build_dataset",
    "build_edge_list_dataset",
    "register_edge_list_dataset",
    "run_grid",
    "__version__",
]
