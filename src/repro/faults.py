"""Deterministic fault injection for chaos testing.

Long-running execution (warm sessions, grid sweeps, the future serving
layer) has to survive crashed workers, failed shared-memory attaches
and pathological cells.  Testing those paths with real resource
exhaustion is flaky by construction, so this module provides a seeded
:class:`FaultPlan` that fires *reproducible* faults at named seams:

======================  ================================================
seam                    fired by
======================  ================================================
``worker.kill``         :meth:`SharedGraphPool.sample_shards` at shard
                        dispatch — the tagged shard's worker exits
                        mid-batch (``os._exit``) instead of returning.
``shard.delay``         same dispatch point — the tagged shard sleeps
                        ``delay_s`` seconds in the worker before
                        sampling (trips the heartbeat supervisor).
``shm.attach``          ``SharedGraphPool._create_block`` — the
                        shared-memory create/attach raises
                        :class:`~repro.errors.WorkerCrashError`.
``cell.raise``          :func:`repro.experiments.grid.run_grid` just
                        before a cell solves — the cell raises
                        :class:`~repro.errors.FaultInjectedError`.
``cell.delay``          same point — the cell sleeps ``delay_s``
                        seconds first (trips the per-cell timeout).
``serve.reject``        :meth:`repro.serve.server.ReproServer` at
                        request admission — the tagged request is
                        rejected 429 even though the queue has room.
``serve.delay``         the serve solver loop just before a query
                        solves — the solver sleeps ``delay_s`` seconds
                        (backs the queue up / trips query deadlines).
``mutate.delay``        :meth:`AllocationSession.apply_edge_updates`
                        between invalidation and resampling — the
                        session sleeps ``delay_s`` seconds with the
                        store partially rewritten, widening the window
                        chaos tests use to crash workers mid-mutation.
======================  ================================================

Rules fire either on deterministic arrival ordinals (``at`` /
``count``) or probabilistically from a stream seeded by
``(plan.seed, rule index)`` — both reproducible run-to-run.  The seams
consult the *installed* plan (:func:`install_fault_plan` /
:func:`fault_plan`), which defaults to ``None``: with no plan
installed every seam is a no-op, so production code pays one ``is
None`` check.

Usage::

    from repro.faults import FaultPlan, FaultRule, fault_plan

    plan = FaultPlan([FaultRule(seam="worker.kill", at=0)], seed=3)
    with fault_plan(plan):
        backend.sample_batch_flat(5_000, rng)   # shard 0's worker dies,
                                                # is respawned, output is
                                                # bit-identical anyway
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro._rng import as_generator
from repro.errors import FaultInjectedError, SpecError

#: The named seams a rule may target (see the module docstring).
SEAMS = (
    "worker.kill",
    "shard.delay",
    "shm.attach",
    "cell.raise",
    "cell.delay",
    "serve.reject",
    "serve.delay",
    "mutate.delay",
)


@dataclass(frozen=True)
class FaultRule:
    """One fault trigger of a :class:`FaultPlan`.

    ``at``/``count`` select deterministic arrival ordinals at the seam
    (0-based: ``at=2, count=3`` fires on the 3rd–5th arrivals);
    ``probability`` switches the rule to a seeded Bernoulli draw per
    arrival instead.  ``key``, when set, restricts the rule to arrivals
    whose context key matches (e.g. a grid ``cell_id``) — ordinals
    still count *all* arrivals at the seam, so ``at`` stays a property
    of global execution order.  ``delay_s`` is the sleep for the delay
    seams; ``message`` is carried into the injected exception.
    """

    seam: str
    at: int = 0
    count: int = 1
    probability: float | None = None
    key: str | None = None
    delay_s: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise SpecError(f"unknown fault seam {self.seam!r}; options: {SEAMS}")
        if self.at < 0 or self.count < 1:
            raise SpecError(
                f"fault rule needs at >= 0 and count >= 1, got at={self.at}, "
                f"count={self.count}"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise SpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise SpecError(f"delay_s must be non-negative, got {self.delay_s}")


class FaultPlan:
    """A seeded, replayable set of :class:`FaultRule` triggers.

    The plan keeps one arrival counter per seam and one RNG stream per
    probabilistic rule (seeded by ``(seed, rule index)``), so the exact
    same sequence of :meth:`fire` calls produces the exact same faults
    — chaos tests replay instead of sleep-and-hope.  :meth:`reset`
    rewinds everything for a second identical pass.
    """

    def __init__(self, rules=(), seed: int = 0) -> None:
        self.rules = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise SpecError(f"FaultPlan rules must be FaultRule, got {rule!r}")
        self.seed = int(seed)
        self.reset()

    def reset(self) -> None:
        """Rewind arrival counters and per-rule RNG streams."""
        self._arrivals: dict[str, int] = {seam: 0 for seam in SEAMS}
        self._fired: dict[str, int] = {seam: 0 for seam in SEAMS}
        self._rngs = {
            index: as_generator(np.random.SeedSequence([self.seed, index]))
            for index, rule in enumerate(self.rules)
            if rule.probability is not None
        }

    def fire(self, seam: str, key: str | None = None) -> FaultRule | None:
        """Record one arrival at *seam*; the rule that fires, if any.

        Every probabilistic rule watching the seam consumes exactly one
        draw per arrival (whether or not an earlier rule already
        matched), so adding or removing one rule never perturbs another
        rule's stream.
        """
        if seam not in SEAMS:
            raise SpecError(f"unknown fault seam {seam!r}; options: {SEAMS}")
        ordinal = self._arrivals[seam]
        self._arrivals[seam] = ordinal + 1
        hit: FaultRule | None = None
        for index, rule in enumerate(self.rules):
            if rule.seam != seam:
                continue
            if rule.probability is not None:
                draw = self._rngs[index].random()
                matched = draw < rule.probability
            else:
                matched = rule.at <= ordinal < rule.at + rule.count
            if matched and rule.key is not None and rule.key != key:
                matched = False
            if matched and hit is None:
                hit = rule
        if hit is not None:
            self._fired[seam] += 1
        return hit

    def maybe_raise(
        self, seam: str, key: str | None = None, exc_type=FaultInjectedError
    ) -> None:
        """Raise *exc_type* if a rule fires at *seam* (else no-op)."""
        rule = self.fire(seam, key=key)
        if rule is not None:
            raise exc_type(f"[fault:{seam}] {rule.message}")

    @property
    def stats(self) -> dict:
        """Per-seam ``{"arrivals": ..., "fired": ...}`` observability."""
        return {
            seam: {"arrivals": self._arrivals[seam], "fired": self._fired[seam]}
            for seam in SEAMS
            if self._arrivals[seam] or self._fired[seam]
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(rules={len(self.rules)}, seed={self.seed})"


# ----------------------------------------------------------------------
# The installed plan (no-op default)
# ----------------------------------------------------------------------
_lock = threading.Lock()
_ACTIVE: FaultPlan | None = None


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install *plan* as the process-wide active plan; returns the previous.

    ``None`` uninstalls (the production default: every seam no-ops).
    """
    global _ACTIVE
    if plan is not None and not isinstance(plan, FaultPlan):
        raise SpecError(f"expected a FaultPlan or None, got {type(plan).__name__}")
    with _lock:
        previous, _ACTIVE = _ACTIVE, plan
    return previous


def active_fault_plan() -> FaultPlan | None:
    """The currently installed plan (``None`` when chaos is off)."""
    return _ACTIVE


@contextmanager
def fault_plan(plan: FaultPlan):
    """Scoped install: active inside the ``with``, previous plan restored after."""
    previous = install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)


def fire(seam: str, plan: FaultPlan | None = None, key: str | None = None):
    """Seam-side helper: fire on *plan*, falling back to the installed one.

    Returns the matched :class:`FaultRule` or ``None``; with no plan in
    play this is the no-op fast path every seam takes in production.
    """
    plan = plan if plan is not None else _ACTIVE
    if plan is None:
        return None
    return plan.fire(seam, key=key)
