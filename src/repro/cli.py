"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the experiment pipeline without writing code:

* ``datasets``  — list the synthetic analog datasets and their stats;
* ``run``       — run one algorithm on one experimental cell;
* ``table``     — regenerate Table 1 or 2;
* ``sweep``     — a Figure 2/3-style α sweep on one dataset;
* ``grid``      — run a declarative scenario grid from a JSON spec;
* ``ingest``    — parse a SNAP-style edge list (stats + ``.npz`` cache);
* ``tightness`` — print the Figure 1 theory walkthrough numbers;
* ``serve``     — run the allocation daemon over a warm session pool;
* ``query``     — send one allocation query to a running daemon.

Examples::

    python -m repro datasets
    python -m repro run --dataset epinions_syn --algorithm TI-CSRM \\
        --incentives linear --alpha 1.5 --n 1000
    python -m repro sweep --dataset flixster_syn --models linear constant
    python -m repro grid --spec specs/smoke.json
    python -m repro grid --spec specs/fig5.json --execution warm_per_dataset
    python -m repro ingest data/soc-Epinions1.txt --cache
    python -m repro table --which 1
    python -m repro tightness
    python -m repro serve --port 8642 --serve-bytes-budget 500000000
    python -m repro query --addr 127.0.0.1:8642 --dataset epinions_syn \\
        --n 500 --algorithm TI-CSRM --budget 120
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import DATASET_BUILDERS, build_dataset
from repro.experiments.figures import run_alpha_sweep
from repro.experiments.harness import ALGORITHMS, run_algorithm
from repro.experiments.reporting import format_table
from repro.experiments.tables import table1_rows, table2_rows

#: ``grid`` exit code: the grid completed but left quarantined cells
#: behind (re-run the same manifest to re-attempt them).
EXIT_QUARANTINED = 3


def _dataset_kwargs(args) -> dict:
    kwargs: dict = {}
    if args.n is not None:
        if args.dataset == "livejournal_syn":
            # The R-MAT generator sizes by 2**scale; round to the NEAREST
            # power of two (bit_length()-1 silently rounded down, turning
            # --n 1000 into 512 nodes).
            kwargs["scale"] = max(round(math.log2(max(int(args.n), 1))), 6)
        else:
            kwargs["n"] = args.n
    if args.h is not None:
        kwargs["h"] = args.h
    return kwargs


def _print_run_header(args, dataset) -> None:
    """Echo the effective experiment sizing before results.

    In particular the effective node count: R-MAT datasets round ``--n``
    to a power of two, and the header makes that adjustment visible.
    """
    effective_n = dataset.graph.n
    sizing = f"n={effective_n}"
    if args.n is not None and args.n != effective_n:
        sizing += f" (requested --n {args.n})"
    workers = getattr(args, "workers", 0) or 0
    backend = "parallel" if workers > 1 else "serial"
    print(
        f"# dataset={dataset.name} {sizing} m={dataset.graph.m} "
        f"h={dataset.h} seed={args.seed} backend={backend}"
    )


def _config(args) -> ExperimentConfig:
    workers = getattr(args, "workers", 0) or 0
    return ExperimentConfig(
        eps=args.eps,
        theta_cap=args.theta_cap,
        grid_mode=args.grid,
        seed=args.seed,
        sampler_backend="parallel" if workers > 1 else "serial",
        workers=workers,
        share_samples=getattr(args, "share_samples", False),
        lazy_candidates=not getattr(args, "eager", False),
        kernel=getattr(args, "kernel", None) or "auto",
        rr_bytes_budget=getattr(args, "rr_bytes_budget", 0) or 0,
    )


def cmd_datasets(args) -> int:
    rows = []
    for name in sorted(DATASET_BUILDERS):
        if args.build:
            ds = build_dataset(name, **({"n": args.n} if args.n and name != "livejournal_syn" else {}))
            from repro.graph.stats import compute_stats

            stats = compute_stats(ds.graph, name=name, graph_type=ds.graph_type)
            row = stats.as_row()
            row["paper counterpart"] = ds.meta.get("paper_counterpart", "")
            rows.append(row)
        else:
            rows.append({"dataset": name})
    print(format_table(rows))
    return 0


def cmd_run(args) -> int:
    dataset = build_dataset(args.dataset, **_dataset_kwargs(args))
    _print_run_header(args, dataset)
    config = _config(args)
    instance = dataset.build_instance(
        incentive_model=args.incentives, alpha=args.alpha
    )
    result = run_algorithm(args.algorithm, dataset, instance, config)
    print(result.summary())
    rows = [
        {
            "ad": i,
            "budget": instance.budget(i),
            "revenue": result.revenue_per_ad[i],
            "incentives": result.seeding_cost_per_ad[i],
            "seeds": len(result.allocation.seeds(i)),
        }
        for i in range(instance.h)
    ]
    print(format_table(rows))
    return 0


def cmd_sweep(args) -> int:
    dataset = build_dataset(args.dataset, **_dataset_kwargs(args))
    _print_run_header(args, dataset)
    config = _config(args)
    rows = run_alpha_sweep(
        dataset,
        config,
        incentive_models=tuple(args.models),
        algorithms=tuple(args.algorithms),
    )
    print(format_table(rows))
    return 0


def cmd_table(args) -> int:
    size_kwargs = {"n": args.n} if args.n is not None else {}
    if args.which == 1:
        datasets = [
            build_dataset(
                name,
                **(size_kwargs if name != "livejournal_syn" else {}),
            )
            for name in ("flixster_syn", "epinions_syn", "dblp_syn", "livejournal_syn")
        ]
        print(format_table(table1_rows(datasets)))
    else:
        datasets = [
            build_dataset(name, **size_kwargs)
            for name in ("flixster_syn", "epinions_syn")
        ]
        print(format_table(table2_rows(datasets)))
    return 0


def cmd_grid(args) -> int:
    """Run a scenario grid; see ``docs/EXPERIMENTS.md`` for the manifest.

    Each completed cell appends one JSONL row carrying the cell axes,
    the results (``revenue`` / ``seed_cost`` / ``seeds`` /
    ``runtime_s``), the resolved ``engine_spec``, and — in
    ``warm_per_dataset`` execution — a ``session`` provenance block
    (group key, solve index, per-cell sampler/store-hit deltas).  The
    header line pins the spec digest, config and execution mode; the
    rendered table is persisted via
    :func:`repro.experiments.reporting.save_report` under the results
    directory (``REPRO_RESULTS_DIR``, default ``benchmarks/results/``).

    Failed cells are quarantined as ``"cell_error"`` rows (see
    ``--cell-timeout`` / ``--max-retries``) instead of aborting; when
    any remain, a quarantine table is printed and the command exits
    with code ``EXIT_QUARANTINED`` (3) — re-running the same manifest
    re-attempts exactly those cells.
    """
    from repro.experiments.grid import (
        GridSpec,
        default_manifest_path,
        grid_table_rows,
        run_grid,
    )

    spec = GridSpec.from_json(args.spec)
    manifest = args.manifest or default_manifest_path(spec)
    overrides: dict = {}
    workers = getattr(args, "workers", 0) or 0
    if workers:
        overrides["workers"] = workers
        overrides["sampler_backend"] = "parallel" if workers > 1 else "serial"
    if getattr(args, "share_samples", False):
        overrides["share_samples"] = True
    if getattr(args, "eager", False):
        overrides["lazy_candidates"] = False
    if getattr(args, "kernel", None):
        overrides["kernel"] = args.kernel
    if getattr(args, "rr_bytes_budget", 0):
        overrides["rr_bytes_budget"] = args.rr_bytes_budget
    mode = args.execution or spec.execution_mode
    total = len(spec.cells())
    print(
        f"# grid={spec.name} cells={total} seed={spec.seed} "
        f"execution={mode} manifest={manifest}"
    )

    def progress(done, total, row):
        if not args.quiet:
            prefix = f"# [{done}/{total}] {row['dataset']} {row['algorithm']} "
            if row.get("kind") == "cell_error":
                print(
                    prefix + f"alpha={row['alpha']} -> QUARANTINED "
                    f"{row['error_type']} after {row['attempts']} attempt(s)"
                )
                return
            line = prefix + f"alpha={row['alpha']} -> revenue={row['revenue']:.1f}"
            session = row.get("session")
            if session is not None and "group" in session:
                line += (
                    f" [session {session['group']}"
                    f" solve={session['solve_index']}"
                    f" sampled={session['sets_sampled']}]"
                )
            elif session is not None:
                # Dynamic cells (spec "mutations" block) run a private
                # incrementally-maintained session instead of a group.
                line += (
                    f" [dynamic invalidated={session['invalidated_sets']}"
                    f" rate={session['invalidation_rate']:.3f}"
                    f" resamples={session['resample_batches']}]"
                )
            print(line)

    rows = run_grid(
        spec,
        manifest,
        resume=not args.fresh,
        config_overrides=overrides,
        progress=progress,
        execution=args.execution,
        cell_timeout=args.cell_timeout,
        max_retries=args.max_retries,
    )
    errors = [row for row in rows if row.get("kind") == "cell_error"]
    table = format_table(
        grid_table_rows([row for row in rows if row.get("kind") == "cell"])
    )
    print(table)
    from repro.experiments.reporting import save_report

    report_path = save_report(f"grid_{spec.name}", table)
    print(f"# report saved to {report_path}")
    if errors:
        print(f"# {len(errors)} quarantined cell(s):")
        print(
            format_table(
                [
                    {
                        "dataset": row["dataset"],
                        "algorithm": row["algorithm"],
                        "alpha": row["alpha"],
                        "attempts": row["attempts"],
                        "error_type": row["error_type"],
                        "error": row["error"][:60],
                    }
                    for row in errors
                ]
            )
        )
        print("# re-run the same command to re-attempt quarantined cells")
        return EXIT_QUARANTINED
    return 0


def cmd_ingest(args) -> int:
    from repro.graph.io import ingest_cached, ingest_edge_list
    from repro.graph.stats import compute_stats

    kwargs = dict(
        n=args.n,
        remap_ids=not args.no_remap,
        drop_self_loops=not args.keep_self_loops,
        dedupe=not args.no_dedupe,
    )
    if args.cache is not None:
        result = ingest_cached(
            args.path, args.cache or None, refresh=args.refresh, **kwargs
        )
    else:
        result = ingest_edge_list(args.path, **kwargs)
    print(format_table([result.stats_row()]))
    stats = compute_stats(result.graph, name=args.path)
    print(format_table([stats.as_row()]))
    return 0


def cmd_tightness(args) -> int:
    from repro.core.bounds import theorem2_bound, tightness_instance
    from repro.core.greedy import ca_greedy, cs_greedy, exhaustive_optimum
    from repro.core.oracles import ExactOracle

    instance, expected = tightness_instance()
    oracle = ExactOracle(instance)
    _, opt = exhaustive_optimum(instance, oracle)
    rows = [
        {"quantity": "optimal revenue", "value": opt},
        {
            "quantity": "CA-GREEDY (adversarial ties)",
            "value": ca_greedy(instance, oracle, tie_break="cost").total_revenue,
        },
        {
            "quantity": "CS-GREEDY",
            "value": cs_greedy(instance, oracle).total_revenue,
        },
        {
            "quantity": "Theorem 2 bound",
            "value": theorem2_bound(
                expected["kappa_pi"], expected["lower_rank"], expected["upper_rank"]
            ),
        },
    ]
    print(format_table(rows))
    return 0


def cmd_serve(args) -> int:
    """Run the allocation daemon until drained (SIGTERM/SIGINT/max-queries).

    The solver loop runs on this (main) thread, which is what arms the
    SIGALRM per-query deadline (``--query-timeout``); the HTTP frontend
    runs on a background thread.  The engine config (accuracy, workers,
    kernel, per-store byte budget) is fixed here for every pooled
    session — queries choose datasets and marketplace axes only.
    """
    from repro.serve import ReproServer, ServeConfig

    server = ReproServer(
        ServeConfig(
            host=args.host,
            port=args.port,
            config=_config(args),
            bytes_budget=args.serve_bytes_budget or None,
            max_sessions=args.max_sessions,
            queue_size=args.queue_size,
            query_timeout_s=args.query_timeout,
            max_queries=args.max_queries,
        )
    )
    # Parsed by tools/serve_smoke.py and shell scripts: keep the
    # "listening on" line first and flushed before any solving starts.
    print(f"# repro-serve listening on {server.address}", flush=True)
    print(
        f"# sessions: bytes_budget={server.pool.bytes_budget or 'unbounded'} "
        f"max_sessions={server.pool.max_sessions or 'unbounded'} "
        f"queue_size={server.config.queue_size} "
        f"query_timeout={server.config.query_timeout_s or 'unbounded'}",
        flush=True,
    )
    server.install_signal_handlers()
    server.serve_forever()
    counters = server.counters
    print(
        f"# drained: served={counters['queries_served']} "
        f"rejected={counters['admission_rejects']} "
        f"errors={counters['solve_errors']} "
        f"timeouts={counters['query_timeouts']} "
        f"evictions={server.pool.counters['evictions']}",
        flush=True,
    )
    return 0


def cmd_query(args) -> int:
    """Send one query (or a stats/health probe) to a running daemon."""
    import json as _json

    from repro.serve import client as serve_client

    if args.stats or args.healthz:
        path = "/stats" if args.stats else "/healthz"
        _, payload = serve_client.request(
            args.addr, path, timeout=args.timeout
        )
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not args.dataset and not args.dataset_path:
        print("repro query: --dataset or --dataset-path is required", file=sys.stderr)
        return 2
    entry: dict = (
        {"path": args.dataset_path} if args.dataset_path else {"name": args.dataset}
    )
    if args.n is not None:
        entry["n"] = args.n
    if args.dataset_h is not None:
        entry["h"] = args.dataset_h
    payload = serve_client.query(
        args.addr,
        timeout=args.timeout,
        dataset=entry,
        algorithm=args.algorithm,
        h=args.h,
        budget=args.budget,
        cpe=args.cpe,
        incentive_model=args.incentives,
        alpha=args.alpha,
        window=args.window,
        seed=args.seed,
    )
    serve = payload.get("serve", {})
    print(
        f"# {payload['algorithm']}: revenue={payload['revenue']:.1f} "
        f"seed_cost={payload['seed_cost']:.1f} seeds={payload['seeds']} "
        f"time={payload['runtime_s']:.2f}s seed={payload['effective_seed']}"
    )
    print(
        f"# serve: pool_key={serve.get('pool_key')} "
        f"warm={serve.get('warm_session')} "
        f"sampled={serve.get('sets_sampled')} "
        f"queue_wait={serve.get('queue_wait_s')}s"
    )
    rows = [
        {
            "ad": i,
            "revenue": payload["revenue_per_ad"][i],
            "incentives": payload["seeding_cost_per_ad"][i],
            "seeds": len(seeds),
        }
        for i, seeds in enumerate(payload["allocation"])
    ]
    print(format_table(rows))
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    # The linter lives in the repo checkout (tools/lint), not the
    # installed package: repro/cli.py -> repro -> src -> <root>.
    root = Path(__file__).resolve().parents[2]
    if not (root / "tools" / "lint").is_dir():
        print(
            "repro lint: tools/lint not found next to this checkout "
            f"(looked under {root}) — run from a source tree",
            file=sys.stderr,
        )
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.lint.cli import main as lint_main

    return lint_main(list(args.lint_args))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Revenue maximization in incentivized social advertising "
        "(Aslay et al., VLDB 2017) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--n", type=int, default=None, help="graph size override")
    common.add_argument("--h", type=int, default=None, help="number of advertisers")
    common.add_argument("--eps", type=float, default=0.5, help="estimator accuracy")
    common.add_argument("--theta-cap", type=int, default=2000, dest="theta_cap")
    common.add_argument("--seed", type=int, default=7)
    common.add_argument("--grid", choices=("quick", "paper"), default="quick")
    common.add_argument(
        "--workers",
        type=int,
        default=0,
        help="RR sampler worker processes; > 1 selects the shared-memory "
        "parallel backend, 0/1 the bit-reproducible serial one",
    )
    common.add_argument(
        "--share-samples",
        action="store_true",
        dest="share_samples",
        help="store probability-identical ads' RR sets once (shared stores)",
    )
    common.add_argument(
        "--eager",
        action="store_true",
        help="disable CELF-style lazy candidate caching (full rescans)",
    )
    common.add_argument(
        "--kernel",
        choices=("numpy", "numba", "auto"),
        default="auto",
        help="reverse-BFS batch kernel: 'numpy' (always available, parity "
        "reference), 'numba' (JIT-compiled), or 'auto' (numba when "
        "importable); bit-identical either way",
    )
    common.add_argument(
        "--rr-bytes-budget",
        type=int,
        default=0,
        dest="rr_bytes_budget",
        help="RAM budget in bytes per shared RR store; past it members "
        "spill to a temp-file memmap (0 = unbounded)",
    )

    p = sub.add_parser("datasets", parents=[common], help="list analog datasets")
    p.add_argument("--build", action="store_true", help="build and show stats")
    p.set_defaults(func=cmd_datasets)

    from repro.api.registry import algorithm_names

    p = sub.add_parser("run", parents=[common], help="run one algorithm")
    p.add_argument("--dataset", choices=sorted(DATASET_BUILDERS), required=True)
    # Choices come from the live registry, so algorithms registered
    # before main() (e.g. via a sitecustomize or wrapper script) are
    # directly runnable from the command line.
    p.add_argument("--algorithm", choices=algorithm_names(), default="TI-CSRM")
    p.add_argument(
        "--incentives",
        choices=("linear", "constant", "sublinear", "superlinear"),
        default="linear",
    )
    p.add_argument("--alpha", type=float, default=1.0)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", parents=[common], help="alpha sweep (Fig. 2/3)")
    p.add_argument("--dataset", choices=sorted(DATASET_BUILDERS), required=True)
    p.add_argument(
        "--models",
        nargs="+",
        default=["linear"],
        choices=("linear", "constant", "sublinear", "superlinear"),
    )
    p.add_argument(
        "--algorithms",
        nargs="+",
        default=list(ALGORITHMS),
        choices=algorithm_names(),
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("table", parents=[common], help="regenerate Table 1/2")
    p.add_argument("--which", type=int, choices=(1, 2), default=1)
    p.set_defaults(func=cmd_table)

    p = sub.add_parser(
        "grid", help="run a declarative scenario grid from a JSON spec"
    )
    p.add_argument("--spec", required=True, help="path to a GridSpec JSON file")
    p.add_argument(
        "--manifest",
        default=None,
        help="JSONL run manifest (default: <results dir>/grid_<name>.jsonl); "
        "an existing manifest for the same spec is resumed",
    )
    p.add_argument(
        "--fresh",
        action="store_true",
        help="overwrite the manifest instead of resuming it",
    )
    p.add_argument(
        "--execution",
        # Literal copy of repro.experiments.grid.EXECUTION_MODES: the
        # grid module stays lazily imported (cmd_grid), and run_grid
        # re-validates the value against the real constant anyway.
        choices=("cold", "warm_per_dataset"),
        default=None,
        help="override the spec's execution block: 'cold' solves every "
        "cell from scratch (order-independent results); "
        "'warm_per_dataset' drives each dataset's cells through one "
        "AllocationSession, reusing RR samples across cells and "
        "recording the reuse in each manifest row's session block",
    )
    p.add_argument("--quiet", action="store_true", help="no per-cell progress")
    p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        dest="cell_timeout",
        help="per-cell wall-clock timeout in seconds (default: the spec's "
        "execution.cell_timeout_s, else unbounded); a timed-out cell is "
        "retried, then quarantined",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        dest="max_retries",
        help="retries after a cell's first failure before quarantining it "
        "(default: the spec's execution.max_retries, else 0)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="RR sampler worker processes for every cell (> 1 selects the "
        "shared-memory parallel backend)",
    )
    p.add_argument(
        "--share-samples",
        action="store_true",
        dest="share_samples",
        help="shared RR stores for probability-identical ads, every cell",
    )
    p.add_argument(
        "--eager",
        action="store_true",
        help="disable lazy candidate caching in every cell",
    )
    p.add_argument(
        "--kernel",
        choices=("numpy", "numba", "auto"),
        default=None,
        help="batch-kernel override for every cell (bit-identical; "
        "default: the spec's config, else 'auto')",
    )
    p.add_argument(
        "--rr-bytes-budget",
        type=int,
        default=0,
        dest="rr_bytes_budget",
        help="per-store RAM budget in bytes for every cell; past it RR "
        "members spill to a temp-file memmap (0 = spec default)",
    )
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser(
        "ingest", help="parse a SNAP-style edge list and report its stats"
    )
    p.add_argument("path", help="text edge list (comments: # or %%)")
    p.add_argument(
        "--n", type=int, default=None, help="declared node count (validated)"
    )
    p.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="NPZ",
        help="write/reuse an .npz parse cache (default: <path>.ingest.npz)",
    )
    p.add_argument(
        "--refresh", action="store_true", help="force re-parse, ignoring the cache"
    )
    p.add_argument(
        "--no-remap",
        action="store_true",
        help="require dense 0..n-1 ids instead of remapping",
    )
    p.add_argument(
        "--keep-self-loops", action="store_true", help="keep self-loop arcs"
    )
    p.add_argument(
        "--no-dedupe", action="store_true", help="keep duplicate arcs"
    )
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser(
        "tightness", parents=[common], help="Figure 1 theory walkthrough"
    )
    p.set_defaults(func=cmd_tightness)

    p = sub.add_parser(
        "serve",
        parents=[common],
        help="run the allocation daemon over a warm session pool",
        description="Long-running HTTP daemon: POST /solve queries route "
        "onto pooled warm AllocationSessions keyed by (dataset, probs "
        "family); GET /healthz and /stats expose liveness and counters. "
        "SIGTERM/SIGINT drain gracefully (in-flight queries finish, all "
        "sessions close). The engine knobs in the common flags are fixed "
        "for every session at startup; per-query axes travel in the "
        "query body (see `repro query`).",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral, printed)"
    )
    p.add_argument(
        "--serve-bytes-budget",
        type=int,
        default=0,
        dest="serve_bytes_budget",
        help="global cap on summed measured RR-store bytes across all "
        "pooled sessions; past it whole least-recently-used sessions "
        "are evicted (0 = unbounded)",
    )
    p.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        dest="max_sessions",
        help="cap on concurrently pooled sessions (default: unbounded)",
    )
    p.add_argument(
        "--queue-size",
        type=int,
        default=16,
        dest="queue_size",
        help="bound on queued-but-unsolved queries; past it new queries "
        "are rejected 429 (backpressure)",
    )
    p.add_argument(
        "--query-timeout",
        type=float,
        default=None,
        dest="query_timeout",
        help="per-query wall-clock deadline in seconds, queue wait "
        "included (default: unbounded); a timed-out query gets 504 and "
        "its session is discarded",
    )
    p.add_argument(
        "--max-queries",
        type=int,
        default=None,
        dest="max_queries",
        help="drain automatically after this many processed queries "
        "(smoke tests / benchmarks; default: run until signalled)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "query",
        help="send one allocation query to a running `repro serve` daemon",
    )
    p.add_argument(
        "--addr", required=True, help="daemon address, host:port (see serve output)"
    )
    p.add_argument(
        "--dataset",
        choices=sorted(DATASET_BUILDERS),
        default=None,
        help="synthetic analog dataset name",
    )
    p.add_argument(
        "--dataset-path",
        default=None,
        dest="dataset_path",
        help="edge-list path instead of --dataset",
    )
    p.add_argument("--n", type=int, default=None, help="dataset size override")
    p.add_argument(
        "--dataset-h",
        type=int,
        default=None,
        dest="dataset_h",
        help="advertiser count built into the dataset entry (pool key)",
    )
    p.add_argument("--algorithm", choices=algorithm_names(), default="TI-CSRM")
    p.add_argument(
        "--h", type=int, default=None, help="per-query advertiser count override"
    )
    p.add_argument("--budget", type=float, default=None, help="per-ad budget override")
    p.add_argument("--cpe", type=float, default=None, help="cost-per-engagement override")
    p.add_argument(
        "--incentives",
        choices=("linear", "constant", "sublinear", "superlinear"),
        default="linear",
    )
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--window", type=int, default=None, help="TI-CSRM window override")
    p.add_argument(
        "--seed", type=int, default=None, help="query RNG seed (default: daemon's)"
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="client-side HTTP timeout in seconds",
    )
    p.add_argument(
        "--stats", action="store_true", help="print the daemon's /stats and exit"
    )
    p.add_argument(
        "--healthz", action="store_true", help="print the daemon's /healthz and exit"
    )
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "lint",
        help="run the repo contract linter (AST rules R1-R7)",
        description="All arguments are forwarded to `python -m tools.lint` "
        "(try `repro lint -- --help`).",
    )
    p.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the linter (paths, --format, --rules, …)",
    )
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # `lint` forwards everything verbatim (argparse.REMAINDER won't
    # capture leading optionals like `--list-rules`, so bypass it).
    if argv and argv[0] == "lint":
        rest = list(argv[1:])
        if rest and rest[0] == "--":
            rest = rest[1:]
        return cmd_lint(argparse.Namespace(lint_args=rest))
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
