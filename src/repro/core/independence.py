"""Matroids and independence systems (Definitions 1–3, Lemmas 1–2).

The RM problem's feasible family is the intersection of a partition
matroid (each node seeds at most one ad — Lemma 1) with ``h`` submodular
knapsacks (``ρ_i(S_i) ≤ B_i``), which together form an independence
system (Lemma 2) but not a matroid; the gap between its lower rank ``r``
and upper rank ``R`` drives Theorem 2's guarantee.  This module gives the
abstract objects plus brute-force rank computation for the small
instances where the bounds are evaluated exactly.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import AllocationError


class PartitionMatroid:
    """Partition matroid ``|X ∩ E_g| ≤ d_g`` over an integer ground set.

    Parameters
    ----------
    groups:
        ``groups[e]`` is the partition block of element *e*.
    capacities:
        Per-block capacities ``d_g``.  The RM disjointness constraint is
        the special case where elements are ``(node, ad)`` pairs, blocks
        are nodes, and every capacity is 1.
    """

    def __init__(self, groups: Sequence[int], capacities: Sequence[int]) -> None:
        self.groups = np.asarray(groups, dtype=np.int64)
        self.capacities = np.asarray(capacities, dtype=np.int64)
        if self.groups.ndim != 1:
            raise AllocationError("groups must be a 1-D vector")
        if self.groups.size and (
            self.groups.min() < 0 or self.groups.max() >= self.capacities.size
        ):
            raise AllocationError("group ids must index into capacities")
        if np.any(self.capacities < 0):
            raise AllocationError("capacities must be non-negative")

    @property
    def ground_size(self) -> int:
        """Number of elements in the ground set."""
        return int(self.groups.size)

    def is_independent(self, subset: Iterable[int]) -> bool:
        """Membership test for the matroid's independent family."""
        used = np.zeros(self.capacities.size, dtype=np.int64)
        for e in subset:
            e = int(e)
            if not 0 <= e < self.groups.size:
                raise AllocationError(f"element {e} outside the ground set")
            used[self.groups[e]] += 1
        return bool(np.all(used <= self.capacities))

    def rank(self) -> int:
        """Size of every maximal independent set: ``Σ_g min(d_g, |E_g|)``."""
        block_sizes = np.bincount(self.groups, minlength=self.capacities.size)
        return int(np.minimum(block_sizes, self.capacities).sum())


def rm_partition_matroid(n_nodes: int, n_ads: int) -> PartitionMatroid:
    """Lemma 1's matroid: ground set ``V × [h]`` (pair id = node·h + ad)."""
    groups = np.repeat(np.arange(n_nodes, dtype=np.int64), n_ads)
    return PartitionMatroid(groups, np.ones(n_nodes, dtype=np.int64))


def allocation_pairs_independent(pairs: Iterable[tuple[int, int]]) -> bool:
    """Disjointness check on ``(node, ad)`` pairs (Lemma 1, directly)."""
    seen: set[int] = set()
    for node, _ in pairs:
        if node in seen:
            return False
        seen.add(node)
    return True


def maximal_independent_sets(
    ground: Sequence,
    is_independent: Callable[[frozenset], bool],
    max_ground: int = 16,
) -> list[frozenset]:
    """All maximal independent sets, by exhaustive enumeration.

    Only for the tiny instances used to evaluate Theorem 2's instance-
    dependent bound; raises when the ground set is too large.
    """
    elements = list(ground)
    if len(elements) > max_ground:
        raise AllocationError(
            f"{len(elements)} elements exceed the enumeration limit {max_ground}"
        )
    independents: list[frozenset] = []
    for r in range(len(elements) + 1):
        for combo in itertools.combinations(elements, r):
            subset = frozenset(combo)
            if is_independent(subset):
                independents.append(subset)
    maximal: list[frozenset] = []
    for candidate in independents:
        extendable = any(
            candidate < other for other in independents if len(other) == len(candidate) + 1
        )
        if not extendable:
            maximal.append(candidate)
    return maximal


def lower_upper_rank(
    ground: Sequence,
    is_independent: Callable[[frozenset], bool],
    max_ground: int = 16,
) -> tuple[int, int]:
    """Lower and upper rank ``(r, R)`` of an independence system (Def. 5)."""
    maximal = maximal_independent_sets(ground, is_independent, max_ground)
    if not maximal:
        return 0, 0
    sizes = [len(s) for s in maximal]
    return min(sizes), max(sizes)
