"""The scalable RM engine (Algorithm 2) with pluggable selection rules.

TI-CARM, TI-CSRM and the two PageRank baselines of Section 5 differ only
in two lines of Algorithm 2: how the per-ad candidate node is chosen
(line 7) and how the winning (node, ad) pair is selected among the
candidates (line 9).  :class:`TIEngine` implements the shared skeleton —
per-ad RR collections, TIM sample sizes, the latent seed-size estimation
of Eq. 10, coverage-residual maintenance, ``UpdateEstimates`` — and takes
the two rules as parameters:

=================  ==================  =====================
algorithm          candidate_rule       selector
=================  ==================  =====================
TI-CARM            ``"ca"`` (Alg. 4)   ``"revenue"``
TI-CSRM            ``"cs"`` (Alg. 5)   ``"rate"``
PageRank-GR        ``"pagerank"``      ``"revenue"``
PageRank-RR        ``"pagerank"``      ``"round_robin"``
=================  ==================  =====================

Estimates: with residual coverage counts ``cov_j(v)`` the marginal
revenue is ``π̂_j(v|S_j) = cpe(j)·n·cov_j(v)/θ_j``; the running revenue is
``π̂_j(S_j) = cpe(j)·n·covered_j/θ_j``; payments add the modular seeding
cost.  When ``θ_j`` grows (Eq. 10 fired) new sets already covered by
``S_j`` are absorbed into ``covered_j`` — Algorithm 3's refresh.

Documented deviations from the pseudocode (DESIGN.md §4):

* ``OPT_s`` may be lower-bounded by a precomputed max singleton spread
  instead of the KPT routine (both are valid lower bounds; the former is
  free when incentives already priced every singleton);
* for the ``ca``/``cs`` rules, an ad whose best candidate has *zero*
  residual coverage is retired — no node could increase its estimated
  revenue, and only the PageRank baselines are meant to pad zero-gain
  seeds;
* a hard ``theta_cap`` bounds sample sizes (pure-Python tractability);
* ``share_samples=True`` enables the memory optimization the paper
  leaves open (Section 7, question i): ads with identical probability
  vectors draw their RR sets from one shared store and keep only
  private residual state — storage drops from ``O(h·θ·|R|)`` to
  ``O(θ·|R| + h·(θ + n))`` in fully competitive marketplaces, with
  the same estimator semantics (the shared sets are i.i.d. from each
  sharing ad's RR distribution).

Performance notes (flat data plane + lazy candidates):

* RR sets are drawn through a pluggable
  :class:`~repro.rrset.backend.SamplerBackend` (``sampler_backend=
  "serial" | "parallel"``, ``workers=N``; see docs/ARCHITECTURE.md).
  ``serial`` delegates to :meth:`RRSampler.sample_batch_flat` and is
  bit-identical to the pre-seam engine; ``parallel`` fans each batch
  over a shared-memory worker pool owned by the run (one pool serves
  all ads) and is deterministic for a fixed ``(seed, workers)`` pair
  but draws a different — equally valid — sample than serial.  Sets are
  stored in flat CSR collections; all coverage maintenance is
  vectorized.
  **RNG stream:** each batch draws all its roots in one vectorized
  ``rng.integers`` call before any arc coin is flipped, whereas the
  legacy sampler interleaved one root draw with each set's coin flips.
  Seeded runs remain fully deterministic (same seed → same allocation)
  but produce a *different* — equally valid — sample than pre-flat
  versions of this engine; the KPT estimator batches its width samples
  the same way.  All estimator guarantees are distribution-level and
  unaffected.
* ``candidate_rule`` and ``selector`` also accept *callables* (see
  :mod:`repro.api.registry` for the signatures), which is how
  registry-defined algorithm variants plug in without subclassing; an
  optional :class:`EngineWarmState` (normally owned by an
  :class:`~repro.api.session.AllocationSession`) carries prob-keyed RR
  stores, pagerank orders and the worker pool *across* runs, so a warm
  re-solve over the same graph and probabilities adopts already-drawn
  RR sets instead of resampling (valid because the RR distribution
  depends only on (graph, probs)); warm mode implies the shared-store
  (``share_samples``) storage semantics.
* The greedy loop caches each ad's candidate ``(node, marg_rev)``
  between rounds (CELF-style laziness).  When ad ``a`` wins node ``v``,
  only ``a`` (its residual counts and possibly ``θ_a`` changed) and ads
  whose cached candidate *is* ``v`` (it just left the allowed set) are
  recomputed: for every untouched ad the residual counts are unchanged
  and its cached argmax is still the argmax over the shrunken allowed
  set, so the cached candidate is *exactly* what a fresh rescan would
  return — allocations are bit-identical to eager mode
  (``lazy_candidates=False``), which the parity tests assert.  The one
  exception is the windowed CS rule: removing ``v`` from the allowed
  set can promote a new node into the top-``w`` coverage window, so
  caching is disabled whenever ``window`` is set.  This turns the
  per-round cost from O(h·n) into O(#invalidated·n).
"""

from __future__ import annotations

import time

import numpy as np

from repro._rng import as_generator, spawn
from repro.errors import AllocationError, EstimationError, WorkerCrashError
from repro.graph.pagerank import pagerank_order
from repro.rrset.backend import (
    FAULT_COUNTER_KEYS,
    SamplerBackend,
    SharedGraphPool,
    make_backend,
    new_fault_counters,
    resolve_backend,
)
from repro.rrset.collection import RRCollection, SharedRRCollection, SharedRRStore
from repro.rrset.kernels import resolve_kernel
from repro.rrset.tim import DEFAULT_THETA_CAP, KPTEstimator, sample_size
from repro.core.allocation import Allocation, AllocationResult
from repro.core.instance import RMInstance
from repro.core.seedsize import next_seed_size

CANDIDATE_RULES = ("ca", "cs", "pagerank")
SELECTORS = ("revenue", "rate", "round_robin")
_BUDGET_SLACK = 1e-9


def validate_rules(candidate_rule, selector) -> None:
    """Reject unknown rule strings / non-callable rules.

    The one shared check behind both :class:`TIEngine` construction and
    :func:`repro.api.registry.register_algorithm`, so the accepted rule
    surface (and its error messages) cannot drift between the two.
    """
    if isinstance(candidate_rule, str):
        if candidate_rule not in CANDIDATE_RULES:
            raise AllocationError(
                f"unknown candidate_rule {candidate_rule!r}; options: "
                f"{CANDIDATE_RULES} or a callable (engine, ad) -> node | None"
            )
    elif not callable(candidate_rule):
        raise AllocationError("candidate_rule must be a rule name or a callable")
    if isinstance(selector, str):
        if selector not in SELECTORS:
            raise AllocationError(
                f"unknown selector {selector!r}; options: {SELECTORS} "
                "or a callable (engine, candidates) -> candidate | None"
            )
    elif not callable(selector):
        raise AllocationError("selector must be a selector name or a callable")


class _WarmGroup:
    """Cross-run sampling state for one distinct probability vector.

    ``kpt_params`` records the ``(ell, kpt_max_samples)`` the cached KPT
    estimator was built with; a later solve changing either gets a fresh
    estimator (same sampler and RNG stream) instead of silently reusing
    bounds computed under the old accuracy parameters.
    """

    __slots__ = ("sampler", "store", "rng", "kpt", "kpt_params")

    def __init__(self, sampler, store, rng, kpt, kpt_params=None) -> None:
        self.sampler = sampler
        self.store = store
        self.rng = rng
        self.kpt = kpt
        self.kpt_params = kpt_params


class EngineWarmState:
    """Caches an :class:`~repro.api.session.AllocationSession` keeps warm
    across engine runs over one (graph, ad-prob family).

    * ``stores`` — prob-content key → :class:`_WarmGroup` (sampler
      backend, :class:`SharedRRStore`, RNG stream, KPT estimator).  RR
      sets depend only on (graph, probs), so stored sets stay valid when
      budgets / CPEs / incentives change between solves; a warm run
      adopts the stored prefix and samples only past the store's end,
      continuing the group's persisted RNG stream.
    * ``pagerank_orders`` — prob-content key → node ordering, so the
      PageRank baselines rank once per probability vector, not per run.
    * ``pool`` — one :class:`SharedGraphPool` serving every parallel
      solve of the session; the engine never closes it (the session
      owns its lifecycle).
    * ``wrap_sampler`` — optional hook applied to each newly created
      sampler backend (sessions install a counting proxy here so reuse
      is observable).
    * ``counters`` — cumulative reuse observability: each engine run
      counts, once per *distinct* probability vector it touches, a
      ``store_hits`` (the warm state already held that vector's store)
      or a ``store_misses`` (a new store was created).  Sessions expose
      these through :attr:`~repro.api.session.AllocationSession.stats`,
      and the grid runner's warm mode records per-cell deltas in its
      manifest rows — so RR reuse is auditable provenance, not silent
      behavior.  The same dict carries the fault-tolerance counters
      (``worker_respawns`` / ``shards_recovered`` / ``pool_degraded``,
      docs/ARCHITECTURE.md §11): it is handed to the session's
      :class:`SharedGraphPool` and backends, which increment it in
      place as they recover from or degrade around worker failures.
    * ``pool_failed`` — set once pool infrastructure for this warm
      state proved unusable (creation failed or the pool declared
      itself unrecoverable); later solves go straight to degraded
      in-process sampling instead of re-attempting a doomed pool.
    """

    def __init__(self) -> None:
        self.stores: dict[bytes, _WarmGroup] = {}
        self.pagerank_orders: dict[bytes, np.ndarray] = {}
        self.pool: SharedGraphPool | None = None
        self.pool_failed = False
        self.wrap_sampler = None
        self.counters = {"store_hits": 0, "store_misses": 0}
        self.counters.update(new_fault_counters())


class _AdState:
    """Per-advertiser mutable state of one engine run."""

    __slots__ = (
        "sampler",
        "rng",
        "kpt",
        "collection",
        "store",
        "s_est",
        "theta",
        "seeds",
        "seed_cost",
        "done",
        "pr_order",
        "pr_ptr",
        "opt_lower",
        "cand_node",
        "cand_rev",
        "cand_fresh",
    )

    def __init__(self) -> None:
        self.sampler: SamplerBackend | None = None
        self.rng = None
        self.kpt: KPTEstimator | None = None
        self.collection = None  # RRCollection or SharedRRCollection
        self.store: SharedRRStore | None = None
        self.s_est = 1
        self.theta = 0
        self.seeds: list[int] = []
        self.seed_cost = 0.0
        self.done = False
        self.pr_order: np.ndarray | None = None
        self.pr_ptr = 0
        self.opt_lower = 1.0
        # CELF-style candidate cache: (node, marginal revenue) of the last
        # computed candidate, plus a validity flag.
        self.cand_node: int | None = None
        self.cand_rev = 0.0
        self.cand_fresh = False


class TIEngine:
    """One configured run of the scalable greedy skeleton."""

    def __init__(
        self,
        instance: RMInstance,
        *,
        candidate_rule: str = "cs",
        selector: str = "rate",
        eps: float = 0.1,
        ell: float = 1.0,
        window: int | None = None,
        theta_cap: int | None = DEFAULT_THETA_CAP,
        opt_lower: str | float | list[float] = "kpt",
        kpt_max_samples: int = 5_000,
        share_samples: bool = False,
        lazy_candidates: bool = True,
        sampler_backend: str = "serial",
        workers: int | None = None,
        kernel: str = "auto",
        rr_bytes_budget: int | None = None,
        blocked=None,
        seed=None,
        algorithm_name: str | None = None,
        warm: EngineWarmState | None = None,
    ) -> None:
        validate_rules(candidate_rule, selector)
        try:
            sampler_backend, workers = resolve_backend(sampler_backend, workers)
            kernel = resolve_kernel(kernel)
        except EstimationError as exc:
            raise AllocationError(str(exc)) from None
        if rr_bytes_budget is not None and rr_bytes_budget < 1:
            raise AllocationError(
                f"rr_bytes_budget must be >= 1, got {rr_bytes_budget}"
            )
        if eps <= 0:
            raise AllocationError(f"eps must be positive, got {eps}")
        if window is not None and window < 1:
            raise AllocationError(f"window must be >= 1, got {window}")
        self.instance = instance
        self.candidate_rule = candidate_rule
        self.selector = selector
        self.eps = float(eps)
        self.ell = float(ell)
        self.window = window
        self.theta_cap = theta_cap
        self.opt_lower_spec = opt_lower
        self.kpt_max_samples = int(kpt_max_samples)
        # Warm mode (a session's EngineWarmState) always stores sets in
        # prob-keyed shared stores — that is what makes them reusable by
        # the next solve — so it implies share_samples semantics.
        self._warm = warm
        self.share_samples = bool(share_samples) or warm is not None
        # Laziness is exact except under the windowed CS rule (see module
        # docstring) and is unproven for arbitrary callable rules, so both
        # disable it; lazy_candidates=False forces a full rescan per round
        # and exists for verification/benchmark comparisons.
        self.lazy_candidates = (
            bool(lazy_candidates) and window is None and isinstance(candidate_rule, str)
        )
        # Sampling backend seam (normalized by resolve_backend above):
        # "serial" reproduces the bare RRSampler streams bit for bit;
        # "parallel" (or workers > 1) fans batches over one
        # SharedGraphPool shared by every ad of this run.
        self.sampler_backend = sampler_backend
        self.workers = workers
        # Batch-kernel seam (resolved: "numpy" or "numba") and per-store
        # RAM budget (None = unbounded); both flow into every backend /
        # SharedRRStore this run creates.
        self.kernel = kernel
        self.rr_bytes_budget = (
            None if rr_bytes_budget is None else int(rr_bytes_budget)
        )
        self._pool: SharedGraphPool | None = None
        self._pool_failed = False
        # Recovery/degradation provenance: shared with the session's
        # warm counters when warm, private to this run otherwise.
        self._fault_counters = (
            warm.counters if warm is not None else new_fault_counters()
        )
        self.blocked = None if blocked is None else np.asarray(blocked, dtype=bool)
        self.rng = as_generator(seed)
        rule_name = getattr(candidate_rule, "__name__", candidate_rule)
        selector_name = getattr(selector, "__name__", selector)
        self.algorithm_name = algorithm_name or f"TI[{rule_name}/{selector_name}]"
        self._states: list[_AdState] = []
        self._assigned: np.ndarray | None = None
        self._rr_cursor = 0  # round-robin pointer

    # ------------------------------------------------------------------
    # Initialization (lines 1–4 of Algorithm 2)
    # ------------------------------------------------------------------
    def _opt_lower_for(self, state: _AdState, ad: int, s: int) -> float:
        spec = self.opt_lower_spec
        if isinstance(spec, str):
            if spec != "kpt":
                raise AllocationError(f"unknown opt_lower spec {spec!r}")
            assert state.kpt is not None
            return max(state.kpt.estimate(s), 1.0)
        if isinstance(spec, (list, tuple, np.ndarray)):
            return max(float(spec[ad]), 1.0)
        return max(float(spec), 1.0)

    def _prob_group_key(self, ad: int) -> bytes:
        """Ads share a store iff their probability vectors are identical.

        Keyed on the raw probability bytes — hashing them would let a
        hash collision silently share a store between ads with different
        probability vectors.  Used by the shared-store path and the
        warm-state caches (RR stores, pagerank orders).
        """
        return self.instance.ad_probs[ad].tobytes()

    def _make_sampler(self, ad: int) -> SamplerBackend:
        """One backend per ad, all sharing this run's worker pool.

        In warm mode the pool lives on the session's
        :class:`EngineWarmState` (created on first parallel use, never
        closed by the engine) and new backends pass through the state's
        ``wrap_sampler`` hook.
        """
        inst = self.instance
        if self.sampler_backend == "parallel" and self.workers > 1:
            pool, degraded = self._acquire_pool()
            sampler = make_backend(
                inst.graph,
                inst.ad_probs[ad],
                "parallel",
                workers=self.workers,
                pool=pool,
                counters=self._fault_counters,
                degraded=degraded,
                kernel=self.kernel,
            )
        else:
            sampler = make_backend(
                inst.graph,
                inst.ad_probs[ad],
                self.sampler_backend,
                workers=self.workers,
                kernel=self.kernel,
            )
        if self._warm is not None and self._warm.wrap_sampler is not None:
            sampler = self._warm.wrap_sampler(sampler)
        return sampler

    def _acquire_pool(self) -> tuple[SharedGraphPool | None, bool]:
        """The run's shared pool, or ``(None, True)`` once degraded.

        The pool lives on the session's warm state in warm mode (the
        session closes it) or on the engine otherwise (``run`` closes
        it).  A pool that cannot be built — or that failed mid-run —
        marks the holder degraded, so every later backend of this run
        (or session) samples in-process without re-attempting the
        broken infrastructure, and ``pool_degraded`` records the event.
        """
        warm = self._warm
        pool = warm.pool if warm is not None else self._pool
        failed = warm.pool_failed if warm is not None else self._pool_failed
        if pool is not None and pool.failed:
            pool, failed = None, True
        if pool is None and not failed:
            try:
                pool = SharedGraphPool(
                    self.instance.graph,
                    self.workers,
                    counters=self._fault_counters,
                    kernel=self.kernel,
                )
            except WorkerCrashError:
                failed = True
                self._fault_counters["pool_degraded"] += 1
        if warm is not None:
            warm.pool, warm.pool_failed = pool, failed
        else:
            self._pool, self._pool_failed = pool, failed
        return pool, failed

    def _init_states(self) -> None:
        inst = self.instance
        n, h = inst.n, inst.h
        if self.blocked is not None and self.blocked.shape != (n,):
            raise AllocationError(
                f"blocked mask must have shape ({n},), got {self.blocked.shape}"
            )
        # Blocked nodes (e.g. users frozen by earlier campaign windows)
        # are treated as pre-assigned: never candidates for any ad.
        self._assigned = (
            self.blocked.copy() if self.blocked is not None else np.zeros(n, dtype=bool)
        )
        rngs = spawn(self.rng, h)
        self._states = []
        # Shared-sampling groups: probability-identical ads share one
        # sampler, RNG stream, KPT estimator and RR store.  In warm mode
        # the group dict is the session's persistent cache, so groups
        # created by an earlier solve — including their already-sampled
        # stores — are found and reused here.
        groups = self._warm.stores if self._warm is not None else {}
        counted: set[bytes] = set()
        for ad in range(h):
            state = _AdState()
            state.rng = rngs[ad]
            if self.share_samples:
                key = self._prob_group_key(ad)
                kpt_params = (self.ell, self.kpt_max_samples)
                group = groups.get(key)
                if self._warm is not None and key not in counted:
                    # Reuse observability: one hit/miss per distinct
                    # probability vector per run, not per ad sharing it.
                    counted.add(key)
                    self._warm.counters[
                        "store_hits" if group is not None else "store_misses"
                    ] += 1
                if group is None:
                    sampler = self._make_sampler(ad)
                    kpt = (
                        KPTEstimator(
                            sampler,
                            ell=self.ell,
                            rng=state.rng,
                            max_samples=self.kpt_max_samples,
                        )
                        if self.opt_lower_spec == "kpt"
                        else None
                    )
                    group = _WarmGroup(
                        sampler,
                        SharedRRStore(n, bytes_budget=self.rr_bytes_budget),
                        state.rng,
                        kpt,
                        kpt_params if kpt is not None else None,
                    )
                    groups[key] = group
                elif self.opt_lower_spec == "kpt" and (
                    group.kpt is None or group.kpt_params != kpt_params
                ):
                    # Either the session's earlier solves priced OPT_s
                    # differently, or they ran KPT under different
                    # accuracy parameters — the cached bounds would be
                    # wrong for this solve, so rebuild (same sampler and
                    # RNG stream; identical re-solves still hit the cache).
                    group.kpt = KPTEstimator(
                        group.sampler,
                        ell=self.ell,
                        rng=group.rng,
                        max_samples=self.kpt_max_samples,
                    )
                    group.kpt_params = kpt_params
                state.sampler = group.sampler
                state.store = group.store
                state.rng = group.rng
                state.kpt = group.kpt
                state.collection = SharedRRCollection(group.store)
            else:
                state.sampler = self._make_sampler(ad)
                if self.opt_lower_spec == "kpt":
                    state.kpt = KPTEstimator(
                        state.sampler,
                        ell=self.ell,
                        rng=state.rng,
                        max_samples=self.kpt_max_samples,
                    )
                state.collection = RRCollection(n)
            state.s_est = 1
            state.opt_lower = self._opt_lower_for(state, ad, 1)
            state.theta = sample_size(
                n, 1, self.eps, self.ell, state.opt_lower, self.theta_cap
            )
            if self.share_samples:
                if state.store.size < state.theta:
                    state.store.extend_flat(
                        *state.sampler.sample_batch_flat(
                            state.theta - state.store.size, state.rng
                        )
                    )
                state.collection.adopt(state.theta)
            else:
                state.collection.add_sets_flat(
                    *state.sampler.sample_batch_flat(state.theta, state.rng)
                )
            if self.candidate_rule == "pagerank":
                if self._warm is not None:
                    key = self._prob_group_key(ad)
                    order = self._warm.pagerank_orders.get(key)
                    if order is None:
                        order = pagerank_order(inst.graph, weights=inst.ad_probs[ad])
                        self._warm.pagerank_orders[key] = order
                    state.pr_order = order
                else:
                    state.pr_order = pagerank_order(
                        inst.graph, weights=inst.ad_probs[ad]
                    )
            self._states.append(state)

    # ------------------------------------------------------------------
    # Candidate rules (line 7 / Algorithms 4 and 5 / PageRank ordering)
    # ------------------------------------------------------------------
    def _candidate(self, ad: int) -> int | None:
        state = self._states[ad]
        if callable(self.candidate_rule):
            # Registry-plugged rule: (engine, ad) -> node | None.  The
            # rule may retire the ad by setting its state's ``done``.
            node = self.candidate_rule(self, ad)
            return None if node is None else int(node)
        if self.candidate_rule == "pagerank":
            # Next unassigned node in the ad-specific ranking.
            order = state.pr_order
            assert order is not None
            while state.pr_ptr < order.size and self._assigned[order[state.pr_ptr]]:
                state.pr_ptr += 1
            if state.pr_ptr >= order.size:
                return None
            return int(order[state.pr_ptr])
        allowed = ~self._assigned
        if self.candidate_rule == "ca":
            node = state.collection.best_node(allowed)
            if node is not None and state.collection.residual_count(node) == 0:
                # No unassigned node covers any uncovered set: this ad's
                # estimated revenue can no longer grow.
                state.done = True
                return None
            return node
        # "cs": Algorithm 5's coverage-to-incentive ratio argmax.
        node = state.collection.best_node_by_ratio(
            self.instance.incentives[ad], allowed, self.window
        )
        if node is not None and state.collection.residual_count(node) == 0:
            # Max ratio can only be achieved at zero coverage if every
            # allowed node has zero coverage — retire the ad.
            best_cov = state.collection.best_node(allowed)
            if best_cov is None or state.collection.residual_count(best_cov) == 0:
                state.done = True
                return None
            node = best_cov
        return node

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def _revenue(self, ad: int) -> float:
        state = self._states[ad]
        return (
            self.instance.cpe(ad)
            * self.instance.n
            * state.collection.covered_total
            / state.theta
        )

    def _payment(self, ad: int) -> float:
        return self._revenue(ad) + self._states[ad].seed_cost

    def _marginal_revenue(self, ad: int, node: int) -> float:
        state = self._states[ad]
        return (
            self.instance.cpe(ad)
            * self.instance.n
            * state.collection.residual_count(node)
            / state.theta
        )

    # ------------------------------------------------------------------
    # Seed-size growth (lines 17–22 / Eq. 10 / Algorithm 3)
    # ------------------------------------------------------------------
    def _grow(self, ad: int) -> None:
        state = self._states[ad]
        inst = self.instance
        f_max = state.collection.max_residual_fraction(~self._assigned)
        s_new = next_seed_size(
            state.s_est,
            inst.budget(ad),
            self._payment(ad),
            inst.max_incentive(ad),
            inst.cpe(ad),
            inst.n,
            f_max,
        )
        if s_new <= state.s_est:
            state.done = True
            return
        state.s_est = s_new
        state.opt_lower = self._opt_lower_for(state, ad, s_new)
        theta_new = sample_size(
            inst.n, s_new, self.eps, self.ell, state.opt_lower, self.theta_cap
        )
        if theta_new > state.theta:
            # UpdateEstimates: new sets hit by existing seeds are absorbed
            # straight into the covered count.
            if self.share_samples:
                if state.store.size < theta_new:
                    state.store.extend_flat(
                        *state.sampler.sample_batch_flat(
                            theta_new - state.store.size, state.rng
                        )
                    )
                state.collection.adopt(theta_new, seeds=state.seeds)
            else:
                state.collection.add_sets_flat(
                    *state.sampler.sample_batch_flat(
                        theta_new - state.theta, state.rng
                    ),
                    seeds=state.seeds,
                )
            state.theta = theta_new

    # ------------------------------------------------------------------
    # Main loop (lines 5–22 of Algorithm 2)
    # ------------------------------------------------------------------
    def run(self) -> AllocationResult:
        """Execute the configured algorithm; returns the allocation result.

        When the parallel sampler backend is active the run owns one
        :class:`SharedGraphPool` (workers + shared-memory CSR blocks);
        it is torn down before this method returns, success or not —
        unless the engine runs against an :class:`EngineWarmState`, in
        which case the pool belongs to the session and survives for the
        next solve.
        """
        try:
            return self._run()
        finally:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def _run(self) -> AllocationResult:
        start = time.perf_counter()
        fault_before = {
            key: self._fault_counters.get(key, 0) for key in FAULT_COUNTER_KEYS
        }
        inst = self.instance
        h = inst.h
        self._init_states()
        allocation = Allocation(h)
        rounds = 0

        lazy = self.lazy_candidates
        while True:
            rounds += 1
            candidates: list[tuple[int, int, float, float]] = []
            for ad in range(h):
                state = self._states[ad]
                if state.done:
                    continue
                if lazy and state.cand_fresh:
                    # Untouched since the cache was filled: residual counts
                    # and θ are unchanged and the cached node is still
                    # allowed, so the cached argmax is exact.
                    node = state.cand_node
                else:
                    node = self._candidate(ad)
                    state.cand_node = node
                    state.cand_rev = (
                        self._marginal_revenue(ad, node) if node is not None else 0.0
                    )
                    state.cand_fresh = True
                if node is None or state.done:
                    continue
                marg_rev = state.cand_rev
                marg_pay = marg_rev + inst.incentive(ad, node)
                if self._payment(ad) + marg_pay > inst.budget(ad) + _BUDGET_SLACK:
                    continue  # infeasible this round; the ad stalls
                candidates.append((ad, node, marg_rev, marg_pay))

            winner = self._select(candidates)
            if winner is None:
                break
            ad, node, _, _ = winner
            state = self._states[ad]
            allocation.add(node, ad)
            self._assigned[node] = True
            state.seeds.append(node)
            state.seed_cost += inst.incentive(ad, node)
            state.collection.mark_covered_by(node)
            if len(state.seeds) == state.s_est and not state.done:
                self._grow(ad)
            # Invalidate exactly the caches the win could have changed:
            # the winner's (counts/θ moved) and any ad whose cached
            # candidate node was just assigned.
            state.cand_fresh = False
            for st in self._states:
                if st.cand_node == node:
                    st.cand_fresh = False

        revenue = [
            self._revenue(ad) if self._states[ad].seeds else 0.0 for ad in range(h)
        ]
        seed_cost = [self._states[ad].seed_cost for ad in range(h)]
        if self.share_samples:
            stores = list(
                {id(s.store): s.store for s in self._states if s.store}.values()
            )
            memory = sum(store.memory_bytes() for store in stores)
            memory += sum(s.collection.memory_bytes() for s in self._states)
            store_bytes = sum(
                st.member_bytes + int(st.indptr.nbytes) for st in stores
            )
            peak_store_bytes = sum(st.peak_bytes for st in stores)
            total_sets = sum(st.size for st in stores)
            spilled_stores = sum(1 for st in stores if st.spilled)
        else:
            cols = [self._states[ad].collection for ad in range(h)]
            memory = sum(c.memory_bytes() for c in cols)
            store_bytes = sum(
                int(c.members.nbytes) + int(c.indptr.nbytes) for c in cols
            )
            peak_store_bytes = store_bytes
            total_sets = sum(c.theta for c in cols)
            spilled_stores = 0
        memory_block = {
            "store_bytes": store_bytes,
            "peak_store_bytes": peak_store_bytes,
            "bytes_per_rr_set": (
                store_bytes / total_sets if total_sets else 0.0
            ),
            "spilled_stores": spilled_stores,
            "rr_bytes_budget": self.rr_bytes_budget,
        }
        return AllocationResult(
            allocation=allocation,
            revenue_per_ad=revenue,
            seeding_cost_per_ad=seed_cost,
            algorithm=self.algorithm_name,
            runtime_seconds=time.perf_counter() - start,
            extras={
                "rounds": rounds,
                "theta_per_ad": [s.theta for s in self._states],
                "seed_size_estimate_per_ad": [s.s_est for s in self._states],
                "memory_bytes": memory,
                "eps": self.eps,
                "window": self.window,
                "candidate_rule": getattr(
                    self.candidate_rule, "__name__", self.candidate_rule
                ),
                "share_samples": self.share_samples,
                "lazy_candidates": self.lazy_candidates,
                "selector": getattr(self.selector, "__name__", self.selector),
                "sampler_backend": self.sampler_backend,
                "workers": self.workers,
                "kernel": self.kernel,
                # Measured storage accounting (docs/ARCHITECTURE.md §2):
                # narrowed-dtype member bytes, spill state and the
                # per-set cost the manifest rows surface.
                "memory": memory_block,
                # Recovery/degradation this run actually saw (deltas, so
                # warm sessions don't bleed earlier solves' events in).
                "fault_counters": {
                    key: self._fault_counters.get(key, 0) - fault_before[key]
                    for key in FAULT_COUNTER_KEYS
                },
                "degraded": (
                    self._fault_counters.get("pool_degraded", 0)
                    - fault_before["pool_degraded"]
                )
                > 0,
            },
        )

    # ------------------------------------------------------------------
    # Winner selection (line 9 and the baselines' replacements)
    # ------------------------------------------------------------------
    def _select(
        self, candidates: list[tuple[int, int, float, float]]
    ) -> tuple[int, int, float, float] | None:
        if not candidates:
            return None
        if callable(self.selector):
            # Registry-plugged selector: (engine, candidates) -> winner.
            winner = self.selector(self, candidates)
            if winner is not None and winner not in candidates:
                raise AllocationError(
                    "custom selector must return one of the candidate tuples or None"
                )
            return winner
        if self.selector == "revenue":
            return max(candidates, key=lambda c: (c[2], -c[0]))
        if self.selector == "rate":
            def rate(c: tuple[int, int, float, float]) -> float:
                _, _, rev, pay = c
                if pay <= 0:
                    return float("inf") if rev > 0 else 0.0
                return rev / pay
            return max(candidates, key=lambda c: (rate(c), -c[0]))
        # round_robin: first ad at-or-after the cursor with a candidate.
        by_ad = {c[0]: c for c in candidates}
        h = self.instance.h
        for offset in range(h):
            ad = (self._rr_cursor + offset) % h
            if ad in by_ad:
                self._rr_cursor = (ad + 1) % h
                return by_ad[ad]
        return None
