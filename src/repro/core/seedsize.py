"""Latent seed-set size estimation (Eq. 10).

TIM's sample size ``L(s, ε)`` needs the seed count ``s`` up front, but in
the RM problem the number of seeds an advertiser ends up with is dictated
by its budget.  The paper's fix: start at ``s̃ = 1`` and, whenever the
current estimate is used up, grow it by a *conservative* count of how
many more seeds the leftover budget can certainly accommodate:

    ``s̃ ← s̃ + ⌊(B_i − ρ_i(S_i)) / (c^max_i + cpe(i)·n·F^max_{R_i})⌋``

The denominator is the largest possible payment of one more seed (the
costliest incentive plus the largest achievable marginal revenue), so the
estimate never overshoots — by submodularity future marginal gains only
shrink.  A zero increment means the remaining budget cannot be certified
to fit another seed; the engine then stops growing that ad's sample.
"""

from __future__ import annotations

import math

from repro.errors import EstimationError


def next_seed_size(
    current: int,
    budget: float,
    payment_so_far: float,
    max_incentive: float,
    cpe: float,
    n_nodes: int,
    max_residual_fraction: float,
) -> int:
    """Apply Eq. 10 once; the result is clamped to ``[current, n_nodes]``.

    Parameters
    ----------
    current:
        Current estimate ``s̃_i`` (equals ``|S_i|`` when invoked).
    budget, payment_so_far:
        ``B_i`` and the estimated payment ``ρ̂_i(S_i)``.
    max_incentive:
        ``c^max_i = max_v c_i(v)``.
    cpe, n_nodes:
        ``cpe(i)`` and ``n``; their product with *max_residual_fraction*
        bounds any future seed's marginal revenue.
    max_residual_fraction:
        ``F^max_{R_i} = max_{u ∉ S_i} F_{R_i}(u)`` over the residual
        collection.
    """
    if current < 0:
        raise EstimationError(f"current seed size must be >= 0, got {current}")
    remaining = budget - payment_so_far
    if remaining <= 0:
        return current
    per_seed_ceiling = max_incentive + cpe * n_nodes * max_residual_fraction
    if per_seed_ceiling <= 0.0:
        # Free seeds with zero estimated marginal revenue: any number fits
        # the budget, but none can increase revenue — cap at n.
        return n_nodes
    increment = math.floor(remaining / per_seed_ceiling)
    return min(current + max(increment, 0), n_nodes)
