"""Spread oracles: the estimators behind π, ρ and the greedy rules.

CA-GREEDY and CS-GREEDY are defined against an abstract ability to
evaluate ``σ_i(S)``; how that evaluation happens is what separates the
reference algorithms (exact enumeration, Monte-Carlo) from the scalable
ones (RR sampling, Section 4).  :class:`SpreadOracle` fixes the
interface — spread, revenue ``π_i = cpe(i)·σ_i``, payment
``ρ_i = π_i + c_i`` and their marginals — with memoization, and the
three implementations plug in the corresponding estimator.

Determinism: the Monte-Carlo oracle derives an RNG per ``(ad, seed set)``
query from a base seed, so estimates do not depend on evaluation order
(important for the greedy's argmax stability and for test repeatability).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._rng import as_generator
from repro.diffusion.montecarlo import estimate_spread
from repro.diffusion.worlds import exact_spread
from repro.errors import EstimationError
from repro.rrset.backend import SharedGraphPool, make_backend, resolve_backend
from repro.rrset.collection import build_inverted_index
from repro.core.instance import RMInstance


class SpreadOracle(ABC):
    """Cached evaluator of ``σ_i(S)`` and derived quantities."""

    def __init__(self, instance: RMInstance) -> None:
        self.instance = instance
        self._cache: dict[tuple[int, frozenset], float] = {}

    @abstractmethod
    def _spread_uncached(self, ad: int, seeds: frozenset) -> float:
        """Estimate ``σ_i(S)``; *seeds* is validated and non-trivial."""

    # ------------------------------------------------------------------
    def spread(self, ad: int, seeds) -> float:
        """``σ_i(S)``; empty sets have spread 0."""
        if not 0 <= ad < self.instance.h:
            raise EstimationError(f"ad index {ad} out of range [0, {self.instance.h})")
        key = (ad, frozenset(int(s) for s in seeds))
        if not key[1]:
            return 0.0
        if key not in self._cache:
            self._cache[key] = self._spread_uncached(ad, key[1])
        return self._cache[key]

    def marginal_spread(self, ad: int, node: int, seeds) -> float:
        """``σ_i(u | S)``, clipped at 0 to absorb estimator noise."""
        seeds = frozenset(int(s) for s in seeds)
        node = int(node)
        if node in seeds:
            return 0.0
        return max(self.spread(ad, seeds | {node}) - self.spread(ad, seeds), 0.0)

    # ------------------------------------------------------------------
    def revenue(self, ad: int, seeds) -> float:
        """``π_i(S) = cpe(i) · σ_i(S)``."""
        return self.instance.cpe(ad) * self.spread(ad, seeds)

    def marginal_revenue(self, ad: int, node: int, seeds) -> float:
        """``π_i(u | S)``."""
        return self.instance.cpe(ad) * self.marginal_spread(ad, node, seeds)

    def payment(self, ad: int, seeds) -> float:
        """``ρ_i(S) = π_i(S) + c_i(S)``."""
        seeds = list(seeds)
        return self.revenue(ad, seeds) + self.instance.seeding_cost(ad, seeds)

    def marginal_payment(self, ad: int, node: int, seeds) -> float:
        """``ρ_i(u | S) = π_i(u | S) + c_i(u)``."""
        return self.marginal_revenue(ad, node, seeds) + self.instance.incentive(ad, node)

    def total_revenue(self, seed_sets) -> float:
        """``π(S⃗) = Σ_i π_i(S_i)``."""
        return sum(self.revenue(i, seeds) for i, seeds in enumerate(seed_sets))


class ExactOracle(SpreadOracle):
    """Possible-world enumeration; exponential in random arcs (tiny graphs)."""

    def _spread_uncached(self, ad: int, seeds: frozenset) -> float:
        return exact_spread(self.instance.graph, self.instance.ad_probs[ad], seeds)


class MonteCarloOracle(SpreadOracle):
    """Monte-Carlo estimation with order-independent per-query streams."""

    def __init__(self, instance: RMInstance, n_runs: int = 500, seed: int = 0) -> None:
        super().__init__(instance)
        if n_runs < 1:
            raise EstimationError(f"n_runs must be positive, got {n_runs}")
        self.n_runs = int(n_runs)
        self.base_seed = int(seed)

    def _spread_uncached(self, ad: int, seeds: frozenset) -> float:
        key_material = (self.base_seed, ad) + tuple(sorted(seeds))
        rng = as_generator(
            np.random.SeedSequence(entropy=self.base_seed, spawn_key=(hash(key_material) & 0x7FFFFFFF,))
        )
        return estimate_spread(
            self.instance.graph,
            self.instance.ad_probs[ad],
            sorted(seeds),
            n_runs=self.n_runs,
            rng=rng,
        )


class RRStaticOracle(SpreadOracle):
    """Fixed RR samples per ad; ``σ̂_i(S) = n · F_{R_i}(S)``.

    This is the *estimation-only* use of RR sets (no adaptive θ growth) —
    handy for evaluating a finished allocation under an estimator
    independent of the one that produced it.
    """

    def __init__(
        self,
        instance: RMInstance,
        n_samples: int = 10_000,
        seed=None,
        backend: str = "serial",
        workers: int | None = None,
    ) -> None:
        """*backend* / *workers* select the sampling backend (see
        :func:`repro.rrset.backend.make_backend`); the default is
        bit-identical to the pre-seam oracle.  With the parallel backend
        all ads draw through one worker pool, torn down before the
        constructor returns."""
        super().__init__(instance)
        if n_samples < 1:
            raise EstimationError(f"n_samples must be positive, got {n_samples}")
        rng = as_generator(seed)
        self.n_samples = int(n_samples)
        # One node -> set-ids inverted CSR index per ad, built from the
        # sampler's flat batch output.
        self._memberships: list[tuple[np.ndarray, np.ndarray]] = []
        n = instance.graph.n
        backend, workers = resolve_backend(backend, workers)
        pool = (
            SharedGraphPool(instance.graph, workers)
            if backend == "parallel" and workers > 1
            else None
        )
        try:
            for i in range(instance.h):
                sampler = make_backend(
                    instance.graph,
                    instance.ad_probs[i],
                    backend,
                    workers=workers,
                    pool=pool,
                )
                members, indptr = sampler.sample_batch_flat(n_samples, rng)
                sids = np.repeat(
                    np.arange(n_samples, dtype=np.int64), np.diff(indptr)
                )
                self._memberships.append(build_inverted_index(members, sids, n))
        finally:
            if pool is not None:
                pool.close()

    def _spread_uncached(self, ad: int, seeds: frozenset) -> float:
        inv_indptr, inv_sets = self._memberships[ad]
        slices = [
            inv_sets[inv_indptr[int(v)] : inv_indptr[int(v) + 1]] for v in seeds
        ]
        hit = np.unique(np.concatenate(slices)).size if slices else 0
        return self.instance.n * hit / self.n_samples
